"""Tests for the gender-assignment cascade."""

import pytest

from repro.gender import (
    GenderizeClient,
    GenderResolver,
    ResolverPolicy,
    WebEvidenceSource,
)
from repro.gender.model import Gender, InferenceMethod
from repro.gender.webevidence import EvidenceKind


def make_web(availability, truth, photo_error=0.0, seed=0):
    return WebEvidenceSource(availability, truth, photo_error, seed)


class TestCascade:
    def test_pronoun_wins(self):
        web = make_web({"p1": EvidenceKind.PRONOUN}, {"p1": Gender.F})
        r = GenderResolver(web, GenderizeClient(0))
        a = r.resolve("p1", "Wei Zhang")  # ambiguous name, but evidence exists
        assert a.gender is Gender.F
        assert a.method is InferenceMethod.MANUAL
        assert a.confidence == 1.0

    def test_photo_confidence_below_pronoun(self):
        web = make_web({"p1": EvidenceKind.PHOTO}, {"p1": Gender.M})
        r = GenderResolver(web, GenderizeClient(0))
        a = r.resolve("p1", "Anyone X")
        assert a.method is InferenceMethod.MANUAL
        assert a.confidence < 1.0

    def test_genderize_fallback_confident_name(self):
        web = make_web({"p1": EvidenceKind.NONE}, {"p1": Gender.F})
        r = GenderResolver(web, GenderizeClient(0))
        a = r.resolve("p1", "Mary Smith")
        assert a.method is InferenceMethod.GENDERIZE
        assert a.gender is Gender.F
        assert a.confidence >= 0.70

    def test_unassigned_when_all_fail(self):
        web = make_web({"p1": EvidenceKind.NONE}, {"p1": Gender.F})
        r = GenderResolver(web, GenderizeClient(0))
        a = r.resolve("p1", "Zzyzx Qqq")
        assert a.gender is Gender.UNKNOWN
        assert not a.known

    def test_threshold_respected(self):
        web = make_web({"p1": EvidenceKind.NONE}, {"p1": Gender.M})
        # a very high threshold rejects borderline names
        strict = GenderResolver(
            web, GenderizeClient(0), ResolverPolicy(genderize_threshold=0.999)
        )
        a = strict.resolve("p1", "Jordan Lee")
        assert a.gender is Gender.UNKNOWN

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ResolverPolicy(genderize_threshold=0.4)

    def test_manual_disabled(self):
        web = make_web({"p1": EvidenceKind.PRONOUN}, {"p1": Gender.F})
        r = GenderResolver(
            web, GenderizeClient(0), ResolverPolicy(use_manual=False)
        )
        a = r.resolve("p1", "Mary Smith")
        assert a.method is InferenceMethod.GENDERIZE

    def test_missing_sources_rejected(self):
        with pytest.raises(ValueError):
            GenderResolver(None, GenderizeClient(0))
        with pytest.raises(ValueError):
            GenderResolver(
                make_web({}, {}), None, ResolverPolicy(use_genderize=True)
            )

    def test_coverage_stats(self):
        web = make_web(
            {"a": EvidenceKind.PRONOUN, "b": EvidenceKind.NONE, "c": EvidenceKind.NONE},
            {"a": Gender.F, "b": Gender.M, "c": Gender.M},
        )
        r = GenderResolver(web, GenderizeClient(0))
        assignments = r.resolve_all(
            [("a", "Wei X"), ("b", "John Smith"), ("c", "Zzyzx Q")]
        )
        cov = GenderResolver.coverage(assignments)
        assert cov["manual"] == pytest.approx(1 / 3)
        assert cov["genderize"] == pytest.approx(1 / 3)
        assert cov["none"] == pytest.approx(1 / 3)

    def test_coverage_empty(self):
        import math

        cov = GenderResolver.coverage({})
        assert math.isnan(cov["manual"])


class TestWebEvidence:
    def test_photo_error_flips(self):
        web = make_web({"p": EvidenceKind.PHOTO}, {"p": Gender.F}, photo_error=1.0)
        ev = web.lookup("p")
        assert ev.observed_gender is Gender.M

    def test_pronoun_never_flips(self):
        web = make_web({"p": EvidenceKind.PRONOUN}, {"p": Gender.F}, photo_error=1.0)
        assert web.lookup("p").observed_gender is Gender.F

    def test_missing_person(self):
        web = make_web({}, {})
        assert web.lookup("ghost").kind is EvidenceKind.NONE

    def test_photo_error_deterministic(self):
        a = make_web({"p": EvidenceKind.PHOTO}, {"p": Gender.F}, 0.5, seed=9).lookup("p")
        b = make_web({"p": EvidenceKind.PHOTO}, {"p": Gender.F}, 0.5, seed=9).lookup("p")
        assert a.observed_gender == b.observed_gender

    def test_bad_error_rate(self):
        with pytest.raises(ValueError):
            make_web({}, {}, photo_error=1.5)
