"""Builders for the paper's eight figures.

Each builder returns a :class:`FigureResult`: the underlying data series
(the same ones ggplot would receive) plus an ASCII rendering, so the
benchmark harness can print the series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.analysis.experience import experience_report
from repro.analysis.far import far_report
from repro.analysis.geography import geography_report
from repro.analysis.pc import pc_report
from repro.analysis.reception import reception_report
from repro.analysis.sector import sector_report
from repro.analysis.visible import visible_report
from repro.pipeline.dataset import AnalysisDataset
from repro.viz.ascii import bar_chart
from repro.viz.density import density_plot

__all__ = [
    "FigureResult",
    "build_fig1",
    "build_fig2",
    "build_fig3",
    "build_fig4",
    "build_fig5",
    "build_fig6",
    "build_fig7",
    "build_fig8",
]


@dataclass(frozen=True)
class FigureResult:
    """Data + rendering of one reproduced figure."""

    figure: str
    data: dict[str, Any]
    text: str


def _gender_samples(ds: AnalysisDataset, column: str, flag: str) -> dict[str, np.ndarray]:
    known = ds.researchers.filter(lambda t: ~t.col("gender").is_missing())
    out = {}
    for g in ("F", "M"):
        sub = known.filter(
            lambda t: np.array([bool(x) for x in t[flag]], dtype=bool)
            & np.array([v == g for v in t["gender"]], dtype=bool)
        )
        v = sub[column].astype(np.float64)
        out[g] = v[~np.isnan(v)]
    return out


def build_fig1(ds: AnalysisDataset) -> FigureResult:
    """Fig. 1: representation of women across conference roles."""
    far = far_report(ds)
    pc = pc_report(ds)
    vis = visible_report(ds)
    per_conf: dict[str, dict[str, float]] = {}
    for c in far.by_conference:
        per_conf[c.conference] = {"author": c.authors.pct}
    for conf, p in pc.by_conference.items():
        per_conf.setdefault(conf, {})["pc_member"] = p.pct
    for conf, p in pc.chairs_by_conference.items():
        per_conf.setdefault(conf, {})["pc_chair"] = p.pct
    for role, conf_map in vis.by_conference.items():
        for conf, p in conf_map.items():
            per_conf.setdefault(conf, {})[role] = p.pct
    overall = {
        "author": far.overall.pct,
        "pc_chair": pc.chairs.pct,
        "pc_member": pc.memberships.pct,
        **{role: p.pct for role, p in vis.overall.items()},
    }
    text = bar_chart(
        overall, title="Fig. 1: % women by conference role (all conferences)"
    )
    return FigureResult("fig1", {"overall": overall, "per_conference": per_conf}, text)


def build_fig2(ds: AnalysisDataset) -> FigureResult:
    """Fig. 2: citation distributions 36 months out, by lead gender."""
    rep = reception_report(ds)
    papers = ds.papers
    cites = papers["citations_36mo"].astype(np.float64)
    lead = papers.col("first_gender").values
    samples = {
        "women-led": cites[np.array([g == "F" for g in lead], bool)],
        "men-led": cites[np.array([g == "M" for g in lead], bool)],
    }
    text = density_plot(
        samples,
        title="Fig. 2: citations 36 months after publication (density)",
        log_scale=True,
    )
    stats = (
        f"\nwomen-led: n={rep.n_female_lead} mean={rep.mean_female:.2f} "
        f"(excl. outlier {rep.outlier_citations}: {rep.mean_female_no_outlier:.2f})"
        f"\nmen-led:   n={rep.n_male_lead} mean={rep.mean_male:.2f}"
        f"\nWelch t={rep.welch_no_outlier.statistic:.2f} "
        f"df={rep.welch_no_outlier.df:.0f} p={rep.welch_no_outlier.p_value:.3f}"
        f"\ni10 share: women {100*rep.i10_female:.0f}% vs men {100*rep.i10_male:.0f}%"
    )
    return FigureResult(
        "fig2",
        {"samples": samples, "report": rep},
        text + stats,
    )


def build_fig3(ds: AnalysisDataset) -> FigureResult:
    """Fig. 3: GS past publications by gender and role (densities)."""
    data = {
        "authors": _gender_samples(ds, "gs_pubs", "is_author"),
        "pc": _gender_samples(ds, "gs_pubs", "is_pc"),
    }
    text = "\n\n".join(
        density_plot(
            {f"{g}": v for g, v in samples.items()},
            title=f"Fig. 3 ({role}): GS past publications by gender (log density)",
            log_scale=True,
        )
        for role, samples in data.items()
    )
    return FigureResult("fig3", data, text)


def build_fig4(ds: AnalysisDataset) -> FigureResult:
    """Fig. 4: h-index distribution by gender and role."""
    data = {
        "authors": _gender_samples(ds, "gs_h", "is_author"),
        "pc": _gender_samples(ds, "gs_h", "is_pc"),
    }
    text = "\n\n".join(
        density_plot(
            {f"{g}": v for g, v in samples.items()},
            title=f"Fig. 4 ({role}): h-index by gender (log density)",
            log_scale=True,
        )
        for role, samples in data.items()
    )
    return FigureResult("fig4", data, text)


def build_fig5(ds: AnalysisDataset) -> FigureResult:
    """Fig. 5: Semantic Scholar past publications by gender (authors)."""
    data = _gender_samples(ds, "s2_pubs", "is_author")
    exp = experience_report(ds)
    text = density_plot(
        data,
        title="Fig. 5: S2 past publications by gender (authors, log density)",
        log_scale=True,
    )
    text += (
        f"\nGS vs S2 correlation: r={exp.gs_s2_correlation.r:.3f} "
        f"p={exp.gs_s2_correlation.p_value:.2g} (paper: r=0.334, p<0.0001)"
    )
    return FigureResult("fig5", {"samples": data, "correlation": exp.gs_s2_correlation}, text)


def build_fig6(ds: AnalysisDataset) -> FigureResult:
    """Fig. 6: experience bands by gender (all researchers)."""
    exp = experience_report(ds)
    flat = {}
    for (role, gender), shares in exp.band_shares.items():
        for band, share in shares.items():
            flat[f"{role}/{gender}/{band}"] = 100 * share
    text = bar_chart(flat, title="Fig. 6: experience bands by gender and role (%)")
    text += (
        f"\nnovice authors: women {100*exp.novice_female_authors:.1f}% vs "
        f"men {100*exp.novice_male_authors:.1f}% "
        f"(chi2={exp.novice_test.statistic:.2f}, p={exp.novice_test.p_value:.3g})"
    )
    return FigureResult("fig6", {"band_shares": exp.band_shares, "report": exp}, text)


def build_fig7(ds: AnalysisDataset, min_authors: int = 10) -> FigureResult:
    """Fig. 7: % women for countries with at least ``min_authors`` authors."""
    geo = geography_report(ds)
    eligible = [c for c in geo.countries if c.author_total >= min_authors]
    eligible.sort(key=lambda c: -c.women.value if c.women.n else 0.0)
    bars = {c.country_code: c.women.pct for c in eligible}
    text = bar_chart(
        bars,
        title=f"Fig. 7: % women for countries with >= {min_authors} authors",
    )
    return FigureResult("fig7", {"countries": eligible}, text)


def build_fig8(ds: AnalysisDataset) -> FigureResult:
    """Fig. 8: % women by sector and role."""
    sec = sector_report(ds)
    bars = {}
    for s, p in sec.women_by_sector_author.items():
        bars[f"author/{s}"] = p.pct
    for s, p in sec.women_by_sector_pc.items():
        bars[f"pc/{s}"] = p.pct
    text = bar_chart(bars, title="Fig. 8: % women by sector and role")
    text += (
        f"\nauthors chi2={sec.author_test.statistic:.2f} p={sec.author_test.p_value:.3f}"
        f" | pc chi2={sec.pc_test.statistic:.2f} p={sec.pc_test.p_value:.3f}"
    )
    return FigureResult("fig8", {"report": sec}, text)
