"""Detailed content tests for Figures 3–6 and 8."""

import numpy as np
import pytest

from repro.report import (
    build_fig1,
    build_fig3,
    build_fig4,
    build_fig5,
    build_fig6,
    build_fig8,
)


class TestFig1PerConference:
    def test_every_conference_has_author_share(self, small_result):
        fig = build_fig1(small_result.dataset)
        per_conf = fig.data["per_conference"]
        assert len(per_conf) == 9
        for conf, roles in per_conf.items():
            assert "author" in roles and "pc_member" in roles

    def test_sc_session_chairs_highest(self, small_result):
        fig = build_fig1(small_result.dataset)
        per_conf = fig.data["per_conference"]
        sc = per_conf["SC"]["session_chair"]
        others = [
            roles["session_chair"]
            for conf, roles in per_conf.items()
            if conf != "SC" and not np.isnan(roles.get("session_chair", np.nan))
        ]
        assert sc >= max(others)


class TestExperienceFigures:
    def test_fig3_four_samples(self, small_result):
        fig = build_fig3(small_result.dataset)
        for role in ("authors", "pc"):
            for gender in ("F", "M"):
                assert fig.data[role][gender].size > 0

    def test_fig3_pc_pull_right(self, small_result):
        fig = build_fig3(small_result.dataset)
        for gender in ("F", "M"):
            assert np.median(fig.data["pc"][gender]) >= np.median(
                fig.data["authors"][gender]
            )

    def test_fig4_h_nonnegative(self, small_result):
        fig = build_fig4(small_result.dataset)
        for role in ("authors", "pc"):
            for gender in ("F", "M"):
                assert (fig.data[role][gender] >= 0).all()

    def test_fig5_full_author_coverage(self, small_result):
        fig = build_fig5(small_result.dataset)
        ds = small_result.dataset
        known_authors = ds.researchers.filter(
            lambda t: np.array([bool(x) for x in t["is_author"]], dtype=bool)
            & ~t.col("gender").is_missing()
        )
        s2_vals = known_authors["s2_pubs"].astype(np.float64)
        covered = np.mean(~np.isnan(s2_vals))
        assert covered > 0.95  # "100% author coverage" modulo collisions
        n_fig = fig.data["samples"]["F"].size + fig.data["samples"]["M"].size
        assert n_fig == int(np.sum(~np.isnan(s2_vals)))

    def test_fig6_band_labels(self, small_result):
        fig = build_fig6(small_result.dataset)
        shares = fig.data["band_shares"]
        assert ("author", "F") in shares
        assert set(shares[("author", "F")]) == {
            "novice", "mid-career", "experienced",
        }


class TestFig8:
    def test_six_bars(self, small_result):
        fig = build_fig8(small_result.dataset)
        rep = fig.data["report"]
        assert set(rep.women_by_sector_author) == {"COM", "EDU", "GOV"}
        assert set(rep.women_by_sector_pc) == {"COM", "EDU", "GOV"}

    def test_pc_bars_above_author_bars(self, small_result):
        fig = build_fig8(small_result.dataset)
        rep = fig.data["report"]
        for sector in ("EDU", "GOV"):
            assert (
                rep.women_by_sector_pc[sector].value
                > rep.women_by_sector_author[sector].value
            )
