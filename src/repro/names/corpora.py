"""Name corpora per cultural cluster.

Each forename row is ``(name, female_share, weight)``:

- ``female_share`` — fraction of bearers who are women (0 = always male,
  1 = always female, 0.5 = fully ambiguous).  These are synthetic values
  chosen to mimic the texture reported in the name-to-gender benchmarking
  literature the paper cites [Santamaria & Mihaljevic 2018]: Western names
  mostly near 0 or 1, East-Asian romanizations heavily mid-range.
- ``weight`` — relative frequency used when sampling bearers.

Clusters map from country code via :func:`cluster_for_country`; the
mapping follows writing-culture, not geography (e.g. Australia samples
from the "western" cluster).
"""

from __future__ import annotations

__all__ = ["CLUSTERS", "cluster_for_country", "FORENAMES", "SURNAMES"]

# (name, female_share, weight)
_WESTERN_FORENAMES: list[tuple[str, float, int]] = [
    # strongly male
    ("James", 0.01, 90), ("John", 0.01, 85), ("Robert", 0.01, 80),
    ("Michael", 0.01, 95), ("David", 0.01, 92), ("William", 0.01, 70),
    ("Thomas", 0.01, 75), ("Daniel", 0.02, 72), ("Matthew", 0.01, 66),
    ("Christopher", 0.01, 64), ("Andrew", 0.01, 62), ("Joshua", 0.02, 50),
    ("Peter", 0.01, 58), ("Paul", 0.01, 60), ("Mark", 0.01, 57),
    ("George", 0.02, 48), ("Kevin", 0.01, 52), ("Brian", 0.01, 50),
    ("Eric", 0.02, 55), ("Stephen", 0.01, 49), ("Scott", 0.02, 40),
    ("Gregory", 0.01, 36), ("Patrick", 0.02, 42), ("Alexander", 0.02, 54),
    ("Nicholas", 0.02, 46), ("Jonathan", 0.01, 44), ("Ryan", 0.03, 38),
    ("Jacob", 0.01, 35), ("Ethan", 0.02, 30), ("Henry", 0.01, 33),
    ("Carl", 0.01, 28), ("Frank", 0.02, 31), ("Martin", 0.01, 47),
    ("Hans", 0.01, 26), ("Klaus", 0.01, 22), ("Jürgen", 0.01, 20),
    ("Wolfgang", 0.01, 18), ("Pierre", 0.01, 25), ("Jean", 0.08, 30),
    ("Luc", 0.02, 16), ("Marc", 0.01, 24), ("Antonio", 0.01, 27),
    ("José", 0.02, 29), ("Carlos", 0.01, 28), ("Javier", 0.01, 21),
    ("Giovanni", 0.01, 17), ("Marco", 0.01, 23), ("Luca", 0.03, 19),
    ("Sven", 0.01, 15), ("Lars", 0.01, 16), ("Erik", 0.01, 18),
    ("Dmitri", 0.01, 14), ("Sergei", 0.01, 13), ("Ivan", 0.01, 15),
    # strongly female
    ("Mary", 0.99, 60), ("Jennifer", 0.99, 55), ("Linda", 0.99, 40),
    ("Elizabeth", 0.99, 52), ("Susan", 0.99, 45), ("Jessica", 0.99, 42),
    ("Sarah", 0.99, 54), ("Karen", 0.99, 38), ("Nancy", 0.99, 32),
    ("Lisa", 0.99, 41), ("Margaret", 0.99, 30), ("Emily", 0.99, 44),
    ("Michelle", 0.98, 36), ("Laura", 0.99, 43), ("Amy", 0.99, 35),
    ("Kathleen", 0.99, 26), ("Anna", 0.99, 46), ("Julia", 0.99, 39),
    ("Rachel", 0.99, 33), ("Catherine", 0.99, 31), ("Christine", 0.99, 29),
    ("Maria", 0.99, 50), ("Elena", 0.98, 28), ("Sofia", 0.99, 24),
    ("Claudia", 0.98, 22), ("Monica", 0.98, 21), ("Isabel", 0.99, 20),
    ("Ingrid", 0.99, 14), ("Ursula", 0.99, 12), ("Petra", 0.98, 15),
    ("Sabine", 0.99, 13), ("Nathalie", 0.99, 16), ("Camille", 0.80, 14),
    ("Chiara", 0.99, 11), ("Francesca", 0.99, 12), ("Olga", 0.99, 13),
    ("Natalia", 0.99, 12), ("Katja", 0.99, 10), ("Heidi", 0.98, 9),
    ("Astrid", 0.99, 8), ("Birgit", 0.99, 9),
    # ambiguous / unisex — genderize should be unconfident here
    ("Taylor", 0.55, 12), ("Jordan", 0.35, 14), ("Casey", 0.55, 10),
    ("Morgan", 0.60, 11), ("Riley", 0.55, 8), ("Alex", 0.25, 22),
    ("Sam", 0.30, 18), ("Chris", 0.15, 26), ("Pat", 0.45, 9),
    ("Robin", 0.55, 12), ("Leslie", 0.65, 10), ("Dana", 0.65, 9),
    ("Kim", 0.70, 13), ("Jamie", 0.55, 11), ("Andrea", 0.75, 20),
]

_EAST_ASIAN_FORENAMES: list[tuple[str, float, int]] = [
    # Romanized Chinese given names: many are genuinely ambiguous.
    ("Wei", 0.35, 60), ("Jun", 0.30, 45), ("Ming", 0.20, 40),
    ("Li", 0.45, 55), ("Yan", 0.55, 48), ("Jing", 0.70, 44),
    ("Xin", 0.45, 42), ("Yu", 0.40, 50), ("Hao", 0.10, 46),
    ("Lei", 0.25, 43), ("Qiang", 0.03, 30), ("Hui", 0.55, 38),
    ("Xiao", 0.45, 36), ("Ying", 0.75, 34), ("Fang", 0.65, 28),
    ("Tao", 0.05, 35), ("Feng", 0.15, 32), ("Peng", 0.04, 33),
    ("Chen", 0.30, 31), ("Cheng", 0.10, 29), ("Dong", 0.08, 27),
    ("Gang", 0.02, 24), ("Hong", 0.60, 26), ("Juan", 0.70, 22),
    ("Na", 0.90, 18), ("Ting", 0.80, 20), ("Mei", 0.92, 17),
    ("Lin", 0.50, 30), ("Yang", 0.25, 41), ("Zhen", 0.25, 21),
    ("Zhi", 0.15, 23), ("Kai", 0.08, 28), ("Bo", 0.12, 26),
    # Japanese given names: more strongly gendered when romanized.
    ("Hiroshi", 0.01, 22), ("Takashi", 0.01, 20), ("Kenji", 0.01, 19),
    ("Taro", 0.01, 14), ("Satoshi", 0.01, 18), ("Yuki", 0.50, 16),
    ("Akira", 0.06, 17), ("Kazuo", 0.01, 12), ("Makoto", 0.10, 13),
    ("Yoko", 0.98, 8), ("Keiko", 0.99, 7), ("Yumiko", 0.99, 6),
    ("Haruka", 0.85, 7), ("Kaori", 0.98, 6),
    # Korean romanizations.
    ("Min", 0.40, 18), ("Ji", 0.55, 16), ("Seung", 0.15, 15),
    ("Hyun", 0.35, 14), ("Sung", 0.10, 15), ("Young", 0.35, 13),
    ("Eun", 0.80, 10), ("Soo", 0.50, 11), ("Jae", 0.15, 12),
]

_SOUTH_ASIAN_FORENAMES: list[tuple[str, float, int]] = [
    ("Amit", 0.01, 30), ("Rahul", 0.01, 28), ("Sanjay", 0.01, 24),
    ("Vijay", 0.01, 22), ("Rajesh", 0.01, 23), ("Suresh", 0.01, 20),
    ("Anil", 0.01, 19), ("Ravi", 0.01, 25), ("Arun", 0.01, 21),
    ("Krishna", 0.10, 18), ("Ashok", 0.01, 15), ("Prakash", 0.01, 16),
    ("Ramesh", 0.01, 17), ("Vinod", 0.01, 13), ("Deepak", 0.01, 18),
    ("Manish", 0.01, 14), ("Nitin", 0.01, 12), ("Sandeep", 0.02, 15),
    ("Pradeep", 0.01, 13), ("Sunil", 0.01, 14),
    ("Priya", 0.99, 12), ("Anjali", 0.99, 9), ("Kavita", 0.99, 8),
    ("Sunita", 0.99, 7), ("Deepa", 0.98, 8), ("Lakshmi", 0.95, 9),
    ("Meena", 0.98, 6), ("Pooja", 0.99, 8), ("Shalini", 0.99, 6),
    ("Divya", 0.98, 7), ("Ananya", 0.98, 5), ("Sneha", 0.99, 5),
    # ambiguous
    ("Kiran", 0.45, 10), ("Jyoti", 0.75, 7), ("Shashi", 0.40, 6),
    ("Suman", 0.55, 7),
]

_MIDDLE_EASTERN_FORENAMES: list[tuple[str, float, int]] = [
    ("Mohammed", 0.00, 28), ("Ahmed", 0.00, 26), ("Ali", 0.02, 24),
    ("Hassan", 0.01, 18), ("Omar", 0.01, 17), ("Khaled", 0.01, 14),
    ("Mustafa", 0.01, 13), ("Ibrahim", 0.01, 15), ("Youssef", 0.01, 12),
    ("Mehmet", 0.01, 16), ("Murat", 0.01, 12), ("Emre", 0.01, 11),
    ("Fatima", 0.99, 10), ("Aisha", 0.99, 8), ("Leila", 0.99, 7),
    ("Zeynep", 0.99, 8), ("Elif", 0.99, 7), ("Yasmin", 0.99, 6),
    ("Noor", 0.75, 6), ("Reem", 0.95, 5), ("Sara", 0.97, 12),
]

# Surnames per cluster (weights uniform enough not to matter).
_WESTERN_SURNAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Miller", "Davis",
    "Garcia", "Rodriguez", "Martinez", "Anderson", "Taylor", "Thomas",
    "Moore", "Martin", "Thompson", "White", "Lopez", "Clark", "Lewis",
    "Walker", "Hall", "Young", "King", "Wright", "Scott", "Green",
    "Baker", "Adams", "Nelson", "Hill", "Campbell", "Mitchell", "Roberts",
    "Carter", "Phillips", "Evans", "Turner", "Parker", "Collins",
    "Müller", "Schmidt", "Schneider", "Fischer", "Weber", "Meyer",
    "Wagner", "Becker", "Hoffmann", "Schulz", "Keller", "Huber",
    "Dubois", "Bernard", "Robert", "Richard", "Petit", "Durand", "Leroy",
    "Moreau", "Fournier", "Girard", "Rossi", "Russo", "Ferrari",
    "Esposito", "Bianchi", "Romano", "Ricci", "Fernandez", "Gonzalez",
    "Sanchez", "Perez", "Gomez", "Diaz", "Alvarez", "Jansen", "de Vries",
    "van der Berg", "Bakker", "Visser", "Andersson", "Johansson",
    "Karlsson", "Nilsson", "Hansen", "Larsen", "Olsen", "Kowalski",
    "Nowak", "Wisniewski", "Ivanov", "Petrov", "Novak", "Horvath",
]

_EAST_ASIAN_SURNAMES = [
    "Wang", "Li", "Zhang", "Liu", "Chen", "Yang", "Huang", "Zhao",
    "Wu", "Zhou", "Xu", "Sun", "Ma", "Zhu", "Hu", "Guo", "He", "Gao",
    "Lin", "Luo", "Zheng", "Liang", "Xie", "Tang", "Han", "Cao", "Deng",
    "Feng", "Zeng", "Peng",
    "Sato", "Suzuki", "Takahashi", "Tanaka", "Watanabe", "Ito",
    "Yamamoto", "Nakamura", "Kobayashi", "Kato", "Yoshida", "Yamada",
    "Sasaki", "Matsumoto", "Inoue",
    "Kim", "Lee", "Park", "Choi", "Jung", "Kang", "Cho", "Yoon",
    "Jang", "Lim",
]

_SOUTH_ASIAN_SURNAMES = [
    "Kumar", "Sharma", "Singh", "Patel", "Gupta", "Reddy", "Rao",
    "Iyer", "Nair", "Menon", "Agarwal", "Joshi", "Mehta", "Shah",
    "Verma", "Mishra", "Chauhan", "Desai", "Bose", "Chatterjee",
    "Mukherjee", "Banerjee", "Das", "Ghosh", "Pillai", "Srinivasan",
    "Krishnan", "Subramanian", "Venkatesan", "Ranganathan",
]

_MIDDLE_EASTERN_SURNAMES = [
    "Al-Ahmad", "Hassan", "Hussein", "Khan", "Rahman", "Karim",
    "Demir", "Yilmaz", "Kaya", "Celik", "Sahin", "Ozturk",
    "Cohen", "Levi", "Mizrahi", "Peretz", "Friedman", "Katz",
    "Abdullah", "Saleh", "Nasser", "Haddad",
]

CLUSTERS: dict[str, dict[str, list]] = {
    "western": {"forenames": _WESTERN_FORENAMES, "surnames": _WESTERN_SURNAMES},
    "east_asian": {"forenames": _EAST_ASIAN_FORENAMES, "surnames": _EAST_ASIAN_SURNAMES},
    "south_asian": {"forenames": _SOUTH_ASIAN_FORENAMES, "surnames": _SOUTH_ASIAN_SURNAMES},
    "middle_eastern": {"forenames": _MIDDLE_EASTERN_FORENAMES, "surnames": _MIDDLE_EASTERN_SURNAMES},
}

FORENAMES = {k: v["forenames"] for k, v in CLUSTERS.items()}
SURNAMES = {k: v["surnames"] for k, v in CLUSTERS.items()}

_CLUSTER_BY_SUBREGION: dict[str, str] = {
    "Northern America": "western",
    "Western Europe": "western",
    "Southern Europe": "western",
    "Northern Europe": "western",
    "Eastern Europe": "western",
    "South America": "western",
    "Central America": "western",
    "Australia and New Zealand": "western",
    "Eastern Asia": "east_asian",
    "Southern Asia": "south_asian",
    "South-Eastern Asia": "east_asian",
    "Western Asia": "middle_eastern",
    "Central Asia": "middle_eastern",
    "Northern Africa": "middle_eastern",
    "Western Africa": "western",
    "Southern Africa": "western",
    "Eastern Africa": "western",
}


def cluster_for_country(cca2: str) -> str:
    """Name cluster for a country code (default: 'western').

    The mapping is by writing culture: US/EU/Oceania/Latin America share
    the western corpus, East/Southeast Asia the romanized-CJK corpus, etc.
    """
    from repro.geo.regions import region_of_country

    sub = region_of_country(cca2)
    if sub is None:
        return "western"
    return _CLUSTER_BY_SUBREGION.get(sub, "western")
