"""The transport-free service core: every serving contract without sockets.

These tests run the real engine at a small scale (a cold run is a few
hundred milliseconds), so warm-path, coalescing, deadline, breaker, and
chaos semantics are exercised against genuine analysis datasets.
"""

import json
import threading
import time

import pytest

from repro.faults.chaos import ChaosConfig
from repro.faults.plan import BreakerConfig
from repro.serve import AnalysisService, ServeConfig

pytestmark = pytest.mark.serve

SCALE = 0.1  # small enough that a cold run is fast, big enough to be real


def make_service(tmp_path, **overrides) -> AnalysisService:
    defaults = dict(
        port=0,
        seed=7,
        scale=SCALE,
        cache_dir=None,
        obs_dir=str(tmp_path / "obs"),
        deadline_s=30.0,
    )
    defaults.update(overrides)
    return AnalysisService(ServeConfig(**defaults))


def body_of(response) -> dict:
    return json.loads(response.body.decode("utf-8"))


def header(response, name: str) -> str | None:
    return dict(response.headers).get(name)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One module-wide service so the dataset memo warms across tests."""
    return make_service(tmp_path_factory.mktemp("serve"))


class TestRouting:
    def test_unknown_route_404(self, service):
        r = service.handle("/nope", {})
        assert r.status == 404 and body_of(r)["error"]["code"] == "not-found"

    def test_unknown_endpoint_404(self, service):
        assert service.handle("/v1/unknown", {}).status == 404

    def test_unknown_parameter_400(self, service):
        r = service.handle("/v1/far", {"sacle": "1"})
        assert r.status == 400
        assert "sacle" in body_of(r)["error"]["message"]

    def test_out_of_range_scale_400(self, service):
        assert service.handle("/v1/far", {"scale": "99"}).status == 400
        assert service.handle("/v1/far", {"scale": "0"}).status == 400

    def test_non_numeric_seed_400(self, service):
        assert service.handle("/v1/far", {"seed": "banana"}).status == 400


class TestWarmPath:
    def test_far_answers_with_etag(self, service):
        r = service.handle("/v1/far", {})
        assert r.status == 200
        payload = body_of(r)
        assert payload["endpoint"] == "far"
        assert payload["config"] == {
            "seed": 7, "scale": SCALE, "fingerprint": payload["config"]["fingerprint"]
        }
        assert payload["overall"]["value"] is not None
        assert header(r, "ETag").startswith('"')

    def test_all_endpoints_answer(self, service):
        for ep in ("far", "blind", "sensitivity"):
            r = service.handle(f"/v1/{ep}", {})
            assert r.status == 200, ep
            assert body_of(r)["endpoint"] == ep

    def test_same_config_different_endpoint_reuses_dataset(self, service):
        before = service.counters().get("cold_runs", 0)
        service.handle("/v1/blind", {})
        service.handle("/v1/sensitivity", {})
        assert service.counters().get("cold_runs", 0) == before  # memo hit

    def test_repeat_query_hits_the_body_cache(self, service):
        service.handle("/v1/far", {})
        before = service.counters().get("hits.body", 0)
        r = service.handle("/v1/far", {})
        assert r.status == 200
        assert service.counters().get("hits.body", 0) == before + 1

    def test_if_none_match_revalidates_to_304(self, service):
        first = service.handle("/v1/far", {})
        etag = header(first, "ETag")
        r = service.handle("/v1/far", {}, if_none_match=etag)
        assert r.status == 304 and r.body == b""
        assert header(r, "ETag") == etag

    def test_etag_is_stable_across_service_instances(self, service, tmp_path):
        other = make_service(tmp_path)
        mine = header(service.handle("/v1/far", {}), "ETag")
        # the fresh instance validates the old tag without running anything
        t0 = time.perf_counter()
        r = other.handle("/v1/far", {}, if_none_match=mine)
        assert r.status == 304
        assert time.perf_counter() - t0 < 0.1  # no cold run behind a 304

    def test_stale_etag_is_ignored(self, service):
        r = service.handle("/v1/far", {}, if_none_match='"deadbeef"')
        assert r.status == 200

    def test_unknown_conference_404(self, service):
        r = service.handle("/v1/far", {"conference": "NOPE"})
        assert r.status == 404
        assert body_of(r)["error"]["code"] == "unknown-conference"

    def test_conference_filter_changes_the_etag(self, service):
        plain = header(service.handle("/v1/far", {}), "ETag")
        sc = service.handle("/v1/far", {"conference": "SC"})
        assert sc.status == 200 and header(sc, "ETag") != plain
        assert list(body_of(sc)["by_conference"]) == ["SC"]


class TestCoalescing:
    def test_identical_inflight_configs_run_once(self, tmp_path, monkeypatch):
        import repro.engine as engine

        service = make_service(tmp_path)
        real = engine.run_dag
        calls: list[int] = []

        def slow_run_dag(*args, **kwargs):
            calls.append(1)
            time.sleep(0.3)  # hold the flight open while the others arrive
            return real(*args, **kwargs)

        monkeypatch.setattr(engine, "run_dag", slow_run_dag)
        barrier = threading.Barrier(3)
        responses: list = []

        def query():
            barrier.wait()
            responses.append(service.handle("/v1/far", {"seed": "19"}))

        threads = [threading.Thread(target=query) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)

        assert len(calls) == 1  # single-flight: one engine run for three
        assert [r.status for r in responses] == [200, 200, 200]
        assert len({r.body for r in responses}) == 1  # identical bytes
        assert service.counters().get("coalesced", 0) == 2


class TestDeadline:
    def test_cold_run_past_budget_answers_504_with_partial(self, tmp_path):
        service = make_service(tmp_path)
        r = service.handle("/v1/far", {"seed": "23", "deadline": "0.005"})
        assert r.status == 504
        err = body_of(r)["error"]
        assert err["code"] == "deadline-exceeded"
        assert err["partial"]["state"] == "executing"
        assert isinstance(err["partial"]["stages_completed"], list)
        assert header(r, "Retry-After") is not None

    def test_background_run_lands_for_the_retry(self, tmp_path):
        service = make_service(tmp_path)
        first = service.handle("/v1/far", {"seed": "29", "deadline": "0.005"})
        assert first.status == 504
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            retry = service.handle("/v1/far", {"seed": "29"})
            if retry.status == 200:
                break
            time.sleep(0.05)
        assert retry.status == 200  # the 504'd run finished and warmed up
        # only one engine run happened: the retry rode the first flight
        # (coalesced onto it, or read the memo it left behind)
        assert service.counters().get("cold_runs", 0) == 1

    def test_deadline_may_tighten_but_not_extend(self, tmp_path):
        service = make_service(tmp_path, deadline_s=0.005)
        # asking for a huge budget does not override the server's
        r = service.handle("/v1/far", {"seed": "31", "deadline": "9999"})
        assert r.status == 504


class TestCircuitBreaker:
    def test_poisoned_config_degrades_to_fast_503(self, tmp_path, monkeypatch):
        import repro.engine as engine

        service = make_service(
            tmp_path,
            breaker=BreakerConfig(failure_threshold=1, cooldown_calls=2),
        )
        calls: list[int] = []

        def exploding_run_dag(*args, **kwargs):
            calls.append(1)
            raise RuntimeError("poisoned config")

        monkeypatch.setattr(engine, "run_dag", exploding_run_dag)

        first = service.handle("/v1/far", {"seed": "37"})
        assert first.status == 503
        assert body_of(first)["error"]["code"] == "cold-run-failed"
        assert len(calls) == 1

        # breaker is now open: the next request fast-fails without the engine
        second = service.handle("/v1/far", {"seed": "37"})
        assert second.status == 503
        assert body_of(second)["error"]["code"] == "circuit-open"
        assert header(second, "Retry-After") is not None
        assert len(calls) == 1  # no engine call behind the open breaker
        assert service.counters().get("breaker_open", 0) == 1

    def test_half_open_probe_recovers(self, tmp_path, monkeypatch):
        import repro.engine as engine

        service = make_service(
            tmp_path,
            breaker=BreakerConfig(failure_threshold=1, cooldown_calls=1),
        )
        real = engine.run_dag

        def exploding_run_dag(*args, **kwargs):
            raise RuntimeError("transient")

        monkeypatch.setattr(engine, "run_dag", exploding_run_dag)
        assert service.handle("/v1/far", {"seed": "41"}).status == 503
        monkeypatch.setattr(engine, "run_dag", real)
        # cooldown_calls=1: the next call is the half-open probe — it
        # runs for real, succeeds, and closes the breaker again
        assert service.handle("/v1/far", {"seed": "41"}).status == 200
        assert service.handle("/v1/far", {"seed": "41"}).status == 200

    def test_breakers_are_per_config(self, tmp_path, monkeypatch):
        import repro.engine as engine

        svc = make_service(
            tmp_path,
            breaker=BreakerConfig(failure_threshold=1, cooldown_calls=99),
        )
        real = engine.run_dag

        def exploding_run_dag(*args, **kwargs):
            raise RuntimeError("poisoned")

        monkeypatch.setattr(engine, "run_dag", exploding_run_dag)
        assert svc.handle("/v1/far", {"seed": "43"}).status == 503
        monkeypatch.setattr(engine, "run_dag", real)
        # seed 43 is circuit-broken; a different config still serves
        assert svc.handle("/v1/far", {"seed": "43"}).status == 503
        assert svc.handle("/v1/far", {"seed": "47"}).status == 200


class TestChaos:
    REQUESTS = [
        ("/v1/far", {}),
        ("/v1/far", {}),
        ("/v1/blind", {}),
        ("/v1/far", {"conference": "SC"}),
        ("/v1/sensitivity", {}),
        ("/v1/far", {}),
        ("/v1/blind", {}),
        ("/v1/far", {"conference": "SC"}),
        ("/v1/sensitivity", {}),
        ("/v1/far", {}),
    ]

    def _session(self, tmp_path, name: str) -> list[tuple[int, bytes]]:
        service = make_service(
            tmp_path / name, chaos=ChaosConfig(rate=0.4, seed=123)
        )
        return [
            (r.status, r.body)
            for r in (service.handle(p, dict(q)) for p, q in self.REQUESTS)
        ]

    def test_same_seed_sessions_are_byte_identical(self, tmp_path):
        """The acceptance criterion: chaos is deterministic down to bytes."""
        a = self._session(tmp_path, "a")
        b = self._session(tmp_path, "b")
        assert a == b  # statuses AND bodies, byte for byte
        # and the plan actually injected something at rate 0.4
        assert any(status in (503, 504) for status, _ in a)

    def test_injected_faults_look_like_real_degradation(self, tmp_path):
        service = make_service(
            tmp_path / "c", chaos=ChaosConfig(rate=1.0, seed=5)
        )
        r = service.handle("/v1/far", {})
        assert r.status in (503, 504)
        code = body_of(r)["error"]["code"]
        assert code in ("injected-fault", "injected-hang")
        assert header(r, "Retry-After") is not None
        assert service.counters().get("chaos.injected", 0) == 1

    def test_chaos_free_service_is_unaffected(self, service):
        assert service.handle("/v1/far", {}).status == 200


class TestLedger:
    def test_drain_flushes_a_session_record(self, tmp_path):
        service = make_service(tmp_path)
        service.handle("/v1/far", {})
        service.handle("/v1/far", {})
        service.begin_drain()
        run_id = service.flush_ledger()
        assert run_id is not None

        # a fresh service over the same obs_dir serves the ledger back
        reader = make_service(tmp_path)
        listing = reader.handle("/v1/runs", {})
        assert listing.status == 200
        assert run_id in body_of(listing)["runs"]

        record = reader.handle(f"/v1/runs/{run_id}", {})
        assert record.status == 200
        doc = body_of(record)
        assert doc["body"]["meta"]["command"] == "serve"
        assert doc["body"]["service"]["requests"] == 2
        etag = header(record, "ETag")
        again = reader.handle(f"/v1/runs/{run_id}", {}, if_none_match=etag)
        assert again.status == 304

    def test_unknown_run_404(self, tmp_path):
        service = make_service(tmp_path)
        service.flush_ledger()
        assert service.handle("/v1/runs/run-9999-nope", {}).status == 404

    def test_counters_are_a_sorted_snapshot(self, tmp_path):
        service = make_service(tmp_path)
        service.handle("/v1/far", {})
        counters = service.counters()
        assert list(counters) == sorted(counters)
        assert counters["requests"] == 1 and counters["responses.200"] == 1
