"""Shared helpers for the analysis modules."""

from __future__ import annotations

import numpy as np

from repro.stats.proportions import Proportion
from repro.tabular import Table

__all__ = ["women_share", "share_of", "mask_eq"]


def mask_eq(table: Table, column: str, value) -> np.ndarray:
    """Boolean mask of rows whose column equals ``value``."""
    # elementwise == runs in C even for object columns; None/NaN
    # entries compare unequal to any real value, matching the old loop
    eq = table[column] == value
    if not isinstance(eq, np.ndarray):  # empty or degenerate comparison
        return np.zeros(table.num_rows, dtype=bool)
    return eq.astype(bool)


def share_of(table: Table, column: str, value) -> Proportion:
    """Proportion of rows equal to ``value`` among non-missing rows."""
    col = table.col(column)
    known = ~col.is_missing()
    hits = int(np.sum(mask_eq(table, column, value) & known))
    return Proportion(hits, int(known.sum()))


def women_share(table: Table, column: str = "gender") -> Proportion:
    """Women among known-gender rows — the paper's universal metric."""
    return share_of(table, column, "F")
