"""Tests for the CLI and the artifact export."""

import json

import pytest

from repro.cli import build_parser, main
from repro.report.export import export_artifact


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.seed == 7 and args.scale == 1.0

    def test_experiment_ids(self):
        args = build_parser().parse_args(["experiment", "T1", "F2"])
        assert args.ids == ["T1", "F2"]


class TestCommands:
    def test_run(self, capsys):
        rc = main(["--scale", "0.15", "run"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "FAR:" in out and "coverage:" in out

    def test_experiment(self, capsys):
        rc = main(["--scale", "0.15", "experiment", "T1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 1" in out

    def test_experiment_unknown_id(self, capsys):
        rc = main(["--scale", "0.15", "experiment", "T99"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_compare(self, capsys):
        rc = main(["--scale", "0.15", "compare"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "far_overall" in out

    def test_export(self, tmp_path, capsys):
        rc = main(["--scale", "0.15", "export", str(tmp_path / "bundle")])
        assert rc == 0
        assert (tmp_path / "bundle" / "MANIFEST.json").exists()


class TestExport:
    @pytest.fixture(scope="class")
    def bundle(self, small_result, tmp_path_factory):
        out = tmp_path_factory.mktemp("artifact")
        return export_artifact(small_result, out)

    def test_manifest(self, bundle, small_result):
        manifest = json.loads((bundle / "MANIFEST.json").read_text())
        assert manifest["seed"] == small_result.world.seed
        assert manifest["researchers"] == small_result.dataset.researchers.num_rows
        assert set(manifest["tables"]) == {
            "researchers", "author_positions", "conf_authors",
            "papers", "conferences", "role_slots",
        }

    def test_tables_roundtrip(self, bundle, small_result):
        from repro.tabular import table_from_csv

        back = table_from_csv(bundle / "tables" / "papers.csv")
        assert back.num_rows == small_result.dataset.papers.num_rows

    def test_all_artifacts_written(self, bundle):
        from repro.report import EXPERIMENTS

        for exp_id in EXPERIMENTS:
            assert (bundle / "artifacts" / f"{exp_id}.txt").exists()

    def test_comparison_csv(self, bundle):
        text = (bundle / "comparison.csv").read_text()
        assert "far_overall" in text
