"""Multiple-comparison corrections.

The paper reports a dozen-plus hypothesis tests at face-value p-values;
a careful reader will want to know which survive family-wise correction.
The reproduction provides Bonferroni and Holm–Bonferroni adjustments and
applies them to the full battery in the run report tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bonferroni", "holm_bonferroni", "significant_after_correction"]


def _validate(p_values) -> np.ndarray:
    p = np.asarray(p_values, dtype=np.float64)
    if p.ndim != 1:
        raise ValueError("p_values must be 1-D")
    obs = p[~np.isnan(p)]
    if obs.size and (np.any(obs < 0) or np.any(obs > 1)):
        raise ValueError("p-values must lie in [0, 1]")
    return p


def bonferroni(p_values) -> np.ndarray:
    """Bonferroni-adjusted p-values (NaN entries pass through).

    Each p is multiplied by the number of *observed* tests and clipped
    at 1.
    """
    p = _validate(p_values)
    m = int((~np.isnan(p)).sum())
    out = np.minimum(p * max(m, 1), 1.0)
    out[np.isnan(p)] = np.nan
    return out


def holm_bonferroni(p_values) -> np.ndarray:
    """Holm's step-down adjusted p-values (uniformly ≤ Bonferroni's).

    Sort ascending; the k-th smallest is multiplied by (m − k + 1), with
    a running maximum enforcing monotonicity.  NaNs pass through.
    """
    p = _validate(p_values)
    mask = ~np.isnan(p)
    obs = p[mask]
    m = obs.size
    out = np.full(p.shape, np.nan)
    if m == 0:
        return out
    order = np.argsort(obs, kind="stable")
    adjusted = np.empty(m)
    running = 0.0
    for rank, idx in enumerate(order):
        val = min(1.0, obs[idx] * (m - rank))
        running = max(running, val)
        adjusted[idx] = running
    out[mask] = adjusted
    return out


def significant_after_correction(
    p_values, alpha: float = 0.05, method: str = "holm"
) -> np.ndarray:
    """Boolean mask of tests surviving family-wise correction.

    ``method``: 'holm' (default) or 'bonferroni'.  NaN entries are False.
    """
    if method == "holm":
        adj = holm_bonferroni(p_values)
    elif method == "bonferroni":
        adj = bonferroni(p_values)
    else:
        raise ValueError(f"unknown method {method!r}")
    with np.errstate(invalid="ignore"):
        return np.where(np.isnan(adj), False, adj < alpha)
