"""Dealing pool members to per-conference quotas with full coverage.

Both the author slates and the PC staffing face the same combinatorial
problem: a pool of N unique people must fill sum-of-quotas ≥ N seats
across conferences such that

- every pool member serves at least once (the pool *is* the set of
  unique participants, by construction),
- nobody serves twice at the same conference,
- each conference's quota is met exactly.

``deal`` builds a pick multiset (everyone once, plus random repeats up
to the seat total), shuffles it, and deals greedily with conflict
push-back; a final repair pass swaps in any still-unused pool member.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

__all__ = ["deal"]

T = TypeVar("T")


def deal(
    pool: Sequence[T],
    quotas: dict[str, int],
    rng: np.random.Generator,
    key=lambda x: x,
) -> dict[str, list[T]]:
    """Assign pool members to named quota buckets.

    Parameters
    ----------
    pool:
        Unique members (e.g. the women of the author pool).
    quotas:
        Bucket name → seats.  ``sum(quotas.values())`` must be ≥
        ``len(pool)`` (everyone must fit) and each quota must be ≤
        ``len(pool)`` (no bucket can need the same person twice).
    rng:
        Random stream.
    key:
        Identity function for conflict detection.

    Returns
    -------
    dict bucket → members, with every pool member appearing in at least
    one bucket and no member twice in the same bucket.
    """
    n = len(pool)
    total = sum(quotas.values())
    if total < n:
        raise ValueError(f"quotas ({total}) cannot cover the pool ({n})")
    for name, q in quotas.items():
        if q > n:
            raise ValueError(f"bucket {name!r} needs {q} > pool size {n}")
        if q < 0:
            raise ValueError(f"bucket {name!r} has negative quota")

    picks: list[T] = list(pool)
    extra = total - n
    if extra > 0:
        picks.extend(pool[int(i)] for i in rng.integers(0, n, size=extra))
    order = rng.permutation(len(picks))
    queue = [picks[int(i)] for i in order]

    result: dict[str, list[T]] = {}
    # Largest quotas first: they are the hardest to fill without clashes.
    for name in sorted(quotas, key=lambda k: -quotas[k]):
        q = quotas[name]
        chosen: list[T] = []
        chosen_keys: set = set()
        deferred: list[T] = []
        while len(chosen) < q and queue:
            cand = queue.pop()
            if key(cand) in chosen_keys:
                deferred.append(cand)
            else:
                chosen.append(cand)
                chosen_keys.add(key(cand))
        queue.extend(reversed(deferred))
        if len(chosen) < q:
            # repair: draw unused pool members directly
            for cand in pool:
                if len(chosen) == q:
                    break
                if key(cand) not in chosen_keys:
                    chosen.append(cand)
                    chosen_keys.add(key(cand))
        if len(chosen) < q:
            raise ValueError(f"could not fill bucket {name!r}")
        result[name] = chosen

    # Coverage repair: anyone never dealt swaps into a random bucket for
    # one of a member that serves elsewhere too.
    served: dict = {}
    for name, members in result.items():
        for m in members:
            served.setdefault(key(m), 0)
            served[key(m)] += 1
    missing = [p for p in pool if key(p) not in served]
    if missing:
        bucket_names = list(result.keys())
        for p in missing:
            placed = False
            for bi in rng.permutation(len(bucket_names)):
                name = bucket_names[int(bi)]
                members = result[name]
                keys_here = {key(m) for m in members}
                if key(p) in keys_here:
                    continue
                # find a member with multiplicity > 1 to displace
                for j, m in enumerate(members):
                    if served[key(m)] > 1:
                        served[key(m)] -= 1
                        members[j] = p
                        served[key(p)] = 1
                        placed = True
                        break
                if placed:
                    break
            if not placed:
                raise ValueError("coverage repair failed; quotas too tight")
    return result
