"""Vectorized key factorization shared by the tabular kernels.

Groupby, the hash joins, ``value_counts`` and ``sort_by`` all reduce to
the same primitive: map each row's key to a small integer *code* such
that two rows get the same code iff their keys are equal under the
engine's key semantics.  Once keys are codes, everything else is NumPy
(``bincount``, ``argsort``, ``searchsorted``) and the per-row Python
tuple loops disappear.

Missing-key contract (METHODOLOGY §15): a missing key — NaN in a float
column, ``None`` in a string column — is canonicalized into a *single*
missing code per column.  All missing entries therefore land in one
group (and match each other in joins) instead of each NaN spawning its
own singleton group via ``nan != nan``.  The canonical key value
reported for a missing float key is the module-level :data:`MISSING`
singleton, so key tuples containing it behave as stable dict keys
(tuple/dict lookups short-circuit on identity before ``==``).

Because columns are immutable, a column's factorization is computed
once and cached on the column: the report layer groups the same
dataset columns many times (FAR by conference, by role, by year, ...)
and every grouping after the first reuses the codes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tabular.column import Column

__all__ = [
    "MISSING",
    "Factorized",
    "factorize",
    "combine_codes",
    "group_index",
    "factorize_join_keys",
    "sort_codes",
]

#: Canonical missing float key.  A single shared ``nan`` object: tuples
#: and dicts compare elements by identity first, so key tuples built
#: from this exact object round-trip through lookups even though
#: ``nan != nan``.
MISSING: float = float("nan")

# int64 headroom guard for composed multi-key codes
_CODE_LIMIT = 2**62


def _dense_limit(n: int) -> int:
    """Max code span for which dense bincount-style kernels pay off."""
    return 4 * n + 1024


@dataclass(frozen=True)
class Factorized:
    """Integer codes for one key column.

    ``uniques[code]`` recovers the canonical key value; ``missing_code``
    is the code shared by every missing entry (or None when the column
    has no missing entries).  Codes are dense in ``[0, n_codes)`` but
    ``uniques`` is *not* necessarily sorted — order is representation-
    dependent (first-seen for object columns, ascending for numeric).
    """

    codes: np.ndarray  # int64, one entry per row
    uniques: list      # code -> canonical key value
    missing_code: int | None = None

    @property
    def n_codes(self) -> int:
        return len(self.uniques)

    def key_at(self, row: int):
        """The canonical key value of ``row``."""
        return self.uniques[self.codes[row]]


def _factorize_object(values: np.ndarray) -> Factorized:
    """Single-pass dict factorization for str/object columns.

    Python-level equality/hash — exactly the legacy per-row-tuple
    semantics — with ``None`` canonicalized as the missing key.  One
    ``setdefault`` per row beats mask-then-unique on object arrays.
    """
    seen: dict = {}
    codes = np.fromiter(
        (seen.setdefault(v, len(seen)) for v in values),
        dtype=np.int64,
        count=len(values),
    )
    uniques = list(seen)
    missing_code = seen.get(None)
    if missing_code is not None:
        uniques[missing_code] = None
    return Factorized(codes, uniques, missing_code)


def _factorize_float(values: np.ndarray) -> Factorized:
    mask = np.isnan(values)
    if mask.any():
        uniq, inv = np.unique(values[~mask], return_inverse=True)
        uniques = uniq.tolist()
        codes = np.empty(len(values), dtype=np.int64)
        codes[~mask] = inv
        missing_code = len(uniques)
        codes[mask] = missing_code
        uniques.append(MISSING)
        return Factorized(codes, uniques, missing_code)
    uniq, inv = np.unique(values, return_inverse=True)
    return Factorized(inv.astype(np.int64), uniq.tolist(), None)


def _factorize_int(values: np.ndarray) -> Factorized:
    """int columns: dense counting-sort factorization for small ranges."""
    n = len(values)
    if n:
        vmin = int(values.min())
        vmax = int(values.max())
        if vmax - vmin <= _dense_limit(n):
            off = values - vmin
            present = np.nonzero(np.bincount(off))[0]
            codes = np.searchsorted(present, off).astype(np.int64)
            return Factorized(codes, list(present + vmin), None)
    uniq, inv = np.unique(values, return_inverse=True)
    return Factorized(inv.astype(np.int64), list(uniq), None)


def factorize(col: Column) -> Factorized:
    """Factorize one column under the missing-key contract.

    The result is cached on the (immutable) column; repeated groupings
    and joins over the same column reuse the codes.
    """
    cached = col._fact
    if cached is not None:
        return cached
    if col.kind == "float":
        f = _factorize_float(col.values)
    elif col.kind == "int":
        f = _factorize_int(col.values)
    elif col.kind == "bool":
        uniq, inv = np.unique(col.values, return_inverse=True)
        f = Factorized(inv.astype(np.int64), list(uniq), None)
    else:
        f = _factorize_object(col.values)
    col._fact = f
    return f


def combine_codes(facts: list[Factorized]) -> tuple[np.ndarray, int]:
    """Compose per-column codes into one int64 code per row.

    Returns ``(codes, span)``: equal composed codes iff all per-column
    codes are equal, with every code in ``[0, span)``.  Codes are
    re-compressed through ``np.unique`` whenever the span would
    overflow the int64 headroom.
    """
    codes = facts[0].codes
    span = max(facts[0].n_codes, 1)
    for f in facts[1:]:
        width = max(f.n_codes, 1)
        if span > _CODE_LIMIT // width:
            _, codes = np.unique(codes, return_inverse=True)
            codes = codes.astype(np.int64)
            span = int(codes.max()) + 1 if codes.size else 1
        codes = codes * width + f.codes
        span = span * width
    return codes, span


def group_index(codes: np.ndarray, span: int) -> tuple[np.ndarray, list[np.ndarray]]:
    """Group rows by code, in first-appearance order of each code.

    Returns ``(reps, groups)``: for group ``g``, ``reps[g]`` is the row
    index of its first appearance and ``groups[g]`` the row indices of
    its members in original row order.
    """
    n = len(codes)
    if span > _dense_limit(n):
        # sparse code space: compress first
        _, codes = np.unique(codes, return_inverse=True)
        codes = codes.astype(np.int64)
        span = int(codes.max()) + 1 if n else 0
    counts = np.bincount(codes, minlength=span)
    # reversed fancy-index assignment: the last write per code is its
    # first occurrence in row order
    first = np.full(span, -1, dtype=np.int64)
    first[codes[::-1]] = np.arange(n - 1, -1, -1, dtype=np.int64)
    present = np.nonzero(counts)[0]
    order = present[np.argsort(first[present], kind="stable")]
    rank = np.empty(span, dtype=np.int64)
    rank[order] = np.arange(order.size)
    gid = rank[codes]
    row_order = np.argsort(gid, kind="stable")
    groups = np.split(row_order, np.cumsum(counts[order])[:-1]) if order.size else []
    return first[order], groups


def _merge_maps(
    lf: Factorized, rf: Factorized
) -> tuple[np.ndarray, np.ndarray, int]:
    """Joint code space for one key column of two join sides.

    Maps each side's codes into a shared space by merging the (small)
    unique sets — O(uniques), not O(rows).  Python hash semantics make
    cross-kind numeric keys (``1 == 1.0 == True``) match, exactly like
    the legacy per-row tuples; both sides' missing codes share one
    joint missing code.
    """
    joint: dict = {}
    lmap = np.empty(max(lf.n_codes, 1), dtype=np.int64)
    rmap = np.empty(max(rf.n_codes, 1), dtype=np.int64)
    for code, v in enumerate(lf.uniques):
        if code != lf.missing_code:
            lmap[code] = joint.setdefault(v, len(joint))
    for code, v in enumerate(rf.uniques):
        if code != rf.missing_code:
            rmap[code] = joint.setdefault(v, len(joint))
    width = len(joint)
    if lf.missing_code is not None or rf.missing_code is not None:
        if lf.missing_code is not None:
            lmap[lf.missing_code] = width
        if rf.missing_code is not None:
            rmap[rf.missing_code] = width
        width += 1
    return lmap, rmap, width


def factorize_join_keys(
    left_cols: list[Column], right_cols: list[Column]
) -> tuple[np.ndarray, np.ndarray, int]:
    """Comparable codes for the key columns of two tables.

    Returns ``(left_codes, right_codes, span)`` where equal codes mean
    equal keys across the two tables (missing keys canonicalized per
    the §15 contract, so NaN/None keys match each other).
    """
    nl = len(left_cols[0])
    nr = len(right_cols[0])
    lc = np.zeros(nl, dtype=np.int64)
    rc = np.zeros(nr, dtype=np.int64)
    span = 1
    for lcol, rcol in zip(left_cols, right_cols):
        lf, rf = factorize(lcol), factorize(rcol)
        lmap, rmap, width = _merge_maps(lf, rf)
        width = max(width, 1)
        if span > _CODE_LIMIT // width:
            both = np.concatenate([lc, rc])
            _, both = np.unique(both, return_inverse=True)
            lc, rc = both[:nl].astype(np.int64), both[nl:].astype(np.int64)
            span = int(both.max()) + 1 if both.size else 1
        lc = lc * width + (lmap[lf.codes] if nl else lc)
        rc = rc * width + (rmap[rf.codes] if nr else rc)
        span = span * width
    if span > _dense_limit(nl + nr):
        both = np.concatenate([lc, rc])
        _, both = np.unique(both, return_inverse=True)
        lc, rc = both[:nl].astype(np.int64), both[nl:].astype(np.int64)
        span = int(both.max()) + 1 if both.size else 0
    return lc, rc, span


def sort_codes(col: Column) -> np.ndarray:
    """Order-preserving int codes for a string column's sort keys.

    Matches the legacy key ``"" if v is None else str(v)``: None ties
    with the empty string (equal keys share a rank, so a stable sort
    interleaves them in original order), and arbitrary objects compare
    by their str() form.
    """
    f = factorize(col)

    def key_of(code: int) -> str:
        if code == f.missing_code:
            return ""
        v = f.uniques[code]
        return v if isinstance(v, str) else str(v)

    order = sorted(range(f.n_codes), key=key_of)
    rank = np.empty(max(f.n_codes, 1), dtype=np.int64)
    r = 0
    prev: str | None = None
    for i, code in enumerate(order):
        k = key_of(code)
        if i and k != prev:
            r += 1
        rank[code] = r
        prev = k
    return rank[f.codes]
