"""Tests for the markdown run report."""

import pytest

from repro.report.textreport import full_report


@pytest.fixture(scope="module")
def report_text(small_result):
    return full_report(small_result)


class TestFullReport:
    def test_all_sections_present(self, report_text):
        for heading in (
            "# Reproduction run report",
            "## Gender-assignment coverage",
            "## Authors (§3.1)",
            "## Committees and visible roles",
            "## Papers (§4)",
            "## Demographics (§5)",
            "## SC/ISC case study",
            "## Sensitivity (§2)",
            "## Tables",
            "## Agreement with the paper",
        ):
            assert heading in report_text, heading

    def test_tables_embedded(self, report_text):
        assert "Table 1" in report_text
        assert "Table 2" in report_text
        assert "Table 3" in report_text

    def test_paper_benchmarks_cited(self, report_text):
        assert "paper 9.9%" in report_text
        assert "95.18%" in report_text

    def test_cli_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        rc = main(["--scale", "0.15", "report", "--output", str(out)])
        assert rc == 0
        assert out.exists()
        assert "# Reproduction run report" in out.read_text()

    def test_no_timeline_section_when_absent(self, small_result):
        import dataclasses

        world = dataclasses.replace(small_result.world, timeline=[])
        result = dataclasses.replace(small_result, world=world)
        text = full_report(result)
        assert "case study" not in text
