"""Full-scale Fig. 1 shape: per-conference per-role composition."""

import math

import pytest

from repro.report import build_fig1


@pytest.fixture(scope="module")
def fig1(full_result):
    return build_fig1(full_result.dataset)


class TestFig1FullScale:
    def test_pc_member_share_by_conference(self, fig1):
        per_conf = fig1.data["per_conference"]
        # SC's PC is the most gender-balanced (paper: 29.6%)
        sc = per_conf["SC"]["pc_member"]
        assert sc == max(
            roles["pc_member"] for roles in per_conf.values()
        )
        assert sc == pytest.approx(29.6, abs=3.0)

    def test_author_shares_band(self, fig1):
        for conf, roles in fig1.data["per_conference"].items():
            assert 3.0 < roles["author"] < 14.0, conf

    def test_isc_lowest_authors(self, fig1):
        per_conf = fig1.data["per_conference"]
        isc = per_conf["ISC"]["author"]
        assert isc <= min(
            roles["author"] for conf, roles in per_conf.items() if conf != "ISC"
        ) + 1.5

    def test_zero_role_bars_where_quotaed(self, fig1):
        per_conf = fig1.data["per_conference"]
        for conf in ("HPDC", "HiPC", "HPCC"):
            assert per_conf[conf]["session_chair"] == 0.0
            assert per_conf[conf]["keynote"] == 0.0

    def test_overall_ordering(self, fig1):
        overall = fig1.data["overall"]
        # PC members clearly above authors; SC pushes session chairs up too
        assert overall["pc_member"] > overall["author"]
        assert overall["session_chair"] > overall["author"]

    def test_no_nan_in_overall(self, fig1):
        for role, value in fig1.data["overall"].items():
            assert not math.isnan(value), role
