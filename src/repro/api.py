"""repro.api — the stable, supported public surface.

Downstream code should import from here rather than from the internal
module layout, which is free to keep moving::

    from repro.api import RunConfig, WorldConfig, run_pipeline

    result = run_pipeline(RunConfig(world=WorldConfig(seed=7)))

Everything re-exported below is covered by the public-API tests
(``tests/test_public_api.py``), which pin this exact name list: adding
a name here is an API promise, removing one is a breaking change.
"""

from repro.contracts.audit import ContractReport
from repro.contracts.schema import ContractViolationError, ValidationMode
from repro.engine import ArtifactCache, StageGraph, StageNode
from repro.faults.degradation import DegradedCoverage, LossRecord
from repro.faults.plan import FaultConfig
from repro.gender.resolver import ResolverPolicy
from repro.obs.context import ObsContext
from repro.pipeline.checkpoint import CheckpointMismatch, CheckpointStore
from repro.pipeline.config import EngineConfig, RunConfig
from repro.pipeline.dataset import AnalysisDataset
from repro.pipeline.runner import PipelineResult, run_pipeline
from repro.pipeline.sharded import ShardedRunResult, run_sharded
from repro.synth.config import WorldConfig
from repro.synth.shards import ShardPlan, ShardSpec
from repro.synth.world import SyntheticWorld, build_world
from repro.util.parallel import ParallelConfig
from repro.version import __version__

__all__ = [
    # entry points
    "run_pipeline",
    "run_sharded",
    "build_world",
    "__version__",
    # run configuration
    "RunConfig",
    "EngineConfig",
    "WorldConfig",
    "ParallelConfig",
    "ResolverPolicy",
    "FaultConfig",
    "ValidationMode",
    "ObsContext",
    # sharded scaling surface
    "ShardPlan",
    "ShardSpec",
    # results
    "PipelineResult",
    "ShardedRunResult",
    "AnalysisDataset",
    "SyntheticWorld",
    "DegradedCoverage",
    "LossRecord",
    "ContractReport",
    "ContractViolationError",
    # engine / persistence
    "ArtifactCache",
    "StageGraph",
    "StageNode",
    "CheckpointStore",
    "CheckpointMismatch",
]
