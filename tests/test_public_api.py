"""Public-API hygiene: every package imports, __all__ names resolve."""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.api",
    "repro.engine",
    "repro.util",
    "repro.obs",
    "repro.tabular",
    "repro.stats",
    "repro.names",
    "repro.gender",
    "repro.geo",
    "repro.scholar",
    "repro.confmodel",
    "repro.calibration",
    "repro.synth",
    "repro.harvest",
    "repro.pipeline",
    "repro.analysis",
    "repro.report",
    "repro.viz",
    "repro.collab",
    "repro.survey",
    "repro.universe",
    "repro.review",
    "repro.forecast",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    mod = importlib.import_module(name)
    assert mod is not None


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol!r}"


def test_every_submodule_importable():
    """Walk the whole tree; no module may fail to import."""
    failures = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":  # running it is its import effect
            continue
        try:
            importlib.import_module(info.name)
        except Exception as exc:  # pragma: no cover - failure reporting
            failures.append((info.name, repr(exc)))
    assert not failures, failures


def test_top_level_exports():
    assert callable(repro.run_pipeline)
    assert callable(repro.build_world)
    assert repro.WorldConfig(seed=1).seed == 1
    assert isinstance(repro.__version__, str)


# The supported surface.  repro.api is the stability promise: adding a
# name there is an API commitment, removing one is a breaking change —
# either must be a conscious edit to this exact list.
API_SURFACE = [
    # entry points
    "run_pipeline",
    "run_sharded",
    "build_world",
    "__version__",
    # run configuration
    "RunConfig",
    "EngineConfig",
    "WorldConfig",
    "ParallelConfig",
    "ResolverPolicy",
    "FaultConfig",
    "ValidationMode",
    "ObsContext",
    # sharded scaling surface
    "ShardPlan",
    "ShardSpec",
    # results
    "PipelineResult",
    "ShardedRunResult",
    "AnalysisDataset",
    "SyntheticWorld",
    "DegradedCoverage",
    "LossRecord",
    "ContractReport",
    "ContractViolationError",
    # engine / persistence
    "ArtifactCache",
    "StageGraph",
    "StageNode",
    "CheckpointStore",
    "CheckpointMismatch",
]


def test_api_facade_is_pinned():
    import repro.api

    assert repro.api.__all__ == API_SURFACE
    for symbol in API_SURFACE:
        assert getattr(repro.api, symbol) is not None


def test_api_facade_matches_internal_objects():
    """The facade re-exports the same objects, not copies."""
    import repro.api

    assert repro.api.run_pipeline is repro.run_pipeline
    assert repro.api.RunConfig is repro.RunConfig
    assert repro.api.WorldConfig is repro.WorldConfig


def test_public_functions_have_docstrings():
    """Every public callable in __all__ carries a docstring."""
    undocumented = []
    for name in PACKAGES:
        mod = importlib.import_module(name)
        for symbol in getattr(mod, "__all__", []):
            obj = getattr(mod, symbol)
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(f"{name}.{symbol}")
    assert not undocumented, undocumented
