"""Low-level utilities shared by every subsystem.

The reproduction pipeline must be *deterministic*: the same seed yields the
same synthetic world, the same harvested records, and the same statistics,
regardless of worker count or platform.  This package provides the
building blocks that make that possible:

- :mod:`repro.util.rng` — hierarchical, named random streams derived from a
  single root seed via SeedSequence spawning.
- :mod:`repro.util.rounding` — largest-remainder ("Hamilton") apportionment
  and controlled rounding used to integerize fractional quota tables.
- :mod:`repro.util.parallel` — a deterministic process-pool map whose output
  is independent of the degree of parallelism.
- :mod:`repro.util.validation` — small argument-checking helpers with
  consistent error messages.
- :mod:`repro.util.formatting` — percent/number formatting shared by the
  ASCII reports.
- :mod:`repro.util.timing` — a tiny wall-clock timer for benchmarks and the
  pipeline's stage log.
"""

from repro.util.rng import RngStream, derive_seed, spawn_rng
from repro.util.rounding import (
    largest_remainder,
    round_preserving_sum,
    proportional_ints,
)
from repro.util.parallel import parallel_map, ParallelConfig
from repro.util.validation import (
    check_fraction,
    check_nonnegative,
    check_positive,
    check_in,
)
from repro.util.formatting import fmt_count, fmt_pct, fmt_float
from repro.util.timing import StageTimer

__all__ = [
    "RngStream",
    "derive_seed",
    "spawn_rng",
    "largest_remainder",
    "round_preserving_sum",
    "proportional_ints",
    "parallel_map",
    "ParallelConfig",
    "check_fraction",
    "check_nonnegative",
    "check_positive",
    "check_in",
    "fmt_count",
    "fmt_pct",
    "fmt_float",
    "StageTimer",
]
