"""Tests for the 56-conference systems universe (§6 future work)."""

import pytest

from repro.pipeline import run_pipeline
from repro.synth import WorldConfig, build_world
from repro.universe import SUBFIELD_PROFILES, systems_universe, universe_report


@pytest.fixture(scope="module")
def targets():
    return systems_universe(56)


@pytest.fixture(scope="module")
def universe_result(targets):
    world = build_world(
        WorldConfig(seed=3, scale=0.35, include_timeline=False), targets=targets
    )
    return run_pipeline(world=world)


class TestCatalog:
    def test_fifty_six_conferences(self, targets):
        assert len(targets) == 56
        assert len(targets) == sum(p.conferences for p in SUBFIELD_PROFILES)

    def test_unique_names(self, targets):
        names = [t.name for t in targets]
        assert len(names) == len(set(names))

    def test_fields_assigned(self, targets):
        fields = {t.field for t in targets}
        assert {"HPC", "Architecture", "Databases", "Security"} <= fields

    def test_rates_sane(self, targets):
        for t in targets:
            assert 0.02 <= t.far <= 0.40
            assert 0 <= t.pc_women <= t.pc_size
            assert t.unique_authors <= t.author_positions

    def test_deterministic(self):
        assert systems_universe(56) == systems_universe(56)

    def test_seed_changes_universe(self):
        assert systems_universe(1) != systems_universe(2)


class TestUniverseWorld:
    def test_world_builds_and_validates(self, universe_result):
        universe_result.world.registry.validate()
        assert len(universe_result.world.registry.editions) == 56

    def test_custom_world_has_no_timeline(self, universe_result):
        assert universe_result.world.timeline == []

    def test_report_covers_all_subfields(self, universe_result, targets):
        rep = universe_report(universe_result.dataset, targets)
        assert len(rep.rows) == len(SUBFIELD_PROFILES)

    def test_hpc_near_bottom(self, universe_result, targets):
        """The paper's framing: HPC sits below most systems subfields."""
        rep = universe_report(universe_result.dataset, targets)
        order = [r.field for r in rep.rows]
        assert order.index("HPC") >= len(order) - 3

    def test_heterogeneity_detected(self, universe_result, targets):
        rep = universe_report(universe_result.dataset, targets)
        assert rep.heterogeneity.significant(0.05)

    def test_field_lookup(self, universe_result, targets):
        rep = universe_report(universe_result.dataset, targets)
        assert rep.field("HPC").conferences == 9
        with pytest.raises(KeyError):
            rep.field("Astrology")

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            build_world(WorldConfig(seed=1), targets=[])
