"""Welch's two-sample t-test (unequal variances).

This is the paper's group-mean comparison, e.g. Fig. 2's citation means by
lead-author gender ("t = -2.18, df = 86, p = 0.032").  Implemented from
the standard formulas with the Welch–Satterthwaite degrees of freedom;
the p-value uses the regularized incomplete beta function via
``scipy.special`` (we implement the test, not the special function).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

__all__ = ["TTestResult", "welch_ttest"]


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a Welch t-test.

    Attributes
    ----------
    statistic:
        t statistic (group1 mean minus group2 mean, standardized).
    df:
        Welch–Satterthwaite effective degrees of freedom (fractional).
    p_value:
        Two-sided by default; see ``alternative``.
    mean1, mean2:
        The group means being compared.
    alternative:
        'two-sided', 'less', or 'greater'.
    """

    statistic: float
    df: float
    p_value: float
    mean1: float
    mean2: float
    n1: int
    n2: int
    alternative: str = "two-sided"

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def _t_sf(t: float, df: float) -> float:
    """Survival function P(T > t) of Student's t via incomplete beta."""
    if np.isnan(t) or np.isnan(df) or df <= 0:
        return float("nan")
    x = df / (df + t * t)
    p_two_tail = special.betainc(df / 2.0, 0.5, x)  # P(|T| > |t|)
    half = 0.5 * p_two_tail
    return half if t > 0 else 1.0 - half


def welch_ttest(sample1, sample2, alternative: str = "two-sided") -> TTestResult:
    """Welch's t-test for the difference of two sample means.

    NaN entries are dropped.  Each sample needs at least two observations
    and nonzero combined variance; otherwise statistic and p are NaN.

    Parameters
    ----------
    sample1, sample2:
        Numeric arrays.
    alternative:
        'two-sided' (default), 'less' (mean1 < mean2), or 'greater'.
    """
    if alternative not in ("two-sided", "less", "greater"):
        raise ValueError(f"unknown alternative {alternative!r}")
    a = np.asarray(sample1, dtype=np.float64)
    b = np.asarray(sample2, dtype=np.float64)
    a = a[~np.isnan(a)]
    b = b[~np.isnan(b)]
    n1, n2 = int(a.size), int(b.size)
    m1 = float(np.mean(a)) if n1 else float("nan")
    m2 = float(np.mean(b)) if n2 else float("nan")
    if n1 < 2 or n2 < 2:
        return TTestResult(float("nan"), float("nan"), float("nan"), m1, m2, n1, n2, alternative)
    v1 = float(np.var(a, ddof=1))
    v2 = float(np.var(b, ddof=1))
    se2 = v1 / n1 + v2 / n2
    if se2 <= 0:
        return TTestResult(float("nan"), float("nan"), float("nan"), m1, m2, n1, n2, alternative)
    t = (m1 - m2) / np.sqrt(se2)
    df_denom = (v1 / n1) ** 2 / (n1 - 1) + (v2 / n2) ** 2 / (n2 - 1)
    if df_denom <= 0:  # denormal variances can underflow the squares
        return TTestResult(float(t), float("nan"), float("nan"), m1, m2, n1, n2, alternative)
    df = se2**2 / df_denom
    if alternative == "two-sided":
        p = 2.0 * _t_sf(abs(t), df)
    elif alternative == "greater":
        p = _t_sf(t, df)
    else:  # less
        p = 1.0 - _t_sf(t, df)
    p = float(min(1.0, max(0.0, p)))
    return TTestResult(float(t), float(df), p, m1, m2, n1, n2, alternative)
