"""§5.2 / Table 2, Table 3, Fig. 7 — geography.

Table 2 counts researchers per country (authors + PC seats) with the
women's share; Table 3 crosses M49 subregion with role; Fig. 7 plots the
women's share for every country with at least 10 authors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import mask_eq, women_share
from repro.geo.countries import country_by_code
from repro.geo.regions import REGION_ORDER
from repro.pipeline.dataset import AnalysisDataset
from repro.stats.proportions import Proportion
from repro.tabular import Table

__all__ = ["CountryRow", "RegionRow", "GeographyReport", "geography_report"]


@dataclass(frozen=True)
class CountryRow:
    """One row of Table 2 / Fig. 7."""

    country_code: str
    country_name: str
    total: int                 # researcher seats (authors + PC)
    women: Proportion
    author_total: int          # Fig. 7 threshold counts authors only


@dataclass(frozen=True)
class RegionRow:
    """One row of Table 3."""

    region: str
    authors: Proportion
    pc: Proportion


@dataclass(frozen=True)
class GeographyReport:
    countries: tuple[CountryRow, ...]      # descending by total
    regions: tuple[RegionRow, ...]         # Table 3 order
    identified_authors: int                # seats with a resolved country
    us_author_share: float                 # "a full half ... US email domain"


def _seat_table(ds: AnalysisDataset) -> Table:
    """All seats (author positions + role slots) with country and gender."""
    # author positions lack country columns; join researcher enrichment
    r = ds.researchers
    info = {
        rid: (c, g)
        for rid, c, g in zip(r["researcher_id"], r["country"], r["gender"])
    }
    rows = []
    for rid in ds.author_positions["researcher_id"]:
        c, g = info.get(rid, (None, None))
        rows.append({"researcher_id": rid, "kind": "author", "country": c, "gender": g})
    slots = ds.role_slots
    for rid, role, c, g in zip(
        slots["researcher_id"], slots["role"], slots["country"], slots["gender"]
    ):
        if role == "pc_member":
            rows.append(
                {"researcher_id": rid, "kind": "pc", "country": c, "gender": g}
            )
    return Table.from_records(rows, columns=["researcher_id", "kind", "country", "gender"])


def geography_report(ds: AnalysisDataset, fig7_min_authors: int = 10) -> GeographyReport:
    """Compute §5.2 over an analysis dataset."""
    seats = _seat_table(ds)
    with_country = seats.filter(lambda t: ~t.col("country").is_missing())

    # ---- per-country rows (Table 2 / Fig. 7) -----------------------------
    rows: list[CountryRow] = []
    for code in with_country.col("country").unique():
        sub = with_country.filter(lambda t: mask_eq(t, "country", code))
        authors_n = int(np.sum(mask_eq(sub, "kind", "author")))
        country = country_by_code(code)
        rows.append(
            CountryRow(
                country_code=code,
                country_name=country.name if country else code,
                total=sub.num_rows,
                women=women_share(sub),
                author_total=authors_n,
            )
        )
    rows.sort(key=lambda r: (-r.total, r.country_code))

    # ---- per-region rows (Table 3) -------------------------------------------
    region_of = {}
    for code in with_country.col("country").unique():
        c = country_by_code(code)
        region_of[code] = c.subregion if c else None
    regions_present = {}
    for code, region in region_of.items():
        if region:
            regions_present.setdefault(region, []).append(code)

    region_rows: list[RegionRow] = []
    ordered = [r for r in REGION_ORDER if r in regions_present] + [
        r for r in sorted(regions_present) if r not in REGION_ORDER
    ]
    for region in ordered:
        codes = set(regions_present[region])
        sub = with_country.filter(
            lambda t: np.array([c in codes for c in t["country"]], dtype=bool)
        )
        authors = sub.filter(lambda t: mask_eq(t, "kind", "author"))
        pc = sub.filter(lambda t: mask_eq(t, "kind", "pc"))
        region_rows.append(
            RegionRow(region=region, authors=women_share(authors), pc=women_share(pc))
        )

    author_seats = with_country.filter(lambda t: mask_eq(t, "kind", "author"))
    us_share = (
        float(np.mean(mask_eq(author_seats, "country", "US")))
        if author_seats.num_rows
        else float("nan")
    )

    return GeographyReport(
        countries=tuple(rows),
        regions=tuple(region_rows),
        identified_authors=author_seats.num_rows,
        us_author_share=us_share,
    )
