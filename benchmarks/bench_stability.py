"""Benchmark STAB: seed-stability sweep (serial vs parallel)."""

from repro.report.stability import stability_report
from repro.util.parallel import ParallelConfig


def test_stability_sweep(benchmark):
    """Three-seed stability sweep at 0.3 scale."""
    rep = benchmark(stability_report, (11, 22, 33), 0.3)
    far = rep.stat("far_overall_pct")
    benchmark.extra_info["far_mean"] = round(far.mean, 2)
    benchmark.extra_info["far_sd"] = round(far.sd, 3)
    assert far.sd < 2.0


def test_stability_sweep_parallel(benchmark):
    """Same sweep with a 3-worker pool (one seed per worker)."""
    cfg = ParallelConfig(workers=3, min_items_per_worker=1)
    rep = benchmark(stability_report, (11, 22, 33), 0.3, cfg)
    benchmark.extra_info["seeds"] = list(rep.seeds)
