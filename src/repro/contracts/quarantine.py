"""The quarantine store: every contract-violating record, accounted.

A record that fails its contract is never silently dropped and never
allowed to crash a stage — it lands here, with machine-readable
violation reasons and a *disposition*:

- ``repaired``  — heuristics fixed it; the repaired record re-entered
  the pipeline (the entry keeps full provenance of what was wrong and
  which heuristics ran);
- ``held``      — irreparable; the record was withheld from the
  pipeline and its absence must balance in the end-of-run integrity
  audit;
- ``flagged``   — admitted unchanged (audit mode, or informational
  flags such as "this edition was scraped from corrupted pages").

``QuarantineStore`` is plain comparable data so determinism tests can
assert that two runs with the same seeds quarantine the same records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.contracts.schema import Violation

__all__ = ["Disposition", "QuarantineEntry", "QuarantineStore"]


class Disposition:
    """String constants (kept trivial for pickling/checkpoints)."""

    REPAIRED = "repaired"
    HELD = "held"
    FLAGGED = "flagged"


@dataclass(frozen=True)
class QuarantineEntry:
    """One quarantined record with its full violation provenance."""

    stage: str           # pipeline boundary: harvest / link / enrich / infer
    entity: str          # record kind: edition / paper / role / researcher / ...
    key: str             # record identity, e.g. "SC-2017" or "r000123"
    disposition: str     # Disposition.*
    violations: tuple[Violation, ...]
    repairs: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "entity": self.entity,
            "key": self.key,
            "disposition": self.disposition,
            "violations": [v.to_dict() for v in self.violations],
            "repairs": list(self.repairs),
        }


@dataclass
class QuarantineStore:
    """Append-only collection of quarantine entries for one run."""

    entries: list[QuarantineEntry] = field(default_factory=list)

    def add(
        self,
        stage: str,
        entity: str,
        key: str,
        disposition: str,
        violations: list[Violation] | tuple[Violation, ...],
        repairs: tuple[str, ...] = (),
    ) -> QuarantineEntry:
        entry = QuarantineEntry(
            stage=stage,
            entity=entity,
            key=key,
            disposition=disposition,
            violations=tuple(violations),
            repairs=repairs,
        )
        self.entries.append(entry)
        return entry

    # ------------------------------------------------------------ queries

    def __len__(self) -> int:
        return len(self.entries)

    def by_disposition(self, disposition: str) -> tuple[QuarantineEntry, ...]:
        return tuple(e for e in self.entries if e.disposition == disposition)

    def held(self, entity: str | None = None) -> tuple[QuarantineEntry, ...]:
        return tuple(
            e
            for e in self.entries
            if e.disposition == Disposition.HELD
            and (entity is None or e.entity == entity)
        )

    def held_count(self, entity: str) -> int:
        return len(self.held(entity))

    def held_keys(self, entity: str) -> tuple[str, ...]:
        return tuple(e.key for e in self.held(entity))

    def counts(self) -> dict[str, dict[str, int]]:
        """``{entity: {disposition: count}}`` — the report's summary view."""
        out: dict[str, dict[str, int]] = {}
        for e in self.entries:
            per = out.setdefault(e.entity, {})
            per[e.disposition] = per.get(e.disposition, 0) + 1
        return {k: dict(sorted(v.items())) for k, v in sorted(out.items())}

    def violation_codes(self) -> dict[str, int]:
        """Histogram of violation codes across all entries."""
        out: dict[str, int] = {}
        for e in self.entries:
            for v in e.violations:
                out[v.code] = out.get(v.code, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> dict:
        return {
            "counts": self.counts(),
            "violation_codes": self.violation_codes(),
            "entries": [e.to_dict() for e in self.entries],
        }
