"""Inverse analysis: what bias magnitudes produce an observed FAR gap.

§3.1 observes single-blind lead FAR ≈ 11.8% vs double-blind ≈ 6.2% and
notes the contrast is not significant, so review bias "cannot be
completely ruled out without additional information on rejected
papers."  These tools quantify that statement: sweep the visible-
identity bias knob, map bias → accepted-FAR suppression, and compute the
smallest bias the paper's sample sizes could actually have detected.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.review.process import ReviewConfig, ReviewProcess
from repro.stats.chisquare import chi2_two_proportions

__all__ = ["BiasSweepResult", "bias_sweep", "detectable_bias"]


@dataclass(frozen=True)
class BiasSweepResult:
    """Accepted FAR as a function of review bias."""

    biases: tuple[float, ...]
    accepted_far: tuple[float, ...]       # mean accepted FAR per bias
    submission_far: float

    def suppression(self) -> tuple[float, ...]:
        """Submitted-minus-accepted FAR per bias level."""
        return tuple(self.submission_far - a for a in self.accepted_far)

    def bias_for_gap(self, gap: float) -> float:
        """Interpolate the bias that produces a given FAR suppression."""
        sup = np.asarray(self.suppression())
        b = np.asarray(self.biases)
        order = np.argsort(sup)
        return float(np.interp(gap, sup[order], b[order]))


def bias_sweep(
    base: ReviewConfig,
    biases: tuple[float, ...] = (0.0, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0),
    cycles: int = 150,
    seed: int = 0,
) -> BiasSweepResult:
    """Monte-Carlo accepted FAR across bias levels (single-blind)."""
    fars = []
    for i, bias in enumerate(biases):
        cfg = replace(base, bias=float(bias), double_blind=False)
        rng = np.random.default_rng(seed + 1000 * i)
        fars.append(ReviewProcess(cfg).expected_accepted_far(rng, cycles))
    return BiasSweepResult(
        biases=tuple(float(b) for b in biases),
        accepted_far=tuple(fars),
        submission_far=base.submission_far,
    )


def detectable_bias(
    sweep: BiasSweepResult,
    n_single: int,
    n_double: int,
    alpha: float = 0.05,
) -> float:
    """Smallest bias whose accepted-FAR shift a χ² contrast detects.

    Compares the single-blind accepted FAR under each bias level against
    the unbiased rate with the study's actual sample sizes; returns the
    smallest bias reaching significance (infinity if none does).  This is
    the §3.1 caveat in numbers: with ~500 leads split 417/83, only fairly
    large penalties are detectable.
    """
    unbiased = sweep.accepted_far[0]
    for bias, far in zip(sweep.biases, sweep.accepted_far):
        if bias == 0.0:
            continue
        hits1 = int(round(far * n_single))
        hits2 = int(round(unbiased * n_double))
        test = chi2_two_proportions(hits1, n_single, hits2, n_double)
        if not np.isnan(test.p_value) and test.p_value < alpha:
            return float(bias)
    return float("inf")
