"""Benchmark OBS: cost of the observability layer.

The tracing/metrics layer promises to be cheap enough to leave on for
any diagnostic run, so the headline number is *relative overhead*: a
fully-instrumented pipeline (spans + metrics) must stay within 5% of the
bare pipeline (the target recorded in METHODOLOGY.md §10).  The micro
benches isolate the per-event costs that overhead is built from.
"""

import pytest

from repro.obs import MetricsRegistry, ObsContext, Tracer, chrome_trace
from repro.pipeline import run_pipeline
from repro.synth import WorldConfig, build_world


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(seed=7, scale=1.0, include_timeline=False))


def test_pipeline_bare(benchmark, world):
    """Baseline: the pipeline with observability off (NULL context)."""
    res = benchmark(run_pipeline, world=world)
    benchmark.extra_info["researchers"] = res.dataset.researchers.num_rows


def test_pipeline_observed(benchmark, world):
    """Spans + metrics on; compare against the bare bench (<5% target)."""

    def run():
        return run_pipeline(world=world, obs=ObsContext(seed=7))

    res = benchmark(run)
    obs = res.obs
    benchmark.extra_info["spans"] = len(obs.tracer.finished)
    benchmark.extra_info["metric_series"] = len(obs.metrics)
    benchmark.extra_info["overhead_target_pct"] = 5.0


def test_pipeline_profiled(benchmark, world):
    """cProfile capture per stage — diagnostic mode, allowed to be slower."""

    def run():
        return run_pipeline(world=world, obs=ObsContext(seed=7, profile=True))

    res = benchmark(run)
    benchmark.extra_info["profiled_stages"] = len(res.obs.profiler.profiles)


def test_span_open_close(benchmark):
    """Raw cost of one span (ID derivation + clock reads + bookkeeping)."""

    def run():
        t = Tracer(seed=7)
        for _ in range(1000):
            with t.span("stage"):
                pass
        return t

    t = benchmark(run)
    assert len(t.finished) == 1000


def test_metrics_inc_and_observe(benchmark):
    """Counter/histogram hot path (the faults layer's per-call cost)."""

    def run():
        m = MetricsRegistry()
        for i in range(1000):
            m.inc("faults.calls.harvest")
            m.observe("harvest.papers_per_edition", i % 120)
        return m

    m = benchmark(run)
    assert m.counters["faults.calls.harvest"] == 1000


def test_chrome_trace_export(benchmark, world):
    """Rendering a full run's trace to the Chrome trace-event document."""
    obs = ObsContext(seed=7)
    run_pipeline(world=world, obs=obs)

    doc = benchmark(chrome_trace, obs.tracer)
    benchmark.extra_info["events"] = len(doc["traceEvents"])
