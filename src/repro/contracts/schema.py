"""Declarative record schemas for the pipeline's data contracts.

A :class:`RecordSchema` is a pure description of what a well-formed
record looks like: per-field type/None-ness/range/choice constraints
(:class:`FieldSpec`) plus named cross-field invariants
(:class:`Invariant`).  Validating a record yields a list of
:class:`Violation` values — machine-readable, stable, comparable — and
never raises, so the caller (:mod:`repro.contracts.validators`) decides
whether to fail fast, repair, or merely record.

The field checks reuse :mod:`repro.util.validation` helpers through
their ``quarantine`` callback, so argument validation and data contracts
share one set of predicates.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.util.validation import (
    check_nonempty_str,
    check_nonnegative,
    check_year_range,
)

__all__ = [
    "ValidationMode",
    "Violation",
    "FieldSpec",
    "Invariant",
    "RecordSchema",
    "ContractViolationError",
]


class ValidationMode(str, enum.Enum):
    """What the pipeline does about a record that violates its contract."""

    STRICT = "strict"    # fail fast on the first violation
    REPAIR = "repair"    # try heuristics; quarantine what stays broken
    AUDIT = "audit"      # record violations, change nothing


@dataclass(frozen=True)
class Violation:
    """One contract violation, machine-readable.

    ``code`` is a stable dotted identifier (``"paper.field.paper_id.empty"``,
    ``"edition.invariant.accepted-le-submitted"``); ``message`` is the
    human rendering; ``value`` is a short repr of the offending value.
    """

    contract: str
    code: str
    field: str | None
    message: str
    value: str = ""

    def to_dict(self) -> dict[str, str]:
        return {
            "contract": self.contract,
            "code": self.code,
            "field": self.field or "",
            "message": self.message,
            "value": self.value,
        }


def _short(value: Any, limit: int = 60) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


@dataclass(frozen=True)
class FieldSpec:
    """Constraints on one attribute of a record.

    ``types`` is the accepted type set (``None`` is governed separately
    by ``required``); numeric bounds and string/sequence non-emptiness
    apply only when the value is present and of an accepted type.
    """

    name: str
    types: tuple[type, ...]
    required: bool = False          # False: None is an accepted value
    nonempty: bool = False          # strings/sequences must have content
    min_value: float | None = None
    max_value: float | None = None
    choices: tuple[Any, ...] | None = None
    year: bool = False              # plausibility-check as a year

    def ok(self, value: Any) -> bool:
        """Allocation-free conformance check — the hot path.

        Must agree exactly with :meth:`validate` returning no violations;
        the schema's validate() only falls back to the slow,
        Violation-constructing path when this returns False.
        """
        if value is None:
            return not self.required
        if not isinstance(value, self.types) or (
            isinstance(value, bool) and bool not in self.types
        ):
            return False
        if self.nonempty:
            if isinstance(value, str):
                if not value.strip():
                    return False
            elif isinstance(value, Sequence) and len(value) == 0:
                return False
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if not (isinstance(value, float) and math.isnan(value)):
                if self.year and not 1960 <= value <= 2035:
                    return False
                if self.min_value is not None and value < self.min_value:
                    return False
                if self.max_value is not None and value > self.max_value:
                    return False
        if self.choices is not None and value not in self.choices:
            return False
        return True

    def validate(self, contract: str, record: Any) -> list[Violation]:
        violations: list[Violation] = []

        def vio(code: str, message: str, value: Any) -> None:
            violations.append(
                Violation(
                    contract=contract,
                    code=f"{contract}.field.{self.name}.{code}",
                    field=self.name,
                    message=message,
                    value=_short(value),
                )
            )

        value = getattr(record, self.name, None)
        if value is None:
            if self.required:
                vio("missing", f"{self.name} is required", None)
            return violations
        if not isinstance(value, self.types):
            # bool is an int subclass; reject it for numeric fields
            vio(
                "type",
                f"{self.name} must be {self._type_names()}, "
                f"got {type(value).__name__}",
                value,
            )
            return violations
        if isinstance(value, bool) and bool not in self.types:
            vio("type", f"{self.name} must be {self._type_names()}, got bool", value)
            return violations

        collect = lambda msg: vio("range", msg, value)  # noqa: E731
        if self.nonempty:
            if isinstance(value, str):
                check_nonempty_str(value, self.name, quarantine=lambda m: vio("empty", m, value))
            elif isinstance(value, Sequence) and len(value) == 0:
                vio("empty", f"{self.name} must not be empty", value)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if isinstance(value, float) and math.isnan(value):
                pass  # NaN legality is an invariant concern, not a range one
            else:
                if self.year:
                    check_year_range(value, self.name, quarantine=collect)
                if self.min_value is not None and self.min_value == 0:
                    check_nonnegative(value, self.name, quarantine=collect)
                elif self.min_value is not None and value < self.min_value:
                    vio("range", f"{self.name} must be >= {self.min_value}", value)
                if self.max_value is not None and value > self.max_value:
                    vio("range", f"{self.name} must be <= {self.max_value}", value)
        if self.choices is not None and value not in self.choices:
            vio(
                "choice",
                f"{self.name} must be one of {sorted(map(repr, self.choices))}",
                value,
            )
        return violations

    def _type_names(self) -> str:
        return "/".join(t.__name__ for t in self.types)


@dataclass(frozen=True)
class Invariant:
    """A named cross-field predicate; truthy means the record is fine."""

    code: str
    message: str
    check: Callable[[Any], bool]

    def validate(self, contract: str, record: Any) -> Violation | None:
        try:
            ok = bool(self.check(record))
        except Exception as exc:  # a crashing invariant is itself a violation
            return Violation(
                contract=contract,
                code=f"{contract}.invariant.{self.code}",
                field=None,
                message=f"{self.message} (check crashed: {exc})",
            )
        if ok:
            return None
        return Violation(
            contract=contract,
            code=f"{contract}.invariant.{self.code}",
            field=None,
            message=self.message,
        )


@dataclass(frozen=True)
class RecordSchema:
    """A full record contract: field specs plus cross-field invariants."""

    name: str
    fields: tuple[FieldSpec, ...]
    invariants: tuple[Invariant, ...] = field(default=())

    def __post_init__(self) -> None:
        # pre-bound (name, check) pairs keep the per-record loop free of
        # attribute lookups — this path runs once per record per boundary
        object.__setattr__(
            self, "_field_checks", tuple((s.name, s.ok, s) for s in self.fields)
        )
        object.__setattr__(
            self, "_inv_checks", tuple((i.check, i) for i in self.invariants)
        )

    def validate(self, record: Any) -> list[Violation]:
        """All violations for ``record`` (empty list == conforming)."""
        out: list[Violation] = []
        # hot path: almost every record conforms, so check cheaply first
        # and only build Violation objects on failure
        for fname, ok, spec in self._field_checks:
            if ok(getattr(record, fname, None)):
                continue
            out.extend(spec.validate(self.name, record))
        for check, inv in self._inv_checks:
            try:
                if check(record):
                    continue
            except Exception:
                pass
            v = inv.validate(self.name, record)
            if v is not None:
                out.append(v)
        return out

    def conforms(self, record: Any) -> bool:
        return not self.validate(record)


class ContractViolationError(Exception):
    """Raised in strict mode at the first contract violation.

    Carries the machine-readable violations so a caller (the CLI) can
    render them and exit non-zero.
    """

    def __init__(
        self,
        stage: str,
        entity: str,
        key: str,
        violations: Sequence[Violation],
    ) -> None:
        self.stage = stage
        self.entity = entity
        self.key = key
        self.violations = tuple(violations)
        codes = ", ".join(v.code for v in self.violations) or "unspecified"
        super().__init__(
            f"contract violation at stage {stage!r} ({entity} {key!r}): {codes}"
        )
