"""Work-sector taxonomy (COM / EDU / GOV).

The paper buckets affiliations as "COM" for industry, "EDU" for academia,
and "GOV" for government and national labs (§2, §5.3).
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Sector", "SECTORS"]


class Sector(str, Enum):
    """The paper's three-way work-sector classification."""

    COM = "COM"  # industry
    EDU = "EDU"  # academia
    GOV = "GOV"  # government / national labs

    def describe(self) -> str:
        return {
            Sector.COM: "industry",
            Sector.EDU: "academia",
            Sector.GOV: "government and national labs",
        }[self]


SECTORS: tuple[Sector, ...] = (Sector.COM, Sector.EDU, Sector.GOV)
