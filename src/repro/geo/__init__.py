"""Geography: countries, UN M49 regions, email domains, affiliations.

The paper resolves each researcher's country from email domains and
Google Scholar affiliations, then aggregates to UN M49 subregions using
the https://github.com/mledoze/countries dataset.  There is no network in
this environment, so :mod:`repro.geo.countries` embeds the subset of that
dataset the paper's tables touch (every country that can appear in
Table 2, Table 3, or Fig. 7, plus enough others to exercise the unknown
paths).

Submodules:

- :mod:`repro.geo.countries` — country records and lookups.
- :mod:`repro.geo.regions`   — subregion constants and ordering used by
  Table 3.
- :mod:`repro.geo.domains`   — email address → country.
- :mod:`repro.geo.sectors`   — COM/EDU/GOV taxonomy.
- :mod:`repro.geo.affiliations` — hand-coded regex classification of
  affiliation strings into (country, sector), mirroring the paper's
  methodology ("using hand-coded regular expressions").
"""

from repro.geo.countries import (
    Country,
    all_countries,
    country_by_code,
    country_by_name,
    country_by_tld,
)
from repro.geo.regions import (
    REGION_ORDER,
    region_of_country,
    regions_present,
)
from repro.geo.domains import email_country, split_email, academic_tlds
from repro.geo.sectors import Sector, SECTORS
from repro.geo.affiliations import classify_affiliation, AffiliationGuess

__all__ = [
    "Country",
    "all_countries",
    "country_by_code",
    "country_by_name",
    "country_by_tld",
    "REGION_ORDER",
    "region_of_country",
    "regions_present",
    "email_country",
    "split_email",
    "academic_tlds",
    "Sector",
    "SECTORS",
    "classify_affiliation",
    "AffiliationGuess",
]
