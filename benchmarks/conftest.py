"""Benchmark fixtures: one full-scale pipeline run shared by all benches.

Each benchmark times the regeneration of one paper artifact (table or
figure) from the already-built dataset — the analysis cost, which is what
varies between approaches — and writes the rendered artifact to
``benchmarks/output/<id>.txt`` so the run leaves the same tables/series
the paper reports.

Every bench module additionally leaves a machine-readable summary:
at session end the collected stats are grouped by module and written to
``benchmarks/output/BENCH_<module>.json`` (``bench_obs.py`` →
``BENCH_obs.json``), so timing history can be diffed or fed to the
regression sentinel without re-running anything.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.pipeline import RunConfig, run_pipeline
from repro.synth import WorldConfig

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def result():
    """The full-scale pipeline result (paper-sized population)."""
    return run_pipeline(RunConfig(world=WorldConfig(seed=7, scale=1.0)))


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def write_artifact(output_dir: Path, exp_id: str, text: str) -> None:
    (output_dir / f"{exp_id}.txt").write_text(text + "\n", encoding="utf-8")


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write one ``BENCH_<module>.json`` per bench module that ran."""
    bs = getattr(session.config, "_benchmarksession", None)
    if bs is None or not getattr(bs, "benchmarks", None):
        return
    by_module: dict[str, list] = {}
    for bench in bs.benchmarks:
        if bench.has_error:
            continue
        # fullname is 'benchmarks/bench_obs.py::test_x' -> module 'bench_obs'
        module = Path(str(bench.fullname).split("::")[0]).stem
        by_module.setdefault(module, []).append(bench)
    if not by_module:
        return
    OUTPUT_DIR.mkdir(exist_ok=True)
    for module, benches in sorted(by_module.items()):
        doc = {
            "module": module,
            "benchmarks": [
                b.as_dict(include_data=False, flat=True) for b in benches
            ],
        }
        name = module[len("bench_"):] if module.startswith("bench_") else module
        path = OUTPUT_DIR / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(doc, indent=2, sort_keys=True, default=str) + "\n",
            encoding="utf-8",
        )
