"""§2 (Limitations) — the unknown-gender sensitivity analysis.

"We first artificially set the gender of all 144 unassigned researchers
to women, and then to men, and recomputed all statistical analyses.
None of our observations were subsequently changed in either direction
or statistical significance."

The report re-runs the headline analyses under both forcings and checks
the paper's qualitative observations (directions and significance at
α = 0.05) for flips.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.blind import blind_report
from repro.analysis.far import far_report
from repro.analysis.pc import pc_report
from repro.gender.model import Gender
from repro.gender.sensitivity import reassign_unknowns
from repro.pipeline.dataset import AnalysisDataset

__all__ = ["Observation", "SensitivityReport", "sensitivity_report"]


@dataclass(frozen=True)
class Observation:
    """One qualitative claim checked across the three worlds."""

    name: str
    baseline: bool
    all_women: bool
    all_men: bool

    @property
    def stable(self) -> bool:
        return self.baseline == self.all_women == self.all_men


@dataclass(frozen=True)
class SensitivityReport:
    unknowns: int
    observations: tuple[Observation, ...]
    far_values: dict[str, float]       # scenario -> overall FAR

    @property
    def all_stable(self) -> bool:
        return all(o.stable for o in self.observations)


def _observations(ds: AnalysisDataset) -> dict[str, bool]:
    far = far_report(ds)
    blind = blind_report(ds)
    pc = pc_report(ds)
    return {
        "far_below_15pct": far.overall.value < 0.15,
        "last_author_not_higher": far.last_overall.value <= far.overall.value + 0.01,
        "double_blind_lower_than_single": (
            blind.authors_double.value < blind.authors_single.value
        ),
        "lead_single_at_least_double": (
            blind.lead_single.value >= blind.lead_double.value
        ),
        "pc_ratio_roughly_double_authors": (
            pc.memberships.value > 1.5 * far.overall.value
        ),
        "pc_vs_authors_significant": pc.pc_vs_authors.significant(),
        "sc_below_overall": far.conference("SC").authors.value < far.overall.value
        if any(c.conference == "SC" for c in far.by_conference)
        else True,
    }


def sensitivity_report(ds: AnalysisDataset) -> SensitivityReport:
    """Run the §2 sensitivity analysis over an analysis dataset."""
    base_obs = _observations(ds)
    far_values = {"baseline": far_report(ds).overall.value}

    scenarios: dict[str, dict[str, bool]] = {}
    for label, forced in (("all_women", Gender.F), ("all_men", Gender.M)):
        forced_ds = ds.with_assignments(reassign_unknowns(ds.assignments, forced))
        scenarios[label] = _observations(forced_ds)
        far_values[label] = far_report(forced_ds).overall.value

    observations = tuple(
        Observation(
            name=name,
            baseline=base_obs[name],
            all_women=scenarios["all_women"][name],
            all_men=scenarios["all_men"][name],
        )
        for name in base_obs
    )
    return SensitivityReport(
        unknowns=ds.unknown_count(),
        observations=observations,
        far_values=far_values,
    )
