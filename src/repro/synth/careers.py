"""Research-career model: experience bands, publications, h-index.

Fig. 6 stratifies researchers by h-index into novice (h < 13),
mid-career (13–18), and experienced (> 18), and reports that 44.8% of
female authors vs 36.4% of male authors are novices, with PC members
generally more experienced than authors.  We generate careers top-down
from those band shares:

1. draw a band from the (role, gender) band distribution;
2. draw a target h-index within the band (geometric-ish within-band
   spread so the pooled distribution is right-skewed like Figs. 3–5);
3. synthesize a publication count and a career citation vector whose
   Hirsch index is *exactly* the target h (construction below), because
   the analysis recomputes h from the vector.

The citation-vector construction places ``h`` papers at ≥ h citations
(h + geometric overshoot) and the remaining papers strictly below h,
with a decaying profile — so ``h_index(vector) == h`` by construction,
which the property tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scholar.metrics import h_index as compute_h

__all__ = ["BAND_SHARES", "CareerModel", "Career"]


#: Band shares per (role_kind, gender): (novice, mid, experienced).
#: Author values target Fig. 6's 44.8% / 36.4% novice shares; PC values
#: encode "PC members generally have more experience than authors,
#: especially among women" (§5.1) — derived.
#: NOTE: these are *pre-selection* shares.  Google Scholar coverage rises
#: with experience (novices are less likely to have a profile), so the
#: observed band mix among GS-linked researchers — which is what Fig. 6
#: measures — shifts toward the experienced end.  The values below are
#: solved so that, after the coverage model (novice 0.47 / mid 0.70 /
#: experienced 0.84), the *observed* novice shares land on the paper's
#: 44.8% (women) and 36.4% (men) among authors.
#: A further correction: researchers who are both authors and PC members
#: draw "pc" careers, which dilutes the observed author novice share, so
#: the author values here overshoot the paper's targets to compensate
#: (verified empirically by the full-scale integration tests).
BAND_SHARES: dict[tuple[str, str], tuple[float, float, float]] = {
    ("author", "F"): (0.660, 0.240, 0.100),
    ("author", "M"): (0.550, 0.280, 0.170),
    ("pc", "F"): (0.150, 0.350, 0.500),
    ("pc", "M"): (0.170, 0.330, 0.500),
}

_BANDS = ("novice", "mid-career", "experienced")


@dataclass(frozen=True)
class Career:
    """One researcher's pre-2017 track record."""

    band: str
    h_index: int
    past_publications: int
    citation_vector: tuple[int, ...]


class CareerModel:
    """Draws careers conditioned on role kind and gender."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    # ------------------------------------------------------------- drawing

    def draw_band(self, role_kind: str, gender: str) -> str:
        shares = BAND_SHARES.get((role_kind, gender))
        if shares is None:
            raise KeyError(f"no band shares for ({role_kind!r}, {gender!r})")
        return _BANDS[int(self._rng.choice(3, p=np.asarray(shares)))]

    def draw_h(self, band: str) -> int:
        """Target h-index within a band.

        Novice h ∈ [0, 12] skewed low (many students have h ≤ 3);
        mid-career h ∈ [13, 18] uniform-ish; experienced h ≥ 19 with a
        geometric tail (a few researchers reach h of 60+).
        """
        r = self._rng
        if band == "novice":
            # mixture: 45% students (h 0-2), else rising to 12
            if r.random() < 0.45:
                return int(r.integers(0, 3))
            return int(r.integers(3, 13))
        if band == "mid-career":
            return int(r.integers(13, 19))
        if band == "experienced":
            return 19 + int(r.geometric(0.12)) - 1
        raise ValueError(f"unknown band {band!r}")

    def draw_career(self, role_kind: str, gender: str) -> Career:
        band = self.draw_band(role_kind, gender)
        h = self.draw_h(band)
        pubs = self._pubs_for_h(h)
        vector = self._citation_vector(h, pubs)
        return Career(band, h, pubs, tuple(int(x) for x in vector))

    # -------------------------------------------------------- construction

    def _pubs_for_h(self, h: int) -> int:
        """Publication count consistent with an h-index.

        Empirically pubs ≈ 2–6 × h for systems researchers; students with
        h=0 still have 0–3 papers.  Must be ≥ h.
        """
        r = self._rng
        if h == 0:
            return int(r.integers(0, 4))
        mult = 2.0 + r.lognormal(mean=0.0, sigma=0.45)
        return max(h, int(round(h * mult)))

    def _citation_vector(self, h: int, pubs: int) -> np.ndarray:
        """A citation vector of length ``pubs`` with Hirsch index exactly h."""
        r = self._rng
        if pubs == 0:
            return np.zeros(0, dtype=np.int64)
        if h == 0:
            # every paper strictly below 1 citation is impossible to get
            # wrong: all zeros
            return np.zeros(pubs, dtype=np.int64)
        # Top h papers: h + overshoot, decaying. Overshoot gives the heavy
        # right tail seen in Figs. 3-4.
        overshoot = r.geometric(p=0.08, size=h)
        top = h + np.sort(overshoot)[::-1]
        rest_n = pubs - h
        if rest_n > 0:
            # Strictly below h citations each, skewed toward 0, and below
            # h so they cannot raise the index. Cap also at h-1.
            rest = np.minimum(
                r.geometric(p=max(0.15, 2.0 / (h + 2)), size=rest_n) - 1, h - 1
            )
            vec = np.concatenate([top, rest])
        else:
            vec = top
        assert compute_h(vec) == h, (h, pubs, vec[:10])
        return vec.astype(np.int64)


def gs_reported_publications(true_pubs: int, rng: np.random.Generator) -> int:
    """What Google Scholar displays for a researcher's publication count.

    GS over-counts (versions, non-archival items) by a modest noisy
    factor.
    """
    if true_pubs == 0:
        return 0
    factor = rng.lognormal(mean=0.08, sigma=0.15)
    return max(1, int(round(true_pubs * factor)))


def s2_reported_publications(true_pubs: int, rng: np.random.Generator) -> int:
    """What Semantic Scholar reports for the same researcher.

    S2's disambiguation differs wildly from GS's: heavy multiplicative
    noise plus occasional profile merges/splits.  This is what drives the
    paper's low GS↔S2 correlation (r = 0.334) — reproduced in tests.
    """
    if true_pubs == 0:
        return int(rng.integers(0, 3))
    factor = rng.lognormal(mean=0.0, sigma=0.9)
    count = int(round(true_pubs * factor))
    if rng.random() < 0.08:
        # merged with a different author's record
        count += int(rng.integers(20, 400))
    return max(0, count)
