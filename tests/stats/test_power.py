"""Tests for two-proportion power analysis."""

import numpy as np
import pytest

from repro.stats import minimum_detectable_diff, two_proportion_power
from repro.stats.chisquare import chi2_two_proportions


class TestPower:
    def test_size_at_null(self):
        assert two_proportion_power(0.1, 0.1, 100, 100) == pytest.approx(0.05)

    def test_power_grows_with_n(self):
        small = two_proportion_power(0.10, 0.15, 50, 50)
        big = two_proportion_power(0.10, 0.15, 2000, 2000)
        assert big > small

    def test_power_grows_with_effect(self):
        weak = two_proportion_power(0.10, 0.12, 300, 300)
        strong = two_proportion_power(0.10, 0.25, 300, 300)
        assert strong > weak

    def test_monte_carlo_agreement(self):
        """Analytic power vs simulated rejection rate of our own χ² test."""
        p1, p2, n1, n2 = 0.10, 0.20, 250, 250
        analytic = two_proportion_power(p1, p2, n1, n2)
        rng = np.random.default_rng(0)
        rejections = 0
        trials = 600
        for _ in range(trials):
            h1 = rng.binomial(n1, p1)
            h2 = rng.binomial(n2, p2)
            if chi2_two_proportions(h1, n1, h2, n2, correction=False).p_value < 0.05:
                rejections += 1
        assert rejections / trials == pytest.approx(analytic, abs=0.07)

    def test_validation(self):
        with pytest.raises(ValueError):
            two_proportion_power(1.2, 0.1, 10, 10)
        with pytest.raises(ValueError):
            two_proportion_power(0.1, 0.1, 0, 10)
        with pytest.raises(ValueError):
            two_proportion_power(0.1, 0.2, 10, 10, alpha=1.5)


class TestMdd:
    def test_roundtrip_with_power(self):
        mdd = minimum_detectable_diff(0.10, 400, 400)
        achieved = two_proportion_power(0.10, 0.10 + mdd, 400, 400)
        assert achieved == pytest.approx(0.8, abs=0.01)

    def test_shrinks_with_n(self):
        small_n = minimum_detectable_diff(0.10, 80, 80)
        big_n = minimum_detectable_diff(0.10, 5000, 5000)
        assert big_n < small_n

    def test_paper_blind_contrast_was_underpowered(self):
        """§3.1's lead-author contrast (83 double- vs 417 single-blind
        leads): the minimum detectable difference exceeds the observed
        5.6-point gap — the paper was right to hedge."""
        mdd = minimum_detectable_diff(0.0617, 83, 417)
        assert mdd > 0.056
