"""Benchmark SERVE: the analysis service under load, warm and overloaded.

Three claims of the serving layer, measured over real sockets:

- **Warm/cold split** — a warm query (in-process body cache behind an
  HTTP round trip) is at least 10x faster than the cold engine run that
  populated it (in practice hundreds of times).
- **Tail latency** — warm p50/p99 and the sustained requests-per-second
  of a multi-client burst are reported in ``extra_info`` (and land in
  ``BENCH_serve.json``).
- **Graceful shedding** — at 2x the admission capacity, every rejected
  request is a 429 with ``Retry-After``; nothing ever answers 5xx from
  overload pressure, and the queue never grows past its bound.
"""

import http.client
import itertools
import json
import threading
import time

import pytest

from repro.serve import ReproServer, ServeConfig

SCALE = 0.1  # cold runs in ~10^2 ms: big enough to time, small enough to loop
_fresh_seed = itertools.count(1000)  # never-seen configs stay genuinely cold


def _get(port: int, path: str) -> tuple[int, dict, bytes]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def _start(**overrides) -> ReproServer:
    defaults = dict(port=0, seed=7, scale=SCALE, obs_dir=None, deadline_s=120.0)
    defaults.update(overrides)
    server = ReproServer(ServeConfig(**defaults))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


def _stop(server: ReproServer) -> None:
    server.initiate_drain()
    server.drain_and_close()


@pytest.fixture(scope="module")
def server():
    server = _start()
    status, _, _ = _get(server.bound_port, "/v1/far")  # prime the warm set
    assert status == 200
    yield server
    _stop(server)


def _percentile(sorted_samples: list[float], q: float) -> float:
    idx = min(len(sorted_samples) - 1, round(q * (len(sorted_samples) - 1)))
    return sorted_samples[idx]


def test_serve_warm_vs_cold(benchmark, server):
    """Warm HTTP queries vs the cold engine run that seeds them."""
    port = server.bound_port

    t0 = time.perf_counter()
    status, _, _ = _get(port, f"/v1/far?seed={next(_fresh_seed)}")
    cold_s = time.perf_counter() - t0
    assert status == 200

    def warm():
        status, _, _ = _get(port, "/v1/far")
        assert status == 200

    benchmark(warm)
    warm_s = benchmark.stats.stats.median
    ratio = cold_s / warm_s
    benchmark.extra_info["cold_ms"] = round(cold_s * 1000, 3)
    benchmark.extra_info["warm_p50_ms"] = round(warm_s * 1000, 3)
    benchmark.extra_info["warm_cold_ratio"] = round(ratio, 1)
    # the acceptance floor; the measured ratio is typically in the 100s
    assert ratio >= 10.0


def test_serve_sustained_load(benchmark, server):
    """A multi-client warm burst: p50/p99 tail latency and sustained RPS."""
    port = server.bound_port
    clients, per_client = 8, 25

    def burst() -> dict:
        samples: list[list[float]] = [[] for _ in range(clients)]
        statuses: list[list[int]] = [[] for _ in range(clients)]
        barrier = threading.Barrier(clients + 1)

        def client(slot: int) -> None:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
            try:
                barrier.wait()
                for _ in range(per_client):
                    t0 = time.perf_counter()
                    conn.request("GET", "/v1/far")
                    resp = conn.getresponse()
                    resp.read()
                    samples[slot].append(time.perf_counter() - t0)
                    statuses[slot].append(resp.status)
            finally:
                conn.close()

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(clients)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        flat = sorted(s for chunk in samples for s in chunk)
        return {
            "statuses": [s for chunk in statuses for s in chunk],
            "p50_s": _percentile(flat, 0.50),
            "p99_s": _percentile(flat, 0.99),
            "rps": len(flat) / elapsed,
        }

    result = benchmark.pedantic(burst, rounds=3, iterations=1)
    assert all(s == 200 for s in result["statuses"])
    benchmark.extra_info["clients"] = clients
    benchmark.extra_info["requests"] = clients * per_client
    benchmark.extra_info["p50_ms"] = round(result["p50_s"] * 1000, 3)
    benchmark.extra_info["p99_ms"] = round(result["p99_s"] * 1000, 3)
    benchmark.extra_info["sustained_rps"] = round(result["rps"], 1)
    assert result["p99_s"] < 5.0  # tail stays bounded on the warm path


def test_serve_shed_rate_at_2x_overload(benchmark):
    """2x capacity in cold traffic: capacity serves, the excess sheds 429.

    The acceptance criterion verbatim: every reject is a 429 carrying
    ``Retry-After`` — zero 500s — and the backlog never exceeds
    ``max_concurrency + queue_depth`` because admission is bounded by
    construction.
    """
    server = _start(max_concurrency=2, queue_depth=4, retry_after_s=1.0)
    port = server.bound_port
    capacity = 2 + 4

    def overload() -> dict:
        offered = 2 * capacity  # the "2x overload" of the claim
        results: list[tuple[int, dict]] = []
        lock = threading.Lock()
        barrier = threading.Barrier(offered)

        def client() -> None:
            # a distinct never-seen seed at a larger scale: every
            # admitted request is a genuinely slow cold engine run, so
            # the burst really overlaps the admission window
            path = f"/v1/far?seed={next(_fresh_seed)}&scale=0.5"
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
            try:
                conn.connect()  # handshake first; the burst is just bytes
                barrier.wait()
                conn.request("GET", path)
                resp = conn.getresponse()
                resp.read()
                with lock:
                    results.append((resp.status, dict(resp.getheaders())))
            finally:
                conn.close()

        threads = [threading.Thread(target=client) for _ in range(offered)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return {
            "offered": offered,
            "statuses": [s for s, _ in results],
            "rejects": [(s, h) for s, h in results if s != 200],
        }

    try:
        result = benchmark.pedantic(overload, rounds=1, iterations=1)
    finally:
        _stop(server)

    statuses = result["statuses"]
    served = statuses.count(200)
    shed = statuses.count(429)
    assert len(statuses) == result["offered"]
    # the acceptance criterion: overload degrades to 429s — never 5xx,
    # and never an unbounded queue (admission bounds it by construction)
    assert all(s in (200, 429) for s in statuses), statuses
    assert served + shed == result["offered"]
    assert shed >= 1  # 2x capacity cannot fit: something must shed
    # every reject carries the retry hint
    assert all(h.get("Retry-After") == "1" for s, h in result["rejects"])
    benchmark.extra_info["offered"] = result["offered"]
    benchmark.extra_info["capacity"] = capacity
    benchmark.extra_info["served"] = served
    benchmark.extra_info["shed"] = shed
    benchmark.extra_info["shed_rate"] = round(shed / result["offered"], 3)
