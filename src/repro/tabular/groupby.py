"""Split-apply-combine for :class:`repro.tabular.table.Table`."""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.obs.context import current as _obs
from repro.tabular.table import Table

__all__ = ["GroupBy"]


class GroupBy:
    """Grouping of a table by one or more key columns.

    Group order is first-appearance order of each key tuple, which keeps
    reports deterministic without a separate sort.
    """

    def __init__(self, table: Table, keys: Sequence[str]) -> None:
        if not keys:
            raise ValueError("groupby requires at least one key column")
        self._table = table
        self._keys = tuple(keys)
        self._index = self._build_index()

    def _build_index(self) -> dict[tuple, np.ndarray]:
        cols = [self._table.col(k) for k in self._keys]
        buckets: dict[tuple, list[int]] = {}
        # Materialize key tuples once; object-array iteration is the cost.
        columns = [c.values for c in cols]
        for i in range(self._table.num_rows):
            key = tuple(col[i] for col in columns)
            buckets.setdefault(key, []).append(i)
        m = _obs().metrics
        if m.enabled:
            m.inc("tabular.groupby.calls")
            m.inc("tabular.groupby.groups", len(buckets))
            m.inc("tabular.groupby.rows_in", self._table.num_rows)
        return {k: np.array(v, dtype=np.int64) for k, v in buckets.items()}

    @property
    def keys(self) -> tuple[str, ...]:
        return self._keys

    def groups(self) -> dict[tuple, Table]:
        """Materialize each group as a sub-table."""
        return {k: self._table.take(idx) for k, idx in self._index.items()}

    def group(self, *key: Any) -> Table:
        """The sub-table for one key tuple (raises KeyError if absent)."""
        k = tuple(key)
        if k not in self._index:
            raise KeyError(f"no group {k!r}")
        return self._table.take(self._index[k])

    def size(self) -> Table:
        """Table of group sizes with one row per group."""
        rows = []
        for k, idx in self._index.items():
            row = dict(zip(self._keys, k))
            row["count"] = int(idx.size)
            rows.append(row)
        return Table.from_records(rows, columns=list(self._keys) + ["count"])

    def agg(self, **aggregations: Callable[[Table], Any]) -> Table:
        """Apply named aggregation functions to each group.

        Each aggregation receives the group's sub-table and returns a
        scalar::

            t.groupby("conference").agg(
                far=lambda g: far_of(g),
                n=lambda g: g.num_rows,
            )
        """
        rows = []
        for k, idx in self._index.items():
            sub = self._table.take(idx)
            row = dict(zip(self._keys, k))
            for name, fn in aggregations.items():
                row[name] = fn(sub)
            rows.append(row)
        return Table.from_records(
            rows, columns=list(self._keys) + list(aggregations.keys())
        )

    def apply(self, fn: Callable[[tuple, Table], Mapping[str, Any]]) -> Table:
        """Apply ``fn(key, subtable) -> row dict`` to each group."""
        rows = []
        for k, idx in self._index.items():
            sub = self._table.take(idx)
            rows.append(dict(fn(k, sub)))
        return Table.from_records(rows)

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self):
        for k, idx in self._index.items():
            yield k, self._table.take(idx)
