"""Tests for PC, visible-role, and HPC-topic analyses."""

import pytest

from repro.analysis import hpc_topic_report, pc_report, visible_report


class TestPc:
    def test_pc_roughly_double_authors(self, small_result):
        from repro.analysis import far_report

        pc = pc_report(small_result.dataset)
        far = far_report(small_result.dataset)
        assert pc.memberships.value > 1.4 * far.overall.value

    def test_sc_highest_pc_share(self, small_result):
        pc = pc_report(small_result.dataset)
        sc = pc.by_conference["SC"].value
        assert all(
            sc >= p.value - 1e-9
            for conf, p in pc.by_conference.items()
            if conf != "SC" and p.n > 0
        )

    def test_excluding_sc_lower(self, small_result):
        pc = pc_report(small_result.dataset)
        assert pc.excluding_sc.value < pc.memberships.value

    def test_zero_chair_conferences(self, small_result):
        pc = pc_report(small_result.dataset)
        assert set(pc.zero_women_chair_confs) == {"HPDC", "ICPP", "HiPC", "HPCC"}

    def test_pc_vs_authors_significant(self, small_result):
        pc = pc_report(small_result.dataset)
        assert pc.pc_vs_authors.significant()


class TestVisible:
    def test_zero_keynote_conferences(self, small_result):
        vis = visible_report(small_result.dataset)
        assert set(vis.zero_women_confs["keynote"]) == {"HPDC", "ICPP", "HiPC", "HPCC"}

    def test_zero_session_chairs(self, small_result):
        vis = visible_report(small_result.dataset)
        assert set(vis.zero_women_confs["session_chair"]) == {"HPDC", "HiPC", "HPCC"}
        assert vis.zero_session_chair_seats > 0

    def test_sc_session_chairs_near_parity(self, small_result):
        vis = visible_report(small_result.dataset)
        sc = vis.by_conference["session_chair"]["SC"]
        assert sc.value > 0.3

    def test_roles_have_denominators(self, small_result):
        vis = visible_report(small_result.dataset)
        for role, p in vis.overall.items():
            assert p.n > 0, role


class TestHpcTopic:
    def test_subset_size(self, small_result):
        h = hpc_topic_report(small_result.dataset)
        assert 0.25 < h.hpc_papers / h.all_papers < 0.45  # paper: 178/518

    def test_hpc_far_at_least_overall(self, small_result):
        h = hpc_topic_report(small_result.dataset)
        assert h.authors_hpc.value >= h.authors_all.value - 0.02

    def test_lead_nonsignificant(self, small_result):
        h = hpc_topic_report(small_result.dataset)
        # the paper's lead contrast is clearly nonsignificant
        assert h.lead_test.p_value > 0.05 or abs(
            h.lead_hpc.value - h.lead_all.value
        ) < 0.05
