"""Tests for the peer-review simulator."""

import numpy as np
import pytest

from repro.review import (
    ReviewConfig,
    ReviewProcess,
    bias_sweep,
    detectable_bias,
)


@pytest.fixture(scope="module")
def base():
    return ReviewConfig(
        submissions=400, acceptance_rate=0.2, submission_far=0.105,
        reviews_per_paper=3,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReviewConfig(submissions=0)
        with pytest.raises(ValueError):
            ReviewConfig(acceptance_rate=0)
        with pytest.raises(ValueError):
            ReviewConfig(submission_far=1.2)
        with pytest.raises(ValueError):
            ReviewConfig(reviews_per_paper=0)
        with pytest.raises(ValueError):
            ReviewConfig(review_noise=-1)


class TestProcess:
    def test_unbiased_preserves_far_in_expectation(self, base):
        rng = np.random.default_rng(0)
        far = ReviewProcess(base).expected_accepted_far(rng, cycles=300)
        assert far == pytest.approx(base.submission_far, abs=0.015)

    def test_bias_suppresses_women(self, base):
        from dataclasses import replace

        rng = np.random.default_rng(1)
        biased = replace(base, bias=0.6)
        far = ReviewProcess(biased).expected_accepted_far(rng, cycles=300)
        assert far < base.submission_far - 0.02

    def test_double_blind_immune_to_bias(self, base):
        from dataclasses import replace

        rng = np.random.default_rng(2)
        cfg = replace(base, bias=1.5, double_blind=True)
        far = ReviewProcess(cfg).expected_accepted_far(rng, cycles=300)
        assert far == pytest.approx(base.submission_far, abs=0.015)

    def test_favourable_bias_raises_far(self, base):
        from dataclasses import replace

        rng = np.random.default_rng(3)
        cfg = replace(base, bias=-0.6)
        far = ReviewProcess(cfg).expected_accepted_far(rng, cycles=300)
        assert far > base.submission_far + 0.02

    def test_acceptance_count(self, base):
        out = ReviewProcess(base).run(np.random.default_rng(4))
        assert out.accepted_papers == round(400 * 0.2)
        assert out.accepted.n == out.accepted_papers

    def test_far_gap_sign(self, base):
        from dataclasses import replace

        out = ReviewProcess(replace(base, bias=1.0)).run(np.random.default_rng(5))
        assert out.far_gap <= 0.02  # strong bias rarely favours women


class TestInference:
    @pytest.fixture(scope="class")
    def sweep(self, base):
        return bias_sweep(base, biases=(0.0, 0.25, 0.5, 1.0), cycles=120, seed=9)

    def test_sweep_monotone(self, sweep):
        fars = sweep.accepted_far
        assert all(a >= b - 0.01 for a, b in zip(fars, fars[1:]))

    def test_suppression_zero_at_zero_bias(self, sweep):
        assert sweep.suppression()[0] == pytest.approx(0.0, abs=0.02)

    def test_bias_for_gap_interpolates(self, sweep):
        mid_gap = sweep.suppression()[2]
        b = sweep.bias_for_gap(mid_gap)
        assert 0.2 < b < 0.8

    def test_detectable_bias_at_paper_sample_sizes(self, sweep):
        """§3.1's caveat quantified: with 417/83 leads, small biases are
        statistically invisible."""
        min_bias = detectable_bias(sweep, n_single=417, n_double=83)
        assert min_bias >= 0.5  # only large penalties reach significance

    def test_detectable_bias_huge_samples(self, sweep):
        min_bias = detectable_bias(sweep, n_single=50_000, n_double=50_000)
        assert min_bias <= 0.25
