"""Seed-stability analysis of the reproduction.

The synthetic world is random; a reviewer's first question is "how much
do the measured headline numbers move across seeds?"  This module runs
the pipeline under several seeds and reports mean ± sd for each headline
statistic, so EXPERIMENTS.md's single-seed values can be read with the
right error bars.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis import blind_report, far_report, pc_report
from repro.pipeline import RunConfig, run_pipeline
from repro.synth import WorldConfig
from repro.util.parallel import ParallelConfig, parallel_map

__all__ = ["StatSummary", "StabilityReport", "stability_report"]


@dataclass(frozen=True)
class StatSummary:
    """One statistic across seeds."""

    name: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def sd(self) -> float:
        return float(np.std(self.values, ddof=1)) if len(self.values) > 1 else 0.0

    def interval(self) -> tuple[float, float]:
        return (self.mean - 2 * self.sd, self.mean + 2 * self.sd)


@dataclass(frozen=True)
class StabilityReport:
    seeds: tuple[int, ...]
    scale: float
    stats: tuple[StatSummary, ...]

    def stat(self, name: str) -> StatSummary:
        for s in self.stats:
            if s.name == name:
                return s
        raise KeyError(f"no statistic {name!r}")


def _headlines_for_seed(args: tuple[int, float]) -> dict[str, float]:
    """Module-level worker: one seed's headline statistics."""
    seed, scale = args
    result = run_pipeline(
        RunConfig(world=WorldConfig(seed=seed, scale=scale, include_timeline=False))
    )
    ds = result.dataset
    far = far_report(ds)
    pc = pc_report(ds)
    blind = blind_report(ds)
    return {
        "far_overall_pct": far.overall.pct,
        "far_sc_pct": far.conference("SC").authors.pct,
        "lead_far_pct": far.lead_overall.pct,
        "last_far_pct": far.last_overall.pct,
        "pc_far_pct": pc.memberships.pct,
        "blind_gap_pct": blind.authors_single.pct - blind.authors_double.pct,
        "unknown_pct": 100
        * ds.unknown_count()
        / max(1, ds.researchers.num_rows),
    }


def stability_report(
    seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
    scale: float = 0.5,
    parallel: ParallelConfig | None = None,
) -> StabilityReport:
    """Run the pipeline per seed and summarize the headline spread."""
    if len(seeds) < 2:
        raise ValueError("stability needs at least two seeds")
    rows = parallel_map(_headlines_for_seed, [(s, scale) for s in seeds], parallel)
    names = list(rows[0].keys())
    stats = tuple(
        StatSummary(name=n, values=tuple(r[n] for r in rows)) for n in names
    )
    return StabilityReport(seeds=tuple(seeds), scale=scale, stats=stats)
