#!/usr/bin/env python3
"""The §2 sensitivity analysis, interactively.

Usage::

    python examples/sensitivity_audit.py [--seed N]

The paper excludes the 144 researchers (3.03%) whose gender could not be
assigned and verifies that forcing them all to women and then all to men
changes no observation.  This example reproduces that audit on the
synthetic dataset and prints how every checked claim fares, plus the FAR
under each forcing.
"""

from __future__ import annotations

import argparse

from repro.analysis import sensitivity_report
from repro.pipeline import RunConfig, run_pipeline
from repro.synth import WorldConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    result = run_pipeline(RunConfig(world=WorldConfig(seed=args.seed, scale=1.0)))
    ds = result.dataset
    rep = sensitivity_report(ds)

    n = ds.researchers.num_rows
    print(f"researchers: {n}; unknown gender: {rep.unknowns} "
          f"({100*rep.unknowns/n:.2f}%)  [paper: 144 of ~4800, 3.03%]")
    print()
    print("overall FAR under each scenario:")
    for scenario, value in rep.far_values.items():
        print(f"  {scenario:<10s} {100*value:6.2f}%")
    print()
    print(f"{'observation':<38s} {'base':>5s} {'allF':>5s} {'allM':>5s}  stable")
    for o in rep.observations:
        print(
            f"{o.name:<38s} {str(o.baseline):>5s} {str(o.all_women):>5s} "
            f"{str(o.all_men):>5s}  {'yes' if o.stable else 'NO  <-- FLIPPED'}"
        )
    print()
    verdict = "no observation flips" if rep.all_stable else "OBSERVATIONS FLIPPED"
    print(f"verdict: {verdict} (paper: 'None of our observations were "
          "subsequently changed in either direction or statistical significance')")


if __name__ == "__main__":
    main()
