"""Tests for validation, formatting, and timing helpers."""

import math
import time

import pytest

from repro.util.formatting import fmt_count, fmt_float, fmt_pct
from repro.util.timing import StageTimer
from repro.util.validation import check_fraction, check_in, check_nonnegative, check_positive


class TestValidation:
    def test_fraction_ok(self):
        assert check_fraction(0.5, "x") == 0.5
        assert check_fraction(0, "x") == 0.0
        assert check_fraction(1, "x") == 1.0

    def test_fraction_bad(self):
        with pytest.raises(ValueError, match="x must be in"):
            check_fraction(1.5, "x")

    def test_nonnegative(self):
        assert check_nonnegative(0, "n") == 0
        with pytest.raises(ValueError):
            check_nonnegative(-1, "n")

    def test_positive(self):
        assert check_positive(2, "n") == 2
        with pytest.raises(ValueError):
            check_positive(0, "n")

    def test_check_in(self):
        assert check_in("a", {"a", "b"}, "opt") == "a"
        with pytest.raises(ValueError, match="opt must be one of"):
            check_in("c", {"a", "b"}, "opt")


class TestFormatting:
    def test_fmt_count(self):
        assert fmt_count(1234567) == "1,234,567"

    def test_fmt_pct(self):
        assert fmt_pct(0.0991) == "9.91%"
        assert fmt_pct(0.5, digits=0) == "50%"

    def test_fmt_pct_nan(self):
        assert fmt_pct(float("nan")) == "n/a"

    def test_fmt_float(self):
        assert fmt_float(3.14159, 3) == "3.14"
        assert fmt_float(float("nan")) == "n/a"


class TestStageTimer:
    def test_records_durations(self):
        t = StageTimer()
        with t.stage("a"):
            time.sleep(0.01)
        assert t.durations["a"] >= 0.01
        assert t.total() == sum(t.durations.values())

    def test_accumulates_repeated_stages(self):
        t = StageTimer()
        for _ in range(2):
            with t.stage("s"):
                time.sleep(0.002)
        assert t.durations["s"] >= 0.004

    def test_report_contains_stage_names(self):
        t = StageTimer()
        with t.stage("harvest"):
            pass
        out = t.report()
        assert "harvest" in out and "total" in out
