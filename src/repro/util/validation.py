"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any, Collection

__all__ = ["check_fraction", "check_nonnegative", "check_positive", "check_in"]


def check_fraction(value: float, name: str) -> float:
    """Ensure ``value`` lies in [0, 1]; return it as float."""
    v = float(value)
    if not 0.0 <= v <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return v


def check_nonnegative(value: float, name: str) -> float:
    """Ensure ``value`` >= 0; return it as float."""
    v = float(value)
    if v < 0:
        raise ValueError(f"{name} must be nonnegative, got {value!r}")
    return v


def check_positive(value: float, name: str) -> float:
    """Ensure ``value`` > 0; return it as float."""
    v = float(value)
    if v <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return v


def check_in(value: Any, options: Collection[Any], name: str) -> Any:
    """Ensure ``value`` is one of ``options``; return it unchanged."""
    if value not in options:
        opts = ", ".join(sorted(repr(o) for o in options))
        raise ValueError(f"{name} must be one of {opts}; got {value!r}")
    return value
