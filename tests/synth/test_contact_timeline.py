"""Tests for contact generation and the SC/ISC timeline."""

import numpy as np
import pytest

from repro.calibration.targets import SC_ISC_TIMELINE
from repro.geo import classify_affiliation, email_country
from repro.pipeline.enrich import sector_from_email
from repro.synth.contact import make_affiliation, make_email
from repro.synth.timeline import build_timeline


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestAffiliations:
    def test_edu_classifiable(self, rng):
        for _ in range(30):
            text = make_affiliation("EDU", "DE", rng)
            guess = classify_affiliation(text)
            assert guess.sector is not None and guess.sector.value == "EDU"
            assert guess.country is not None and guess.country.cca2 == "DE"

    def test_gov_us_classifiable(self, rng):
        for _ in range(30):
            text = make_affiliation("GOV", "US", rng)
            guess = classify_affiliation(text)
            assert guess.sector.value == "GOV"

    def test_gov_intl_classifiable(self, rng):
        for _ in range(30):
            text = make_affiliation("GOV", "FR", rng)
            assert classify_affiliation(text).sector.value == "GOV"

    def test_com_classifiable(self, rng):
        for _ in range(30):
            text = make_affiliation("COM", "US", rng)
            assert classify_affiliation(text).sector.value == "COM"

    def test_unknown_country_has_no_hint(self, rng):
        text = make_affiliation("EDU", None, rng)
        assert classify_affiliation(text).country is None


class TestEmails:
    def test_us_edu(self, rng):
        email = make_email("Ann Smith", "EDU", "US", rng)
        assert email.endswith(".edu")
        assert email_country(email).cca2 == "US"
        assert sector_from_email(email) == "EDU"

    def test_intl_edu_cctld(self, rng):
        email = make_email("Ann Smith", "EDU", "JP", rng)
        assert email_country(email).cca2 == "JP"
        assert sector_from_email(email) == "EDU"  # .ac. label

    def test_us_gov(self, rng):
        email = make_email("Bob Jones", "GOV", "US", rng)
        assert email.endswith(".gov")
        assert sector_from_email(email) == "GOV"

    def test_com_has_no_country_signal(self, rng):
        email = make_email("Cy Borg", "COM", "DE", rng)
        assert email_country(email) is None
        assert sector_from_email(email) == "COM"

    def test_local_part_from_name(self, rng):
        email = make_email("Jürgen K. Müller", "EDU", "DE", rng)
        local = email.split("@")[0]
        assert "jurgen" in local and "muller" in local


class TestTimeline:
    def test_ten_editions(self, rng):
        editions = build_timeline(lambda n: n, rng)
        assert len(editions) == 10
        assert {(e.conference, e.year) for e in editions} == {
            (c, y) for c, ys in SC_ISC_TIMELINE.items() for y in ys
        }

    def test_far_tracks_targets(self, rng):
        editions = build_timeline(lambda n: n, rng)
        for e in editions:
            target = SC_ISC_TIMELINE[e.conference][e.year]
            assert e.far == pytest.approx(target, abs=0.012)

    def test_attendance_only_for_sc(self, rng):
        editions = build_timeline(lambda n: n, rng)
        for e in editions:
            if e.conference == "SC":
                assert e.attendance_women_share is not None
            else:
                assert e.attendance_women_share is None

    def test_sizes_scale(self, rng):
        small = build_timeline(lambda n: max(1, round(n * 0.1)), rng)
        assert all(e.authors < 120 for e in small)
