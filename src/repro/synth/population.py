"""Construction of the researcher population.

Builds two pools calibrated to the paper:

- the **author pool** — 1,885 unique coauthors (at scale 1.0) with the
  global 9.9% female share, countries raked to Table 3's author column
  and Table 2's country weights, sectors per §5.3;
- the **PC pool** — 908 unique PC members, a configurable fraction of
  whom also appear in the author pool, with the higher PC female share
  and the PC columns of Table 3.

Every person also receives the attributes the harvesting pipeline will
later *rediscover*: a culturally plausible name, manual web evidence (or
the lack of it), an email address, and an affiliation string — with the
evidence quotas set so the inference cascade reproduces the paper's
95.18% / 1.79% / 3.03% coverage split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.calibration.allocate import allocate_counts, allocate_two_way, split_women
from repro.calibration.targets import (
    COUNTRY_TARGETS,
    REGION_ROLE_TARGETS,
    SECTOR_SHARES,
    TOTALS,
)
from repro.gender.model import Gender
from repro.gender.webevidence import EvidenceKind
from repro.geo.countries import all_countries, country_by_code
from repro.names.bank import default_bank
from repro.names.corpora import cluster_for_country
from repro.synth.config import WorldConfig
from repro.util.rng import RngStream

__all__ = ["PersonSpec", "Population", "PopulationBuilder"]


@dataclass
class PersonSpec:
    """A researcher before careers are attached."""

    person_id: str
    gender: str                  # 'F' | 'M' (true gender; always binary)
    country_code: str | None     # None = unresolvable country
    sector: str                  # 'COM' | 'EDU' | 'GOV'
    full_name: str = ""
    evidence: EvidenceKind = EvidenceKind.NONE
    is_author: bool = False
    is_pc: bool = False


@dataclass(frozen=True)
class PopulationPlan:
    """Pool sizes for a world build.

    The paper's world derives these from TOTALS; the §6 universe
    extension derives them from an arbitrary conference-target list via
    :func:`plan_from_targets`.
    """

    unique_authors: int
    women_authors: int
    unique_pc: int
    women_pc: int


def plan_from_targets(
    targets,
    author_repeat: float = 1.12,
    pc_repeat: float = 1.344,
) -> PopulationPlan:
    """Derive pool sizes from conference targets.

    ``author_repeat``/``pc_repeat`` are the cross-conference multiplicity
    factors observed in the paper's data (2,111 conference-unique authors
    over 1,885 people; 1,220 PC memberships over 908 members).
    """
    uniq_slots = sum(t.unique_authors for t in targets)
    pc_slots = sum(t.pc_size for t in targets)
    n_authors = max(2, int(round(uniq_slots / author_repeat)))
    n_pc = max(2, int(round(pc_slots / pc_repeat)))
    far = (
        sum(t.unique_authors * t.far for t in targets) / uniq_slots
        if uniq_slots
        else 0.1
    )
    pc_far = sum(t.pc_women for t in targets) / pc_slots if pc_slots else 0.18
    return PopulationPlan(
        unique_authors=n_authors,
        women_authors=max(1, int(round(n_authors * far))),
        unique_pc=n_pc,
        women_pc=max(1, int(round(n_pc * pc_far))),
    )


@dataclass
class Population:
    """The generated pools.

    ``authors`` and ``pc_members`` overlap: a person flagged both
    ``is_author`` and ``is_pc`` appears in both lists (same object).
    """

    authors: list[PersonSpec] = field(default_factory=list)
    pc_members: list[PersonSpec] = field(default_factory=list)

    def everyone(self) -> list[PersonSpec]:
        seen: dict[str, PersonSpec] = {}
        for p in self.authors + self.pc_members:
            seen.setdefault(p.person_id, p)
        return list(seen.values())


# countries per region in the embedded dataset (for remainder spreading)
def _region_countries() -> dict[str, list[str]]:
    by_region: dict[str, list[str]] = {}
    for c in all_countries():
        by_region.setdefault(c.subregion, []).append(c.cca2)
    return by_region


class PopulationBuilder:
    """Builds the calibrated population for one world."""

    def __init__(
        self,
        config: WorldConfig,
        stream: RngStream,
        plan: "PopulationPlan | None" = None,
    ) -> None:
        self.cfg = config
        self.stream = stream
        self._bank = default_bank()
        self._next_id = 0
        self._plan = plan

    # ------------------------------------------------------------ id/gen

    def _new_id(self) -> str:
        pid = f"p{self._next_id:06d}"
        self._next_id += 1
        return pid

    # ----------------------------------------------------------- geography

    def _country_gender_cells(
        self, role: str, pool_size: int, women_total: int
    ) -> list[tuple[str | None, str, int]]:
        """Allocate (country, gender) counts for a pool.

        Returns a list of ``(country_code_or_None, 'F'|'M', count)``.
        Region totals come from Table 3's column for ``role``; the
        unidentified remainder becomes country=None cells.  Within a
        region, countries are weighted by Table 2/Fig. 7 totals and the
        region's women count is spread over countries in proportion to
        their published female shares (two-way allocation).
        """
        regions = REGION_ROLE_TARGETS
        if role == "author":
            region_totals = np.array([r.author_total for r in regions], dtype=float)
            region_pct_w = np.array([r.author_pct_women for r in regions]) / 100.0
        elif role == "pc":
            region_totals = np.array([r.pc_total for r in regions], dtype=float)
            region_pct_w = np.array([r.pc_pct_women for r in regions]) / 100.0
        else:
            raise ValueError(f"unknown role {role!r}")

        identified_share = float(region_totals.sum()) / (
            TOTALS["author_positions"] if role == "author" else TOTALS["pc_memberships"]
        )
        n_identified = int(round(pool_size * identified_share))
        n_unknown = pool_size - n_identified

        region_counts = allocate_counts(region_totals, n_identified)
        region_women = np.minimum(
            np.round(region_counts * region_pct_w).astype(np.int64), region_counts
        )
        # Reconcile with the pool's total women target: adjust the largest
        # regions first so no region flips sign.
        women_known = women_total - self._unknown_pool_women(n_unknown, role)
        diff = int(women_known - region_women.sum())
        # absorb the reconciliation in regions that already have many
        # women, so near-zero regions (e.g. Eastern Asia PC) stay pure
        order = np.argsort(-region_women)
        i = 0
        while diff != 0 and i < 10 * len(order):
            j = order[i % len(order)]
            if diff > 0 and region_women[j] < region_counts[j]:
                region_women[j] += 1
                diff -= 1
            elif diff < 0 and region_women[j] > 0:
                region_women[j] -= 1
                diff += 1
            i += 1

        by_region = _region_countries()
        country_weight = {t.cca2: float(t.total) for t in COUNTRY_TARGETS}
        country_pct_w = {t.cca2: t.pct_women / 100.0 for t in COUNTRY_TARGETS}

        # Table 2's country shares combine authors + PC seats; within a
        # region the role-specific share differs (e.g. Eastern Asia: 11.9%
        # women among authors but 2.9% among PC).  Rescale each country's
        # combined share by (region role share / region combined share) to
        # get role-consistent seeds.
        region_combined: dict[str, float] = {}
        for r in regions:
            tot = r.author_total + r.pc_total
            wom = r.author_pct_women / 100.0 * r.author_total + (
                r.pc_pct_women / 100.0 * r.pc_total
            )
            region_combined[r.region] = wom / tot if tot else 0.0

        cells: list[tuple[str | None, str, int]] = []
        for r_idx, region in enumerate(regions):
            total = int(region_counts[r_idx])
            women = int(region_women[r_idx])
            if total == 0:
                continue
            codes = by_region.get(region.region, [])
            if not codes:
                cells.append((None, "F", women))
                cells.append((None, "M", total - women))
                continue
            listed = [c for c in codes if c in country_weight]
            unlisted = [c for c in codes if c not in country_weight]
            # Listed countries receive counts proportional to their Table 2
            # totals but capped so that any excess region mass spills into
            # the region's unlisted countries instead of inflating the
            # published ones.
            listed_w = np.array([country_weight[c] for c in listed], dtype=float)
            listed_total_target = float(listed_w.sum())
            counts = np.zeros(len(listed) + len(unlisted), dtype=np.int64)
            if listed_total_target > 0 and total > 0:
                listed_share = min(1.0, listed_total_target / max(total, 1))
                n_listed = (
                    min(total, int(round(total * listed_share)))
                    if total > listed_total_target
                    else total
                )
                # never allocate more to listed countries than proportional
                n_listed = min(n_listed, total)
                counts[: len(listed)] = allocate_counts(listed_w, n_listed)
            spill = total - int(counts.sum())
            if spill > 0:
                if unlisted:
                    counts[len(listed):] = allocate_counts(
                        np.ones(len(unlisted)), spill
                    )
                else:
                    counts[: len(listed)] += allocate_counts(
                        np.maximum(listed_w, 1.0), spill
                    ) if len(listed) else 0
            all_codes = listed + unlisted
            # role-consistent per-country women seeds
            role_pct = (
                region.author_pct_women if role == "author" else region.pc_pct_women
            ) / 100.0
            combined = region_combined[region.region]
            adj = role_pct / combined if combined > 0 else 1.0
            base = women / total if total else 0.0
            shares = np.array(
                [
                    np.clip(country_pct_w.get(c, base) * adj, 0.005, 0.95)
                    for c in all_codes
                ]
            )
            seed = np.stack(
                [counts * shares, counts * (1.0 - shares)], axis=1
            )
            seed = np.where(seed <= 0, 1e-9, seed)
            if counts.sum() > 0:
                table = allocate_two_way(
                    counts.astype(float),
                    np.array([women, total - women], dtype=float),
                    seed=seed,
                )
                for c_idx, code in enumerate(all_codes):
                    if table[c_idx, 0]:
                        cells.append((code, "F", int(table[c_idx, 0])))
                    if table[c_idx, 1]:
                        cells.append((code, "M", int(table[c_idx, 1])))
        # unknown-country researchers
        unknown_women = self._unknown_pool_women(n_unknown, role)
        if n_unknown > 0:
            cells.append((None, "F", unknown_women))
            cells.append((None, "M", n_unknown - unknown_women))
        return cells

    @staticmethod
    def _unknown_pool_women(n_unknown: int, role: str) -> int:
        """Women among unknown-country researchers (at the pool's base rate)."""
        base = 0.099 if role == "author" else 0.1846
        return int(round(n_unknown * base))

    # ------------------------------------------------------------- sectors

    def _assign_sectors(self, people: list[PersonSpec], rng: np.random.Generator) -> None:
        """Sector quotas over a pool (COM 8.6 / EDU 72.8 / GOV 18.6)."""
        n = len(people)
        counts = allocate_counts(
            np.array([SECTOR_SHARES["COM"], SECTOR_SHARES["EDU"], SECTOR_SHARES["GOV"]]),
            n,
        )
        labels = np.array(
            ["COM"] * counts[0] + ["EDU"] * counts[1] + ["GOV"] * counts[2],
            dtype=object,
        )
        rng.shuffle(labels)
        for p, s in zip(people, labels):
            p.sector = str(s)

    # ------------------------------------------------------- names/evidence

    def _assign_names_and_evidence(
        self, people: list[PersonSpec], rng: np.random.Generator
    ) -> None:
        """Names + manual-evidence quotas producing the §2 coverage split.

        manual (pronoun or photo): 95.18% of the pool;
        of the remaining 4.82%: 37% genderize-resolvable names (→1.79%),
        63% ambiguous names (→3.03% unassigned).
        """
        n = len(people)
        n_manual = int(round(n * TOTALS["manual_coverage"]))
        rest = n - n_manual
        n_genderize = int(round(n * TOTALS["genderize_coverage"]))
        n_genderize = min(n_genderize, rest)
        idx = rng.permutation(n)
        manual_idx = set(int(i) for i in idx[:n_manual])
        genderize_idx = set(int(i) for i in idx[n_manual : n_manual + n_genderize])
        taken_names: set[str] = set()
        alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        for i, p in enumerate(people):
            cluster = (
                cluster_for_country(p.country_code)
                if p.country_code
                else str(rng.choice(
                    ["western", "east_asian", "south_asian", "middle_eastern"],
                    p=[0.55, 0.30, 0.10, 0.05],
                ))
            )
            surname = self._bank.sample_surname(cluster, rng)
            if i in manual_idx:
                fore = self._bank.sample_forename(p.gender, cluster, rng)
                # pronoun pages dominate; photos are the fallback (§2 fn.2)
                p.evidence = (
                    EvidenceKind.PRONOUN if rng.random() < 0.85 else EvidenceKind.PHOTO
                )
            elif i in genderize_idx:
                fore = self._bank.sample_confident_forename(p.gender, cluster, rng)
                p.evidence = EvidenceKind.NONE
            else:
                fore = self._bank.sample_ambiguous_forename(p.gender, cluster, rng)
                p.evidence = EvidenceKind.NONE
            # Proceedings names frequently carry a middle initial; using
            # one (and retrying on collision) keeps distinct researchers
            # distinct at a realistic rate.  A residual collision rate
            # remains by design: after a few retries, duplicates stand —
            # the identity-resolution stage must cope with them.
            name = f"{fore} {surname}"
            for _attempt in range(3):
                candidate = name
                if rng.random() < 0.6 or _attempt > 0:
                    initial = alphabet[int(rng.integers(26))]
                    candidate = f"{fore} {initial}. {surname}"
                if candidate.lower() not in taken_names:
                    name = candidate
                    break
            taken_names.add(name.lower())
            p.full_name = name

    # --------------------------------------------------------------- build

    def _make_pool(
        self,
        n: int,
        women: int,
        role: str,
        rng: np.random.Generator,
    ) -> list[PersonSpec]:
        cells = self._country_gender_cells(role, n, women)
        # cells may not sum exactly to n after reconciliations; fix up on
        # the largest cell.
        total = sum(c for _, _, c in cells)
        if total != n and cells:
            code, g, c = max(cells, key=lambda t: t[2])
            cells[cells.index((code, g, c))] = (code, g, c + (n - total))
        people: list[PersonSpec] = []
        for code, g, count in cells:
            for _ in range(max(0, count)):
                people.append(
                    PersonSpec(
                        person_id=self._new_id(),
                        gender=g,
                        country_code=code,
                        sector="EDU",
                    )
                )
        rng.shuffle(people)  # avoid country-ordered ids leaking structure
        return people

    def build(self) -> Population:
        cfg = self.cfg
        rng = self.stream.child("population").generator()

        if self._plan is not None:
            plan = self._plan
            n_authors = cfg.scaled(plan.unique_authors)
            women_authors = max(1, int(round(n_authors * plan.women_authors / plan.unique_authors)))
            n_pc = cfg.scaled(plan.unique_pc)
            women_pc = max(1, int(round(n_pc * plan.women_pc / plan.unique_pc)))
        else:
            n_authors = cfg.scaled(TOTALS["unique_coauthors"])
            women_authors = int(round(n_authors * TOTALS["far_overall"]))
            n_pc = cfg.scaled(TOTALS["unique_pc_members"])
            women_pc = int(round(n_pc * TOTALS["pc_far"]))
        authors = self._make_pool(n_authors, women_authors, "author", rng)
        for p in authors:
            p.is_author = True
        n_overlap = int(round(n_pc * cfg.pc_author_overlap))
        # overlap members come from the author pool at the PC women rate,
        # so the PC pool's regional gender mix stays on Table 3's targets
        overlap_women = min(int(round(n_overlap * TOTALS["pc_far"])), women_pc)
        women_pool = [p for p in authors if p.gender == "F"]
        men_pool = [p for p in authors if p.gender == "M"]
        overlap_women = min(overlap_women, len(women_pool))
        n_overlap_men = min(n_overlap - overlap_women, len(men_pool))
        # Weight overlap picks by how over/under-represented each region is
        # on PCs relative to authorship (Table 3's two columns), so the PC
        # pool's regional gender mix is not polluted by the author mix —
        # e.g. Eastern Asia has 11.9% women among authors but only 2.9% on
        # PCs, so East-Asian women should rarely cross over.
        from repro.geo.regions import region_of_country

        pc_weight: dict[str, dict[str, float]] = {"F": {}, "M": {}}
        for rt in REGION_ROLE_TARGETS:
            a_w = rt.author_pct_women / 100.0
            p_w = rt.pc_pct_women / 100.0
            a_m, p_m = 1.0 - a_w, 1.0 - p_w
            a_tot = max(rt.author_total, 1)
            p_tot = rt.pc_total
            pc_weight["F"][rt.region] = (p_w * p_tot) / max(a_w * a_tot, 0.5)
            pc_weight["M"][rt.region] = (p_m * p_tot) / max(a_m * a_tot, 0.5)

        def overlap_pick(pool: list[PersonSpec], k: int, gender: str) -> list[PersonSpec]:
            if k <= 0:
                return []
            w = np.array(
                [
                    pc_weight[gender].get(
                        region_of_country(p.country_code) if p.country_code else None,
                        0.3,
                    )
                    if p.country_code
                    else 0.3
                    for p in pool
                ],
                dtype=float,
            )
            w = np.maximum(w, 1e-3)
            idx = rng.choice(len(pool), size=k, replace=False, p=w / w.sum())
            return [pool[int(i)] for i in idx]

        overlap = overlap_pick(women_pool, overlap_women, "F") + overlap_pick(
            men_pool, n_overlap_men, "M"
        )
        for p in overlap:
            p.is_pc = True

        n_new = n_pc - len(overlap)
        new_women = women_pc - overlap_women
        new_women = min(max(new_women, 0), n_new)
        pc_only = self._make_pool(n_new, new_women, "pc", rng)
        for p in pc_only:
            p.is_pc = True

        pop = Population(authors=authors, pc_members=overlap + pc_only)
        everyone = pop.everyone()
        self._assign_sectors(everyone, rng)
        self._assign_names_and_evidence(everyone, rng)
        return pop
