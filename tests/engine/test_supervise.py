"""Supervised DAG execution: retries, deadlines, failure isolation.

Toy graphs with module-level bodies (picklable for worker pools) prove
the supervision contract without the cost of full pipeline runs:

- an unsupervised run keeps the historical fail-fast semantics;
- a supervised failure marks only its downstream as skipped while
  independent branches complete (``EngineRun.failed``/``skipped``);
- results are identical across ``workers=1`` and ``workers=4`` even
  when one node of a generation fails;
- chaos-injected faults retry with virtual-clock backoff and heal;
- hung nodes surface as ``node.timeout`` — virtually under chaos,
  on the wall clock under :func:`watchdog_map`.
"""

import time

import pytest

from repro.engine import (
    EngineConfig,
    NodePolicy,
    StageGraph,
    StageNode,
    SupervisorConfig,
    run_dag,
    watchdog_map,
)
from repro.engine.supervise import DEADLINE_ERROR
from repro.faults.chaos import ChaosConfig, ChaosKind, ChaosPlan
from repro.obs import ObsContext
from repro.obs.context import use as obs_use
from repro.util.parallel import TaskError

pytestmark = [pytest.mark.engine, pytest.mark.chaos]

NO_RETRY = SupervisorConfig(default=NodePolicy(max_attempts=1))


# ------------------------------------------------------------- node bodies
# module-level so worker processes can pickle them


def _ok_a(params, inputs):
    return {"a": 1}


def _ok_c(params, inputs):
    return {"c": 3}


def _boom(params, inputs):
    raise RuntimeError("boom")


def _downstream(params, inputs):
    return {"down": inputs["boom"] * 2}


def _work(params, inputs):
    return {"work": inputs["a"] + 1}


def _omits(params, inputs):
    return {}  # declared outputs never produced


def _sleepy(item):
    time.sleep(item)
    return item


# ------------------------------------------------------------------ graphs


def _failing_graph() -> StageGraph:
    """gen0: a, boom, c (independent); gen1: down (needs boom)."""
    return StageGraph(
        nodes=[
            StageNode(name="a", fn=_ok_a),
            StageNode(name="boom", fn=_boom),
            StageNode(name="c", fn=_ok_c),
            StageNode(name="down", fn=_downstream, inputs=("boom",), outputs=("down",)),
        ]
    )


def _clean_graph() -> StageGraph:
    return StageGraph(
        nodes=[
            StageNode(name="a", fn=_ok_a),
            StageNode(name="c", fn=_ok_c),
            StageNode(name="work", fn=_work, inputs=("a",), outputs=("work",)),
        ]
    )


def _find_chaos(node: str, first: ChaosKind, weights) -> ChaosConfig:
    """A seed whose plan faults exactly ``node``, exactly on attempt 1.

    The other nodes of :func:`_clean_graph` must draw clean so the test
    observes a single injected fault and a single retry.
    """
    others = [n for n in ("a", "c", "work") if n != node]
    for seed in range(5000):
        cfg = ChaosConfig(rate=0.6, seed=seed, node_weights=weights)
        plan = ChaosPlan(cfg)
        if (
            plan.draw_node(node, 1) is first
            and plan.draw_node(node, 2) is None
            and all(plan.draw_node(n, 1) is None for n in others)
        ):
            return cfg
    raise AssertionError(f"no seed faults {node!r} once with {first}")


class TestUnsupervisedContract:
    def test_node_exception_still_aborts(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_dag(_failing_graph(), params={})

    def test_clean_run_has_empty_accounting(self):
        run = run_dag(_clean_graph(), params={})
        assert run.completed
        assert run.failed == {} and run.skipped == {}
        assert run.retries == 0 and run.virtual_time == 0.0
        assert all(r.status == "ok" and r.attempts == 1 for r in run.results)


class TestFailureIsolation:
    def test_failed_node_skips_only_downstream(self):
        run = run_dag(
            _failing_graph(), params={}, engine=EngineConfig(supervise=NO_RETRY)
        )
        assert run.failed.keys() == {"boom"}
        assert "RuntimeError: boom" in run.failed["boom"]
        assert run.skipped == {"down": "blocked_on:boom"}
        # the independent branches completed untouched
        assert run.artifacts["a"] == 1 and run.artifacts["c"] == 3
        assert not run.completed
        statuses = {r.node: r.status for r in run.results}
        assert statuses == {"a": "ok", "boom": "failed", "c": "ok", "down": "skipped"}

    def test_omitted_declared_output_fails_the_node(self):
        graph = StageGraph(
            nodes=[StageNode(name="liar", fn=_omits, outputs=("liar",))]
        )
        run = run_dag(graph, params={}, engine=EngineConfig(supervise=NO_RETRY))
        assert "liar" in run.failed
        assert "did not produce declared outputs" in run.failed["liar"]

    def test_failed_and_skipped_events_emitted(self):
        obs = ObsContext(seed=1)
        with obs_use(obs):
            run_dag(
                _failing_graph(), params={}, engine=EngineConfig(supervise=NO_RETRY)
            )
        assert [e.name for e in obs.events.by_type("node.failed")] == ["boom"]
        skipped = obs.events.by_type("node.skipped")
        assert [(e.name, e.attrs["blocked_on"]) for e in skipped] == [
            ("down", "boom")
        ]


class TestWorkerCountIndependence:
    """Satellite: identical results across workers=1 vs workers=4 when
    one node of the generation fails mid-run."""

    @staticmethod
    def _snapshot(run):
        return (
            {k: v for k, v in sorted(run.artifacts.items())},
            dict(run.failed),
            dict(run.skipped),
            [(r.node, r.status, r.key, r.cache_hit) for r in run.results],
        )

    def test_parallel_failure_matches_serial(self):
        serial = run_dag(
            _failing_graph(),
            params={},
            engine=EngineConfig(supervise=NO_RETRY, workers=1),
        )
        parallel = run_dag(
            _failing_graph(),
            params={},
            engine=EngineConfig(supervise=NO_RETRY, workers=4),
        )
        assert self._snapshot(parallel) == self._snapshot(serial)

    def test_event_identities_match_across_worker_counts(self):
        # span ids encode the map topology (one pooled call vs N
        # single-item calls), so compare the typed event stream only
        streams = []
        for workers in (1, 4):
            obs = ObsContext(seed=9)
            with obs_use(obs):
                run_dag(
                    _failing_graph(),
                    params={},
                    engine=EngineConfig(supervise=NO_RETRY, workers=workers),
                )
            streams.append(
                [
                    (e.type, e.name, tuple(sorted(e.attrs.items())))
                    for e in obs.events.events
                    if not e.type.startswith("span.")
                ]
            )
        assert streams[0] == streams[1]


class TestChaosRetries:
    def test_injected_exception_heals_on_retry(self):
        chaos = _find_chaos("work", ChaosKind.EXCEPTION, weights=(1.0, 0.0))
        run = run_dag(_clean_graph(), params={}, engine=EngineConfig(chaos=chaos))
        assert run.completed
        assert run.artifacts["work"] == 2
        assert run.retries >= 1
        assert run.virtual_time > 0.0  # backoff was charged
        by_node = {r.node: r for r in run.results}
        assert by_node["work"].attempts == 2

    def test_retry_event_emitted_with_attempt(self):
        chaos = _find_chaos("work", ChaosKind.EXCEPTION, weights=(1.0, 0.0))
        obs = ObsContext(seed=2)
        with obs_use(obs):
            run_dag(_clean_graph(), params={}, engine=EngineConfig(chaos=chaos))
        retries = obs.events.by_type("node.retry")
        assert ("work", 1) in [(e.name, e.attrs["attempt"]) for e in retries]
        injected = obs.events.by_type("fault.injected")
        assert any(e.name == "work" and e.attrs["site"] == "node" for e in injected)

    def test_virtual_hang_becomes_timeout(self):
        chaos = _find_chaos("work", ChaosKind.HANG, weights=(0.0, 1.0))
        obs = ObsContext(seed=3)
        with obs_use(obs):
            run = run_dag(
                _clean_graph(), params={}, engine=EngineConfig(chaos=chaos)
            )
        assert run.completed  # the retry after the hang succeeded
        timeouts = obs.events.by_type("node.timeout")
        assert [e.name for e in timeouts] == ["work"]
        # the clock was charged what a watchdog would have waited
        assert run.virtual_time >= chaos.hang_cost

    def test_exhausted_attempts_fail_deterministically(self):
        chaos = ChaosConfig(rate=1.0, seed=5, node_weights=(1.0, 0.0))
        policy = SupervisorConfig(default=NodePolicy(max_attempts=2))
        a = run_dag(
            _clean_graph(),
            params={},
            engine=EngineConfig(supervise=policy, chaos=chaos),
        )
        b = run_dag(
            _clean_graph(),
            params={},
            engine=EngineConfig(supervise=policy, chaos=chaos),
        )
        assert a.failed and a.failed == b.failed
        assert a.skipped == b.skipped
        assert a.virtual_time == b.virtual_time
        by_node = {r.node: r for r in a.results}
        assert all(
            by_node[n].attempts == 2 for n in a.failed
        )


class TestWallWatchdog:
    def test_deadline_cuts_off_hung_task(self):
        results = watchdog_map(
            _sleepy, [0.05, 2.0], deadlines=[None, 0.3], workers=2
        )
        assert results[0] == 0.05
        assert isinstance(results[1], TaskError)
        assert results[1].kind == DEADLINE_ERROR

    def test_no_deadlines_behaves_like_parallel_map(self):
        results = watchdog_map(
            _sleepy, [0.01, 0.02], deadlines=[None, None], workers=2
        )
        assert results == [0.01, 0.02]

    def test_misaligned_deadlines_rejected(self):
        with pytest.raises(ValueError, match="align"):
            watchdog_map(_sleepy, [0.01], deadlines=[None, None], workers=2)
