"""KDE tests: normalization, bandwidth, oracle comparison."""

import numpy as np
import pytest
from scipy import stats as ss

from repro.stats import gaussian_kde, silverman_bandwidth

RNG = np.random.default_rng(31)


class TestBandwidth:
    def test_matches_r_nrd0_formula(self):
        v = RNG.normal(0, 2, 500)
        bw = silverman_bandwidth(v)
        sd = np.std(v, ddof=1)
        iqr = np.subtract(*np.percentile(v, [75, 25]))
        expected = 0.9 * min(sd, iqr / 1.34) * 500 ** (-0.2)
        assert bw == pytest.approx(expected)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            silverman_bandwidth(np.array([1.0]))

    def test_degenerate_iqr_falls_back_to_sd(self):
        v = np.array([5.0] * 50 + [6.0])
        assert silverman_bandwidth(v) > 0


class TestKde:
    def test_integrates_to_one(self):
        k = gaussian_kde(RNG.lognormal(1, 1, 400))
        assert k.integral() == pytest.approx(1.0, abs=0.01)

    def test_matches_scipy_on_grid(self):
        v = RNG.normal(0, 1, 200)
        bw = silverman_bandwidth(v)
        grid = np.linspace(-4, 4, 101)
        ours = gaussian_kde(v, grid=grid, bandwidth=bw)
        ref = ss.gaussian_kde(v, bw_method=bw / np.std(v, ddof=1))
        assert np.allclose(ours.density, ref(grid), rtol=1e-6)

    def test_mode_near_true_mode(self):
        v = RNG.normal(5, 1, 2000)
        k = gaussian_kde(v)
        assert abs(k.mode() - 5.0) < 0.3

    def test_log_scale(self):
        v = RNG.lognormal(2, 1, 500)
        k = gaussian_kde(v, log_scale=True)
        # grid is in log10(1+x) space: all nonnegative, modest range
        assert k.grid.min() > -2 and k.grid.max() < 6
        assert k.integral() == pytest.approx(1.0, abs=0.02)

    def test_log_scale_rejects_negative(self):
        with pytest.raises(ValueError):
            gaussian_kde([-1.0, 2.0, 3.0], log_scale=True)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            gaussian_kde([1.0])

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            gaussian_kde([1.0, 2.0], bandwidth=0)

    def test_nan_dropped(self):
        k = gaussian_kde([1.0, np.nan, 2.0, 3.0])
        assert k.n == 3
