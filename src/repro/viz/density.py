"""ASCII line/density plots for the paper's density figures."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["line_plot", "density_plot"]

_GLYPHS = "123456789*"


def line_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Overlay several (x, y) series on one character grid.

    Each series gets a digit glyph; overlapping cells show '*'.
    """
    if not series:
        return "(no data)"
    xs = np.concatenate([np.asarray(x, float) for x, _ in series.values()])
    ys = np.concatenate([np.asarray(y, float) for _, y in series.values()])
    if xs.size == 0:
        return "(no data)"
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_hi = float(ys.max()) or 1.0
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (label, (x, y)) in enumerate(series.items()):
        glyph = _GLYPHS[si % 9]
        for xv, yv in zip(np.asarray(x, float), np.asarray(y, float)):
            if np.isnan(xv) or np.isnan(yv):
                continue
            col = int((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = height - 1 - int(max(0.0, yv) / y_hi * (height - 1))
            cur = grid[row][col]
            grid[row][col] = glyph if cur in (" ", glyph) else "*"
    lines = ["|" + "".join(r) for r in grid]
    lines.append("+" + "-" * width)
    lines.append(f" x: [{x_lo:.3g}, {x_hi:.3g}]  y max: {y_hi:.3g}")
    legend = "  ".join(
        f"{_GLYPHS[i % 9]}={label}" for i, label in enumerate(series.keys())
    )
    lines.append(" " + legend)
    body = "\n".join(lines)
    return f"{title}\n{body}" if title else body


def density_plot(
    samples: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 16,
    title: str | None = None,
    log_scale: bool = False,
) -> str:
    """KDE overlay of several samples (the paper's density figures)."""
    from repro.stats.kde import gaussian_kde

    series = {}
    for label, sample in samples.items():
        v = np.asarray(list(sample), dtype=np.float64)
        v = v[~np.isnan(v)]
        if v.size < 2:
            continue
        k = gaussian_kde(v, log_scale=log_scale)
        series[label] = (k.grid, k.density)
    if not series:
        return "(no data)"
    return line_plot(series, width=width, height=height, title=title)
