#!/usr/bin/env python3
"""The §6 expansion: all 56 systems conferences, compared by subfield.

Usage::

    python examples/systems_universe.py [--seed N] [--scale S]

Generates the 56-conference synthetic systems universe (nine subfields
with literature-profiled representation rates), runs the *same* pipeline
the HPC reproduction uses over all of them, and prints women's author
share per subfield with χ² contrasts against the HPC baseline — the
comparison the paper planned as future work.
"""

from __future__ import annotations

import argparse

from repro.pipeline import run_pipeline
from repro.synth import WorldConfig, build_world
from repro.universe import systems_universe, universe_report
from repro.viz import format_records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=56)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="universe population scale (0.5 ≈ 12k author seats)")
    args = parser.parse_args()

    targets = systems_universe(args.seed)
    print(f"building a {len(targets)}-conference universe "
          f"({sum(t.papers for t in targets)} papers at scale 1.0)...")
    world = build_world(
        WorldConfig(seed=args.seed, scale=args.scale, include_timeline=False),
        targets=targets,
    )
    result = run_pipeline(world=world)
    rep = universe_report(result.dataset, targets)

    rows = []
    for r in rep.rows:
        rows.append(
            {
                "subfield": r.field,
                "confs": r.conferences,
                "women_authors": str(r.authors),
                "chi2_vs_HPC": f"{r.vs_hpc.statistic:.2f}" if r.vs_hpc else "-",
                "p": f"{r.vs_hpc.p_value:.3f}" if r.vs_hpc else "-",
            }
        )
    print(format_records(rows, title="Women among authors, by systems subfield"))
    print()
    print(f"overall: {rep.overall}")
    print(f"subfield heterogeneity: chi2={rep.heterogeneity.statistic:.1f} "
          f"(df={rep.heterogeneity.df}), p={rep.heterogeneity.p_value:.2g}")
    print("\nExpected pattern: HPC and Architecture at the bottom, "
          "Databases/Measurement highest — all far below CS-wide 20-30%.")


if __name__ == "__main__":
    main()
