"""The unified structured event log.

Before this module, each layer kept its own ad-hoc trail of "what
happened": the faults layer counted retries in a ``FaultStats``, the
contracts layer counted dispositions in the metrics registry, the
checkpoint layer annotated spans, and the engine incremented
``engine.cache.*`` counters.  Counters aggregate — they cannot answer
"in what order did the run degrade?".  The event log can: it is one
append-only, in-memory stream of **typed** events that every
instrumented layer feeds::

    ctx = repro.obs.current()
    ctx.event("cache.hit", "ingest", key="3f9c…")

Design rules, matching the rest of ``repro.obs``:

- **Typed, or rejected.**  An event type must be registered in
  :data:`EVENT_TYPES`; a typo raises immediately instead of silently
  forking the taxonomy.  The taxonomy is the contract the run ledger
  and the regression sentinel consume.
- **Deterministic identity.**  An event's :meth:`Event.identity` covers
  its sequence number, type, subject, and attributes — never its
  timestamp.  Two runs with the same seed produce identical event
  identities regardless of worker count, because worker events are
  captured per *item* and adopted in input order (the ``parallel_map``
  discipline), not in completion order.
- **Timing is quarantined.**  The wall-clock offset ``t`` rides along
  for the JSONL export and the dashboard, and is excluded from
  identities, digests, and determinism comparisons — the same split
  ``metrics.json`` makes with its ``"timing"`` section.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

__all__ = ["EVENT_TYPES", "Event", "EventLog", "NullEventLog", "write_events"]

# The event taxonomy.  One flat namespace, dotted ``source.outcome``
# names; extend it here (and in METHODOLOGY.md §12) — emitting an
# unregistered type is an error, not an extension mechanism.
EVENT_TYPES: frozenset[str] = frozenset(
    {
        # run lifecycle (pipeline runner)
        "run.start",
        "run.end",
        # trace spans (every span open/close mirrors into the log)
        "span.open",
        "span.close",
        # engine stage execution + artifact cache
        "stage.start",
        "stage.end",
        "cache.hit",
        "cache.miss",
        "cache.store",
        "cache.quarantine",
        # supervised node execution (retry/deadline/isolation)
        "node.retry",
        "node.timeout",
        "node.failed",
        "node.skipped",
        # checkpoint/resume
        "checkpoint.resume",
        "checkpoint.save",
        # fault injection and resilience
        "fault.injected",
        "fault.retry",
        "fault.exhausted",
        "fault.breaker_open",
        "fault.loss",
        # data contracts
        "contract.violation",
        "contract.flagged",
        "contract.repaired",
        "contract.held",
        # analysis-as-a-service request lifecycle (repro.serve)
        "serve.request",
        "serve.response",
        "serve.not_modified",
        "serve.coalesced",
        "serve.shed",
        "serve.deadline",
        "serve.breaker_open",
        "serve.error",
        "serve.drain",
    }
)


@dataclass
class Event:
    """One structured occurrence: ``(seq, type, name, attrs)`` plus timing."""

    seq: int
    type: str
    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    t: float = 0.0  # seconds since the log epoch; timing, never identity

    def identity(self) -> tuple:
        """Everything deterministic about the event (timing excluded)."""
        return (self.seq, self.type, self.name, tuple(sorted(self.attrs.items())))

    def to_dict(self, include_timing: bool = True) -> dict:
        d: dict[str, Any] = {
            "seq": self.seq,
            "type": self.type,
            "name": self.name,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }
        if include_timing:
            d["t"] = round(self.t, 6)
        return d


class EventLog:
    """Append-only in-memory event stream for one run (or one task)."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[Event] = []
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------- recording

    def emit(self, type: str, name: str = "", **attrs: Any) -> Event:
        """Append one typed event; unknown types raise ``ValueError``."""
        if type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {type!r}; register it in "
                f"repro.obs.events.EVENT_TYPES"
            )
        ev = Event(
            seq=len(self.events),
            type=type,
            name=name,
            attrs=attrs,
            t=time.perf_counter() - self._epoch,
        )
        self.events.append(ev)
        return ev

    def adopt(self, events: Iterable[Event]) -> None:
        """Graft captured worker events onto this log, re-sequenced.

        Called in input order by ``parallel_map`` (never completion
        order), so the merged sequence numbers — and therefore every
        identity — are independent of worker count.  Timestamps are
        placed at the adoption instant: cross-process clock offsets are
        not meaningful, the same stance :meth:`Tracer.adopt` takes.
        """
        now = time.perf_counter() - self._epoch
        for ev in events:
            self.events.append(
                Event(seq=len(self.events), type=ev.type, name=ev.name,
                      attrs=ev.attrs, t=now)
            )

    # ------------------------------------------------------------ inspection

    def __len__(self) -> int:
        return len(self.events)

    def by_type(self, type: str) -> list[Event]:
        return [e for e in self.events if e.type == type]

    def counts(self) -> dict[str, int]:
        """Events per type, sorted by type name (ledger-ready)."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.type] = out.get(e.type, 0) + 1
        return {k: out[k] for k in sorted(out)}

    def identity(self) -> tuple:
        """Deterministic fingerprint of the whole stream (timing excluded)."""
        return tuple(e.identity() for e in self.events)

    # ------------------------------------------------------------- rendering

    def to_records(self, include_timing: bool = True) -> list[dict]:
        return [e.to_dict(include_timing) for e in self.events]


class NullEventLog:
    """No-op log backing the disabled path (shared singleton)."""

    enabled = False
    events: list[Event] = []

    def emit(self, type: str, name: str = "", **attrs: Any) -> None:
        return None

    def adopt(self, events: Iterable[Event]) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def by_type(self, type: str) -> list[Event]:
        return []

    def counts(self) -> dict[str, int]:
        return {}

    def identity(self) -> tuple:
        return ()

    def to_records(self, include_timing: bool = True) -> list[dict]:
        return []


def write_events(
    log: EventLog, path: str | Path, include_timing: bool = True
) -> Path:
    """Write the stream as JSONL, one event per line; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(rec, sort_keys=True, separators=(",", ":"))
        for rec in log.to_records(include_timing)
    ]
    p.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return p
