"""Tests for HPC tagging and title generation."""

import numpy as np
import pytest

from repro.calibration.targets import TOTALS


class TestHpcTagging:
    def test_exact_count(self, full_world):
        tagged = [p for p in full_world.registry.papers.values() if p.is_hpc]
        assert len(tagged) == TOTALS["hpc_papers"]

    def test_mild_female_bias(self, full_world):
        """Tagging is weighted toward papers with women so the §4.1
        HPC-subset FAR lands slightly above overall — verify on truth."""
        reg = full_world.registry
        from repro.gender.model import Gender

        def far_of(papers):
            women = total = 0
            for p in papers:
                for a in p.authorships:
                    g = reg.people[a.person_id].true_gender
                    total += 1
                    women += g is Gender.F
            return women / total

        tagged = [p for p in reg.papers.values() if p.is_hpc]
        untagged = [p for p in reg.papers.values() if not p.is_hpc]
        assert far_of(tagged) >= far_of(untagged) - 0.01

    def test_tag_spread_across_conferences(self, full_world):
        confs = {
            p.conference for p in full_world.registry.papers.values() if p.is_hpc
        }
        assert len(confs) == 9


class TestTitles:
    def test_titles_nonempty_and_plausible(self, full_world):
        for p in list(full_world.registry.papers.values())[:100]:
            assert len(p.title.split()) >= 4
            assert p.title[0].isupper()

    def test_titles_survive_harvest(self, small_result):
        titles = set(small_result.dataset.papers["paper_id"])
        assert len(titles) == small_result.dataset.papers.num_rows
