"""The 56-conference systems universe (the paper's §6 future work).

"Other future work includes expanding this analysis to the larger set of
56 conferences we have collected from all subfields of computer
systems."  This package builds that expansion: a generator of synthetic
conference-target sets spanning the systems subfields, a world/pipeline
run over all of them, and a cross-subfield representation comparison.

- :mod:`repro.universe.catalog`  — subfield profiles and the 56-conference
  target generator.
- :mod:`repro.universe.analysis` — FAR by subfield with pairwise χ²
  contrasts against the HPC baseline.
"""

from repro.universe.catalog import (
    SUBFIELD_PROFILES,
    SubfieldProfile,
    systems_universe,
)
from repro.universe.analysis import universe_report, UniverseReport

__all__ = [
    "SUBFIELD_PROFILES",
    "SubfieldProfile",
    "systems_universe",
    "universe_report",
    "UniverseReport",
]
