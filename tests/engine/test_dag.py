"""DAG validation and deterministic generation ordering."""

import pytest

from repro.engine.dag import GraphError, StageGraph
from repro.engine.node import StageNode
from repro.engine.stages import PipelineParams, build_graph

pytestmark = pytest.mark.engine


def _fn(params, inputs):  # pragma: no cover - never executed here
    return {}


def node(name, inputs=(), outputs=()):
    return StageNode(name, _fn, inputs=tuple(inputs), outputs=tuple(outputs))


class TestGraphValidation:
    def test_default_output_is_node_name(self):
        assert node("a").outputs == ("a",)

    def test_duplicate_output_declaration_rejected(self):
        with pytest.raises(ValueError, match="duplicate outputs"):
            StageNode("a", _fn, outputs=("x", "x"))

    def test_two_producers_of_one_artifact_rejected(self):
        g = StageGraph([node("a", outputs=("x",)), node("b", outputs=("x",))])
        with pytest.raises(GraphError, match="produced by both"):
            g.generations()

    def test_unknown_input_rejected(self):
        g = StageGraph([node("a", inputs=("ghost",))])
        with pytest.raises(GraphError, match="unknown artifact"):
            g.generations()

    def test_seed_artifacts_satisfy_inputs(self):
        g = StageGraph([node("a", inputs=("ghost",))], seed_artifacts=("ghost",))
        assert [[n.name for n in gen] for gen in g.generations()] == [["a"]]

    def test_cycle_detected(self):
        g = StageGraph(
            [
                node("a", inputs=("bee",), outputs=("ay",)),
                node("b", inputs=("ay",), outputs=("bee",)),
            ]
        )
        with pytest.raises(GraphError, match="cycle"):
            g.generations()

    def test_duplicate_node_names_rejected(self):
        g = StageGraph([node("a", outputs=("x",)), node("a", outputs=("y",))])
        with pytest.raises(GraphError, match="duplicate node names"):
            g.generations()


class TestOrdering:
    def test_diamond_generations(self):
        g = StageGraph(
            [
                node("top"),
                node("left", inputs=("top",)),
                node("right", inputs=("top",)),
                node("bottom", inputs=("left", "right")),
            ]
        )
        gens = [[n.name for n in gen] for gen in g.generations()]
        assert gens == [["top"], ["left", "right"], ["bottom"]]

    def test_generation_order_is_sorted_and_deterministic(self):
        g = StageGraph([node("z"), node("a"), node("m")])
        assert [[n.name for n in gen] for gen in g.generations()] == [["a", "m", "z"]]

    def test_topological_order_flattens_generations(self):
        g = StageGraph(
            [node("b", inputs=("ay",)), node("a", outputs=("ay",))]
        )
        assert [n.name for n in g.topological_order()] == ["a", "b"]


class TestPipelineGraph:
    def test_enrich_and_infer_share_a_generation(self):
        graph = build_graph(PipelineParams())
        gens = [[n.name for n in gen] for gen in graph.generations()]
        assert gens == [
            ["world"],
            ["ingest"],
            ["link"],
            ["enrich", "infer"],
            ["dataset"],
            ["finalize"],
        ]

    def test_prebuilt_world_drops_the_world_node(self):
        graph = build_graph(PipelineParams(), prebuilt_world=True)
        names = {n.name for n in graph.nodes}
        assert "world" not in names
        assert graph.seed_artifacts == ("world",)
        # still a valid DAG with the seed injected
        assert len(graph.generations()) == 5

    def test_execution_policy_stays_out_of_params(self):
        from repro.util.parallel import ParallelConfig

        a = build_graph(PipelineParams())
        b = build_graph(
            PipelineParams(
                parallel=ParallelConfig(workers=4),
                checkpoint_dir="/tmp/somewhere",
                resume=False,
            )
        )
        for na, nb in zip(a.nodes, b.nodes):
            assert na.params == nb.params
