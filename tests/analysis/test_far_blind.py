"""Tests for FAR and blind-review analyses (small world)."""

import numpy as np
import pytest

from repro.analysis import blind_report, far_report, women_share


class TestWomenShare:
    def test_excludes_missing(self, small_result):
        ds = small_result.dataset
        p = women_share(ds.author_positions)
        known = (~ds.author_positions.col("gender").is_missing()).sum()
        assert p.n == int(known)


class TestFar:
    def test_overall_in_expected_band(self, small_result):
        far = far_report(small_result.dataset)
        assert 0.06 < far.overall.value < 0.14

    def test_per_conference_coverage(self, small_result):
        far = far_report(small_result.dataset)
        assert len(far.by_conference) == 9
        for c in far.by_conference:
            assert c.authors.n > 0

    def test_conference_lookup(self, small_result):
        far = far_report(small_result.dataset)
        assert far.conference("SC").conference == "SC"
        with pytest.raises(KeyError):
            far.conference("NOPE")

    def test_lead_denominator_is_paper_count(self, small_result):
        ds = small_result.dataset
        far = far_report(ds)
        n_first_known = sum(
            1 for g in ds.papers["first_gender"] if g is not None
        )
        assert far.lead_overall.n == n_first_known

    def test_last_not_above_overall(self, small_result):
        far = far_report(small_result.dataset)
        # paper's qualitative claim: senior position no better represented
        assert far.last_overall.value <= far.overall.value + 0.03

    def test_chi2_fields(self, small_result):
        far = far_report(small_result.dataset)
        assert far.last_vs_all.df == 1
        assert 0 <= far.last_vs_all.p_value <= 1


class TestBlind:
    def test_double_blind_set(self, small_result):
        b = blind_report(small_result.dataset)
        assert set(b.double_blind_confs) == {"SC", "ISC"}

    def test_double_lower_than_single(self, small_result):
        b = blind_report(small_result.dataset)
        assert b.authors_double.value < b.authors_single.value

    def test_lead_single_at_least_double(self, small_result):
        b = blind_report(small_result.dataset)
        assert b.lead_single.value >= b.lead_double.value

    def test_denominators_partition_positions(self, small_result):
        ds = small_result.dataset
        b = blind_report(ds)
        known = int((~ds.author_positions.col("gender").is_missing()).sum())
        assert b.authors_double.n + b.authors_single.n == known
