"""Survey distribution and response simulation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.confmodel.registry import WorldRegistry
from repro.gender.model import Gender
from repro.util.rng import derive_seed

__all__ = ["SurveyResponse", "AuthorSurvey"]


@dataclass(frozen=True)
class SurveyResponse:
    """One returned questionnaire."""

    person_id: str
    self_identified: Gender        # respondents may also decline
    declined_gender_question: bool


class AuthorSurvey:
    """Simulates emailing a questionnaire to authors.

    Only authors with an email address can be contacted (the paper
    surveyed authors of accepted papers via their paper emails).
    Response behaviour:

    - base response rate ``response_rate`` (the real survey got ≈20%);
    - senior researchers respond slightly more often;
    - a small fraction of respondents decline the gender question.

    Self-identification is truthful in the synthetic world — what the
    validation can then measure is *pipeline* error, which is exactly
    how the real survey was used.
    """

    def __init__(
        self,
        registry: WorldRegistry,
        seed: int,
        response_rate: float = 0.20,
        decline_rate: float = 0.03,
    ) -> None:
        if not 0.0 < response_rate <= 1.0:
            raise ValueError("response_rate must be in (0, 1]")
        if not 0.0 <= decline_rate < 1.0:
            raise ValueError("decline_rate must be in [0, 1)")
        self._registry = registry
        self._seed = int(seed)
        self._response_rate = float(response_rate)
        self._decline_rate = float(decline_rate)

    def contactable_authors(self) -> list[str]:
        """Authors the survey can reach (have an email)."""
        author_ids = self._registry.unique_author_ids()
        return sorted(
            pid for pid in author_ids if self._registry.people[pid].email
        )

    def run(self) -> list[SurveyResponse]:
        """Distribute the survey and collect responses (deterministic)."""
        responses: list[SurveyResponse] = []
        for pid in self.contactable_authors():
            person = self._registry.people[pid]
            rng = np.random.default_rng(derive_seed(self._seed, "survey", pid))
            # seniority bumps response propensity by up to ~8 points
            seniority_bump = min(person.past_publications, 80) / 1000.0
            if rng.random() >= self._response_rate + seniority_bump:
                continue
            declined = rng.random() < self._decline_rate
            responses.append(
                SurveyResponse(
                    person_id=pid,
                    self_identified=(
                        Gender.UNKNOWN if declined else person.true_gender
                    ),
                    declined_gender_question=declined,
                )
            )
        return responses
