"""The engine: fingerprint, schedule, cache, execute.

``run_dag`` walks a :class:`~repro.engine.dag.StageGraph` in
topological generations.  For every node it derives a content-addressed
key — SHA-256 over the node's declared params, its code version, and
the keys of its upstream outputs (seed artifacts contribute their own
digests, e.g. the world fingerprint) — and then either

- **serves the node from cache** (``engine.cache.hits``; the node body
  never runs, its span carries ``cache_hit=True``), or
- **executes it** (``engine.cache.misses``), concurrently with the rest
  of its generation when an :class:`EngineConfig` requests workers —
  via the same deterministic ``parallel_map`` pool the ingest stage
  uses, so results are bit-identical across worker counts — and stores
  the outputs for the next run.

Execution policy (worker counts, directories, refresh) never enters a
key: a serial run and a parallel run address the same cache entries.

With ``EngineConfig.supervise`` (or ``chaos``) set, execution runs
under a :class:`~repro.engine.supervise.Supervisor`: node failures are
retried with virtual-clock backoff, deadlines are enforced, and a node
that exhausts its attempts is recorded in :attr:`EngineRun.failed`
while only its downstream nodes are skipped — independent branches of
the DAG keep executing.  Without supervision the historical contract
holds exactly: any node exception propagates and aborts the run.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any

from repro.engine.cache import ArtifactCache
from repro.engine.dag import StageGraph
from repro.engine.fingerprint import fingerprint
from repro.engine.node import NodeResult, StageNode
from repro.engine.supervise import (
    DEADLINE_ERROR,
    Supervisor,
    SupervisorConfig,
    watchdog_map,
)
from repro.faults.chaos import ChaosKind
from repro.obs.context import current as _obs
from repro.pipeline.config import EngineConfig
from repro.util.parallel import ParallelConfig, TaskError, parallel_map

__all__ = ["EngineConfig", "EngineRun", "run_dag"]


@dataclass
class EngineRun:
    """Artifacts plus per-node accounting for one DAG execution.

    ``failed`` maps exhausted nodes to their final error; ``skipped``
    maps nodes that never ran to the upstream artifacts that blocked
    them.  Both are empty on an unsupervised run (failures abort
    instead).  ``retries`` and ``virtual_time`` come from the
    supervisor's clock — deterministic for a given chaos/backoff seed.
    """

    artifacts: dict[str, Any] = field(default_factory=dict)
    results: list[NodeResult] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)
    skipped: dict[str, str] = field(default_factory=dict)
    retries: int = 0
    virtual_time: float = 0.0

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cache_hit)

    @property
    def executed(self) -> int:
        return sum(1 for r in self.results if not r.cache_hit and r.status == "ok")

    @property
    def completed(self) -> bool:
        """Did every node of the DAG produce its artifacts?"""
        return not self.failed and not self.skipped

    def __getitem__(self, artifact: str) -> Any:
        return self.artifacts[artifact]


def _node_task(task: tuple[StageNode, Any, dict[str, Any]]) -> dict[str, Any]:
    """Execute one node body (module-level: picklable for workers)."""
    node, params, inputs = task
    ctx = _obs()
    ctx.event("stage.start", node.name)
    with ctx.span("engine.node", node=node.name, cache_hit=False):
        outputs = node.fn(params, inputs)
    ctx.event("stage.end", node.name, cache_hit=False)
    missing = set(node.outputs) - set(outputs)
    if missing:
        raise RuntimeError(
            f"node {node.name!r} did not produce declared outputs: {sorted(missing)}"
        )
    return outputs


def run_dag(
    graph: StageGraph,
    params: Any,
    seeds: dict[str, Any] | None = None,
    seed_digests: dict[str, str] | None = None,
    engine: EngineConfig | None = None,
    timer: Any | None = None,
) -> EngineRun:
    """Execute ``graph``, returning every artifact it produced.

    ``seeds`` are caller-injected artifacts (a prebuilt world);
    ``seed_digests`` their content digests, folded into downstream keys.
    ``timer`` is an optional :class:`~repro.util.timing.StageTimer`:
    each node's load-or-execute time is recorded under its name, and
    cache hits are marked so reports don't read load time as work.
    """
    cfg = engine or EngineConfig()
    cache = ArtifactCache(cfg.cache_dir) if cfg.cache_dir is not None else None
    ctx = _obs()
    sup: Supervisor | None = None
    if cfg.supervise is not None or cfg.chaos is not None:
        sup = Supervisor(cfg.supervise or SupervisorConfig(), chaos=cfg.chaos)

    run = EngineRun(artifacts=dict(seeds or {}))
    digests: dict[str, str] = dict(seed_digests or {})
    for name in run.artifacts:
        digests.setdefault(name, fingerprint("seed", name))

    for generation in graph.generations():
        pending: list[StageNode] = []
        keys: dict[str, str] = {}
        for node in generation:
            blocked = sorted(a for a in node.inputs if a not in digests)
            if blocked:
                # failure isolation: an upstream node failed or was
                # itself skipped, so this node can never run — but the
                # rest of the generation is unaffected
                run.skipped[node.name] = "blocked_on:" + ",".join(blocked)
                ctx.event("node.skipped", node.name, blocked_on=",".join(blocked))
                ctx.metrics.inc("engine.nodes_skipped")
                run.results.append(
                    NodeResult(node=node.name, cache_hit=False, status="skipped")
                )
                continue
            key = fingerprint(
                "node",
                node.name,
                node.version,
                node.params,
                [(a, digests[a]) for a in node.inputs],
            )
            keys[node.name] = key
            if (
                cache is not None
                and node.cacheable
                and not cfg.refresh
                and cache.has(node.name, key)
            ):
                try:
                    with _timed(timer, node.name), ctx.span(
                        "engine.node", node=node.name, cache_hit=True
                    ):
                        outputs = cache.load(node.name, key)
                except KeyError:
                    # has() lied: a key-prefix collision, a concurrent
                    # eviction, or a corrupt entry (now quarantined by
                    # the cache itself) — fall through and execute
                    pass
                else:
                    if timer is not None:
                        timer.mark_cached(node.name)
                    ctx.metrics.inc("engine.cache.hits")
                    ctx.event("cache.hit", node.name, key=key[:16])
                    _adopt(run, digests, node, key, outputs, cache_hit=True)
                    continue
            if cache is not None and node.cacheable:
                ctx.event("cache.miss", node.name, key=key[:16])
            pending.append(node)

        if not pending:
            continue
        if sup is not None:
            _run_supervised(run, digests, pending, keys, params, cfg, sup, cache, timer)
        else:
            _run_bare(run, digests, pending, keys, params, cfg, cache, timer)

    if sup is not None:
        run.retries = sup.retries
        run.virtual_time = sup.clock.now
    return run


def _run_bare(run, digests, pending, keys, params, cfg, cache, timer) -> None:
    """One generation, historical semantics: any exception aborts."""
    ctx = _obs()
    tasks = [
        (node, params, {a: run.artifacts[a] for a in node.inputs})
        for node in pending
    ]
    if cfg.workers and cfg.workers > 1 and len(pending) > 1:
        pool = ParallelConfig(workers=cfg.workers, min_items_per_worker=1)
        label = "+".join(n.name for n in pending)
        with _timed(timer, label):
            produced = parallel_map(_node_task, tasks, pool)
    else:
        produced = []
        for task in tasks:
            with _timed(timer, task[0].name):
                produced.append(_node_task(task))

    for node, outputs in zip(pending, produced):
        key = keys[node.name]
        ctx.metrics.inc("engine.cache.misses")
        ctx.metrics.inc("engine.nodes_executed")
        if cache is not None and node.cacheable:
            cache.save(node.name, key, outputs)
        _adopt(run, digests, node, key, outputs, cache_hit=False)


def _run_supervised(
    run, digests, pending, keys, params, cfg, sup: Supervisor, cache, timer
) -> None:
    """One generation under supervision: retry, deadline, isolate.

    Rounds of attempts: every still-active node gets attempt *k*
    together, outcomes are folded in generation order (so events and
    accounting are worker-count independent), failures under their
    attempt budget are backed off on the virtual clock and re-queued.
    """
    ctx = _obs()
    attempts = {n.name: 0 for n in pending}
    active = list(pending)
    while active:
        outcomes: dict[str, Any] = {}
        dispatch: list[StageNode] = []
        for node in active:
            attempts[node.name] += 1
            kind = sup.draw_node(node.name, attempts[node.name])
            if kind is ChaosKind.EXCEPTION:
                ctx.event(
                    "fault.injected", node.name, kind=kind.value, site="node"
                )
                outcomes[node.name] = TaskError(
                    kind="ChaosError",
                    message=(
                        f"chaos: injected exception in node {node.name!r} "
                        f"attempt {attempts[node.name]}"
                    ),
                )
            elif kind is ChaosKind.HANG:
                # virtual hang: charge what the watchdog would have
                # waited, surface the same deadline error it would raise
                ctx.event(
                    "fault.injected", node.name, kind=kind.value, site="node"
                )
                sup.charge_hang(node.name)
                outcomes[node.name] = TaskError(
                    kind=DEADLINE_ERROR,
                    message=f"node {node.name!r} hung past its deadline",
                )
            else:
                dispatch.append(node)

        if dispatch:
            tasks = [
                (node, params, {a: run.artifacts[a] for a in node.inputs})
                for node in dispatch
            ]
            deadlines = [sup.policy(n.name).deadline for n in dispatch]
            use_pool = cfg.workers and cfg.workers > 1 and len(dispatch) > 1
            if use_pool and any(d is not None for d in deadlines):
                label = "+".join(n.name for n in dispatch)
                with _timed(timer, label):
                    produced = watchdog_map(
                        _node_task, tasks, deadlines, workers=cfg.workers
                    )
            elif use_pool:
                pool = ParallelConfig(workers=cfg.workers, min_items_per_worker=1)
                label = "+".join(n.name for n in dispatch)
                with _timed(timer, label):
                    produced = parallel_map(
                        _node_task, tasks, pool, capture_errors=True
                    )
            else:
                produced = []
                for task in tasks:
                    with _timed(timer, task[0].name):
                        # single-item parallel_map: same capture + obs
                        # adoption discipline as the pool path
                        produced.append(
                            parallel_map(
                                _node_task, [task], capture_errors=True
                            )[0]
                        )
            for node, out in zip(dispatch, produced):
                outcomes[node.name] = out

        retry: list[StageNode] = []
        for node in active:
            name = node.name
            out = outcomes[name]
            if isinstance(out, TaskError):
                if out.kind == DEADLINE_ERROR:
                    ctx.event("node.timeout", name, attempt=attempts[name])
                    ctx.metrics.inc("engine.node.timeouts")
                if attempts[name] < sup.policy(name).max_attempts:
                    sup.charge_backoff(name, attempts[name])
                    ctx.event(
                        "node.retry", name, attempt=attempts[name], error=out.kind
                    )
                    ctx.metrics.inc("engine.node.retries")
                    retry.append(node)
                else:
                    reason = f"{out.kind}: {out.message}"
                    run.failed[name] = reason
                    ctx.event(
                        "node.failed", name, attempts=attempts[name], error=out.kind
                    )
                    ctx.metrics.inc("engine.nodes_failed")
                    run.results.append(
                        NodeResult(
                            node=name,
                            cache_hit=False,
                            key=keys[name],
                            status="failed",
                            attempts=attempts[name],
                        )
                    )
            else:
                key = keys[name]
                ctx.metrics.inc("engine.cache.misses")
                ctx.metrics.inc("engine.nodes_executed")
                if cache is not None and node.cacheable:
                    cache.save(name, key, out)
                    wkind = sup.draw_write(name, key)
                    if wkind is not None:
                        # the entry this run just wrote gets damaged on
                        # disk — this run already holds the outputs; the
                        # *next* run must quarantine and recompute
                        ctx.event(
                            "fault.injected",
                            name,
                            kind=wkind.value,
                            site="cache.write",
                        )
                        sup.corrupt_entry(
                            cache.entry_path(name, key), name, key, wkind
                        )
                _adopt(run, digests, node, key, out, cache_hit=False)
                run.results[-1].attempts = attempts[name]
        active = retry


def _timed(timer: Any | None, name: str):
    return timer.stage(name) if timer is not None else nullcontext()


def _adopt(
    run: EngineRun,
    digests: dict[str, str],
    node: StageNode,
    key: str,
    outputs: dict[str, Any],
    cache_hit: bool,
) -> None:
    """Record one node's outputs and derive their artifact digests."""
    for name in node.outputs:
        run.artifacts[name] = outputs[name]
        # content-addressed by construction: the producing node's key
        # already encodes everything upstream, so the artifact digest
        # is (key, output-name) — no need to hash the pickled bytes
        digests[name] = fingerprint("artifact", key, name)
    run.results.append(
        NodeResult(node=node.name, outputs=outputs, cache_hit=cache_hit, key=key)
    )
