"""UN M49 subregion constants in the paper's Table 3 order."""

from __future__ import annotations

from repro.geo.countries import Country, all_countries, country_by_code

__all__ = ["REGION_ORDER", "region_of_country", "regions_present"]

# Table 3 lists regions sorted by total authors; this is that order.
REGION_ORDER: tuple[str, ...] = (
    "Northern America",
    "Western Europe",
    "Eastern Asia",
    "Southern Europe",
    "Northern Europe",
    "Southern Asia",
    "South America",
    "Australia and New Zealand",
    "Western Asia",
    "South-Eastern Asia",
    "Eastern Europe",
    "Western Africa",
    "Central America",
    "Central Asia",
    "Northern Africa",
)


def region_of_country(cca2: str) -> str | None:
    """M49 subregion of a country code, or None if unknown."""
    c = country_by_code(cca2)
    return c.subregion if c else None


def regions_present() -> tuple[str, ...]:
    """Every subregion covered by the embedded dataset."""
    seen: dict[str, None] = {}
    for c in all_countries():
        seen.setdefault(c.subregion, None)
    return tuple(seen.keys())
