"""§3.1 — female author ratios (FAR).

Computes the paper's author-population statistics: overall FAR over all
authorship positions, per-conference FAR over each conference's unique
authors, lead (first-position) and last (senior-position) ratios, and
the last-vs-all contrast (χ² = 0.724, p = 0.395 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.common import mask_eq, women_share
from repro.pipeline.dataset import AnalysisDataset
from repro.stats.chisquare import Chi2Result
from repro.stats.proportions import Proportion, proportion_diff

__all__ = ["ConferenceFar", "FarReport", "far_report"]


@dataclass(frozen=True)
class ConferenceFar:
    """One conference's author gender composition (unique authors)."""

    conference: str
    authors: Proportion          # women among known-gender unique authors
    lead: Proportion             # women among known-gender first authors
    last: Proportion             # women among known-gender last authors


@dataclass(frozen=True)
class FarReport:
    """§3.1's quantities."""

    overall: Proportion          # all authorship positions
    lead_overall: Proportion
    last_overall: Proportion
    last_vs_all: Chi2Result      # the paper's 8.4% vs 9.9% contrast
    by_conference: tuple[ConferenceFar, ...]

    def conference(self, name: str) -> ConferenceFar:
        for c in self.by_conference:
            if c.conference == name:
                return c
        raise KeyError(f"no conference {name!r}")


def far_report(ds: AnalysisDataset) -> FarReport:
    """Compute §3.1 over an analysis dataset."""
    positions = ds.author_positions
    overall = women_share(positions)

    firsts = positions.filter(lambda t: mask_eq(t, "is_first", True))
    lasts = positions.filter(lambda t: mask_eq(t, "is_last", True))
    lead_overall = women_share(firsts)
    last_overall = women_share(lasts)

    by_conf = []
    for conf in ds.conferences["conference"]:
        uniq = ds.conf_authors.filter(lambda t: mask_eq(t, "conference", conf))
        cf = firsts.filter(lambda t: mask_eq(t, "conference", conf))
        cl = lasts.filter(lambda t: mask_eq(t, "conference", conf))
        by_conf.append(
            ConferenceFar(
                conference=conf,
                authors=women_share(uniq),
                lead=women_share(cf),
                last=women_share(cl),
            )
        )

    return FarReport(
        overall=overall,
        lead_overall=lead_overall,
        last_overall=last_overall,
        last_vs_all=proportion_diff(last_overall, overall),
        by_conference=tuple(by_conf),
    )
