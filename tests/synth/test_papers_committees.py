"""Tests for paper construction and committee staffing."""

from collections import Counter

import numpy as np
import pytest

from repro.calibration.targets import CONFERENCES_2017
from repro.confmodel.roles import Role
from repro.synth.config import WorldConfig
from repro.synth.committees import staff_committees
from repro.synth.papers import (
    _paper_sizes,
    build_papers,
    draw_conference_slates,
)
from repro.synth.population import PopulationBuilder
from repro.util.rng import RngStream


@pytest.fixture(scope="module")
def pools():
    cfg = WorldConfig(seed=21, scale=1.0)
    pop = PopulationBuilder(cfg, RngStream(21, ("world",))).build()
    return cfg, pop


class TestPaperSizes:
    def test_sum_and_minimum(self):
        rng = np.random.default_rng(0)
        sizes = _paper_sizes(344, 61, rng)
        assert sizes.sum() == 344
        assert (sizes >= 1).all()

    def test_mean_realistic(self):
        rng = np.random.default_rng(1)
        sizes = _paper_sizes(2236, 518, rng)
        assert 3.5 < sizes.mean() < 5.5

    def test_fewer_positions_than_papers_rejected(self):
        with pytest.raises(ValueError):
            _paper_sizes(5, 10, np.random.default_rng(0))


class TestSlates:
    def test_every_conference_covered(self, pools):
        cfg, pop = pools
        rng = np.random.default_rng(2)
        slates = draw_conference_slates(
            list(CONFERENCES_2017), pop.authors, cfg.scaled, rng
        )
        assert set(slates) == {t.name for t in CONFERENCES_2017}
        for t in CONFERENCES_2017:
            assert slates[t.name].size == t.unique_authors

    def test_gender_quota_per_conference(self, pools):
        cfg, pop = pools
        rng = np.random.default_rng(3)
        slates = draw_conference_slates(
            list(CONFERENCES_2017), pop.authors, cfg.scaled, rng
        )
        sc = slates["SC"]
        assert len(sc.women) == round(325 * 0.0812)

    def test_full_pool_coverage(self, pools):
        cfg, pop = pools
        rng = np.random.default_rng(4)
        slates = draw_conference_slates(
            list(CONFERENCES_2017), pop.authors, cfg.scaled, rng
        )
        served = {
            p.person_id for s in slates.values() for p in s.all_authors
        }
        assert served == {p.person_id for p in pop.authors}

    def test_no_person_twice_per_conference(self, pools):
        cfg, pop = pools
        rng = np.random.default_rng(5)
        slates = draw_conference_slates(
            list(CONFERENCES_2017), pop.authors, cfg.scaled, rng
        )
        for s in slates.values():
            ids = [p.person_id for p in s.all_authors]
            assert len(ids) == len(set(ids))


class TestBuildPapers:
    def test_position_quotas(self, pools):
        cfg, pop = pools
        rng = np.random.default_rng(6)
        t = next(c for c in CONFERENCES_2017 if c.name == "SC")
        slates = draw_conference_slates(
            list(CONFERENCES_2017), pop.authors, cfg.scaled, rng
        )
        papers = build_papers(t, slates["SC"], 2017, cfg.scaled, rng, 0)
        assert len(papers) == t.papers
        positions = sum(p.num_authors for p in papers)
        assert positions >= t.author_positions  # >= because slate may exceed

        women_leads = sum(
            1
            for p in papers
            if next(
                a for a in slates["SC"].all_authors if a.person_id == p.first_author
            ).gender
            == "F"
        )
        assert women_leads == round(t.papers * t.lead_far)


class TestCommittees:
    def test_quotas_and_coverage(self, pools):
        cfg, pop = pools
        rng = np.random.default_rng(7)
        roles = staff_committees(
            list(CONFERENCES_2017), pop.pc_members, 2017, cfg.scaled, rng
        )
        counts = Counter((r.conference, r.role) for r in roles)
        for t in CONFERENCES_2017:
            assert counts[(t.name, Role.PC_MEMBER)] == t.pc_size
            assert counts[(t.name, Role.PC_CHAIR)] == t.pc_chairs
            assert counts[(t.name, Role.KEYNOTE)] == t.keynotes
        # full PC pool coverage
        pc_served = {r.person_id for r in roles if r.role is Role.PC_MEMBER}
        assert pc_served == {p.person_id for p in pop.pc_members}

    def test_zero_women_exact(self, pools):
        cfg, pop = pools
        rng = np.random.default_rng(8)
        roles = staff_committees(
            list(CONFERENCES_2017), pop.pc_members, 2017, cfg.scaled, rng
        )
        spec = {p.person_id: p for p in pop.pc_members}
        for t in CONFERENCES_2017:
            if t.session_chair_women == 0:
                chairs = [
                    r for r in roles
                    if r.conference == t.name and r.role is Role.SESSION_CHAIR
                ]
                assert all(spec[r.person_id].gender == "M" for r in chairs)

    def test_no_duplicate_membership_per_conference(self, pools):
        cfg, pop = pools
        rng = np.random.default_rng(9)
        roles = staff_committees(
            list(CONFERENCES_2017), pop.pc_members, 2017, cfg.scaled, rng
        )
        for t in CONFERENCES_2017:
            ids = [
                r.person_id
                for r in roles
                if r.conference == t.name and r.role is Role.PC_MEMBER
            ]
            assert len(ids) == len(set(ids))
