#!/usr/bin/env python3
"""Manual vs automated gender inference — the §2 methodology claim.

Usage::

    python examples/inference_shootout.py [--seed N]

The paper argues that manual web-evidence assignment "provided more
gender data and higher accuracy than automated approaches based on
forename and country, especially for women".  Because the synthetic
world knows every researcher's true gender, that claim is measurable:
run three policies over the same population and score them.

Policies:

1. paper     — manual evidence first, genderize ≥0.70 fallback;
2. automated — genderize only at ≥0.70 (what most studies do);
3. greedy    — genderize only with no threshold (maximum coverage).
"""

from __future__ import annotations

import argparse

from repro.gender import (
    GenderizeClient,
    GenderResolver,
    ResolverPolicy,
    evaluate_inference,
)
from repro.gender.webevidence import WebEvidenceSource
from repro.harvest.webindex import build_name_keyed_evidence
from repro.names.parsing import name_key
from repro.pipeline import infer_genders, ingest_world, link_identities
from repro.synth import WorldConfig, build_world
from repro.viz import format_records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    world = build_world(WorldConfig(seed=args.seed, scale=1.0, include_timeline=False))
    linked = link_identities(ingest_world(world))
    avail, truth_by_name = build_name_keyed_evidence(
        world.registry, world.evidence_availability, world.true_genders
    )
    # ground truth per researcher id (via name key; collisions stay unknown)
    truth = {
        rid: truth_by_name.get(rec.name_key)
        for rid, rec in linked.researchers.items()
    }
    truth = {rid: g for rid, g in truth.items() if g is not None}

    policies = {
        "paper (manual + genderize@0.70)": ResolverPolicy(),
        "automated (genderize@0.70)": ResolverPolicy(use_manual=False),
        "greedy (genderize@0.50)": ResolverPolicy(
            use_manual=False, genderize_threshold=0.50
        ),
    }
    rows = []
    for label, policy in policies.items():
        out = infer_genders(
            linked, avail, truth_by_name, seed=world.seed, policy=policy
        )
        rep = evaluate_inference(out.assignments, truth)
        rows.append(
            {
                "policy": label,
                "coverage": f"{100*rep.coverage:.1f}%",
                "accuracy": f"{100*rep.accuracy:.1f}%",
                "acc_women": f"{100*rep.accuracy_women:.1f}%",
                "acc_men": f"{100*rep.accuracy_men:.1f}%",
                "gap_men_minus_women": f"{100*rep.error_asymmetry():.1f}pp",
            }
        )
    print(format_records(rows, title="Gender-inference policy shootout (vs ground truth)"))
    print(
        "\nExpected pattern (paper §2): the manual-first cascade has the "
        "highest coverage and accuracy;\nautomated-only methods lose "
        "accuracy, and disproportionately so for women."
    )


if __name__ == "__main__":
    main()
