"""Deterministic cohort flow model of the authoring population.

State: counts by (gender, seniority band).  Each simulated year:

1. a fraction of each band leaves (attrition; the paper's observation
   that "women do not continue to senior research positions at the same
   rate as men" is a higher female attrition at the junior→mid step);
2. survivors advance bands at a progression rate;
3. a new cohort of entrants arrives in the novice band, with a
   configurable female share (the policy lever diversity programs act on).

The model is linear and deterministic, so projections are exactly
reproducible and fixed points can be reasoned about: the steady-state
female share equals the entry share when attrition is gender-neutral —
one of the property tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CohortRates", "CohortState", "CohortModel"]

_BANDS = ("novice", "mid-career", "experienced")


@dataclass(frozen=True)
class CohortRates:
    """Annual flow rates for one gender.

    ``attrition[band]`` — fraction leaving the field from that band;
    ``progression[band]`` — fraction of survivors advancing to the next
    band (experienced researchers only retire, they do not advance).
    """

    attrition: dict[str, float]
    progression: dict[str, float]

    def __post_init__(self) -> None:
        for band in _BANDS:
            a = self.attrition.get(band)
            if a is None or not 0.0 <= a <= 1.0:
                raise ValueError(f"attrition[{band!r}] must be in [0,1], got {a}")
        for band in _BANDS[:-1]:
            p = self.progression.get(band)
            if p is None or not 0.0 <= p <= 1.0:
                raise ValueError(f"progression[{band!r}] must be in [0,1], got {p}")


@dataclass
class CohortState:
    """Population counts by (gender, band)."""

    counts: dict[tuple[str, str], float] = field(default_factory=dict)

    @classmethod
    def from_shares(
        cls, total: float, female_share: float, band_shares: dict[str, dict[str, float]]
    ) -> "CohortState":
        """Build a state from a total and per-gender band distributions."""
        counts = {}
        for gender, share in (("F", female_share), ("M", 1 - female_share)):
            for band in _BANDS:
                counts[(gender, band)] = total * share * band_shares[gender][band]
        return cls(counts)

    def total(self, gender: str | None = None) -> float:
        return sum(
            v for (g, _), v in self.counts.items() if gender is None or g == gender
        )

    def female_share(self) -> float:
        t = self.total()
        return self.total("F") / t if t else float("nan")

    def band_total(self, band: str) -> float:
        return sum(v for (_, b), v in self.counts.items() if b == band)

    def female_share_in_band(self, band: str) -> float:
        t = self.band_total(band)
        return self.counts.get(("F", band), 0.0) / t if t else float("nan")

    def copy(self) -> "CohortState":
        return CohortState(dict(self.counts))


class CohortModel:
    """Advances a :class:`CohortState` year by year."""

    def __init__(
        self,
        rates: dict[str, CohortRates],      # per gender
        entry_size: float,                   # new researchers per year
        entry_female_share: float,
    ) -> None:
        if set(rates) != {"F", "M"}:
            raise ValueError("rates must be given for exactly 'F' and 'M'")
        if entry_size < 0:
            raise ValueError("entry_size must be nonnegative")
        if not 0.0 <= entry_female_share <= 1.0:
            raise ValueError("entry_female_share must be in [0,1]")
        self.rates = rates
        self.entry_size = float(entry_size)
        self.entry_female_share = float(entry_female_share)

    def step(self, state: CohortState) -> CohortState:
        """One simulated year."""
        new = {key: 0.0 for key in state.counts}
        for gender in ("F", "M"):
            r = self.rates[gender]
            survivors = {
                band: state.counts.get((gender, band), 0.0)
                * (1.0 - r.attrition[band])
                for band in _BANDS
            }
            stay_novice = survivors["novice"] * (1 - r.progression["novice"])
            to_mid = survivors["novice"] * r.progression["novice"]
            stay_mid = survivors["mid-career"] * (1 - r.progression["mid-career"])
            to_exp = survivors["mid-career"] * r.progression["mid-career"]
            new[(gender, "novice")] = stay_novice
            new[(gender, "mid-career")] = stay_mid + to_mid
            new[(gender, "experienced")] = survivors["experienced"] + to_exp
        entry_f = self.entry_size * self.entry_female_share
        new[("F", "novice")] = new.get(("F", "novice"), 0.0) + entry_f
        new[("M", "novice")] = new.get(("M", "novice"), 0.0) + (
            self.entry_size - entry_f
        )
        return CohortState(new)

    def project(self, state: CohortState, years: int) -> list[CohortState]:
        """States for year 0..years (inclusive of the start)."""
        if years < 0:
            raise ValueError("years must be nonnegative")
        out = [state.copy()]
        for _ in range(years):
            out.append(self.step(out[-1]))
        return out
