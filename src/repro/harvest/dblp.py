"""DBLP-flavoured XML export/import of paper records.

A second, independent ingest path: bibliographic databases like DBLP
publish conference tocs as XML.  Round-tripping through this format
cross-checks the website scraper (the pipeline tests assert both paths
agree on authors and titles).
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET

from repro.harvest.scrape import HarvestedPaper

__all__ = ["to_dblp_xml", "from_dblp_xml"]


def to_dblp_xml(
    conference: str, year: int, papers: list[HarvestedPaper]
) -> str:
    """Serialize papers as a DBLP-like ``<dblp>`` document."""
    root = ET.Element("dblp")
    for p in papers:
        entry = ET.SubElement(
            root, "inproceedings", {"key": f"conf/{conference.lower()}/{p.paper_id}"}
        )
        for name in p.author_names:
            ET.SubElement(entry, "author").text = name
        ET.SubElement(entry, "title").text = p.title
        ET.SubElement(entry, "year").text = str(year)
        ET.SubElement(entry, "booktitle").text = conference
    return ET.tostring(root, encoding="unicode")


def from_dblp_xml(xml_text: str) -> list[HarvestedPaper]:
    """Parse a DBLP-like document back into harvested papers.

    Emails/citations are not part of DBLP records and come back empty.
    """
    root = ET.fromstring(xml_text)
    out: list[HarvestedPaper] = []
    for entry in root.findall("inproceedings"):
        key = entry.get("key", "")
        m = re.search(r"/([^/]+)$", key)
        pid = m.group(1) if m else key
        names = tuple(a.text or "" for a in entry.findall("author"))
        title_node = entry.find("title")
        out.append(
            HarvestedPaper(
                paper_id=pid,
                title=title_node.text or "" if title_node is not None else "",
                author_names=names,
                author_emails=tuple(None for _ in names),
                citations_36mo=None,
                is_hpc_topic=None,
            )
        )
    return out
