"""Affiliation-string classification into (country, sector).

Mirrors the paper's "hand-coded regular expressions" over Google Scholar
affiliation strings (§2, §5).  The classifier is deliberately
conservative: it returns ``None`` fields rather than guessing, because
the paper marks unresolvable affiliations as unknown.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.geo.countries import Country, country_by_name
from repro.geo.sectors import Sector

__all__ = ["AffiliationGuess", "classify_affiliation"]


@dataclass(frozen=True)
class AffiliationGuess:
    """Classifier output; any field may be None when ambiguous."""

    country: Country | None
    sector: Sector | None
    matched_rule: str | None


# Sector rules are ordered: the first match wins.  GOV outranks EDU so
# that "National Laboratory" affiliations hosted at universities classify
# as labs, matching the paper's 18.6% GOV share driven by national labs.
_SECTOR_RULES: tuple[tuple[str, re.Pattern, Sector], ...] = tuple(
    (name, re.compile(pat, re.IGNORECASE), sector)
    for name, pat, sector in [
        ("national-lab", r"\bnational lab(?:orator(?:y|ies)|s)?\b", Sector.GOV),
        ("gov-lab", r"\b(?:LLNL|LANL|ORNL|ANL|PNNL|SNL|NREL|BNL|LBNL|LBL)\b", Sector.GOV),
        ("gov-agency", r"\b(?:NASA|NOAA|NIST|DOE|CNRS|INRIA|CEA|JAXA|RIKEN|CSIRO|KISTI|BSC|CSCS|JSC|Fraunhofer|Max Planck)\b", Sector.GOV),
        ("gov-word", r"\b(?:government|ministry|federal (?:agency|institute)|research cent(?:er|re) juelich)\b", Sector.GOV),
        ("gov-national", r"\bnational (?:supercomputing|research|computing) (?:cent(?:er|re)|laboratory|institute)\b|\bnational institute\b", Sector.GOV),
        ("university", r"\buniversit(?:y|e|at|ät|à)\b|\buniv\.", Sector.EDU),
        ("college", r"\bcollege\b|\bpolytechnic\b|\bhochschule\b|\bgrande école\b", Sector.EDU),
        ("tech-institute", r"\binstitute of technology\b|\bETH\b|\bEPFL\b|\bKTH\b|\bMIT\b|\bIIT\b|\bTU\b", Sector.EDU),
        ("school", r"\bgraduate school\b|\bécole\b", Sector.EDU),
        ("company-suffix", r"\b(?:inc|corp|corporation|ltd|llc|gmbh|co\.)\b\.?", Sector.COM),
        ("company-name", r"\b(?:ibm|intel|microsoft|google|amazon|nvidia|amd|huawei|cray|hpe|hewlett.packard|fujitsu|nec|samsung|baidu|alibaba|tencent|oracle|facebook|meta)\b", Sector.COM),
        ("research-lab-com", r"\bresearch labs?\b", Sector.COM),
        # generic "institute" is ambiguous between EDU and GOV; the paper
        # resolved these case by case — we treat bare institutes as EDU.
        ("institute", r"\binstitute\b|\binstitut\b", Sector.EDU),
    ]
)

# Country detection: explicit country names/aliases at word boundaries.
_COUNTRY_HINTS: tuple[tuple[re.Pattern, str], ...] = tuple(
    (re.compile(rf"\b{re.escape(alias)}\b", re.IGNORECASE), name)
    for alias, name in [
        ("USA", "United States"),
        ("United States", "United States"),
        ("UK", "United Kingdom"),
        ("United Kingdom", "United Kingdom"),
        ("Germany", "Germany"),
        ("France", "France"),
        ("China", "China"),
        ("Japan", "Japan"),
        ("India", "India"),
        ("Spain", "Spain"),
        ("Switzerland", "Switzerland"),
        ("Canada", "Canada"),
        ("Italy", "Italy"),
        ("Netherlands", "Netherlands"),
        ("Australia", "Australia"),
        ("Brazil", "Brazil"),
        ("South Korea", "South Korea"),
        ("Korea", "South Korea"),
        ("Sweden", "Sweden"),
        ("Austria", "Austria"),
        ("Belgium", "Belgium"),
        ("Poland", "Poland"),
        ("Singapore", "Singapore"),
        ("Israel", "Israel"),
        ("Greece", "Greece"),
        ("Portugal", "Portugal"),
        ("Norway", "Norway"),
        ("Denmark", "Denmark"),
        ("Finland", "Finland"),
        ("Ireland", "Ireland"),
        ("Turkey", "Turkey"),
        ("Saudi Arabia", "Saudi Arabia"),
        ("Qatar", "Qatar"),
        ("Thailand", "Thailand"),
        ("Malaysia", "Malaysia"),
        ("Vietnam", "Vietnam"),
        ("Indonesia", "Indonesia"),
        ("Russia", "Russia"),
        ("Czechia", "Czechia"),
        ("Czech Republic", "Czechia"),
        ("Hungary", "Hungary"),
        ("Romania", "Romania"),
        ("Mexico", "Mexico"),
        ("Egypt", "Egypt"),
        ("Nigeria", "Nigeria"),
        ("Ghana", "Ghana"),
        ("Kazakhstan", "Kazakhstan"),
        ("New Zealand", "New Zealand"),
        ("Argentina", "Argentina"),
        ("Chile", "Chile"),
        ("Colombia", "Colombia"),
        ("Taiwan", "Taiwan"),
        ("Hong Kong", "Hong Kong"),
        ("Iran", "Iran"),
        ("Pakistan", "Pakistan"),
        ("Luxembourg", "Luxembourg"),
        ("Slovenia", "Slovenia"),
        ("Croatia", "Croatia"),
        ("Estonia", "Estonia"),
        ("Bulgaria", "Bulgaria"),
        ("Slovakia", "Slovakia"),
        ("Ukraine", "Ukraine"),
        ("United Arab Emirates", "United Arab Emirates"),
        ("Morocco", "Morocco"),
        ("Tunisia", "Tunisia"),
        ("Algeria", "Algeria"),
        ("South Africa", "South Africa"),
        ("Kenya", "Kenya"),
        ("Costa Rica", "Costa Rica"),
        ("Guatemala", "Guatemala"),
        ("Uzbekistan", "Uzbekistan"),
        ("Senegal", "Senegal"),
        ("Bangladesh", "Bangladesh"),
        ("Sri Lanka", "Sri Lanka"),
        ("Philippines", "Philippines"),
        ("Iceland", "Iceland"),
    ]
)


def classify_affiliation(text: str | None) -> AffiliationGuess:
    """Classify a free-text affiliation into (country, sector).

    Returns an :class:`AffiliationGuess` with None fields where no rule
    fires.  The ``matched_rule`` names the sector rule that fired (for
    auditing the hand-coded patterns, as the paper's artifact does).
    """
    if not text:
        return AffiliationGuess(None, None, None)
    sector = None
    rule = None
    for name, pat, sec in _SECTOR_RULES:
        if pat.search(text):
            sector = sec
            rule = name
            break
    country = None
    for pat, cname in _COUNTRY_HINTS:
        if pat.search(text):
            country = country_by_name(cname)
            break
    return AffiliationGuess(country, sector, rule)
