"""Bibliometric substrates: metrics, profile stores, citation accrual.

The paper enriches researchers with Google Scholar profiles (h-index,
total publications, i10; ~68% coverage) and Semantic Scholar
past-publication counts (100% author coverage), and tracks paper
citations 36 months after publication (Fig. 2).  This package implements
those pieces:

- :mod:`repro.scholar.metrics`   — h-index, i10-index, g-index from
  citation vectors (vectorized definitions + reference implementations).
- :mod:`repro.scholar.citations` — the 36-month citation accrual model.
- :mod:`repro.scholar.gscholar`  — the simulated Google Scholar store
  (partial coverage, disambiguation noise).
- :mod:`repro.scholar.semanticscholar` — the simulated Semantic Scholar
  store (full coverage, different counting → low GS↔S2 correlation).
- :mod:`repro.scholar.linking`   — researcher↔profile linking.
"""

from repro.scholar.metrics import h_index, i10_index, g_index
from repro.scholar.citations import CitationAccrual, accrue_citations
from repro.scholar.gscholar import GoogleScholarStore, GSProfile
from repro.scholar.semanticscholar import SemanticScholarStore, S2Record
from repro.scholar.linking import link_profiles, LinkResult

__all__ = [
    "h_index",
    "i10_index",
    "g_index",
    "CitationAccrual",
    "accrue_citations",
    "GoogleScholarStore",
    "GSProfile",
    "SemanticScholarStore",
    "S2Record",
    "link_profiles",
    "LinkResult",
]
