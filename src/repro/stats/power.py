"""Statistical power for two-proportion contrasts.

The paper repeatedly hedges on nonsignificant differences ("the sample
size may be too small to establish a clear difference").  These helpers
quantify that: the power of the χ²/z two-proportion test at the study's
actual sample sizes, and the minimum detectable effect — so every
"nonsignificant" in the reproduction can be annotated with what it could
have detected.

Uses the standard normal-approximation power formula for the two-sample
proportion z-test (equivalent to the uncorrected χ² at df=1).
"""

from __future__ import annotations

import numpy as np
from scipy import special

__all__ = ["two_proportion_power", "minimum_detectable_diff"]


def _z_of(p: float) -> float:
    """Upper-tail z quantile."""
    return float(np.sqrt(2.0) * special.erfinv(1.0 - 2.0 * p))


def _phi(z: float) -> float:
    """Standard normal CDF."""
    return float(0.5 * (1.0 + special.erf(z / np.sqrt(2.0))))


def two_proportion_power(
    p1: float, p2: float, n1: int, n2: int, alpha: float = 0.05
) -> float:
    """Power of the two-sided two-proportion z-test.

    Probability of rejecting H0: p1 == p2 when the true proportions are
    (p1, p2) with samples (n1, n2).
    """
    for name, p in (("p1", p1), ("p2", p2)):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"{name} must be in [0,1], got {p}")
    if n1 < 1 or n2 < 1:
        raise ValueError("sample sizes must be >= 1")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0,1)")
    if p1 == p2:
        return alpha  # the test's size
    pbar = (p1 * n1 + p2 * n2) / (n1 + n2)
    se0 = np.sqrt(pbar * (1 - pbar) * (1 / n1 + 1 / n2))
    se1 = np.sqrt(p1 * (1 - p1) / n1 + p2 * (1 - p2) / n2)
    if se1 == 0:
        return 1.0
    z_alpha = _z_of(alpha / 2.0)
    delta = abs(p1 - p2)
    power = 1.0 - _phi((z_alpha * se0 - delta) / se1) + _phi(
        (-z_alpha * se0 - delta) / se1
    )
    return float(min(1.0, max(0.0, power)))


def minimum_detectable_diff(
    p_base: float, n1: int, n2: int, alpha: float = 0.05, power: float = 0.8
) -> float:
    """Smallest |p2 − p_base| detectable with the given power.

    Solved by bisection on :func:`two_proportion_power` (increasing
    direction only, p2 > p_base).
    """
    if not 0.0 <= p_base < 1.0:
        raise ValueError("p_base must be in [0,1)")
    lo, hi = 0.0, 1.0 - p_base
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if two_proportion_power(p_base, p_base + mid, n1, n2, alpha) >= power:
            hi = mid
        else:
            lo = mid
    return hi
