"""repro — reproduction of "Representation of Women in HPC Conferences" (SC '21).

Public entry points:

- :func:`repro.run_pipeline` / :class:`repro.WorldConfig` — build the
  synthetic world, harvest it, infer genders, and return an
  :class:`~repro.pipeline.dataset.AnalysisDataset`.
- :mod:`repro.report` — regenerate every table and figure of the paper
  (``run_experiment("T1", result)`` … ``"SENS"``).
- :mod:`repro.analysis` — the individual analyses (FAR, PC, reception,
  experience, geography, sector, sensitivity, case studies).
- :mod:`repro.collab`, :mod:`repro.universe`, :mod:`repro.review`,
  :mod:`repro.forecast`, :mod:`repro.survey` — the paper's §2/§6
  extensions.
- ``python -m repro`` — the command-line interface.

See DESIGN.md for the system inventory, docs/METHODOLOGY.md for the
calibration math, and EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.version import __version__
from repro.synth import WorldConfig, build_world
from repro.pipeline import EngineConfig, RunConfig, run_pipeline

__all__ = [
    "__version__",
    "WorldConfig",
    "RunConfig",
    "EngineConfig",
    "build_world",
    "run_pipeline",
]
