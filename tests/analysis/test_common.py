"""Unit tests for the shared analysis helpers."""

import numpy as np
import pytest

from repro.analysis.common import mask_eq, share_of, women_share
from repro.tabular import Table


@pytest.fixture
def table():
    return Table(
        {
            "gender": ["F", "M", None, "F", "M", "M"],
            "conf": ["SC", "SC", "SC", "ISC", "ISC", "ISC"],
        }
    )


class TestMaskEq:
    def test_basic(self, table):
        m = mask_eq(table, "conf", "SC")
        assert m.tolist() == [True, True, True, False, False, False]

    def test_none_matches_none(self, table):
        m = mask_eq(table, "gender", None)
        assert m.tolist() == [False, False, True, False, False, False]


class TestShareOf:
    def test_missing_excluded_from_denominator(self, table):
        p = share_of(table, "gender", "F")
        assert (p.hits, p.n) == (2, 5)

    def test_women_share_alias(self, table):
        assert women_share(table).value == share_of(table, "gender", "F").value

    def test_empty_table(self):
        t = Table({"gender": []})
        p = women_share(t)
        assert p.n == 0 and np.isnan(p.value)

    def test_all_missing(self):
        t = Table({"gender": [None, None]})
        assert women_share(t).n == 0
