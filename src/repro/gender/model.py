"""Gender types.

The paper uses binary perceived gender because that is the only
designator available to bibliometric studies, and says so explicitly
(§2).  We model an explicit UNKNOWN state rather than None so the
"excluded from most analyses" semantics are visible in types.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Gender", "InferenceMethod", "GenderAssignment"]


class Gender(str, Enum):
    """Perceived binary gender, with an explicit unknown."""

    F = "F"
    M = "M"
    UNKNOWN = "U"

    @property
    def known(self) -> bool:
        return self is not Gender.UNKNOWN


class InferenceMethod(str, Enum):
    """How an assignment was produced (mirrors the paper's cascade)."""

    MANUAL = "manual"          # web page pronoun or photo
    GENDERIZE = "genderize"    # automated, accepted at >= 0.70 confidence
    NONE = "none"              # unassigned
    SENSITIVITY = "sensitivity"  # forced during the sensitivity analysis
    SURVEY = "survey"          # self-identified (author survey)


@dataclass(frozen=True)
class GenderAssignment:
    """One researcher's assignment with provenance.

    Attributes
    ----------
    gender:
        The assigned perceived gender (UNKNOWN when unassigned).
    method:
        Which cascade stage produced it.
    confidence:
        The stage's confidence: 1.0 for manual pronoun evidence, the
        service probability for genderize, NaN when unassigned.
    """

    gender: Gender
    method: InferenceMethod
    confidence: float

    @property
    def known(self) -> bool:
        return self.gender.known

    @staticmethod
    def unassigned() -> "GenderAssignment":
        return GenderAssignment(Gender.UNKNOWN, InferenceMethod.NONE, float("nan"))
