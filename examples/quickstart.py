#!/usr/bin/env python3
"""Quickstart: build the world, run the pipeline, print headline results.

Usage::

    python examples/quickstart.py [--seed N] [--scale S]

Builds the calibrated synthetic world (the paper's nine 2017 conferences
with their published sizes at scale 1.0), scrapes the generated sites,
runs the gender-inference cascade, and prints the §3.1 headline numbers
next to the paper's values.
"""

from __future__ import annotations

import argparse

from repro.analysis import blind_report, far_report, pc_report
from repro.pipeline import RunConfig, run_pipeline
from repro.report import build_table1
from repro.synth import WorldConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    parser.add_argument("--scale", type=float, default=1.0, help="population scale")
    args = parser.parse_args()

    print(f"Building world (seed={args.seed}, scale={args.scale}) and running pipeline...")
    result = run_pipeline(RunConfig(world=WorldConfig(seed=args.seed, scale=args.scale)))
    print(result.timer.report())
    print()

    _, table1 = build_table1(result.dataset)
    print(table1)
    print()

    ds = result.dataset
    far = far_report(ds)
    blind = blind_report(ds)
    pc = pc_report(ds)
    cov = result.coverage

    print("Headline statistics (measured vs paper):")
    print(f"  women among all authors:      {far.overall}            (paper:  9.90%)")
    print(f"  women among SC authors:       {far.conference('SC').authors}    (paper:  8.12%)")
    print(f"  women among ISC authors:      {far.conference('ISC').authors}      (paper:  5.77%)")
    print(f"  women among lead authors:     {far.lead_overall}      (paper: ~10.9%)")
    print(f"  women among last authors:     {far.last_overall}      (paper:  8.40%)")
    print(f"  double- vs single-blind FAR:  {blind.authors_double.pct:.2f}% vs "
          f"{blind.authors_single.pct:.2f}%  (paper: 7.57% vs 10.52%)")
    print(f"  women among PC memberships:   {pc.memberships}   (paper: 18.46%)")
    print(f"  gender assignment coverage:   manual {100*cov['manual']:.2f}% / "
          f"genderize {100*cov['genderize']:.2f}% / unassigned {100*cov['none']:.2f}%")
    print(f"                                (paper: 95.18% / 1.79% / 3.03%)")


if __name__ == "__main__":
    main()
