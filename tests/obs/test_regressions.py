"""Regression tests for the three bugfixes shipped with the obs layer.

1. ``StageTimer`` accumulates durations for a stage name that runs more
   than once (checkpoint resume, the repeated ``contracts`` hand-offs)
   instead of overwriting the earlier entry, and ``report()`` no longer
   misaligns names longer than 20 characters.
2. ``TaskError`` preserves the original formatted traceback from the
   raise site while staying equal across the serial and parallel paths.
3. A resumed run marks the resumed stages (``resumed_from_checkpoint``)
   so near-zero checkpoint-load durations cannot read as fresh work.
"""

import pytest

from repro.faults import FaultConfig
from repro.obs import ObsContext
from repro.pipeline import run_pipeline
from repro.util.parallel import ParallelConfig, TaskError, parallel_map
from repro.util.timing import StageTimer

pytestmark = pytest.mark.obs

NO_FAULTS = FaultConfig(rate=0.0, seed=1)


def _raise_value_error(x):
    raise ValueError(f"boom for {x}")


class TestStageTimerAccumulation:
    def test_repeated_stage_accumulates(self):
        timer = StageTimer()
        timer.durations["contracts"] = 1.0
        with timer.stage("contracts"):
            pass
        assert timer.durations["contracts"] > 1.0  # summed, not overwritten

    def test_counts_track_repeats(self):
        timer = StageTimer()
        for _ in range(3):
            with timer.stage("contracts"):
                pass
        with timer.stage("link"):
            pass
        assert timer.counts == {"contracts": 3, "link": 1}

    def test_report_shows_repeat_count(self):
        timer = StageTimer()
        for _ in range(2):
            with timer.stage("contracts"):
                pass
        line = next(l for l in timer.report().splitlines() if "contracts" in l)
        assert "(x2)" in line

    def test_total_sums_accumulated_durations(self):
        timer = StageTimer()
        timer.durations["a"] = 1.0
        timer.durations["b"] = 2.5
        assert timer.total() == pytest.approx(3.5)


class TestReportAlignment:
    def test_long_names_stay_aligned(self):
        timer = StageTimer()
        long_name = "a-stage-name-well-over-twenty-characters"
        timer.durations["ingest"] = 0.001
        timer.durations[long_name] = 0.002
        lines = timer.report().splitlines()
        assert any(long_name in l for l in lines)  # never truncated
        # the duration column starts at the same offset on every line
        cols = {l.index(" ms") for l in lines}
        assert len(cols) == 1
        assert cols.pop() > len(long_name)

    def test_short_names_keep_historical_width(self):
        timer = StageTimer()
        timer.durations["ingest"] = 0.001
        line = timer.report().splitlines()[0]
        assert line.startswith("ingest" + " " * 14)  # padded to 20


class TestTaskErrorTraceback:
    def test_traceback_preserved_from_raise_site(self):
        (err,) = parallel_map(
            _raise_value_error, [7], capture_errors=True
        )
        assert isinstance(err, TaskError)
        assert "ValueError: boom for 7" in err.traceback
        assert "_raise_value_error" in err.traceback  # original frame, not the pool's

    def test_traceback_preserved_in_worker_processes(self):
        out = parallel_map(
            _raise_value_error,
            [1, 2],
            ParallelConfig(workers=2, min_items_per_worker=1),
            capture_errors=True,
        )
        for err in out:
            assert "ValueError" in err.traceback
            assert "_raise_value_error" in err.traceback

    def test_equality_ignores_traceback(self):
        a = TaskError("ValueError", "boom", traceback="File a.py, line 1")
        b = TaskError("ValueError", "boom", traceback="File b.py, line 99")
        assert a == b
        assert "line 99" not in repr(b)  # repr stays line-number-agnostic

    def test_serial_and_parallel_errors_compare_equal(self):
        serial = parallel_map(_raise_value_error, [1, 2], capture_errors=True)
        par = parallel_map(
            _raise_value_error,
            [1, 2],
            ParallelConfig(workers=2, min_items_per_worker=1),
            capture_errors=True,
        )
        assert serial == par


class TestResumeMarker:
    def test_fresh_run_marks_nothing(self, small_world, tmp_path):
        result = run_pipeline(
            world=small_world,
            faults=NO_FAULTS,
            checkpoint_dir=str(tmp_path / "ck"),
        )
        assert result.timer.resumed == set()
        assert "(resumed from checkpoint)" not in result.timer.report()

    def test_resumed_run_marks_ingest_and_enrich(self, small_world, tmp_path):
        ck = str(tmp_path / "ck")
        run_pipeline(world=small_world, faults=NO_FAULTS, checkpoint_dir=ck)
        obs = ObsContext(seed=small_world.seed)
        again = run_pipeline(
            world=small_world,
            faults=NO_FAULTS,
            checkpoint_dir=ck,
            resume=True,
            obs=obs,
        )
        assert again.timer.resumed == {"ingest", "enrich"}
        report = again.timer.report()
        for line in report.splitlines():
            if line.startswith(("ingest", "enrich")):
                assert "(resumed from checkpoint)" in line
        assert obs.metrics.counters["checkpoint.stages_resumed"] == 2
        ingest_span = obs.tracer.by_name("ingest")[0]
        assert ingest_span.attrs["resumed_from_checkpoint"] is True
        assert ingest_span.attrs["resumed_editions"] > 0
        enrich_span = obs.tracer.by_name("enrich")[0]
        assert enrich_span.attrs["resumed_from_checkpoint"] is True

    def test_resumed_duration_still_recorded(self, small_world, tmp_path):
        ck = str(tmp_path / "ck")
        run_pipeline(world=small_world, faults=NO_FAULTS, checkpoint_dir=ck)
        again = run_pipeline(
            world=small_world, faults=NO_FAULTS, checkpoint_dir=ck, resume=True
        )
        # the (tiny) checkpoint-load time is kept, never dropped
        assert again.timer.durations["ingest"] >= 0.0
        assert "ingest" in again.timer.durations
