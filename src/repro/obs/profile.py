"""Per-stage cProfile capture behind the ``--profile`` flag.

Profiling is strictly opt-in (cProfile costs far more than the <5%
budget the rest of the observability layer lives under) and per-stage:
each pipeline stage runs under its own profiler so the top-N output
answers "where does *this* stage spend its time", not "where does the
whole process".  Stages that repeat (``contracts`` runs at every
hand-off, resumed stages re-enter) accumulate into one profile per
stage name.

cProfile cannot nest, so :meth:`StageProfiler.stage` is a no-op when a
profile is already being collected (the outermost stage wins) and
worker processes are never profiled — their work shows up in the trace
spans instead.
"""

from __future__ import annotations

import cProfile
import io
import pstats

__all__ = ["StageProfiler"]


class StageProfiler:
    """Collects one cProfile per stage name; renders top-N cumulative."""

    def __init__(self, top_n: int = 12) -> None:
        self.top_n = top_n
        self.profiles: dict[str, cProfile.Profile] = {}
        self._active = False

    def stage(self, name: str) -> "_ProfiledStage":
        return _ProfiledStage(self, name)

    # ------------------------------------------------------------ rendering

    def report(self, name: str) -> str:
        """Top-N cumulative-time lines for one stage."""
        prof = self.profiles.get(name)
        if prof is None:
            return ""
        buf = io.StringIO()
        stats = pstats.Stats(prof, stream=buf)
        stats.sort_stats("cumulative").print_stats(self.top_n)
        return buf.getvalue()

    def render(self) -> str:
        """All per-stage reports, in stage-first-seen order."""
        parts = []
        for name in self.profiles:
            parts.append(f"===== profile: {name} (top {self.top_n} cumulative) =====")
            parts.append(self.report(name).rstrip())
        return "\n".join(parts)


class _ProfiledStage:
    __slots__ = ("_profiler", "_name", "_prof")

    def __init__(self, profiler: StageProfiler, name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._prof: cProfile.Profile | None = None

    def __enter__(self) -> "_ProfiledStage":
        if self._profiler._active:  # cProfile cannot nest; outermost wins
            return self
        prof = self._profiler.profiles.get(self._name)
        if prof is None:
            prof = self._profiler.profiles[self._name] = cProfile.Profile()
        self._prof = prof
        self._profiler._active = True
        prof.enable()
        return self

    def __exit__(self, *exc) -> None:
        if self._prof is not None:
            self._prof.disable()
            self._profiler._active = False
            self._prof = None
