"""Exported observability artifacts: trace.json, metrics.json, CLI flags."""

import json

import pytest

from repro.obs import ObsContext, write_metrics, write_trace
from repro.pipeline import run_pipeline

pytestmark = pytest.mark.obs


def _traced_run(small_world):
    obs = ObsContext(seed=small_world.seed)
    result = run_pipeline(world=small_world, obs=obs, validation="repair")
    return obs, result


class TestTraceFile:
    def test_trace_json_is_valid_chrome_trace(self, small_world, tmp_path):
        obs, _ = _traced_run(small_world)
        path = write_trace(obs.tracer, tmp_path / "trace.json")
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert set(doc) == {"displayTimeUnit", "otherData", "traceEvents"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["seed"] == small_world.seed
        assert len(doc["traceEvents"]) > 0
        for ev in doc["traceEvents"]:
            assert ev["ph"] == "X"
            assert ev["ts"] >= 0 and ev["dur"] >= 0
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        names = {ev["name"] for ev in doc["traceEvents"]}
        assert {"ingest", "link", "enrich", "infer", "dataset"} <= names

    def test_parent_references_resolve(self, small_world, tmp_path):
        obs, _ = _traced_run(small_world)
        doc = json.loads(
            write_trace(obs.tracer, tmp_path / "t.json").read_text(encoding="utf-8")
        )
        ids = {ev["args"]["span_id"] for ev in doc["traceEvents"]}
        for ev in doc["traceEvents"]:
            parent = ev["args"]["parent_id"]
            assert parent is None or parent in ids


class TestMetricsFile:
    def test_metrics_json_shape(self, small_world, tmp_path):
        obs, result = _traced_run(small_world)
        path = write_metrics(
            obs.metrics,
            tmp_path / "metrics.json",
            timing=dict(result.timer.durations),
            meta={"seed": small_world.seed},
        )
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert set(doc) == {"meta", "metrics", "timing"}
        assert doc["meta"]["seed"] == small_world.seed
        assert doc["metrics"]["counters"]["harvest.editions"] > 0
        assert not any(k.startswith("time.") for k in doc["metrics"]["gauges"])
        assert any(k.startswith("time.stage.") for k in doc["timing"])

    def test_metrics_json_deterministic_outside_timing(self, small_world, tmp_path):
        texts = []
        for i in range(2):
            obs, _ = _traced_run(small_world)
            p = write_metrics(obs.metrics, tmp_path / f"m{i}.json")
            texts.append(p.read_text(encoding="utf-8"))
        docs = [json.loads(t) for t in texts]
        for doc in docs:
            doc.pop("timing")
        assert json.dumps(docs[0], sort_keys=True) == json.dumps(docs[1], sort_keys=True)


class TestExportArtifact:
    def test_bundle_includes_obs_artifacts(self, small_world, tmp_path):
        from repro.report.export import export_artifact

        obs, result = _traced_run(small_world)
        out = export_artifact(result, tmp_path / "bundle")
        manifest = json.loads((out / "MANIFEST.json").read_text(encoding="utf-8"))
        assert manifest["trace"] == "trace.json"
        assert manifest["metrics"] == "metrics.json"
        json.loads((out / "trace.json").read_text(encoding="utf-8"))
        json.loads((out / "metrics.json").read_text(encoding="utf-8"))

    def test_bundle_without_obs_has_no_obs_keys(self, small_result, tmp_path):
        from repro.report.export import export_artifact

        out = export_artifact(small_result, tmp_path / "plain")
        manifest = json.loads((out / "MANIFEST.json").read_text(encoding="utf-8"))
        assert "trace" not in manifest and "metrics" not in manifest
        assert not (out / "trace.json").exists()


class TestCli:
    def test_run_with_obs_flags_writes_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "--scale",
                "0.25",
                "--seed",
                "11",
                "--trace",
                "--metrics",
                "--profile",
                "--obs-dir",
                str(tmp_path),
                "run",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "metrics written to" in out
        assert "cumulative" in out  # the per-stage cProfile table
        json.loads((tmp_path / "trace.json").read_text(encoding="utf-8"))
        doc = json.loads((tmp_path / "metrics.json").read_text(encoding="utf-8"))
        assert doc["meta"]["seed"] == 11

    def test_run_without_flags_writes_nothing(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        code = main(["--scale", "0.25", "--seed", "11", "run"])
        assert code == 0
        assert not (tmp_path / "out").exists()

    def test_report_command_renders_observability_section(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "--scale",
                "0.25",
                "--seed",
                "11",
                "--metrics",
                "--obs-dir",
                str(tmp_path),
                "report",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "## Observability" in out
