"""Tests for groupby."""

import pytest

from repro.tabular import Table, count, mean, share


@pytest.fixture
def table():
    return Table(
        {
            "conf": ["SC", "SC", "ISC", "ISC", "ISC"],
            "gender": ["F", "M", "M", None, "F"],
            "cites": [10.0, 5.0, 2.0, 8.0, 4.0],
        }
    )


class TestGroupBy:
    def test_requires_key(self, table):
        with pytest.raises(ValueError):
            table.groupby()

    def test_size(self, table):
        sizes = table.groupby("conf").size()
        assert sizes.to_records() == [
            {"conf": "SC", "count": 2},
            {"conf": "ISC", "count": 3},
        ]

    def test_first_seen_order(self, table):
        keys = [k for k, _ in table.groupby("conf")]
        assert keys == [("SC",), ("ISC",)]

    def test_group_lookup(self, table):
        g = table.groupby("conf").group("ISC")
        assert g.num_rows == 3

    def test_group_missing_key(self, table):
        with pytest.raises(KeyError):
            table.groupby("conf").group("XYZ")

    def test_agg_multiple(self, table):
        out = table.groupby("conf").agg(
            n=count(), far=share("gender", "F"), avg=mean("cites")
        )
        rec = {r["conf"]: r for r in out.to_records()}
        assert rec["SC"]["n"] == 2
        assert rec["SC"]["far"] == 0.5
        assert rec["ISC"]["far"] == 0.5  # None excluded from denominator
        assert rec["ISC"]["avg"] == pytest.approx(14 / 3)

    def test_multi_key(self, table):
        gb = table.groupby("conf", "gender")
        assert ("ISC", None) in dict(iter(gb))

    def test_apply(self, table):
        out = table.groupby("conf").apply(
            lambda key, g: {"conf": key[0], "max": float(g["cites"].max())}
        )
        rec = {r["conf"]: r["max"] for r in out.to_records()}
        assert rec == {"SC": 10.0, "ISC": 8.0}

    def test_len(self, table):
        assert len(table.groupby("conf")) == 2

    def test_groups_materialization(self, table):
        groups = table.groupby("conf").groups()
        assert groups[("SC",)].num_rows == 2
