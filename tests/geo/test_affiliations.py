"""Tests for the hand-coded affiliation classifier."""

import pytest

from repro.geo import Sector, classify_affiliation


class TestSectorRules:
    @pytest.mark.parametrize(
        "text,sector",
        [
            ("Oak Ridge National Laboratory", Sector.GOV),
            ("Sandia National Laboratories", Sector.GOV),
            ("NASA Ames Research Center", Sector.GOV),
            ("National Supercomputing Center, Wuxi", Sector.GOV),
            ("National Institute of Advanced Computing", Sector.GOV),
            ("Government Research Centre", Sector.GOV),
            ("University of Chicago", Sector.EDU),
            ("Universität Stuttgart", Sector.EDU),
            ("Dartmouth College", Sector.EDU),
            ("Indian Institute of Technology", Sector.EDU),
            ("IBM Research", Sector.COM),
            ("Intel Corporation", Sector.COM),
            ("NVIDIA Inc.", Sector.COM),
        ],
    )
    def test_classification(self, text, sector):
        assert classify_affiliation(text).sector is sector

    def test_gov_outranks_edu(self):
        # a lab hosted at a university classifies as the lab
        g = classify_affiliation("Los Alamos National Laboratory, University of California")
        assert g.sector is Sector.GOV

    def test_no_match(self):
        g = classify_affiliation("Advanced Computing Group")
        assert g.sector is None

    def test_none_input(self):
        g = classify_affiliation(None)
        assert g.sector is None and g.country is None

    def test_matched_rule_reported(self):
        g = classify_affiliation("University of Nowhere")
        assert g.matched_rule == "university"


class TestCountryRules:
    @pytest.mark.parametrize(
        "text,code",
        [
            ("ETH Zurich, Switzerland", "CH"),
            ("Tsinghua University, China", "CN"),
            ("University of Tokyo, Japan", "JP"),
            ("INRIA, France", "FR"),
            ("University of Oxford, United Kingdom", "GB"),
            ("KAIST, Korea", "KR"),
            ("TU Wien, Austria", "AT"),
        ],
    )
    def test_country_detection(self, text, code):
        assert classify_affiliation(text).country.cca2 == code

    def test_no_country_hint(self):
        assert classify_affiliation("University of Somewhere").country is None

    def test_word_boundary(self):
        # 'Indiana' must not match 'India'
        g = classify_affiliation("Indiana University")
        assert g.country is None
