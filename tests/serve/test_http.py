"""The HTTP transport end to end: real sockets, real signals.

An in-process :class:`~repro.serve.ReproServer` on an ephemeral port
covers the status-code and header contracts; a subprocess running
``python -m repro serve`` covers the full SIGTERM drain: stop
accepting, finish in-flight work, write the ledger record, exit 0.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve import ReproServer, ServeConfig

pytestmark = pytest.mark.serve

SCALE = 0.1


def make_server(tmp_path, **overrides) -> ReproServer:
    defaults = dict(
        port=0,
        seed=7,
        scale=SCALE,
        obs_dir=str(tmp_path / "obs"),
        deadline_s=30.0,
    )
    defaults.update(overrides)
    server = ReproServer(ServeConfig(**defaults))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


def get(port: int, path: str, headers: dict | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request("GET", path, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    server = make_server(tmp_path_factory.mktemp("http"))
    yield server
    server.initiate_drain()
    server.drain_and_close()


class TestEndpoints:
    def test_healthz_and_readyz(self, server):
        status, _, body = get(server.bound_port, "/healthz")
        assert status == 200 and json.loads(body) == {"status": "alive"}
        status, _, body = get(server.bound_port, "/readyz")
        assert status == 200 and json.loads(body) == {"status": "ready"}

    def test_far_roundtrip_with_headers(self, server):
        status, headers, body = get(server.bound_port, "/v1/far")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert headers["ETag"].startswith('"')
        float(headers["X-Repro-Elapsed-Ms"])  # timing in headers, not body
        payload = json.loads(body)
        assert payload["endpoint"] == "far"
        assert "elapsed" not in body.decode()  # determinism split honoured

    def test_if_none_match_roundtrip_is_304(self, server):
        _, headers, _ = get(server.bound_port, "/v1/far")
        status, h2, body = get(
            server.bound_port, "/v1/far",
            headers={"If-None-Match": headers["ETag"]},
        )
        assert status == 304 and body == b""
        assert h2["ETag"] == headers["ETag"]

    def test_unknown_route_404(self, server):
        status, _, body = get(server.bound_port, "/nope")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "not-found"

    def test_bad_parameter_400(self, server):
        status, _, _ = get(server.bound_port, "/v1/far?scale=banana")
        assert status == 400

    def test_post_is_405(self, server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.bound_port, timeout=60
        )
        try:
            conn.request("POST", "/v1/far", body=b"{}")
            resp = conn.getresponse()
            assert resp.status == 405
            assert resp.getheader("Allow") == "GET"
            resp.read()
        finally:
            conn.close()

    def test_keep_alive_connection_reuse(self, server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.bound_port, timeout=60
        )
        try:
            for _ in range(3):
                conn.request("GET", "/v1/far")
                resp = conn.getresponse()
                assert resp.status == 200
                resp.read()  # same socket serves all three
        finally:
            conn.close()


class TestShedding:
    def test_overload_sheds_429_with_retry_after(self, tmp_path):
        """With the one execution slot held and no queue, requests shed."""
        server = make_server(
            tmp_path, max_concurrency=1, queue_depth=0, retry_after_s=2.0
        )
        try:
            from repro.serve import Admission

            assert server.admission.acquire(0.0) is Admission.ADMITTED
            try:
                status, headers, body = get(server.bound_port, "/v1/far")
                assert status == 429
                assert headers["Retry-After"] == "2"
                assert json.loads(body)["error"]["code"] == "overloaded"
            finally:
                server.admission.release()
            # probes keep answering while analysis traffic sheds
            assert get(server.bound_port, "/healthz")[0] == 200
        finally:
            server.initiate_drain()
            server.drain_and_close()


class TestDrainInProcess:
    def test_drain_refuses_new_work_and_writes_ledger(self, tmp_path):
        server = make_server(tmp_path)
        port = server.bound_port
        assert get(port, "/v1/far")[0] == 200
        server.service.begin_drain()
        status, _, body = get(port, "/readyz")
        assert status == 503 and json.loads(body) == {"status": "draining"}
        status, _, body = get(port, "/v1/far")
        assert status == 503
        assert json.loads(body)["error"]["code"] == "draining"
        server.initiate_drain()
        run_id = server.drain_and_close()
        assert run_id is not None
        ledger_file = Path(tmp_path, "obs", "ledger", "runs.jsonl")
        assert ledger_file.exists() and run_id in ledger_file.read_text()


class TestSigtermDrain:
    def test_sigterm_drains_flushes_and_exits_zero(self, tmp_path):
        """The acceptance criterion, against the real CLI process."""
        obs_dir = tmp_path / "obs"
        proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro",
                "--obs-dir", str(obs_dir), "--scale", str(SCALE),
                "serve", "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=str(Path(__file__).resolve().parents[2]),
        )
        try:
            announce = proc.stdout.readline()
            assert "listening on http://" in announce
            port = int(announce.split("http://127.0.0.1:")[1].split()[0])

            # a loaded server: one request in flight when the signal lands
            results: list[int] = []
            t = threading.Thread(
                target=lambda: results.append(get(port, "/v1/far")[0])
            )
            t.start()
            time.sleep(0.3)  # in the window: admitted, still computing
            proc.send_signal(signal.SIGTERM)
            t.join(timeout=120)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.communicate()

        assert proc.returncode == 0
        assert results == [200]  # in-flight work finished, not dropped
        assert "drained:" in out and "ledger record" in out
        ledger_file = obs_dir / "ledger" / "runs.jsonl"
        assert ledger_file.exists()
        record = json.loads(ledger_file.read_text().splitlines()[-1])
        assert record["body"]["meta"]["command"] == "serve"
        assert record["body"]["service"]["requests"] >= 1
