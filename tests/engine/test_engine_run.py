"""End-to-end pipeline runs on the stage-DAG engine.

The acceptance bar from the redesign issue:

- a warm (fully cached) run re-executes **zero** stage bodies — the
  cache-hit counter equals the node count and ``engine.nodes_executed``
  never appears;
- cold, warm, and parallel runs produce identical ``PipelineResult``
  payloads (datasets byte-identical under pickle);
- the legacy ``run_pipeline(WorldConfig, ...)`` spelling still works,
  emits ``DeprecationWarning``, and matches the ``RunConfig`` spelling.
"""

import pytest

from repro.faults import FaultConfig
from repro.obs import ObsContext
from repro.pipeline import EngineConfig, RunConfig, run_pipeline
from repro.synth import WorldConfig
from repro.util.parallel import ParallelConfig

pytestmark = pytest.mark.engine

SMALL = WorldConfig(seed=11, scale=0.25)
N_NODES = 7  # world, ingest, link, enrich, infer, dataset, finalize

TABLES = (
    "researchers",
    "author_positions",
    "conf_authors",
    "papers",
    "conferences",
    "role_slots",
)


def _datasets_equal(a, b) -> bool:
    return all(getattr(a, t).equals(getattr(b, t)) for t in TABLES)


def _dataset_bytes(result) -> bytes:
    """Canonical byte serialization of the analysis payload.

    ``repr`` over records rather than ``pickle.dumps`` over tables:
    pickle's memo encoding depends on *object sharing*, which legitimately
    differs between a freshly-computed graph and one reloaded from
    per-artifact cache entries even when every value is identical.
    """
    payload = {t: getattr(result.dataset, t).to_records() for t in TABLES}
    payload["coverage"] = sorted(result.coverage.items())
    payload["assignments"] = sorted(
        (k, repr(v)) for k, v in result.inference.assignments.items()
    )
    return repr(payload).encode("utf-8")


def _run(cache_dir, *, world=None, workers=None, refresh=False, obs=None, **kw):
    cfg = RunConfig(
        world=SMALL,
        engine=EngineConfig(
            cache_dir=None if cache_dir is None else str(cache_dir),
            workers=workers,
            refresh=refresh,
        ),
        obs=obs,
        **kw,
    )
    return run_pipeline(cfg, world=world)


class TestWarmRunSkipsStageBodies:
    def test_cold_run_executes_every_node(self, tmp_path):
        obs = ObsContext(seed=1)
        _run(tmp_path / "cache", obs=obs)
        c = obs.metrics.counters
        assert c.get("engine.nodes_executed", 0) == N_NODES
        assert c.get("engine.cache.misses", 0) == N_NODES
        assert c.get("engine.cache.hits", 0) == 0

    def test_warm_run_executes_zero_nodes(self, tmp_path):
        _run(tmp_path / "cache")
        obs = ObsContext(seed=2)
        _run(tmp_path / "cache", obs=obs)
        c = obs.metrics.counters
        assert c.get("engine.cache.hits", 0) == N_NODES
        assert c.get("engine.cache.misses", 0) == 0
        # zero stage bodies ran: the execution counter never appeared
        assert "engine.nodes_executed" not in c

    def test_refresh_recomputes_despite_cache(self, tmp_path):
        _run(tmp_path / "cache")
        obs = ObsContext(seed=3)
        _run(tmp_path / "cache", refresh=True, obs=obs)
        c = obs.metrics.counters
        assert c.get("engine.nodes_executed", 0) == N_NODES
        assert c.get("engine.cache.hits", 0) == 0

    def test_prebuilt_world_graph_has_six_nodes(self, small_world, tmp_path):
        obs = ObsContext(seed=4)
        _run(tmp_path / "cache", world=small_world, obs=obs)
        assert obs.metrics.counters.get("engine.nodes_executed", 0) == N_NODES - 1
        warm = ObsContext(seed=5)
        _run(tmp_path / "cache", world=small_world, obs=warm)
        assert warm.metrics.counters.get("engine.cache.hits", 0) == N_NODES - 1


class TestResultIdentity:
    def test_cold_warm_parallel_byte_identical(self, tmp_path):
        cold = _run(tmp_path / "cache")
        warm = _run(tmp_path / "cache")
        par = _run(tmp_path / "par-cache", workers=2)
        ref = _dataset_bytes(cold)
        assert _dataset_bytes(warm) == ref
        assert _dataset_bytes(par) == ref

    def test_serial_cache_is_hit_by_parallel_run(self, tmp_path):
        """Execution policy stays out of cache keys: a cache written
        serially serves a parallel run (and vice versa)."""
        cold = _run(tmp_path / "cache")  # serial write
        obs = ObsContext(seed=6)
        par = _run(tmp_path / "cache", workers=2, obs=obs)  # parallel read
        assert obs.metrics.counters.get("engine.cache.hits", 0) == N_NODES
        assert _dataset_bytes(par) == _dataset_bytes(cold)

    def test_ingest_parallelism_does_not_change_keys(self, tmp_path):
        serial = _run(tmp_path / "cache")
        obs = ObsContext(seed=7)
        fanned = _run(
            tmp_path / "cache", parallel=ParallelConfig(workers=2), obs=obs
        )
        assert obs.metrics.counters.get("engine.cache.hits", 0) == N_NODES
        assert _dataset_bytes(fanned) == _dataset_bytes(serial)

    def test_engine_matches_legacy_path(self, small_world, small_result):
        engine = _run(None, world=small_world)
        assert _datasets_equal(engine.dataset, small_result.dataset)
        assert engine.coverage == small_result.coverage


class TestEngineFeatureParity:
    def test_faults_and_validation_through_engine(self, small_world, tmp_path):
        faults = FaultConfig(rate=0.25, seed=3)
        legacy = run_pipeline(
            RunConfig(world=None, faults=faults, validation="repair"),
            world=small_world,
        )
        engine = _run(
            tmp_path / "cache",
            world=small_world,
            faults=faults,
            validation="repair",
        )
        warm = _run(
            tmp_path / "cache",
            world=small_world,
            faults=faults,
            validation="repair",
        )
        for got in (engine, warm):
            assert _datasets_equal(got.dataset, legacy.dataset)
            assert got.coverage == legacy.coverage
            assert got.degraded == legacy.degraded
            assert got.contracts.audit == legacy.contracts.audit
            assert len(got.contracts.quarantine.entries) == len(
                legacy.contracts.quarantine.entries
            )

    def test_strict_validation_passes_clean_run(self, small_world):
        result = _run(None, world=small_world, validation="strict")
        assert result.contracts is not None
        assert result.contracts.audit.ok


class TestRunConfigCompatibility:
    def test_legacy_spelling_warns_and_matches(self, small_world):
        with pytest.warns(DeprecationWarning):
            legacy = run_pipeline(world=small_world, validation="repair")
        modern = run_pipeline(
            RunConfig(world=None, validation="repair"), world=small_world
        )
        assert _datasets_equal(legacy.dataset, modern.dataset)
        assert legacy.coverage == modern.coverage

    def test_worldconfig_positional_warns_and_matches(self):
        with pytest.warns(DeprecationWarning):
            legacy = run_pipeline(SMALL)
        modern = run_pipeline(RunConfig(world=SMALL))
        assert _datasets_equal(legacy.dataset, modern.dataset)

    def test_runconfig_spelling_emits_no_warning(self, small_world):
        import warnings as _w

        with _w.catch_warnings():
            _w.simplefilter("error", DeprecationWarning)
            run_pipeline(RunConfig(world=None), world=small_world)

    def test_kwargs_alongside_runconfig_warn_but_apply(self, small_world):
        with pytest.warns(DeprecationWarning):
            result = run_pipeline(
                RunConfig(world=None), world=small_world, validation="repair"
            )
        assert result.contracts is not None

    def test_resume_without_checkpoint_dir_rejected(self):
        with pytest.raises(ValueError, match="resume"):
            RunConfig(world=SMALL, resume=True)

    def test_bogus_config_type_rejected(self):
        with pytest.raises(TypeError, match="RunConfig or WorldConfig"):
            run_pipeline({"seed": 1})
