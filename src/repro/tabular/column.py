"""Typed column wrapper for the tabular engine."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

__all__ = ["Column", "infer_dtype"]

_KINDS = {"int": np.int64, "float": np.float64, "bool": np.bool_, "str": object}


def infer_dtype(values: Sequence[Any]) -> str:
    """Infer a column kind ('int' | 'float' | 'bool' | 'str') from values.

    ``None`` mixed with numbers — ints *or* bools — promotes to float
    (NaN); ``None`` mixed with strings stays a string column with
    ``None`` entries.  An all-``None``/empty input infers 'str' (the
    most permissive kind).
    """
    saw_float = saw_int = saw_bool = saw_str = saw_none = False
    for v in values:
        if v is None:
            saw_none = True
        elif isinstance(v, (bool, np.bool_)):
            saw_bool = True
        elif isinstance(v, (int, np.integer)):
            saw_int = True
        elif isinstance(v, (float, np.floating)):
            saw_float = True
        else:
            saw_str = True  # strings and arbitrary objects ride in object columns
    if saw_str:
        return "str"
    if saw_float:
        return "float"
    if saw_int:
        return "float" if saw_none else "int"
    if saw_bool:
        # bool cannot represent missing (None would coerce to False)
        return "float" if saw_none else "bool"
    return "str"


class Column:
    """An immutable 1-D array with a declared kind.

    Numeric/bool columns are contiguous NumPy arrays; string columns are
    object arrays (``None`` marks missing).  Missing numeric entries are
    NaN, which forces a float kind.
    """

    __slots__ = ("name", "kind", "values", "_fact")

    def __init__(self, name: str, values: Any, kind: str | None = None) -> None:
        # lazy factorization cache (repro.tabular.codes.factorize); safe
        # because the column is immutable
        self._fact = None
        if kind is None:
            if isinstance(values, np.ndarray) and values.dtype != object:
                kind = {
                    "i": "int",
                    "u": "int",
                    "f": "float",
                    "b": "bool",
                }.get(values.dtype.kind, "str")
            else:
                kind = infer_dtype(list(values))
        if kind not in _KINDS:
            raise ValueError(f"unknown column kind {kind!r}")
        self.name = name
        self.kind = kind
        if kind == "float":
            arr = np.array(
                [np.nan if v is None else v for v in values], dtype=np.float64
            ) if not (isinstance(values, np.ndarray) and values.dtype.kind == "f") else np.asarray(values, dtype=np.float64)
        elif kind == "int":
            arr = np.asarray(values, dtype=np.int64)
        elif kind == "bool":
            arr = np.asarray(values, dtype=np.bool_)
        else:
            arr = np.empty(len(values), dtype=object)
            arr[:] = list(values) if not isinstance(values, np.ndarray) else values
        arr.setflags(write=False)
        self.values = arr

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, idx):
        return self.values[idx]

    @classmethod
    def _wrap(cls, name: str, kind: str, arr: np.ndarray) -> "Column":
        """Adopt an already-typed array without re-validating/copying."""
        col = cls.__new__(cls)
        col.name = name
        col.kind = kind
        arr.setflags(write=False)
        col.values = arr
        col._fact = None
        return col

    def take(self, indices: np.ndarray) -> "Column":
        """New column with rows at ``indices`` (order preserved)."""
        return Column._wrap(self.name, self.kind, self.values[indices])

    def mask(self, keep: np.ndarray) -> "Column":
        """New column keeping rows where ``keep`` is True."""
        return Column._wrap(
            self.name, self.kind, self.values[np.asarray(keep, dtype=bool)]
        )

    def rename(self, name: str) -> "Column":
        col = Column._wrap(name, self.kind, self.values)
        col._fact = self._fact  # same values, same factorization
        return col

    def is_missing(self) -> np.ndarray:
        """Boolean mask of missing entries (NaN or None)."""
        if self.kind == "float":
            return np.isnan(self.values)
        if self.kind == "str":
            return np.array([v is None for v in self.values], dtype=bool)
        return np.zeros(len(self), dtype=bool)

    def unique(self) -> list:
        """Distinct non-missing values in first-seen order."""
        seen: dict = {}
        if self.kind == "float":
            for v in self.values:
                if not np.isnan(v):
                    seen.setdefault(float(v), None)
        else:
            for v in self.values:
                if v is not None:
                    seen.setdefault(v, None)
        return list(seen.keys())

    def to_list(self) -> list:
        if self.kind == "int":
            return [int(v) for v in self.values]
        if self.kind == "float":
            return [float(v) for v in self.values]
        if self.kind == "bool":
            return [bool(v) for v in self.values]
        return list(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        head = ", ".join(repr(v) for v in self.values[:5])
        more = ", ..." if len(self) > 5 else ""
        return f"Column({self.name!r}, kind={self.kind}, n={len(self)}, [{head}{more}])"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.name != other.name or self.kind != other.kind or len(self) != len(other):
            return False
        if self.kind == "float":
            a, b = self.values, other.values
            return bool(np.all((a == b) | (np.isnan(a) & np.isnan(b))))
        return bool(np.all(self.values == other.values))

    def __hash__(self):  # Columns are not hashable (mutable-equality semantics)
        raise TypeError("Column is not hashable")
