"""Ready-made aggregation callables for ``GroupBy.agg``."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.tabular.table import Table

__all__ = ["count", "total", "mean", "nan_mean", "share", "rate"]


def count() -> Callable[[Table], int]:
    """Number of rows in the group."""
    return lambda g: g.num_rows


def total(name: str) -> Callable[[Table], float]:
    """Sum of a numeric column (NaN-aware)."""
    return lambda g: float(np.nansum(g[name].astype(np.float64)))


def mean(name: str) -> Callable[[Table], float]:
    """Mean of a numeric column; NaN if the group is empty."""

    def _mean(g: Table) -> float:
        v = g[name].astype(np.float64)
        return float(np.mean(v)) if v.size else float("nan")

    return _mean


def nan_mean(name: str) -> Callable[[Table], float]:
    """Mean ignoring NaN entries; NaN if no observed values."""

    def _mean(g: Table) -> float:
        v = g[name].astype(np.float64)
        obs = v[~np.isnan(v)]
        return float(np.mean(obs)) if obs.size else float("nan")

    return _mean


def share(name: str, value) -> Callable[[Table], float]:
    """Fraction of rows whose column equals ``value`` (missing excluded).

    This is the workhorse of the reproduction: ``share("gender", "F")``
    computes the female ratio of a group among rows with known gender.
    """

    def _share(g: Table) -> float:
        col = g.col(name)
        miss = col.is_missing()
        denom = int((~miss).sum())
        if denom == 0:
            return float("nan")
        hits = int(np.sum((col.values == value) & ~miss))
        return hits / denom

    return _share


def rate(numerator: Callable[[Table], float], denominator: Callable[[Table], float]):
    """Ratio of two aggregations; NaN when the denominator is zero."""

    def _rate(g: Table) -> float:
        d = denominator(g)
        if not d:
            return float("nan")
        return numerator(g) / d

    return _rate
