"""The ground-truth world container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.confmodel.conference import ConferenceEdition
from repro.confmodel.entities import Paper, Person
from repro.confmodel.roles import Role, RoleAssignment

__all__ = ["WorldRegistry"]


@dataclass
class WorldRegistry:
    """Everything the synthetic world contains.

    The harvest layer serializes this into "websites" and "proceedings";
    the pipeline then reconstructs an analysis dataset from those
    artifacts alone.  Tests compare the reconstruction against this
    registry to quantify pipeline fidelity.
    """

    editions: dict[str, ConferenceEdition] = field(default_factory=dict)
    papers: dict[str, Paper] = field(default_factory=dict)
    people: dict[str, Person] = field(default_factory=dict)
    roles: list[RoleAssignment] = field(default_factory=list)

    # ------------------------------------------------------------ mutation

    def add_edition(self, edition: ConferenceEdition) -> None:
        if edition.key in self.editions:
            raise ValueError(f"duplicate edition {edition.key}")
        self.editions[edition.key] = edition

    def add_person(self, person: Person) -> None:
        if person.person_id in self.people:
            raise ValueError(f"duplicate person {person.person_id}")
        self.people[person.person_id] = person

    def add_paper(self, paper: Paper) -> None:
        if paper.paper_id in self.papers:
            raise ValueError(f"duplicate paper {paper.paper_id}")
        self.papers[paper.paper_id] = paper
        self.editions[f"{paper.conference}-{paper.year}"].paper_ids.append(
            paper.paper_id
        )
        for a in paper.authorships:
            self.roles.append(
                RoleAssignment(a.person_id, paper.conference, paper.year, Role.AUTHOR)
            )

    def add_role(self, assignment: RoleAssignment) -> None:
        if assignment.role is Role.AUTHOR:
            raise ValueError("author roles are derived from papers")
        self.roles.append(assignment)

    # ------------------------------------------------------------- queries

    def editions_of_year(self, year: int) -> list[ConferenceEdition]:
        return [e for e in self.editions.values() if e.year == year]

    def papers_of(self, conference: str, year: int) -> list[Paper]:
        key = f"{conference}-{year}"
        ed = self.editions.get(key)
        if ed is None:
            return []
        return [self.papers[pid] for pid in ed.paper_ids]

    def roles_of(
        self, conference: str | None = None, year: int | None = None, role: Role | None = None
    ) -> list[RoleAssignment]:
        out = self.roles
        if conference is not None:
            out = [r for r in out if r.conference == conference]
        if year is not None:
            out = [r for r in out if r.year == year]
        if role is not None:
            out = [r for r in out if r.role == role]
        return list(out)

    def unique_author_ids(self, year: int | None = None) -> set[str]:
        return {
            r.person_id
            for r in self.roles
            if r.role is Role.AUTHOR and (year is None or r.year == year)
        }

    def validate(self) -> None:
        """Internal consistency checks; raises ValueError on breakage."""
        for paper in self.papers.values():
            key = f"{paper.conference}-{paper.year}"
            if key not in self.editions:
                raise ValueError(f"paper {paper.paper_id} references missing edition {key}")
            positions = sorted(a.position for a in paper.authorships)
            if positions != list(range(len(positions))):
                raise ValueError(f"paper {paper.paper_id} has gapped author positions")
            for a in paper.authorships:
                if a.person_id not in self.people:
                    raise ValueError(
                        f"paper {paper.paper_id} references missing person {a.person_id}"
                    )
                if a.num_authors != len(paper.authorships):
                    raise ValueError(
                        f"paper {paper.paper_id} authorship num_authors mismatch"
                    )
        for r in self.roles:
            if r.person_id not in self.people:
                raise ValueError(f"role {r} references missing person")
            if f"{r.conference}-{r.year}" not in self.editions:
                raise ValueError(f"role {r} references missing edition")
