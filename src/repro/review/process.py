"""The submission/review simulator.

Model (standard in the review-experiment literature the paper cites,
e.g. Tomkins et al. 2017):

- A conference receives S submissions; each has a latent quality
  q ~ Normal(0, 1) independent of the lead author's gender (the no-
  difference null — bias is then purely a review artifact).
- The lead author is a woman with probability ``submission_far``.
- Each paper receives R reviews.  A review scores
  ``q + noise``; under *single-blind* policy, reviews of female-led
  papers additionally receive ``-bias`` (the visible-identity penalty;
  negative values model favourable bias).  Double-blind reviews never
  see identity, so no penalty applies.
- The top papers by mean score are accepted to meet the acceptance rate.

The measurable quantity is accepted FAR vs submitted FAR — exactly the
gap the paper cannot observe ("without additional information on
rejected papers") and therefore bounds indirectly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.proportions import Proportion

__all__ = ["ReviewConfig", "ReviewOutcome", "ReviewProcess"]


@dataclass(frozen=True)
class ReviewConfig:
    """Review-process parameters."""

    submissions: int = 300
    acceptance_rate: float = 0.22
    submission_far: float = 0.10     # women among submitted lead authors
    reviews_per_paper: int = 3
    review_noise: float = 1.0        # sd of per-review noise around quality
    bias: float = 0.0                # visible-identity penalty (score units)
    double_blind: bool = False

    def __post_init__(self) -> None:
        if self.submissions < 1:
            raise ValueError("submissions must be >= 1")
        if not 0.0 < self.acceptance_rate <= 1.0:
            raise ValueError("acceptance_rate must be in (0, 1]")
        if not 0.0 <= self.submission_far <= 1.0:
            raise ValueError("submission_far must be in [0, 1]")
        if self.reviews_per_paper < 1:
            raise ValueError("reviews_per_paper must be >= 1")
        if self.review_noise < 0:
            raise ValueError("review_noise must be nonnegative")


@dataclass(frozen=True)
class ReviewOutcome:
    """One simulated review cycle."""

    submitted: Proportion     # women among submitted lead authors
    accepted: Proportion      # women among accepted lead authors
    accepted_papers: int

    @property
    def far_gap(self) -> float:
        """Accepted minus submitted FAR (negative = women filtered out)."""
        return self.accepted.value - self.submitted.value


class ReviewProcess:
    """Runs review cycles under a configuration."""

    def __init__(self, config: ReviewConfig) -> None:
        self.config = config

    def run(self, rng: np.random.Generator) -> ReviewOutcome:
        """Simulate one review cycle (vectorized)."""
        c = self.config
        n = c.submissions
        female_lead = rng.random(n) < c.submission_far
        quality = rng.standard_normal(n)
        scores = quality[:, None] + c.review_noise * rng.standard_normal(
            (n, c.reviews_per_paper)
        )
        if not c.double_blind and c.bias != 0.0:
            scores[female_lead] -= c.bias
        mean_scores = scores.mean(axis=1)
        k = max(1, int(round(n * c.acceptance_rate)))
        accepted_idx = np.argsort(-mean_scores)[:k]
        accepted_female = int(female_lead[accepted_idx].sum())
        return ReviewOutcome(
            submitted=Proportion(int(female_lead.sum()), n),
            accepted=Proportion(accepted_female, k),
            accepted_papers=k,
        )

    def expected_accepted_far(
        self, rng: np.random.Generator, cycles: int = 200
    ) -> float:
        """Monte-Carlo mean of the accepted FAR over many cycles."""
        total_f = total = 0
        for _ in range(cycles):
            out = self.run(rng)
            total_f += out.accepted.hits
            total += out.accepted.n
        return total_f / total if total else float("nan")
