"""Paper and authorship construction.

For each conference the generator must hit, simultaneously:

- the Table 1 paper count and unique-author count,
- the share of the 2,236 total authorship positions (repeat authors),
- the per-conference FAR among known-gender authors (§3.1),
- the first-author and last-author female quotas (§3.1's lead/last
  contrasts),
- the §4.1 HPC-topic tagging (≈178/518 papers, with HPC papers' author
  FAR a touch *above* the overall rate).

The construction is quota-first: author slates per conference are drawn
from the pools with exact gender counts, papers get sizes that sum to
the position count exactly (largest-remainder over a lognormal size
draw), every unique author gets at least one slot, and first/last
positions are fixed up by swap passes until the lead/last quotas hold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration.targets import ConferenceTargets
from repro.confmodel.entities import Authorship, Paper
from repro.synth.population import PersonSpec
from repro.util.rounding import largest_remainder

__all__ = ["ConferenceSlate", "draw_conference_slates", "build_papers"]


@dataclass
class ConferenceSlate:
    """The unique authors chosen for one conference, by gender."""

    conference: str
    women: list[PersonSpec]
    men: list[PersonSpec]

    @property
    def all_authors(self) -> list[PersonSpec]:
        return self.women + self.men

    @property
    def size(self) -> int:
        return len(self.women) + len(self.men)


def draw_conference_slates(
    targets: list[ConferenceTargets],
    authors: list[PersonSpec],
    scale_fn,
    rng: np.random.Generator,
) -> dict[str, ConferenceSlate]:
    """Assign unique authors to conferences with exact gender quotas.

    People may serve several conferences (the global pool is smaller
    than the sum of per-conference unique counts — that overlap is the
    paper's 1,885 unique vs 2,111 conference-unique authors), but never
    twice within one conference.  Assignment walks a shuffled multiset
    of picks per gender; when the pool runs short, re-picks are allowed
    (more overlap), keeping quotas exact.
    """
    from repro.synth.dealing import deal

    women_pool = [p for p in authors if p.gender == "F"]
    men_pool = [p for p in authors if p.gender == "M"]
    if not women_pool or not men_pool:
        raise ValueError("author pool must contain both genders")

    women_quota: dict[str, int] = {}
    men_quota: dict[str, int] = {}
    for t in targets:
        uniq = scale_fn(t.unique_authors)
        n_women = min(int(round(uniq * t.far)), uniq, len(women_pool))
        women_quota[t.name] = n_women
        # clamp to the pool: single-shard plans size the pool at exactly
        # the per-conference count, and the two independent roundings
        # (pool split vs quota) can disagree by one
        men_quota[t.name] = min(uniq - n_women, len(men_pool))

    # Every pool member must fit somewhere; when scaled quotas undershoot
    # the pool (tiny scale factors), top up the largest conferences.
    def top_up(quota: dict[str, int], pool_size: int, cap: dict[str, int]) -> None:
        deficit = pool_size - sum(quota.values())
        names = sorted(quota, key=lambda k: -quota[k])
        i = 0
        while deficit > 0:
            name = names[i % len(names)]
            if quota[name] < cap[name]:
                quota[name] += 1
                deficit -= 1
            i += 1
            if i > 100 * len(names):  # pragma: no cover - defensive
                raise ValueError("cannot cover pool with conference quotas")

    caps = {t.name: len(women_pool) for t in targets}
    top_up(women_quota, len(women_pool), caps)
    caps = {t.name: len(men_pool) for t in targets}
    top_up(men_quota, len(men_pool), caps)

    key = lambda p: p.person_id
    women_deal = deal(women_pool, women_quota, rng, key=key)
    men_deal = deal(men_pool, men_quota, rng, key=key)
    return {
        t.name: ConferenceSlate(t.name, women_deal[t.name], men_deal[t.name])
        for t in targets
    }


def _paper_sizes(positions: int, papers: int, rng: np.random.Generator) -> np.ndarray:
    """Author-list sizes for ``papers`` papers summing to ``positions``.

    Draws lognormal size propensities (systems papers average ≈4.3
    authors, long tail to ~12) and integerizes with largest remainder,
    then enforces a minimum of one author per paper.
    """
    if papers <= 0:
        return np.zeros(0, dtype=np.int64)
    if positions < papers:
        raise ValueError("fewer author positions than papers")
    prop = rng.lognormal(mean=0.0, sigma=0.35, size=papers)
    sizes = largest_remainder(prop, positions)
    # enforce minimum 1: move slots from the largest papers
    for i in np.where(sizes == 0)[0]:
        j = int(np.argmax(sizes))
        sizes[j] -= 1
        sizes[i] += 1
    assert sizes.sum() == positions and (sizes >= 1).all()
    return sizes


def build_papers(
    target: ConferenceTargets,
    slate: ConferenceSlate,
    year: int,
    scale_fn,
    rng: np.random.Generator,
    paper_id_start: int,
) -> list[Paper]:
    """Construct one conference's papers from its author slate."""
    n_papers = scale_fn(target.papers)
    n_positions = max(scale_fn(target.author_positions), slate.size)
    sizes = _paper_sizes(n_positions, n_papers, rng)

    # Fill slots: each unique author once, then repeats.
    base = list(slate.all_authors)
    rng.shuffle(base)
    extra_n = n_positions - len(base)
    if extra_n < 0:
        raise ValueError("more unique authors than positions")
    extras = [base[int(i)] for i in rng.choice(len(base), size=extra_n)] if extra_n else []
    slots = base + extras
    rng.shuffle(slots)

    # Deal slots to papers avoiding duplicate authors within one paper.
    papers_authors: list[list[PersonSpec]] = [[] for _ in range(n_papers)]
    leftovers: list[PersonSpec] = []
    cursor = 0
    for pi, size in enumerate(sizes):
        seen: set[str] = set()
        while len(papers_authors[pi]) < size and cursor < len(slots):
            cand = slots[cursor]
            cursor += 1
            if cand.person_id in seen:
                leftovers.append(cand)
            else:
                papers_authors[pi].append(cand)
                seen.add(cand.person_id)
        # backfill from leftovers when the stream ran dry
        li = 0
        while len(papers_authors[pi]) < size and li < len(leftovers):
            cand = leftovers[li]
            if cand.person_id not in seen:
                papers_authors[pi].append(cand)
                seen.add(cand.person_id)
                leftovers.pop(li)
            else:
                li += 1
        # As a last resort substitute an unused slate member (keeps the
        # position count exact; slightly raises that member's slot count).
        while len(papers_authors[pi]) < size:
            cand = slate.all_authors[int(rng.integers(0, slate.size))]
            if cand.person_id not in seen:
                papers_authors[pi].append(cand)
                seen.add(cand.person_id)

    _fix_position_quotas(papers_authors, target, n_papers, rng)

    papers: list[Paper] = []
    for pi, members in enumerate(papers_authors):
        pid = f"{target.name}-{year}-{paper_id_start + pi:04d}"
        authorships = [
            Authorship(person_id=m.person_id, position=k, num_authors=len(members))
            for k, m in enumerate(members)
        ]
        papers.append(
            Paper(
                paper_id=pid,
                conference=target.name,
                year=year,
                title=_title(rng),
                authorships=authorships,
                is_hpc=False,  # tagged globally afterwards (§4.1 quota)
            )
        )
    return papers


def _fix_position_quotas(
    papers_authors: list[list[PersonSpec]],
    target: ConferenceTargets,
    n_papers: int,
    rng: np.random.Generator,
) -> None:
    """Swap authors within papers until lead/last female quotas hold."""
    want_lead = int(round(n_papers * target.lead_far))
    multi = [m for m in papers_authors if len(m) > 1]
    want_last = int(round(len(multi) * target.last_far))

    def female_lead_count() -> int:
        return sum(1 for m in papers_authors if m and m[0].gender == "F")

    def female_last_count() -> int:
        return sum(1 for m in papers_authors if len(m) > 1 and m[-1].gender == "F")

    # Lead pass: promote/demote women at position 0 by intra-paper swaps.
    for _ in range(4 * n_papers):
        have = female_lead_count()
        if have == want_lead:
            break
        order = rng.permutation(len(papers_authors))
        changed = False
        for i in order:
            m = papers_authors[int(i)]
            if len(m) < 2:
                continue
            if have < want_lead and m[0].gender == "M":
                # prefer promoting a middle female so the last position
                # (its own quota) is disturbed as little as possible
                j = next((k for k in range(1, len(m) - 1) if m[k].gender == "F"), None)
                if j is None and m[-1].gender == "F":
                    j = len(m) - 1
                if j is not None:
                    m[0], m[j] = m[j], m[0]
                    changed = True
                    break
            elif have > want_lead and m[0].gender == "F":
                j = next((k for k in range(1, len(m)) if m[k].gender == "M"), None)
                if j is not None:
                    m[0], m[j] = m[j], m[0]
                    changed = True
                    break
        if not changed:
            break

    # Last pass: same idea for the senior position, avoiding position 0.
    for _ in range(4 * n_papers):
        have = female_last_count()
        if have == want_last:
            break
        order = rng.permutation(len(papers_authors))
        changed = False
        for i in order:
            m = papers_authors[int(i)]
            if len(m) < 3:  # need a middle author to swap with
                continue
            last = len(m) - 1
            if have < want_last and m[last].gender == "M":
                j = next((k for k in range(1, last) if m[k].gender == "F"), None)
                if j is not None:
                    m[last], m[j] = m[j], m[last]
                    changed = True
                    break
            elif have > want_last and m[last].gender == "F":
                j = next((k for k in range(1, last) if m[k].gender == "M"), None)
                if j is not None:
                    m[last], m[j] = m[j], m[last]
                    changed = True
                    break
        if not changed:
            break


_TOPICS = (
    "Scalable", "Adaptive", "Energy-Aware", "Fault-Tolerant", "Distributed",
    "Hierarchical", "Asynchronous", "Locality-Aware", "Elastic", "Hybrid",
)
_OBJECTS = (
    "Graph Processing", "Stencil Computation", "MPI Collectives",
    "Task Scheduling", "Checkpointing", "Tensor Contraction",
    "Sparse Solvers", "Data Staging", "Load Balancing", "Burst Buffers",
    "Molecular Dynamics", "In-Situ Analysis", "Key-Value Stores",
    "Memory Management", "Interconnect Routing", "Stream Processing",
)
_PLATFORMS = (
    "on Many-Core Systems", "for Exascale Platforms", "on GPU Clusters",
    "in Cloud Environments", "on Heterogeneous Architectures",
    "for Deep Memory Hierarchies", "at Extreme Scale", "on HPC Systems",
)


def _title(rng: np.random.Generator) -> str:
    """A plausible systems-paper title (used by the harvest pages)."""
    return (
        f"{_TOPICS[int(rng.integers(len(_TOPICS)))]} "
        f"{_OBJECTS[int(rng.integers(len(_OBJECTS)))]} "
        f"{_PLATFORMS[int(rng.integers(len(_PLATFORMS)))]}"
    )


def tag_hpc_papers(
    papers: list[Paper],
    people: dict[str, PersonSpec],
    hpc_total: int,
    rng: np.random.Generator,
) -> None:
    """Tag ``hpc_total`` papers as strictly-HPC (§4.1).

    Weighted toward papers with more women so the HPC-subset FAR lands
    slightly above the overall FAR (10.1% vs 9.9% in the paper).
    """
    if hpc_total > len(papers):
        raise ValueError("hpc_total exceeds paper count")
    weights = np.array(
        [
            1.0
            + 0.1 * sum(1 for a in p.authorships if people[a.person_id].gender == "F")
            for p in papers
        ]
    )
    probs = weights / weights.sum()
    chosen = rng.choice(len(papers), size=hpc_total, replace=False, p=probs)
    for i in chosen:
        papers[int(i)].is_hpc = True
