"""repro.engine — stage-DAG execution with content-addressed caching.

The engine replaces the hard-coded linear stage loop with an explicit
dependency graph:

- :mod:`repro.engine.node` / :mod:`repro.engine.dag` — stages declared
  as nodes with named inputs/outputs, validated and ordered into
  generations of mutually independent nodes;
- :mod:`repro.engine.fingerprint` — deterministic SHA-256 keys over
  world/config fingerprints, node params, and upstream digests;
- :mod:`repro.engine.cache` — the content-addressed artifact cache,
  persisted through the checkpoint store's atomic-write discipline;
- :mod:`repro.engine.executor` — the scheduler: cache-or-execute per
  node, independent nodes concurrently via ``parallel_map``;
- :mod:`repro.engine.supervise` — supervised execution: bounded
  retries on a virtual clock, per-node deadlines (wall watchdog on
  worker pools), failure isolation, deterministic chaos injection;
- :mod:`repro.engine.stages` — the pipeline's stages as node bodies.

Entry point for callers:
``run_pipeline(RunConfig(engine=EngineConfig(cache_dir=...)))`` — a
fully cached run re-executes zero stage bodies.
"""

from repro.engine.cache import ArtifactCache
from repro.engine.dag import GraphError, StageGraph
from repro.engine.executor import EngineConfig, EngineRun, run_dag
from repro.engine.fingerprint import canonical, fingerprint, world_fingerprint
from repro.engine.node import NodeResult, StageNode
from repro.engine.stages import PipelineParams, build_graph
from repro.engine.supervise import (
    IncompleteRunError,
    NodePolicy,
    Supervisor,
    SupervisorConfig,
    watchdog_map,
)

__all__ = [
    "ArtifactCache",
    "GraphError",
    "StageGraph",
    "EngineConfig",
    "EngineRun",
    "run_dag",
    "canonical",
    "fingerprint",
    "world_fingerprint",
    "NodeResult",
    "StageNode",
    "PipelineParams",
    "build_graph",
    "NodePolicy",
    "SupervisorConfig",
    "Supervisor",
    "IncompleteRunError",
    "watchdog_map",
]
