"""Benchmarks T1–T3: regenerate the paper's three tables."""

from benchmarks.conftest import write_artifact
from repro.report import run_experiment


def test_table1(benchmark, result, output_dir):
    """T1 — Table 1: the nine conferences."""
    payload, text = benchmark(run_experiment, "T1", result)
    write_artifact(output_dir, "T1", text)
    rows = payload.to_records()
    benchmark.extra_info["papers_total"] = sum(r["Papers"] for r in rows)
    benchmark.extra_info["authors_total"] = sum(r["Authors"] for r in rows)
    assert benchmark.extra_info["papers_total"] == 518


def test_table2(benchmark, result, output_dir):
    """T2 — Table 2: top ten countries by researchers."""
    payload, text = benchmark(run_experiment, "T2", result)
    write_artifact(output_dir, "T2", text)
    top = payload.to_records()[0]
    benchmark.extra_info["top_country"] = top["Country"]
    benchmark.extra_info["top_pct_women"] = top["% Women"]
    assert top["Country"] == "United States"


def test_table3(benchmark, result, output_dir):
    """T3 — Table 3: region × role representation."""
    payload, text = benchmark(run_experiment, "T3", result)
    write_artifact(output_dir, "T3", text)
    benchmark.extra_info["regions"] = payload.num_rows
    assert payload.to_records()[0]["Region"] == "Northern America"
