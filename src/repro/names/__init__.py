"""Synthetic name corpora with per-name gender statistics.

Gender inference from forenames ("genderize"-style) needs a name
universe whose statistical texture matches reality in the ways the paper
cares about (§2): Western forenames are strongly gendered, romanized
Asian forenames are often ambiguous, and inference is systematically less
accurate for women and for names of Asian origin.  This package provides
that universe:

- :mod:`repro.names.corpora` — per-cultural-cluster name banks
  (forenames with female-share and frequency, surnames).
- :mod:`repro.names.bank` — the :class:`NameBank` sampling/lookup API.
- :mod:`repro.names.parsing` — forename extraction and normalization.
"""

from repro.names.bank import NameBank, ForenameEntry, default_bank
from repro.names.corpora import CLUSTERS, cluster_for_country
from repro.names.parsing import forename_of, normalize_name, name_key

__all__ = [
    "NameBank",
    "ForenameEntry",
    "default_bank",
    "CLUSTERS",
    "cluster_for_country",
    "forename_of",
    "normalize_name",
    "name_key",
]
