"""``repro.obs`` — tracing, metrics, and profiling for the pipeline.

Three pieces, all deterministic where determinism is possible:

- **spans** (:mod:`repro.obs.span`) — hierarchical monotonic-clock trace
  spans with seed-derived IDs, nested across ``parallel_map`` workers
  and exportable as Chrome trace-event JSON;
- **metrics** (:mod:`repro.obs.metrics`) — counters/gauges/histograms
  fed by the faults, contracts, pipeline, and tabular layers; two runs
  with the same seed produce identical registries (timings excluded);
- **profiling** (:mod:`repro.obs.profile`) — opt-in per-stage cProfile
  capture behind ``--profile``.

Instrumented code asks for the active context via
:func:`repro.obs.current`; with no context installed every hook is a
no-op on a shared null object, keeping the disabled path effectively
free (see ``benchmarks/bench_obs.py``).
"""

from repro.obs.context import NULL, ObsContext, ObsEnvelope, capture, current, use
from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.obs.events import EVENT_TYPES, Event, EventLog, NullEventLog, write_events
from repro.obs.export import metrics_payload, write_metrics, write_trace
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    build_run_record,
    scientific_cells,
)
from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.profile import StageProfiler
from repro.obs.sentinel import RegressionReport, RunDiff, diff_runs, regress
from repro.obs.span import NullTracer, Span, Tracer, chrome_trace, derive_span_seed

__all__ = [
    "NULL",
    "ObsContext",
    "ObsEnvelope",
    "capture",
    "current",
    "use",
    "write_trace",
    "write_metrics",
    "metrics_payload",
    "MetricsRegistry",
    "NullMetrics",
    "StageProfiler",
    "Span",
    "Tracer",
    "NullTracer",
    "chrome_trace",
    "derive_span_seed",
    # unified event log
    "EVENT_TYPES",
    "Event",
    "EventLog",
    "NullEventLog",
    "write_events",
    # run ledger
    "RunLedger",
    "RunRecord",
    "build_run_record",
    "scientific_cells",
    # regression sentinel + dashboard
    "RegressionReport",
    "RunDiff",
    "diff_runs",
    "regress",
    "render_dashboard",
    "write_dashboard",
]
