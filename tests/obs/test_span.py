"""Tracer unit tests: nesting, deterministic IDs, adoption, annotation."""

import pytest

from repro.obs.span import Tracer, chrome_trace, derive_span_seed

pytestmark = pytest.mark.obs


class TestNesting:
    def test_parent_child_links(self):
        t = Tracer(seed=7)
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.path == ("outer", "inner")
        assert outer.parent_id is None

    def test_finished_in_completion_order(self):
        t = Tracer(seed=7)
        with t.span("a"):
            with t.span("b"):
                pass
        assert [s.name for s in t.finished] == ["b", "a"]

    def test_durations_are_monotonic_nonnegative(self):
        t = Tracer(seed=7)
        with t.span("x"):
            pass
        (span,) = t.finished
        assert span.duration >= 0.0
        assert span.start >= 0.0

    def test_current_and_path(self):
        t = Tracer(seed=7)
        assert t.current is None and t.current_path() == ()
        with t.span("a"):
            assert t.current.name == "a"
            assert t.current_path() == ("a",)
        assert t.current is None

    def test_annotate_hits_innermost_open_span(self):
        t = Tracer(seed=7)
        with t.span("a"):
            with t.span("b"):
                t.annotate(resumed_from_checkpoint=True)
        b = t.by_name("b")[0]
        a = t.by_name("a")[0]
        assert b.attrs == {"resumed_from_checkpoint": True}
        assert a.attrs == {}


class TestDeterministicIds:
    def _trace(self, seed):
        t = Tracer(seed=seed)
        with t.span("ingest"):
            for conf in ("SC", "ISC"):
                with t.span("harvest.edition", conf=conf):
                    pass
        return t

    def test_same_seed_same_identity(self):
        assert self._trace(7).identity() == self._trace(7).identity()

    def test_different_seed_different_ids(self):
        ids7 = {s.span_id for s in self._trace(7).finished}
        ids8 = {s.span_id for s in self._trace(8).finished}
        assert ids7.isdisjoint(ids8)

    def test_repeated_name_gets_distinct_ids(self):
        t = Tracer(seed=7)
        with t.span("stage"):
            pass
        with t.span("stage"):
            pass
        a, b = t.finished
        assert a.span_id != b.span_id

    def test_derive_span_seed_matches_util_rng(self):
        # must stay digest-compatible with repro.util.rng.derive_seed
        from repro.util.rng import derive_seed

        assert derive_span_seed(7, "a", 3) == derive_seed(7, "a", 3)


class TestAdoption:
    def test_adopt_reparents_and_tracks(self):
        parent = Tracer(seed=7)
        child = Tracer(seed=99)
        with child.span("task"):
            with child.span("step"):
                pass
        with parent.span("ingest"):
            parent.adopt(child.finished, tid=3)
        task = parent.by_name("task")[0]
        step = parent.by_name("step")[0]
        ingest = parent.by_name("ingest")[0]
        assert task.parent_id == ingest.span_id
        assert task.path == ("ingest", "task")
        assert step.parent_id == task.span_id  # inner link untouched
        assert task.tid == 3 and step.tid == 3

    def test_adopt_empty_is_noop(self):
        t = Tracer(seed=7)
        t.adopt([], tid=1)
        assert t.finished == []


class TestChromeTrace:
    def test_document_shape(self):
        t = Tracer(seed=7)
        with t.span("a", conf="SC"):
            with t.span("b"):
                pass
        doc = chrome_trace(t, label="unit")
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["seed"] == 7
        for ev in doc["traceEvents"]:
            assert ev["ph"] == "X"
            assert isinstance(ev["ts"], float) and ev["ts"] >= 0
            assert isinstance(ev["dur"], float) and ev["dur"] >= 0
            assert len(ev["args"]["span_id"]) == 16
        by_id = {e["args"]["span_id"]: e for e in doc["traceEvents"]}
        parents = [e["args"]["parent_id"] for e in doc["traceEvents"]]
        assert all(p is None or p in by_id for p in parents)

    def test_attrs_exported_in_args(self):
        t = Tracer(seed=7)
        with t.span("a", conf="SC", year=2017):
            pass
        (ev,) = chrome_trace(t)["traceEvents"]
        assert ev["args"]["conf"] == "SC" and ev["args"]["year"] == 2017
