"""Conference and edition records."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.confmodel.policies import DiversityPolicy, ReviewPolicy

__all__ = ["Conference", "ConferenceEdition"]


@dataclass(frozen=True)
class Conference:
    """Static facts about a conference series (Table 1 + §2)."""

    name: str                 # e.g. "SC"
    country_code: str         # host country of the 2017 edition
    review_policy: ReviewPolicy
    diversity: DiversityPolicy

    @property
    def is_double_blind(self) -> bool:
        return self.review_policy is ReviewPolicy.DOUBLE_BLIND


@dataclass
class ConferenceEdition:
    """One year of one conference, with its participant structure."""

    conference: Conference
    year: int
    date: str                 # ISO date of the first day
    acceptance_rate: float
    submitted: int            # derived: accepted / acceptance_rate
    paper_ids: list[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.conference.name

    @property
    def key(self) -> str:
        return f"{self.conference.name}-{self.year}"

    @property
    def accepted(self) -> int:
        return len(self.paper_ids)
