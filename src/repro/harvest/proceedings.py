"""Proceedings records: the papers' full-text artifacts.

"Many authors also included their email address in the full text of the
paper" (§2) — the proceedings record therefore embeds a header block
with author names and (for those who have one) their emails, from which
the pipeline re-extracts contact information.  Citation counts are
attached as-of 36 months, standing in for the later citation-index
query the authors performed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.confmodel.registry import WorldRegistry

__all__ = ["ProceedingsRecord", "build_proceedings", "extract_emails"]

_EMAIL_RE = re.compile(r"[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}")


@dataclass(frozen=True)
class ProceedingsRecord:
    """One paper's archival record."""

    paper_id: str
    conference: str
    year: int
    title: str
    author_names: tuple[str, ...]
    fulltext_header: str      # the scanned front page (names + emails)
    citations_36mo: int
    is_hpc_topic: bool        # §4.1's manual topic tag

    def emails(self) -> list[str]:
        """Emails appearing in the full-text header (document order)."""
        return extract_emails(self.fulltext_header)


def extract_emails(text: str) -> list[str]:
    """All email addresses in free text (simple RFC-ish regex)."""
    return _EMAIL_RE.findall(text)


def build_proceedings(
    registry: WorldRegistry, conference: str, year: int
) -> list[ProceedingsRecord]:
    """Build the proceedings for one conference edition."""
    records = []
    for paper in registry.papers_of(conference, year):
        names = []
        lines = [paper.title, ""]
        for a in paper.authorships:
            person = registry.people[a.person_id]
            names.append(person.full_name)
            if person.email:
                lines.append(f"{person.full_name} <{person.email}>")
            else:
                lines.append(person.full_name)
        lines.append("")
        lines.append("Abstract - We present a system for high performance computing.")
        records.append(
            ProceedingsRecord(
                paper_id=paper.paper_id,
                conference=conference,
                year=year,
                title=paper.title,
                author_names=tuple(names),
                fulltext_header="\n".join(lines),
                citations_36mo=paper.citations_36mo,
                is_hpc_topic=paper.is_hpc,
            )
        )
    return records
