"""Tests for descriptive summaries and the Proportion type."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from scipy import stats as ss

from repro.stats import describe, proportion, proportion_diff
from repro.stats.proportions import Proportion


class TestDescribe:
    def test_basic_stats(self):
        s = describe([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.minimum == 1 and s.maximum == 4

    def test_skewness_matches_scipy(self):
        rng = np.random.default_rng(8)
        v = rng.exponential(1, 300)
        s = describe(v)
        ref = ss.skew(v, bias=False)
        assert s.skewness == pytest.approx(ref, rel=1e-9)

    def test_empty(self):
        s = describe([])
        assert s.n == 0 and np.isnan(s.mean)

    def test_nan_excluded(self):
        assert describe([1.0, np.nan, 3.0]).n == 2

    def test_single_point(self):
        s = describe([5.0])
        assert s.n == 1 and np.isnan(s.std)

    def test_iqr(self):
        s = describe(np.arange(101, dtype=float))
        assert s.iqr() == pytest.approx(50.0)

    def test_as_dict_keys(self):
        d = describe([1.0, 2.0]).as_dict()
        assert set(d) == {"n", "mean", "std", "min", "q1", "median", "q3", "max", "skewness"}


class TestProportion:
    def test_value_and_pct(self):
        p = Proportion(3, 30)
        assert p.value == 0.1
        assert p.pct == pytest.approx(10.0)

    def test_empty_is_nan(self):
        p = Proportion(0, 0)
        assert np.isnan(p.value)

    def test_invalid_hits(self):
        with pytest.raises(ValueError):
            Proportion(5, 3)

    def test_from_flags(self):
        p = proportion(np.array([True, False, True]))
        assert (p.hits, p.n) == (2, 3)

    def test_combine(self):
        p = Proportion(1, 10).combine(Proportion(2, 10))
        assert (p.hits, p.n) == (3, 20)

    def test_str(self):
        assert "10.00%" in str(Proportion(1, 10))

    @given(st.integers(1, 500), st.integers(0, 500))
    def test_wilson_contains_point_estimate(self, n, hits):
        hits = min(hits, n)
        p = Proportion(hits, n)
        lo, hi = p.wilson_interval()
        assert 0 <= lo <= p.value <= hi <= 1

    def test_wilson_empty(self):
        lo, hi = Proportion(0, 0).wilson_interval()
        assert np.isnan(lo) and np.isnan(hi)

    def test_diff_is_chi2(self):
        r = proportion_diff(Proportion(10, 100), Proportion(30, 100))
        assert r.df == 1
        assert r.significant()
