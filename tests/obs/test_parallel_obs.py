"""Span/metric capture across ``parallel_map``: worker-count invariance.

The worker functions live at module level so the parallel path can
pickle them; each opens a span and feeds counters through the child
capture context that ``parallel_map`` installs per item.
"""

import pytest

from repro.obs import ObsContext
from repro.obs.context import current, use
from repro.util.parallel import ParallelConfig, TaskError, parallel_map

pytestmark = pytest.mark.obs

PAR = ParallelConfig(workers=2, min_items_per_worker=1)


def _traced_double(x):
    ctx = current()
    with ctx.span("double", item=x):
        ctx.metrics.inc("double.calls")
        ctx.metrics.observe("double.value", x, buckets=(2, 4))
    return x * 2


def _boom_on_three(x):
    if x == 3:
        raise ValueError(f"boom for {x}")
    return x


class TestWorkerCountInvariance:
    def _run(self, workers):
        obs = ObsContext(seed=11)
        with use(obs):
            with obs.span("stage"):
                out = parallel_map(
                    _traced_double,
                    [1, 2, 3, 4, 5],
                    ParallelConfig(workers=workers, min_items_per_worker=1),
                )
        return obs, out

    def test_results_and_spans_identical_serial_vs_parallel(self):
        (obs1, out1), (obs2, out2) = self._run(1), self._run(2)
        assert out1 == out2 == [2, 4, 6, 8, 10]
        assert obs1.tracer.identity() == obs2.tracer.identity()
        assert obs1.metrics.to_dict(True) == obs2.metrics.to_dict(True)

    def test_task_spans_nest_under_enclosing_span(self):
        obs, _ = self._run(2)
        stage = obs.tracer.by_name("stage")[0]
        doubles = obs.tracer.by_name("double")
        assert len(doubles) == 5
        for span in doubles:
            assert span.parent_id == stage.span_id
            # adopted roots are re-rooted under the enclosing span's path
            # (the "parallel_map" segment exists only in the ID derivation)
            assert span.path == ("stage", "double")

    def test_tids_follow_input_order(self):
        obs, _ = self._run(2)
        doubles = sorted(obs.tracer.by_name("double"), key=lambda s: s.attrs["item"])
        assert [s.tid for s in doubles] == [1, 2, 3, 4, 5]

    def test_metrics_merge_in_input_order(self):
        obs, _ = self._run(2)
        assert obs.metrics.counters["double.calls"] == 5
        h = obs.metrics.histograms["double.value"]
        assert h["count"] == 5
        assert h["counts"] == [2, 2, 1]  # <=2, <=4, overflow


class TestInactiveContext:
    def test_no_context_returns_plain_results(self):
        assert current().enabled is False
        assert parallel_map(_traced_double, [1, 2], PAR) == [2, 4]

    def test_null_context_records_nothing(self):
        parallel_map(_traced_double, [1, 2], PAR)
        assert current().enabled is False


class TestErrorCaptureUnderObs:
    def test_task_error_slots_survive_capture(self):
        obs = ObsContext(seed=11)
        with use(obs):
            out = parallel_map(_boom_on_three, [1, 3, 5], PAR, capture_errors=True)
        assert out[0] == 1 and out[2] == 5
        err = out[1]
        assert isinstance(err, TaskError)
        assert err.kind == "ValueError" and "boom for 3" in err.message

    def test_error_capture_equal_across_worker_counts(self):
        def run(workers):
            obs = ObsContext(seed=11)
            with use(obs):
                return (
                    parallel_map(
                        _boom_on_three,
                        [1, 3, 5],
                        ParallelConfig(workers=workers, min_items_per_worker=1),
                        capture_errors=True,
                    ),
                    obs,
                )

        (out1, obs1), (out2, obs2) = run(1), run(2)
        assert out1 == out2  # TaskError equality ignores the traceback
        assert obs1.tracer.identity() == obs2.tracer.identity()
