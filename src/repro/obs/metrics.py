"""The metrics registry: counters, gauges, histograms.

Everything here is **deterministic by construction**: metrics count
*events* (retries, quarantined records, rows joined), never wall-clock
time, so two runs with the same seed produce identical registries
regardless of machine, worker count, or load.  Wall-clock quantities are
allowed in, but only under the reserved ``time.`` prefix, which every
determinism comparison excludes (:meth:`MetricsRegistry.to_dict` with
``exclude_timings=True``).

The registry is a plain dict-of-scalars design rather than metric
objects — the hot paths (fault session calls, per-record contract
checks, tabular kernels) pay one dict update per event, and per-task
registries from ``parallel_map`` workers merge associatively in input
order, the same discipline as :class:`repro.faults.degradation.FaultStats`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["MetricsRegistry", "NullMetrics", "TIMING_PREFIX", "DEFAULT_BUCKETS"]

TIMING_PREFIX = "time."
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


@dataclass
class MetricsRegistry:
    """Counters, gauges, and histograms for one run (or one worker task)."""

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    # name -> {"buckets": tuple, "counts": list[int] (len+1, last=overflow),
    #          "count": int, "sum": float}
    histograms: dict[str, dict] = field(default_factory=dict)

    enabled = True

    # ------------------------------------------------------------ recording

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(
        self, name: str, value: float, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = {
                "buckets": tuple(buckets),
                "counts": [0] * (len(buckets) + 1),
                "count": 0,
                "sum": 0.0,
            }
        i = 0
        for i, edge in enumerate(h["buckets"]):
            if value <= edge:
                break
        else:
            i = len(h["buckets"])
        h["counts"][i] += 1
        h["count"] += 1
        h["sum"] += value

    # -------------------------------------------------------------- merging

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (associative; input-order safe)."""
        for k, v in other.counters.items():
            self.counters[k] = self.counters.get(k, 0) + v
        # a later gauge write wins, matching in-process overwrite semantics
        self.gauges.update(other.gauges)
        for k, h in other.histograms.items():
            mine = self.histograms.get(k)
            # normalize bucket edges to a tuple: a registry that crossed a
            # serialization boundary (worker envelope, JSON round-trip) may
            # carry them as a list, and that must not read as "mismatched"
            buckets = tuple(h["buckets"])
            if mine is None or tuple(mine["buckets"]) != buckets:
                if mine is not None:
                    raise ValueError(f"histogram {k!r} merged with mismatched buckets")
                self.histograms[k] = {
                    "buckets": buckets,
                    "counts": list(h["counts"]),
                    "count": h["count"],
                    "sum": h["sum"],
                }
                continue
            mine["counts"] = [a + b for a, b in zip(mine["counts"], h["counts"])]
            mine["count"] += h["count"]
            mine["sum"] += h["sum"]

    # ------------------------------------------------------------ rendering

    def to_dict(self, exclude_timings: bool = False) -> dict:
        """Sorted, JSON-ready snapshot; ``exclude_timings`` drops ``time.*``."""

        def keep(name: str) -> bool:
            return not (exclude_timings and name.startswith(TIMING_PREFIX))

        # key *insertion* order is sorted everywhere — outer sections,
        # series names, and the per-histogram fields — so the snapshot is
        # byte-stable however it is serialized (with or without
        # sort_keys), regardless of the order workers registered series
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters) if keep(k)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges) if keep(k)},
            "histograms": {
                k: {
                    "buckets": list(h["buckets"]),
                    "count": h["count"],
                    "counts": list(h["counts"]),
                    "sum": h["sum"],
                }
                for k in sorted(self.histograms)
                if keep(k)
                for h in (self.histograms[k],)
            },
        }

    def dumps(self, exclude_timings: bool = False) -> str:
        return json.dumps(self.to_dict(exclude_timings), indent=2, sort_keys=True)

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)


class NullMetrics:
    """No-op registry backing the disabled path (shared singleton)."""

    enabled = False
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}

    def inc(self, name: str, n: int = 1) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float, buckets=DEFAULT_BUCKETS) -> None:
        return None

    def merge(self, other) -> None:
        return None

    def to_dict(self, exclude_timings: bool = False) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}
