"""Pearson product-moment correlation with significance.

Used for the Google Scholar vs Semantic Scholar publication-count
comparison ("r = 0.334, p < 0.0001", §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.ttest import _t_sf

__all__ = ["CorrelationResult", "pearson"]


@dataclass(frozen=True)
class CorrelationResult:
    r: float
    p_value: float
    n: int
    df: int

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def pearson(x, y) -> CorrelationResult:
    """Pearson correlation of two paired samples.

    Pairs with a NaN in either coordinate are dropped.  Significance uses
    the exact t-transform ``t = r * sqrt(df / (1 - r^2))`` with
    ``df = n - 2`` (two-sided).
    """
    a = np.asarray(x, dtype=np.float64)
    b = np.asarray(y, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"paired samples differ in shape: {a.shape} vs {b.shape}")
    keep = ~(np.isnan(a) | np.isnan(b))
    a, b = a[keep], b[keep]
    n = int(a.size)
    if n < 3:
        return CorrelationResult(float("nan"), float("nan"), n, max(0, n - 2))
    am = a - a.mean()
    bm = b - b.mean()
    denom = np.sqrt(np.sum(am * am) * np.sum(bm * bm))
    if denom == 0:
        return CorrelationResult(float("nan"), float("nan"), n, n - 2)
    r = float(np.clip(np.sum(am * bm) / denom, -1.0, 1.0))
    df = n - 2
    if abs(r) == 1.0:
        return CorrelationResult(r, 0.0, n, df)
    t = r * np.sqrt(df / (1.0 - r * r))
    p = float(min(1.0, max(0.0, 2.0 * _t_sf(abs(t), df))))
    return CorrelationResult(r, p, n, df)
