"""Checkpoint/resume: a killed run picks up without re-doing finished work.

The service-call counters in ``DegradedCoverage`` are the witness: a
full resume must make *zero* harvest calls, a partial resume exactly as
many as there are missing editions.
"""

import pytest

from repro.faults import FaultConfig
from repro.pipeline import (
    CheckpointMismatch,
    CheckpointStore,
    CheckpointWriteError,
    run_pipeline,
)

NO_FAULTS = FaultConfig(rate=0.0, seed=1)


def _datasets_equal(a, b) -> bool:
    tables = (
        "researchers",
        "author_positions",
        "conf_authors",
        "papers",
        "conferences",
        "role_slots",
    )
    return all(getattr(a, t).equals(getattr(b, t)) for t in tables)


class TestCheckpointStore:
    def test_stage_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", {"seed": 1})
        store.begin()
        assert not store.has_stage("ingest")
        store.save_stage("ingest", {"payload": [1, 2, 3]})
        assert store.has_stage("ingest")
        assert store.load_stage("ingest") == {"payload": [1, 2, 3]}

    def test_item_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", {"seed": 1})
        store.begin()
        store.save_item("ingest", "SC-2017", ("conf", "losses"))
        store.save_item("ingest", "ICS-2017", ("other", "losses"))
        items = store.load_items("ingest")
        assert set(items) == {"SC-2017", "ICS-2017"}
        assert items["SC-2017"] == ("conf", "losses")

    def test_begin_without_resume_wipes(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", {"seed": 1})
        store.begin()
        store.save_stage("ingest", "old")
        store.begin(resume=False)
        assert not store.has_stage("ingest")

    def test_resume_against_other_fingerprint_raises(self, tmp_path):
        CheckpointStore(tmp_path / "ck", {"seed": 1}).begin()
        other = CheckpointStore(tmp_path / "ck", {"seed": 2})
        with pytest.raises(CheckpointMismatch):
            other.begin(resume=True)

    def test_resume_on_fresh_dir_starts_clean(self, tmp_path):
        store = CheckpointStore(tmp_path / "never-written", {"seed": 1})
        store.begin(resume=True)  # nothing to reuse: behaves like a first run
        assert store.load_items("ingest") == {}

    def test_atomic_write_fsyncs_file_and_directory(self, tmp_path, monkeypatch):
        """Regression: artifacts must be durable, not just atomic.

        Without an fsync of the temp file *and* the directory entry, a
        crash after ``os.replace`` can leave a truncated pickle under the
        final name — which a later resume (or engine cache read) trusts.
        """
        import os

        from repro.pipeline import checkpoint as cp

        synced: list[int] = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            cp.os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        store = CheckpointStore(tmp_path / "ck", {"seed": 1})
        store.begin()
        synced.clear()
        store.save_stage("ingest", {"payload": [1, 2, 3]})
        # one fsync for the temp file, one for the parent directory
        assert len(synced) == 2
        assert store.load_stage("ingest") == {"payload": [1, 2, 3]}

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck", {"seed": 1})
        store.begin()
        store.save_stage("ingest", {"payload": list(range(50))})
        leftovers = [p for p in (tmp_path / "ck").rglob("*") if ".tmp" in p.name]
        assert leftovers == []

    def test_failed_write_cleans_tmp_and_raises_typed_error(
        self, tmp_path, monkeypatch
    ):
        """Regression: a mid-stream write failure must not leave debris.

        A disk-full/quota/I/O error inside ``_atomic_write`` used to
        propagate the raw ``OSError`` and abandon the partial ``*.tmp``
        file for later directory scans to trip over.  Now the temp file
        is removed and the failure surfaces as ``CheckpointWriteError``.
        """
        import os

        from repro.pipeline import checkpoint as cp

        store = CheckpointStore(tmp_path / "ck", {"seed": 1})
        store.begin()

        def exploding_fsync(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cp.os, "fsync", exploding_fsync)
        with pytest.raises(CheckpointWriteError) as excinfo:
            store.save_stage("ingest", {"payload": [1, 2, 3]})
        # typed, chained, and specific about what failed
        assert isinstance(excinfo.value.__cause__, OSError)
        assert "ingest" in str(excinfo.value)
        monkeypatch.undo()

        ck = tmp_path / "ck"
        assert [p for p in ck.rglob("*") if ".tmp" in p.name] == []
        assert not store.has_stage("ingest")  # final name never touched

    def test_failed_replace_cleans_tmp(self, tmp_path, monkeypatch):
        from repro.pipeline import checkpoint as cp

        store = CheckpointStore(tmp_path / "ck", {"seed": 1})
        store.begin()

        def exploding_replace(src, dst):
            raise OSError(30, "Read-only file system")

        monkeypatch.setattr(cp.os, "replace", exploding_replace)
        with pytest.raises(CheckpointWriteError):
            store.save_stage("ingest", {"payload": [1]})
        monkeypatch.undo()
        assert [p for p in (tmp_path / "ck").rglob("*") if ".tmp" in p.name] == []

    def test_write_error_is_an_oserror(self):
        # callers with broad OSError handling keep working unchanged
        assert issubclass(CheckpointWriteError, OSError)


class TestPipelineResume:
    def test_full_resume_makes_no_harvest_calls(self, small_world, tmp_path):
        ck = str(tmp_path / "ck")
        first = run_pipeline(
            world=small_world, faults=NO_FAULTS, checkpoint_dir=ck
        )
        n = first.degraded.total_editions
        assert first.degraded.service_calls.get("harvest", 0) == n
        assert first.degraded.resumed_editions == ()

        again = run_pipeline(
            world=small_world, faults=NO_FAULTS, checkpoint_dir=ck, resume=True
        )
        assert again.degraded.service_calls.get("harvest", 0) == 0
        assert len(again.degraded.resumed_editions) == n
        assert _datasets_equal(first.dataset, again.dataset)
        assert first.coverage == again.coverage

    def test_partial_resume_only_reharvests_missing(self, small_world, tmp_path):
        from pathlib import Path

        ck = tmp_path / "ck"
        first = run_pipeline(
            world=small_world, faults=NO_FAULTS, checkpoint_dir=str(ck)
        )
        n = first.degraded.total_editions

        # simulate a kill after three editions: drop the stage summaries
        # and all but three per-item files
        for stage_file in ck.glob("*.stage.pkl"):
            stage_file.unlink()
        items = sorted(Path(ck, "ingest").glob("*.pkl"))
        assert len(items) == n
        for surplus in items[3:]:
            surplus.unlink()

        resumed = run_pipeline(
            world=small_world, faults=NO_FAULTS, checkpoint_dir=str(ck), resume=True
        )
        assert resumed.degraded.service_calls.get("harvest", 0) == n - 3
        assert len(resumed.degraded.resumed_editions) == 3
        assert _datasets_equal(first.dataset, resumed.dataset)

    def test_resume_with_different_faults_is_refused(self, small_world, tmp_path):
        ck = str(tmp_path / "ck")
        run_pipeline(world=small_world, faults=NO_FAULTS, checkpoint_dir=ck)
        with pytest.raises(CheckpointMismatch):
            run_pipeline(
                world=small_world,
                faults=FaultConfig(rate=0.2, seed=9),
                checkpoint_dir=ck,
                resume=True,
            )

    def test_checkpointed_run_matches_plain_run(self, small_world, small_result, tmp_path):
        ck = str(tmp_path / "ck")
        result = run_pipeline(world=small_world, faults=NO_FAULTS, checkpoint_dir=ck)
        assert _datasets_equal(result.dataset, small_result.dataset)
        assert result.coverage == small_result.coverage
