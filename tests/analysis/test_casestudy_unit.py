"""Unit tests for the case-study summarizer with hand-built timelines."""

import math

import pytest

from repro.analysis.casestudy import casestudy_report
from repro.synth.timeline import TimelineEdition


def edition(conf, year, authors, women, attendance=None):
    return TimelineEdition(
        conference=conf, year=year, papers=max(1, authors // 5),
        authors=authors, women_authors=women,
        attendance_women_share=attendance,
    )


class TestCaseStudyUnit:
    def test_far_computed(self):
        rep = casestudy_report([edition("SC", 2016, 100, 10)])
        (pt,) = rep.series["SC"]
        assert pt.far == 0.10

    def test_range(self):
        rep = casestudy_report(
            [edition("ISC", y, 100, w) for y, w in [(2016, 5), (2017, 9), (2018, 7)]]
        )
        assert rep.far_range["ISC"] == (0.05, 0.09)

    def test_trend_positive(self):
        rep = casestudy_report(
            [edition("SC", 2016 + i, 100, 8 + i) for i in range(5)]
        )
        assert rep.trend["SC"].r > 0.95

    def test_trend_undefined_for_short_series(self):
        rep = casestudy_report([edition("SC", 2016, 100, 10), edition("SC", 2017, 100, 11)])
        assert math.isnan(rep.trend["SC"].r)  # needs >= 3 points

    def test_series_sorted_by_year(self):
        rep = casestudy_report(
            [edition("SC", 2019, 100, 9), edition("SC", 2016, 100, 9)]
        )
        years = [p.year for p in rep.series["SC"]]
        assert years == sorted(years)

    def test_zero_authors_nan_far(self):
        ed = TimelineEdition("SC", 2016, 1, 0, 0, None)
        assert math.isnan(ed.far)
