"""Randomized equivalence: factorized kernels vs reference implementations.

The reference kernels below are the pre-vectorization per-row algorithms
with the §15 missing-key contract applied (NaN/None canonicalized into
one missing key) — i.e. what the old code *meant* to compute.  The
factorized kernels must agree with them on randomly generated tables
mixing int/float/bool/str columns with NaN/None entries.
"""

import math

import numpy as np
import pytest

from repro.tabular import Table, inner_join, left_join

pytestmark = pytest.mark.tabular

_MISSING = object()  # reference-side canonical missing key


def _canon(v):
    """Reference key canonicalization: one missing key per column."""
    if v is None:
        return _MISSING
    if isinstance(v, (float, np.floating)) and math.isnan(v):
        return _MISSING
    if isinstance(v, (bool, np.bool_)):
        return bool(v)
    if isinstance(v, (int, np.integer)):
        return int(v)
    if isinstance(v, (float, np.floating)):
        return float(v)
    return v


def _key_rows(table, keys):
    cols = [table.col(k).values for k in keys]
    return [tuple(_canon(c[i]) for c in cols) for i in range(table.num_rows)]


def ref_groupby_index(table, keys):
    """first-appearance-ordered {key: [row, ...]} via per-row dict."""
    buckets = {}
    for i, key in enumerate(_key_rows(table, keys)):
        buckets.setdefault(key, []).append(i)
    return buckets


def ref_inner_join_pairs(left, right, keys):
    index = {}
    for j, key in enumerate(_key_rows(right, keys)):
        index.setdefault(key, []).append(j)
    pairs = []
    for i, key in enumerate(_key_rows(left, keys)):
        for j in index.get(key, ()):
            pairs.append((i, j))
    return pairs


def ref_left_join_match(left, right, keys):
    index = {}
    for j, key in enumerate(_key_rows(right, keys)):
        if key in index:
            return None  # duplicate right key: contract violation
        index[key] = j
    return [index.get(key, -1) for key in _key_rows(left, keys)]


def ref_value_counts(table, name):
    col = table.col(name)
    counts = {}
    for v in col.values:
        k = _canon(v)
        if k is _MISSING:
            continue
        counts[k] = counts.get(k, 0) + 1
    return sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))


def ref_sort_keys(table, name):
    col = table.col(name)
    if col.kind == "str":
        return ["" if v is None else str(v) for v in col.values]
    return list(col.values)


# random table generation ------------------------------------------------------

_KINDS = ("int", "float", "bool", "str")


def _random_column(rng, kind, n, missing_rate):
    if kind == "int":
        return [int(v) for v in rng.integers(-5, 5, size=n)]
    if kind == "float":
        vals = [round(float(v), 1) for v in rng.uniform(-3, 3, size=n)]
        return [float("nan") if rng.random() < missing_rate else v for v in vals]
    if kind == "bool":
        return [bool(v) for v in rng.integers(0, 2, size=n)]
    pool = ["sc", "isc", "hpdc", "ipdps", "", "éa"]
    return [
        None if rng.random() < missing_rate else pool[int(rng.integers(len(pool)))]
        for _ in range(n)
    ]


def _random_table(rng, n_rows, col_kinds, missing_rate=0.2, prefix="c"):
    data = {}
    for i, kind in enumerate(col_kinds):
        data[f"{prefix}{i}"] = _random_column(rng, kind, n_rows, missing_rate)
    return Table(data)


class TestGroupbyEquivalence:
    @pytest.mark.parametrize("case", range(40))
    def test_matches_reference(self, case):
        rng = np.random.default_rng(2000 + case)
        n_rows = int(rng.integers(0, 60))
        kinds = [str(rng.choice(_KINDS)) for _ in range(int(rng.integers(1, 3)))]
        t = _random_table(rng, n_rows, kinds)
        keys = t.columns
        ref = ref_groupby_index(t, keys)
        gb = t.groupby(*keys)
        got = {}
        order = []
        for k, sub in gb:
            ck = tuple(_canon(v) for v in k)
            got[ck] = sub
            order.append(ck)
        assert list(ref.keys()) == order  # first-appearance order
        assert {k: s.num_rows for k, s in got.items()} == {
            k: len(v) for k, v in ref.items()
        }
        # membership: every reference row lands in the right group
        for k, rows in ref.items():
            sub = got[k]
            for name in t.columns:
                ref_vals = [_canon(t.col(name).values[i]) for i in rows]
                sub_vals = [_canon(v) for v in sub.col(name).values]
                assert ref_vals == sub_vals


class TestJoinEquivalence:
    @pytest.mark.parametrize("case", range(40))
    def test_inner_join_matches_reference(self, case):
        rng = np.random.default_rng(3000 + case)
        n_keys = int(rng.integers(1, 3))
        kinds = [str(rng.choice(_KINDS)) for _ in range(n_keys)]
        left = _random_table(rng, int(rng.integers(0, 40)), kinds + ["int"])
        right = _random_table(rng, int(rng.integers(0, 15)), kinds + ["float"], prefix="c")
        keys = left.columns[:n_keys]
        ref_pairs = ref_inner_join_pairs(left, right, keys)
        out = inner_join(left, right, on=keys)
        assert out.num_rows == len(ref_pairs)
        # same (left, right) pairing in the same order, checked via the
        # non-key payload columns
        pay_l = left.columns[-1]
        ref_left_payload = [_canon(left.col(pay_l).values[i]) for i, _ in ref_pairs]
        assert [_canon(v) for v in out.col(pay_l).values] == ref_left_payload

    @pytest.mark.parametrize("case", range(40))
    def test_left_join_matches_reference(self, case):
        rng = np.random.default_rng(4000 + case)
        n_keys = int(rng.integers(1, 3))
        kinds = [str(rng.choice(_KINDS)) for _ in range(n_keys)]
        left = _random_table(rng, int(rng.integers(0, 40)), kinds)
        right = _random_table(rng, int(rng.integers(0, 12)), kinds + ["int"])
        keys = left.columns[:n_keys]
        ref_match = ref_left_join_match(left, right, keys)
        if ref_match is None:
            with pytest.raises(ValueError, match="duplicate"):
                left_join(left, right, on=keys)
            return
        out = left_join(left, right, on=keys)
        assert out.num_rows == left.num_rows
        pay = right.columns[-1]
        got = out.col(pay).values
        for i, j in enumerate(ref_match):
            if j < 0:
                assert got[i] is None or (
                    isinstance(got[i], (float, np.floating)) and math.isnan(got[i])
                )
            else:
                assert _canon(got[i]) == _canon(right.col(pay).values[j])


class TestScalarKernelEquivalence:
    @pytest.mark.parametrize("case", range(30))
    def test_value_counts_matches_reference(self, case):
        rng = np.random.default_rng(5000 + case)
        kind = str(rng.choice(_KINDS))
        t = _random_table(rng, int(rng.integers(0, 80)), [kind])
        ref = ref_value_counts(t, "c0")
        out = t.value_counts("c0")
        got = [
            (_canon(k), int(c)) for k, c in zip(out["c0"], out["count"])
        ]
        assert got == [(_canon(k), c) for k, c in ref]

    @pytest.mark.parametrize("case", range(30))
    def test_sort_by_matches_reference(self, case):
        rng = np.random.default_rng(6000 + case)
        kind = str(rng.choice(_KINDS))
        t = _random_table(rng, int(rng.integers(0, 80)), [kind, "int"])
        keys = ref_sort_keys(t, "c0")
        tagged = sorted(range(t.num_rows), key=lambda i: (keys[i],))
        # NaN sorts last under argsort; mirror that in the reference
        if t.col("c0").kind == "float":
            tagged = sorted(
                range(t.num_rows),
                key=lambda i: (math.isnan(keys[i]), keys[i] if not math.isnan(keys[i]) else 0.0),
            )
        out = t.sort_by("c0")
        got_tags = [int(v) for v in out["c1"]]
        ref_tags = [int(t.col("c1").values[i]) for i in tagged]
        assert got_tags == ref_tags
