#!/usr/bin/env python3
"""How long until women are equally represented in HPC? (§6 follow-up)

Usage::

    python examples/parity_forecast.py [--years N]

Starting from the reproduced 2017 state (~10% women with the Fig. 6
experience mix), projects the authoring population forward under four
scenarios with a cohort flow model, and reports when (if ever) each
reaches 20%, 30%, and 50% women — the question posed by Holman et al.
(2018), which the paper cites.
"""

from __future__ import annotations

import argparse

from repro.forecast import SCENARIOS, project_scenario, years_to_share
from repro.viz import format_records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--years", type=int, default=80)
    args = parser.parse_args()

    rows = []
    for name, sc in SCENARIOS.items():
        p = project_scenario(name, years=args.years)
        def year_of(target: float) -> str:
            y = years_to_share(p, target)
            return str(p.start_year + y) if y is not None else f"beyond {p.start_year + args.years}"
        rows.append(
            {
                "scenario": name,
                "description": sc.description,
                "2027": f"{100*p.share_in(10):.1f}%",
                "2047": f"{100*p.share_in(30):.1f}%",
                "reaches 20%": year_of(0.20),
                "reaches 30%": year_of(0.30),
                "reaches 50%": year_of(0.50),
            }
        )
    print(format_records(rows, title="Projected share of women among HPC authors"))
    print(
        "\nReading: fixing retention alone barely moves the aggregate — the"
        "\nentry mix dominates. Even immediate parity hiring takes decades to"
        "\npropagate through the senior ranks (cohort inertia), consistent"
        "\nwith Holman et al.'s cross-field projections."
    )


if __name__ == "__main__":
    main()
