"""Tests for CSV/JSON table serialization."""

import pytest

from repro.tabular import (
    Table,
    table_from_csv,
    table_from_json,
    table_to_csv,
    table_to_json,
)


@pytest.fixture
def table():
    return Table(
        {
            "name": ["ann", None, "c,d"],
            "n": [1, 2, 3],
            "score": [1.5, None, 2.5],
            "ok": [True, False, True],
        }
    )


class TestCsv:
    def test_roundtrip(self, table):
        text = table_to_csv(table)
        back = table_from_csv(text)
        assert back.columns == table.columns
        assert back["name"].tolist() == ["ann", None, "c,d"]
        assert back["n"].tolist() == [1, 2, 3]
        assert back["ok"].tolist() == [True, False, True]

    def test_nan_serializes_empty(self, table):
        text = table_to_csv(table)
        row = text.splitlines()[2]
        assert ",," in row  # the None cells

    def test_file_roundtrip(self, table, tmp_path):
        path = tmp_path / "t.csv"
        table_to_csv(table, path)
        back = table_from_csv(path)
        assert back.num_rows == 3

    def test_quoted_commas_survive(self, table):
        back = table_from_csv(table_to_csv(table))
        assert back["name"][2] == "c,d"


class TestJson:
    def test_roundtrip(self, table):
        back = table_from_json(table_to_json(table))
        assert back["n"].tolist() == [1, 2, 3]

    def test_nan_becomes_null(self, table):
        text = table_to_json(table)
        assert "NaN" not in text and "null" in text

    def test_file_roundtrip(self, table, tmp_path):
        path = tmp_path / "t.json"
        table_to_json(table, path)
        back = table_from_json(path)
        assert back.num_rows == 3
