"""Bootstrap CI tests."""

import numpy as np
import pytest

from repro.stats import bootstrap_ci

RNG = np.random.default_rng(77)


class TestBootstrap:
    def test_mean_ci_contains_truth_usually(self):
        hits = 0
        for i in range(30):
            sample = np.random.default_rng(i).normal(10, 2, 80)
            ci = bootstrap_ci(sample, "mean", replicates=500, rng=np.random.default_rng(i))
            hits += ci.contains(10.0)
        assert hits >= 24  # ~95% nominal; allow slack

    def test_deterministic_with_rng(self):
        s = RNG.normal(0, 1, 50)
        a = bootstrap_ci(s, rng=np.random.default_rng(1))
        b = bootstrap_ci(s, rng=np.random.default_rng(1))
        assert (a.low, a.high) == (b.low, b.high)

    def test_median(self):
        s = RNG.exponential(1, 200)
        ci = bootstrap_ci(s, "median", rng=np.random.default_rng(2))
        assert ci.low <= np.median(s) <= ci.high

    def test_proportion(self):
        s = (RNG.random(300) < 0.1).astype(float)
        ci = bootstrap_ci(s, "proportion", rng=np.random.default_rng(3))
        assert 0 <= ci.low <= 0.1 + 0.1 and ci.high <= 0.25

    def test_callable_statistic(self):
        s = RNG.normal(0, 1, 60)
        ci = bootstrap_ci(
            s, lambda boots: boots.max(axis=1), rng=np.random.default_rng(4)
        )
        assert ci.high >= ci.low

    def test_callable_shape_check(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], lambda b: np.zeros(3), replicates=5)

    def test_width_narrows_with_n(self):
        wide = bootstrap_ci(RNG.normal(0, 1, 20), rng=np.random.default_rng(5))
        narrow = bootstrap_ci(RNG.normal(0, 1, 2000), rng=np.random.default_rng(5))
        assert narrow.width() < wide.width()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_bad_level(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], level=1.5)

    def test_nan_dropped(self):
        ci = bootstrap_ci([1.0, np.nan, 3.0], rng=np.random.default_rng(6))
        assert np.isfinite(ci.estimate)
