"""The regression sentinel: drift detection, noise bands, baselines."""

import pytest

from repro.obs import RunRecord, diff_runs, regress
from repro.obs.ledger import body_digest

pytestmark = [pytest.mark.obs, pytest.mark.ledger]


def make_record(
    run_id="run-0001-aaaaaaaaaa",
    fingerprint="cfg-a",
    cells=None,
    stage_seconds=None,
    counters=None,
    cached=(),
):
    cells = dict(cells or {"far.overall": "23/217 (10.60%)", "pc.memberships": "x"})
    stage_seconds = dict(stage_seconds or {"ingest": 0.5, "enrich": 1.0})
    body = {
        "schema": 1,
        "meta": {"seed": 11},
        "config_fingerprint": fingerprint,
        "stages": {
            name: {"count": 1, "cached": name in cached, "resumed": False}
            for name in stage_seconds
        },
        "counters": dict(counters or {}),
        "events": {},
        "scientific": cells,
        "digests": {"scientific": body_digest(cells)},
    }
    return RunRecord(
        body=body,
        timing={"stages": stage_seconds, "total": sum(stage_seconds.values())},
        run_id=run_id,
        digest=body_digest(body),
    )


class TestDiff:
    def test_identical_records_diff_clean(self):
        a = make_record("run-0001-a")
        b = make_record("run-0002-b")
        diff = diff_runs(a, b)
        assert diff.clean and not diff.digest_changed and diff.same_config
        assert "identical" in diff.render()

    def test_scientific_drift_drills_to_first_cell(self):
        a = make_record("run-0001-a")
        b = make_record(
            "run-0002-b", cells={"far.overall": "24/217 (11.06%)", "pc.memberships": "x"}
        )
        diff = diff_runs(a, b)
        first = diff.first_drift()
        assert first.key == "far.overall"
        assert first.baseline == "23/217 (10.60%)"
        assert first.candidate == "24/217 (11.06%)"
        assert "first differing cell" in diff.render()

    def test_cell_added_or_removed_is_drift(self):
        a = make_record(cells={"far.overall": "x"})
        b = make_record(cells={"far.overall": "x", "far.SC.authors": "y"})
        drift = diff_runs(a, b).scientific_drift
        assert [c.key for c in drift] == ["far.SC.authors"]
        assert drift[0].baseline is None

    def test_counter_changes_are_separated_from_science(self):
        a = make_record(counters={"enrich.gs_hits": 100})
        b = make_record(counters={"enrich.gs_hits": 101})
        diff = diff_runs(a, b)
        assert not diff.scientific_drift
        assert [c.key for c in diff.counter_changes] == ["enrich.gs_hits"]


class TestRegress:
    def test_empty_and_single_histories_have_no_verdict(self):
        assert regress([]).diff is None
        report = regress([make_record()])
        assert report.diff is None and report.ok

    def test_identical_history_is_ok(self):
        runs = [make_record(f"run-000{i}-x") for i in range(1, 4)]
        report = regress(runs)
        assert report.ok
        assert "verdict: OK" in report.render()

    def test_same_config_drift_regresses(self):
        runs = [
            make_record("run-0001-a"),
            make_record("run-0002-b", cells={"far.overall": "DRIFTED"}),
        ]
        report = regress(runs)
        assert not report.ok
        assert "SCIENTIFIC DRIFT" in report.render()
        assert "verdict: REGRESSED" in report.render()

    def test_config_change_explains_drift(self):
        """A perturbed seed is a new fingerprint: drift is reported, not failed."""
        runs = [
            make_record("run-0001-a", fingerprint="cfg-a"),
            make_record(
                "run-0002-b", fingerprint="cfg-b", cells={"far.overall": "NEW"}
            ),
        ]
        report = regress(runs)
        assert report.ok  # deliberate change, not a regression
        assert report.scientific_drift  # but the drift is still surfaced
        assert any("fingerprint" in n for n in report.notes)

    def test_baseline_prefers_same_config_over_recency(self):
        runs = [
            make_record("run-0001-a", fingerprint="cfg-a"),
            make_record("run-0002-b", fingerprint="cfg-b"),
            make_record("run-0003-c", fingerprint="cfg-a"),
        ]
        report = regress(runs)
        assert report.diff.baseline_id == "run-0001-a"

    def test_timing_regression_needs_relative_and_absolute_excess(self):
        history = [
            make_record(f"run-000{i}-x", stage_seconds={"ingest": 0.5, "enrich": 1.0})
            for i in range(1, 4)
        ]
        slow = make_record(
            "run-0004-y", stage_seconds={"ingest": 0.5, "enrich": 1.6}
        )
        report = regress(history + [slow])
        assert [f.stage for f in report.timing] == ["enrich"]
        assert not report.ok
        flag = report.timing[0]
        assert flag.samples == 3 and flag.ratio == pytest.approx(1.6)

    def test_micro_stage_jitter_stays_under_the_floor(self):
        """3x slower but only 30 ms over: the absolute floor absorbs it."""
        history = [make_record("run-0001-x", stage_seconds={"tiny": 0.015})]
        slow = make_record("run-0002-y", stage_seconds={"tiny": 0.045})
        assert regress(history + [slow]).ok

    def test_cached_stages_are_not_timing_compared(self):
        history = [make_record("run-0001-x", stage_seconds={"enrich": 1.0})]
        warm = make_record(
            "run-0002-y", stage_seconds={"enrich": 5.0}, cached=("enrich",)
        )
        assert regress(history + [warm]).ok

    def test_median_resists_one_slow_historical_run(self):
        seconds = [1.0, 1.0, 1.0, 9.0]  # one historically bad run
        history = [
            make_record(f"run-000{i}-x", stage_seconds={"enrich": s})
            for i, s in enumerate(seconds, start=1)
        ]
        slow = make_record("run-0005-y", stage_seconds={"enrich": 1.5})
        report = regress(history + [slow])
        # median is 1.0, so 1.5 is a genuine 50% excursion
        assert [f.stage for f in report.timing] == ["enrich"]
        assert report.timing[0].baseline_median == pytest.approx(1.0)
