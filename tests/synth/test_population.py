"""Tests for the population builder (small world fixture)."""

from collections import Counter

import numpy as np
import pytest

from repro.calibration.targets import SECTOR_SHARES, TOTALS
from repro.gender.webevidence import EvidenceKind
from repro.synth.config import WorldConfig
from repro.synth.population import PopulationBuilder
from repro.util.rng import RngStream


@pytest.fixture(scope="module")
def pop():
    cfg = WorldConfig(seed=5, scale=1.0)
    return PopulationBuilder(cfg, RngStream(5, ("world",))).build()


class TestPoolSizes:
    def test_author_pool_size(self, pop):
        assert len(pop.authors) == TOTALS["unique_coauthors"]

    def test_pc_pool_size(self, pop):
        assert len(pop.pc_members) == TOTALS["unique_pc_members"]

    def test_author_women_share(self, pop):
        women = sum(1 for p in pop.authors if p.gender == "F")
        assert women / len(pop.authors) == pytest.approx(TOTALS["far_overall"], abs=0.005)

    def test_pc_women_share(self, pop):
        women = sum(1 for p in pop.pc_members if p.gender == "F")
        assert women / len(pop.pc_members) == pytest.approx(TOTALS["pc_far"], abs=0.01)

    def test_overlap_flagged_both(self, pop):
        both = [p for p in pop.authors if p.is_pc]
        assert len(both) > 0
        for p in both:
            assert p.is_author and p.is_pc

    def test_unique_ids(self, pop):
        ids = [p.person_id for p in pop.everyone()]
        assert len(ids) == len(set(ids))


class TestAttributes:
    def test_sector_quotas(self, pop):
        counts = Counter(p.sector for p in pop.everyone())
        n = len(pop.everyone())
        for s, share in SECTOR_SHARES.items():
            assert counts[s] / n == pytest.approx(share, abs=0.01)

    def test_evidence_quotas(self, pop):
        counts = Counter(p.evidence for p in pop.everyone())
        n = len(pop.everyone())
        manual = (counts[EvidenceKind.PRONOUN] + counts[EvidenceKind.PHOTO]) / n
        assert manual == pytest.approx(TOTALS["manual_coverage"], abs=0.01)

    def test_every_person_named(self, pop):
        for p in pop.everyone():
            assert len(p.full_name.split()) >= 2

    def test_names_mostly_unique(self, pop):
        names = [p.full_name.lower() for p in pop.everyone()]
        dup_rate = 1 - len(set(names)) / len(names)
        assert dup_rate < 0.02

    def test_us_largest_country(self, pop):
        counts = Counter(p.country_code for p in pop.everyone() if p.country_code)
        assert counts.most_common(1)[0][0] == "US"

    def test_japan_low_female_share(self, pop):
        jp = [p for p in pop.everyone() if p.country_code == "JP"]
        if len(jp) >= 20:
            share = sum(1 for p in jp if p.gender == "F") / len(jp)
            assert share < 0.08

    def test_some_unknown_country(self, pop):
        unknown = [p for p in pop.authors if p.country_code is None]
        assert 0.1 < len(unknown) / len(pop.authors) < 0.4


class TestScaling:
    def test_quarter_scale(self):
        cfg = WorldConfig(seed=6, scale=0.25)
        small = PopulationBuilder(cfg, RngStream(6, ("world",))).build()
        ratio = len(small.authors) / TOTALS["unique_coauthors"]
        assert ratio == pytest.approx(0.25, abs=0.01)

    def test_determinism(self):
        cfg = WorldConfig(seed=9, scale=0.2)
        a = PopulationBuilder(cfg, RngStream(9, ("world",))).build()
        b = PopulationBuilder(cfg, RngStream(9, ("world",))).build()
        assert [p.full_name for p in a.everyone()] == [p.full_name for p in b.everyone()]
