"""Rendering of the contracts/integrity report.

Turns a :class:`~repro.contracts.audit.ContractReport` into the markdown
section the run report prints next to the degraded-coverage section: the
quarantine ledger (what was repaired, what was withheld, what was merely
flagged) followed by the end-of-run conservation checks.
"""

from __future__ import annotations

from repro.contracts.audit import ContractReport
from repro.contracts.quarantine import Disposition

__all__ = ["render_integrity"]

_MAX_ENTRIES = 8


def render_integrity(report: ContractReport) -> str:
    """Markdown section describing what the contracts layer found."""
    lines: list[str] = []
    add = lines.append
    add("## Data contracts and integrity audit")
    add("")
    add(f"- validation mode: `{report.mode}`")

    entries = report.quarantine.entries
    if not entries:
        add("- quarantine: empty (every record conformed on first contact)")
    else:
        counts = report.quarantine.counts()
        per = "; ".join(
            f"{entity}: " + ", ".join(f"{n} {d}" for d, n in dispositions.items())
            for entity, dispositions in sorted(counts.items())
        )
        add(f"- quarantine: {per}")
        shown = 0
        for e in entries:
            if shown >= _MAX_ENTRIES:
                add(f"  - … and {len(entries) - shown} more entries")
                break
            codes = ", ".join(sorted({v.code for v in e.violations}))
            suffix = ""
            if e.disposition == Disposition.REPAIRED and e.repairs:
                suffix = f" → repaired via {', '.join(e.repairs)}"
            add(f"  - [{e.disposition}] {e.entity} `{e.key}`: {codes}{suffix}")
            shown += 1

    audit = report.audit
    add(f"- {audit.summary()}")
    for check in audit.checks:
        mark = "✓" if check.ok else "✗"
        line = f"  - {mark} {check.name}: expected {check.expected}, got {check.actual}"
        if check.detail:
            line += f"  ({check.detail})"
        add(line)
    return "\n".join(lines)
