"""Tests for geography, sector, case-study, and sensitivity analyses."""

import numpy as np
import pytest

from repro.analysis import (
    casestudy_report,
    geography_report,
    sector_report,
    sensitivity_report,
)


class TestGeography:
    def test_us_is_largest(self, small_result):
        geo = geography_report(small_result.dataset)
        assert geo.countries[0].country_code == "US"

    def test_us_author_share_near_half(self, small_result):
        geo = geography_report(small_result.dataset)
        assert 0.38 < geo.us_author_share < 0.62  # paper: "a full half"

    def test_japan_lowest_big_country(self, small_result):
        geo = geography_report(small_result.dataset)
        big = [c for c in geo.countries if c.total >= 15]
        jp = next((c for c in big if c.country_code == "JP"), None)
        if jp is not None:
            assert jp.women.value <= min(c.women.value for c in big) + 0.02

    def test_region_rows_ordered_like_table3(self, small_result):
        geo = geography_report(small_result.dataset)
        names = [r.region for r in geo.regions]
        assert names[0] == "Northern America"

    def test_country_rows_sorted(self, small_result):
        geo = geography_report(small_result.dataset)
        totals = [c.total for c in geo.countries]
        assert totals == sorted(totals, reverse=True)

    def test_author_total_bounded_by_total(self, small_result):
        geo = geography_report(small_result.dataset)
        for c in geo.countries:
            assert 0 <= c.author_total <= c.total

    def test_pc_ratio_above_author_ratio_na(self, small_result):
        geo = geography_report(small_result.dataset)
        na = next(r for r in geo.regions if r.region == "Northern America")
        assert na.pc.value > na.authors.value


class TestSector:
    def test_shares_roughly_paper(self, small_result):
        sec = sector_report(small_result.dataset)
        assert sec.sector_shares["EDU"] > 0.6
        assert sec.sector_shares["GOV"] > sec.sector_shares["COM"]

    def test_author_contrast_nonsignificant(self, small_result):
        sec = sector_report(small_result.dataset)
        # §5.3: "no gender differences in HPC based on work sector alone"
        assert sec.author_test.p_value > 0.01

    def test_proportions_have_denominators(self, small_result):
        sec = sector_report(small_result.dataset)
        for p in sec.women_by_sector_author.values():
            assert p.n > 0


class TestCaseStudy:
    def test_two_conferences_five_years(self, small_result):
        cs = casestudy_report(small_result.world.timeline)
        assert set(cs.series) == {"SC", "ISC"}
        for pts in cs.series.values():
            assert [p.year for p in pts] == [2016, 2017, 2018, 2019, 2020]

    def test_isc_range_low(self, small_result):
        cs = casestudy_report(small_result.world.timeline)
        lo, hi = cs.far_range["ISC"]
        assert hi < 0.12

    def test_sc_attendance_present(self, small_result):
        cs = casestudy_report(small_result.world.timeline)
        attend = [p.attendance_women_share for p in cs.series["SC"]]
        assert all(a is not None and 0.11 < a < 0.16 for a in attend)
        isc_attend = [p.attendance_women_share for p in cs.series["ISC"]]
        assert all(a is None for a in isc_attend)

    def test_no_strong_improvement_trend(self, small_result):
        cs = casestudy_report(small_result.world.timeline)
        # the paper's point: rates are near-constant over the window
        for conf, rng in cs.far_range.items():
            assert rng[1] - rng[0] < 0.08


class TestSensitivity:
    def test_observations_stable(self, small_result):
        rep = sensitivity_report(small_result.dataset)
        assert rep.all_stable, [o for o in rep.observations if not o.stable]

    def test_far_ordering(self, small_result):
        rep = sensitivity_report(small_result.dataset)
        assert (
            rep.far_values["all_men"]
            <= rep.far_values["baseline"]
            <= rep.far_values["all_women"]
        )

    def test_unknown_count_positive(self, small_result):
        rep = sensitivity_report(small_result.dataset)
        assert rep.unknowns > 0
