"""Per-stage checkpoint/resume for the pipeline.

Harvesting is the pipeline's slowest and flakiest stage, so checkpoints
are grained two ways:

- **per item** — each harvested conference edition is pickled (atomic
  ``os.replace``) the moment its task finishes, *from the worker
  process*; a run killed mid-ingest leaves the completed editions on
  disk and a ``--resume`` run only re-harvests the missing ones;
- **per stage** — a completed stage saves one artifact (ingest report,
  enrichment) so a resumed run can skip it entirely.

A checkpoint directory carries a fingerprint (seed, scale, year, fault
configuration); resuming against a different configuration raises a
:class:`CheckpointMismatch` instead of silently mixing runs.
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path
from typing import Any

__all__ = [
    "CheckpointMismatch",
    "CheckpointStore",
    "CheckpointWriteError",
    "save_item_file",
]


class CheckpointMismatch(ValueError):
    """Resume was requested against a checkpoint from a different run."""


class CheckpointWriteError(OSError):
    """An atomic checkpoint write failed before the artifact landed.

    Raised in place of the raw ``OSError`` so callers can distinguish
    "the store could not persist" from unrelated I/O failures.  The
    partial ``*.tmp`` file has already been removed — a failed write
    leaves no debris for a later directory scan to trip over.
    """


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically *and durably*.

    The temp file is fsynced before the rename and the directory entry
    after it — without both, a crash between write and disk flush can
    leave a truncated artifact under the final name, which a later
    ``--resume`` (or engine cache read) would trust.

    A mid-stream failure (disk full, quota, I/O error) removes the
    partial temp file and raises :class:`CheckpointWriteError`; the
    final ``path`` is never touched on failure.
    """
    tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass
        raise CheckpointWriteError(
            f"atomic write to {path} failed mid-stream: {exc}"
        ) from exc
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def save_item_file(stage_dir: str | Path, key: str, obj: Any) -> None:
    """Pickle one work item's result (callable from worker processes)."""
    d = Path(stage_dir)
    d.mkdir(parents=True, exist_ok=True)
    _atomic_write(d / f"{key}.pkl", pickle.dumps(obj))


class CheckpointStore:
    """Filesystem layout and fingerprint discipline for one run."""

    META = "meta.json"

    def __init__(self, root: str | Path, fingerprint: dict[str, Any]) -> None:
        self.root = Path(root)
        self.fingerprint = {k: fingerprint[k] for k in sorted(fingerprint)}

    # ------------------------------------------------------------ lifecycle

    def begin(self, resume: bool = False) -> None:
        """Prepare the directory: reuse on matching resume, else start clean."""
        meta_path = self.root / self.META
        if resume and meta_path.exists():
            on_disk = json.loads(meta_path.read_text(encoding="utf-8"))
            if on_disk != self.fingerprint:
                raise CheckpointMismatch(
                    f"checkpoint at {self.root} was written by a different run: "
                    f"{on_disk} != {self.fingerprint}"
                )
            return
        if self.root.exists():
            for p in sorted(self.root.rglob("*"), reverse=True):
                p.unlink() if p.is_file() else p.rmdir()
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_write(
            meta_path, json.dumps(self.fingerprint, indent=2).encode("utf-8")
        )

    # ------------------------------------------------------------ per item

    def item_dir(self, stage: str) -> Path:
        d = self.root / stage
        d.mkdir(parents=True, exist_ok=True)
        return d

    def save_item(self, stage: str, key: str, obj: Any) -> None:
        save_item_file(self.item_dir(stage), key, obj)

    def load_items(self, stage: str) -> dict[str, Any]:
        """All completed items of a stage, keyed by item key."""
        d = self.root / stage
        if not d.is_dir():
            return {}
        out: dict[str, Any] = {}
        for p in sorted(d.glob("*.pkl")):
            out[p.stem] = pickle.loads(p.read_bytes())
        return out

    # ------------------------------------------------------------ per stage

    def stage_path(self, stage: str) -> Path:
        """On-disk location of one stage artifact (the ``*.stage.pkl``)."""
        return self.root / f"{stage}.stage.pkl"

    # kept as an alias: external callers predate the public spelling
    _stage_path = stage_path

    def has_stage(self, stage: str) -> bool:
        return self.stage_path(stage).exists()

    def save_stage(self, stage: str, obj: Any) -> None:
        _atomic_write(self.stage_path(stage), pickle.dumps(obj))

    def load_stage(self, stage: str) -> Any:
        return pickle.loads(self.stage_path(stage).read_bytes())
