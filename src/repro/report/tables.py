"""Builders for the paper's three tables.

Each builder returns ``(table, text)``: a :class:`repro.tabular.Table`
with exactly the paper's columns, and its ASCII rendering.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.geography import geography_report
from repro.pipeline.dataset import AnalysisDataset
from repro.tabular import Table
from repro.viz.tableprint import format_table

__all__ = ["build_table1", "build_table2", "build_table3"]


def build_table1(ds: AnalysisDataset) -> tuple[Table, str]:
    """Table 1: conference, date, papers, authors, acceptance, country.

    "Authors" counts each conference's unique authors, as in the paper.
    """
    uniq_by_conf: dict[str, int] = {}
    for conf in ds.conf_authors["conference"]:
        uniq_by_conf[conf] = uniq_by_conf.get(conf, 0) + 1
    rows = []
    confs = ds.conferences.sort_by("date")
    for rec in confs.to_records():
        name = rec["conference"]
        papers = int(
            np.sum(np.array([c == name for c in ds.papers["conference"]]))
        )
        rows.append(
            {
                "Conference": name,
                "Date": rec["date"],
                "Papers": papers,
                "Authors": uniq_by_conf.get(name, 0),
                "Acceptance": round(rec["acceptance_rate"], 3)
                if rec["acceptance_rate"] is not None
                else None,
                "Country": rec["country"],
            }
        )
    table = Table.from_records(rows)
    return table, format_table(table, "Table 1: HPC-related conferences")


def build_table2(ds: AnalysisDataset, top: int = 10) -> tuple[Table, str]:
    """Table 2: top countries by researcher count with % women."""
    geo = geography_report(ds)
    rows = [
        {
            "Country": c.country_name,
            "% Women": round(c.women.pct, 2),
            "Total": c.total,
        }
        for c in geo.countries[:top]
    ]
    table = Table.from_records(rows)
    return table, format_table(
        table, f"Table 2: Top {top} countries by number of researchers"
    )


def build_table3(ds: AnalysisDataset) -> tuple[Table, str]:
    """Table 3: representation of women by region and role."""
    geo = geography_report(ds)
    rows = []
    for r in geo.regions:
        rows.append(
            {
                "Region": r.region,
                "Authors % Women": round(r.authors.pct, 2)
                if r.authors.n
                else None,
                "Authors Total": r.authors.n,
                "PC % Women": round(r.pc.pct, 2) if r.pc.n else None,
                "PC Total": r.pc.n,
            }
        )
    # Table 3 sorts by total authors, descending
    rows.sort(key=lambda x: -x["Authors Total"])
    table = Table.from_records(rows)
    return table, format_table(
        table, "Table 3: Representation of women by region and role"
    )
