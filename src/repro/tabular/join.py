"""Hash joins for the tabular engine.

Key matching runs on jointly factorized integer codes
(:mod:`repro.tabular.codes`): both sides' key columns are stacked,
factorized once, and all row matching is ``argsort``/``searchsorted``
arithmetic — no per-row Python key tuples.  Missing keys (NaN/None)
are canonicalized per the METHODOLOGY §15 contract: missing matches
missing, and duplicate missing keys on the right side of a left join
violate the uniqueness contract like any other duplicate.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.obs.context import current as _obs
from repro.tabular.codes import factorize_join_keys
from repro.tabular.column import Column
from repro.tabular.table import Table

__all__ = ["inner_join", "left_join"]


def _suffix_conflicts(left: Table, right: Table, keys: Sequence[str], suffix: str) -> Table:
    renames = {
        n: n + suffix
        for n in right.columns
        if n in left.columns and n not in keys
    }
    return right.rename(renames) if renames else right


def _key_codes(
    left: Table, right: Table, keys: Sequence[str]
) -> tuple[np.ndarray, np.ndarray, int]:
    if not keys:
        raise ValueError("join requires at least one key column")
    return factorize_join_keys(
        [left.col(k) for k in keys], [right.col(k) for k in keys]
    )


def inner_join(
    left: Table, right: Table, on: Sequence[str] | str, suffix: str = "_right"
) -> Table:
    """Inner join on equality of key columns.

    Matches every pair of rows with equal keys (many-to-many); missing
    keys are equal to each other (one missing group per column).  Non-key
    columns of ``right`` that clash with ``left`` get ``suffix``.
    Output row order: left order, then right match order — deterministic.
    """
    keys = [on] if isinstance(on, str) else list(on)
    right = _suffix_conflicts(left, right, keys, suffix)
    lc, rc, span = _key_codes(left, right, keys)
    # codes are dense in [0, span), so per-code match runs come straight
    # from a bincount — no searchsorted over the left side needed
    order_r = np.argsort(rc, kind="stable")
    counts_r = np.bincount(rc, minlength=span)
    starts_r = np.cumsum(counts_r) - counts_r
    counts = counts_r[lc]
    lidx = np.repeat(np.arange(len(left), dtype=np.int64), counts)
    total = int(counts.sum())
    if total:
        # for each left row, its matches are the run of order_r starting
        # at starts_r[code]
        run_starts = np.cumsum(counts) - counts
        offsets = np.arange(total, dtype=np.int64) - np.repeat(run_starts, counts)
        ridx = order_r[np.repeat(starts_r[lc], counts) + offsets]
    else:
        ridx = np.empty(0, dtype=np.int64)
    out = left.take(lidx)
    rtaken = right.take(ridx)
    for n in rtaken.columns:
        if n not in keys:
            out = out.with_column(n, rtaken.col(n))
    m = _obs().metrics
    if m.enabled:
        m.inc("tabular.join.calls")
        m.inc("tabular.join.rows_out", out.num_rows)
    return out


def left_join(
    left: Table, right: Table, on: Sequence[str] | str, suffix: str = "_right"
) -> Table:
    """Left join; unmatched left rows get missing values on right columns.

    ``right`` must be unique on the key columns (one-to-at-most-one);
    duplicate right keys raise to avoid silent row multiplication — and
    since missing keys are canonicalized, two NaN/None right keys are
    duplicates of each other too.
    """
    keys = [on] if isinstance(on, str) else list(on)
    right = _suffix_conflicts(left, right, keys, suffix)
    lc, rc, n_codes = _key_codes(left, right, keys)
    if n_codes:
        right_counts = np.bincount(rc, minlength=n_codes)
        if (right_counts > 1).any():
            dup_code = int(np.argmax(right_counts > 1))
            j = int(np.argmax(rc == dup_code))
            key = tuple(right.col(k).values[j] for k in keys)
            raise ValueError(f"left_join right side has duplicate key {key!r}")
        lookup = np.full(n_codes, -1, dtype=np.int64)
        lookup[rc] = np.arange(len(right), dtype=np.int64)
        match = lookup[lc]
    else:
        match = np.full(len(left), -1, dtype=np.int64)
    out = left
    matched = match >= 0
    safe = np.where(matched, match, 0)
    for n in right.columns:
        if n in keys:
            continue
        col = right.col(n)
        if len(col) == 0:
            # empty right side: every left row is unmatched
            if col.kind == "str":
                empty = np.empty(len(left), dtype=object)
                out = out.with_column(n, Column(n, empty, kind="str"))
            else:
                out = out.with_column(
                    n, Column(n, np.full(len(left), np.nan), kind="float")
                )
            continue
        vals = col.values[safe]
        if col.kind == "str":
            merged = np.empty(len(left), dtype=object)
            merged[:] = vals
            merged[~matched] = None
            out = out.with_column(n, Column(n, merged, kind="str"))
        elif col.kind == "float":
            merged = vals.astype(np.float64).copy()
            merged[~matched] = np.nan
            out = out.with_column(n, Column(n, merged, kind="float"))
        else:
            # int/bool cannot hold missing: promote to float with NaN when
            # there are unmatched rows, else keep native kind.
            if matched.all():
                out = out.with_column(n, Column(n, vals, kind=col.kind))
            else:
                merged = vals.astype(np.float64)
                merged[~matched] = np.nan
                out = out.with_column(n, Column(n, merged, kind="float"))
    m = _obs().metrics
    if m.enabled:
        m.inc("tabular.join.calls")
        m.inc("tabular.join.rows_out", out.num_rows)
    return out
