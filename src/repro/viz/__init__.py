"""Terminal visualization: ASCII tables, bar charts, density plots.

The original artifact renders figures with ggplot; in this offline
reproduction every figure has an ASCII twin so `examples/` and the
benchmark harness can display the same series the paper plots.
"""

from repro.viz.tableprint import format_table, format_records
from repro.viz.ascii import bar_chart, histogram
from repro.viz.density import density_plot, line_plot

__all__ = [
    "format_table",
    "format_records",
    "bar_chart",
    "histogram",
    "density_plot",
    "line_plot",
]
