"""Command-line interface.

::

    python -m repro run                    # pipeline + headline summary
    python -m repro experiment T2 F2       # print specific artifacts
    python -m repro compare                # paper-vs-measured table
    python -m repro export out/            # full artifact bundle
    python -m repro universe               # §6: 56-conference expansion

Common options: ``--seed`` (default 7), ``--scale`` (default 1.0).
Resilience options: ``--fault-rate``/``--fault-seed`` run the pipeline
under the deterministic fault model (degraded coverage is reported, the
run never aborts); ``--checkpoint-dir``/``--resume`` checkpoint each
stage so an interrupted run picks up where it stopped; ``--workers``
parallelizes the ingest stage deterministically.
Contract options: ``--validate={strict,repair,audit,off}`` (default
``repair``) runs every stage hand-off under the data contracts —
``strict`` exits non-zero at the first violating record or failing
integrity-audit check, ``repair`` quarantines/repairs, ``audit`` only
records, ``off`` disables contracts entirely.
Observability options: ``--trace`` writes a Chrome trace-event
``trace.json``, ``--metrics`` writes the deterministic ``metrics.json``
(both under ``--obs-dir``, default ``out/obs/``), ``--profile`` prints a
per-stage cProfile top-N after the run, ``--ledger`` appends the run's
:class:`~repro.obs.ledger.RunRecord` (config fingerprint, stage facts,
cache counters, scientific-output digests) plus its full event stream
to the append-only ledger under ``--obs-dir/ledger/``.
Engine options: ``--cache-dir`` runs on the stage-DAG engine with a
content-addressed artifact cache (a warm run re-executes zero stage
bodies); ``--engine`` selects the engine without caching;
``--engine-workers`` runs independent stages concurrently;
``--refresh-cache`` recomputes and overwrites cached artifacts.

Cache maintenance: ``repro cache stats`` / ``verify`` / ``gc`` /
``quarantine`` (with ``--cache-dir``) inspect and repair the artifact
cache — ``verify`` re-checks every entry's payload digest and moves
corrupt ones to ``quarantine/`` (exit 1 if any were found), ``gc``
evicts oldest-first to a ``--max-bytes``/``--max-entries`` budget.

Ledger subcommands: ``repro runs list`` / ``show`` / ``diff`` /
``regress`` / ``report`` read the ledger back — ``regress`` compares
the latest run against its recorded history (median-of-history timing
noise band, cell-level scientific drift) and exits non-zero on a
finding; ``report`` renders a self-contained HTML dashboard.

Serving: ``repro serve`` runs the analyses as a fault-tolerant HTTP
service over the engine cache (``GET /v1/far|blind|sensitivity``,
``/v1/runs``, ``/healthz``, ``/readyz``) with bounded admission + load
shedding, per-request deadlines, request coalescing, per-config
circuit breakers, content-addressed ETags, and graceful SIGTERM drain
— see :mod:`repro.serve` and METHODOLOGY §14.

Every option may be given either before the subcommand or after it
(``repro --seed 9 run`` and ``repro run --seed 9`` are equivalent):
the option set is declared once in :data:`OPTION_GROUPS` and wired to
the root parser and every subcommand from that single table.
"""

from __future__ import annotations

import argparse
import sys

from repro.contracts import ContractViolationError
from repro.pipeline import RunConfig, run_pipeline

__all__ = [
    "main",
    "build_parser",
    "OPTION_GROUPS",
    "EXIT_CONTRACT_VIOLATION",
    "EXIT_REGRESSION",
]

EXIT_CONTRACT_VIOLATION = 3
EXIT_REGRESSION = 4


# ---------------------------------------------------------------- options
#
# The single source of truth for common options: (group title, group
# description, [(flag, kwargs), ...]).  ``build_parser`` wires this
# table to the root parser (with real defaults) and to every subcommand
# (with SUPPRESS defaults, so a subcommand-position option overrides
# the root value and an omitted one never clobbers it).

OPTION_GROUPS: tuple[tuple[str, str, tuple[tuple[str, dict], ...]], ...] = (
    (
        "world",
        "synthetic-world construction",
        (
            ("--seed", dict(type=int, default=7, help="world seed (default 7)")),
            (
                "--scale",
                dict(type=float, default=1.0, help="population scale (default 1.0)"),
            ),
            (
                "--workers",
                dict(
                    type=int,
                    default=None,
                    help="worker processes for the ingest stage (default: serial)",
                ),
            ),
            (
                "--shards",
                dict(
                    type=int,
                    default=None,
                    help="venue count of a sharded synthetic universe; selects "
                    "the sharded streaming pipeline (one engine DAG node "
                    "per conference×edition, merged deterministically)",
                ),
            ),
        ),
    ),
    (
        "resilience",
        "fault injection and checkpoint/resume",
        (
            (
                "--fault-rate",
                dict(
                    type=float,
                    default=0.0,
                    help="probability that any one simulated service call "
                    "fails (default 0)",
                ),
            ),
            (
                "--fault-seed",
                dict(
                    type=int,
                    default=None,
                    help="seed of the deterministic fault plan (default: the "
                    "world seed)",
                ),
            ),
            (
                "--checkpoint-dir",
                dict(default=None, help="directory for per-stage pipeline checkpoints"),
            ),
            (
                "--resume",
                dict(
                    action="store_true",
                    default=False,
                    help="reuse matching checkpoints in --checkpoint-dir",
                ),
            ),
        ),
    ),
    (
        "contracts",
        "data-contract validation",
        (
            (
                "--validate",
                dict(
                    choices=["strict", "repair", "audit", "off"],
                    default="repair",
                    help="data-contract mode at every stage hand-off: strict "
                    "fails fast (non-zero exit), repair quarantines and "
                    "repairs (default), audit only records, off disables "
                    "contracts",
                ),
            ),
        ),
    ),
    (
        "observability",
        "tracing, metrics, profiling",
        (
            (
                "--trace",
                dict(
                    action="store_true",
                    default=False,
                    help="record trace spans and write Chrome trace-event "
                    "trace.json under --obs-dir",
                ),
            ),
            (
                "--metrics",
                dict(
                    action="store_true",
                    default=False,
                    help="record the metrics registry and write metrics.json "
                    "under --obs-dir (deterministic for a given seed, "
                    "timings excluded)",
                ),
            ),
            (
                "--profile",
                dict(
                    action="store_true",
                    default=False,
                    help="capture a per-stage cProfile and print top "
                    "cumulative functions after the run",
                ),
            ),
            (
                "--ledger",
                dict(
                    action="store_true",
                    default=False,
                    help="append this run's record (config fingerprint, stage "
                    "facts, cache counters, scientific digests) and event "
                    "stream to the run ledger under --obs-dir/ledger/",
                ),
            ),
            (
                "--obs-dir",
                dict(
                    default="out/obs",
                    help="directory for observability artifacts — trace.json, "
                    "metrics.json, ledger/ (default: out/obs/, never the "
                    "repo root)",
                ),
            ),
        ),
    ),
    (
        "engine",
        "stage-DAG execution and artifact caching",
        (
            (
                "--cache-dir",
                dict(
                    default=None,
                    help="content-addressed artifact cache directory; implies "
                    "the stage-DAG engine — a warm run re-executes zero "
                    "stage bodies",
                ),
            ),
            (
                "--engine",
                dict(
                    action="store_true",
                    default=False,
                    help="run on the stage-DAG engine even without a cache "
                    "(independent stages may run concurrently)",
                ),
            ),
            (
                "--engine-workers",
                dict(
                    type=int,
                    default=None,
                    help="worker processes for independent stages of one "
                    "DAG generation (default: serial)",
                ),
            ),
            (
                "--refresh-cache",
                dict(
                    action="store_true",
                    default=False,
                    help="recompute every stage and overwrite cache entries",
                ),
            ),
            (
                "--shard-workers",
                dict(
                    type=int,
                    default=None,
                    help="worker processes executing shard nodes concurrently "
                    "(--shards runs; results are byte-identical for any "
                    "worker count)",
                ),
            ),
        ),
    ),
)


def _wire_options(parser: argparse.ArgumentParser, suppress_defaults: bool) -> None:
    """Attach the shared option table to one parser.

    With ``suppress_defaults`` the options default to
    ``argparse.SUPPRESS`` so a subcommand parser only contributes values
    the user actually typed — otherwise its defaults would clobber
    options parsed before the subcommand name.
    """
    for title, description, options in OPTION_GROUPS:
        group = parser.add_argument_group(f"{title} options", description)
        for flag, kwargs in options:
            kw = dict(kwargs)
            if suppress_defaults:
                kw["default"] = argparse.SUPPRESS
            group.add_argument(flag, **kw)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Representation of Women in HPC Conferences' (SC '21)",
    )
    _wire_options(parser, suppress_defaults=False)
    sub = parser.add_subparsers(dest="command", required=True)

    def subcommand(name: str, help: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help)
        _wire_options(p, suppress_defaults=True)
        return p

    subcommand("run", help="run the pipeline and print the headline summary")

    p_exp = subcommand("experiment", help="print specific tables/figures")
    p_exp.add_argument("ids", nargs="+", help="experiment ids (T1..T3, F1..F8, S3.1, ...)")

    subcommand("compare", help="print the paper-vs-measured comparison")

    p_export = subcommand("export", help="write the full artifact bundle")
    p_export.add_argument("out_dir", help="output directory")

    subcommand("universe", help="run the 56-conference systems expansion (§6)")

    p_report = subcommand("report", help="render the full markdown run report")
    p_report.add_argument(
        "--output", default=None, help="write to a file instead of stdout"
    )

    p_cache = subcommand(
        "cache", help="maintain the artifact cache (stats/verify/gc/quarantine)"
    )
    p_cache.add_argument(
        "action",
        choices=["stats", "verify", "gc", "quarantine"],
        help="stats: entry/byte/quarantine counts; verify: check every "
        "entry's digest and quarantine corrupt ones (non-zero exit if "
        "any found); gc: evict oldest entries to fit --max-bytes/"
        "--max-entries; quarantine: list quarantined files (--purge "
        "deletes them)",
    )
    p_cache.add_argument(
        "--max-bytes", type=int, default=None, help="gc: byte budget to fit"
    )
    p_cache.add_argument(
        "--max-entries", type=int, default=None, help="gc: entry budget to fit"
    )
    p_cache.add_argument(
        "--purge",
        action="store_true",
        default=False,
        help="quarantine: delete the quarantined files",
    )

    p_runs = subcommand(
        "runs", help="inspect the run ledger (list/show/diff/regress/report)"
    )
    p_runs.add_argument(
        "action",
        choices=["list", "show", "diff", "regress", "report"],
        help="list runs; show one record; diff two runs cell-by-cell; "
        "regress the latest run against its history; render the HTML "
        "dashboard",
    )
    p_runs.add_argument(
        "targets",
        nargs="*",
        default=[],
        help="run ids (or unambiguous prefixes): show takes one "
        "(default latest), diff takes two (default: previous vs latest)",
    )
    p_runs.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="relative timing-regression threshold for regress "
        "(default 0.25 = +25%% over the historical median)",
    )
    p_runs.add_argument(
        "--output",
        default=None,
        help="for 'report': output HTML path "
        "(default <obs-dir>/ledger/dashboard.html)",
    )

    p_serve = subcommand(
        "serve", help="serve analysis queries over HTTP (/v1/far, /v1/blind, ...)"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port",
        type=int,
        default=8177,
        help="bind port (0 binds an ephemeral port and announces it)",
    )
    p_serve.add_argument(
        "--max-concurrency",
        type=int,
        default=4,
        help="requests allowed to execute analysis work at once (default 4)",
    )
    p_serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="requests allowed to wait for a slot; beyond this the "
        "request is shed with 429 + Retry-After (default 16)",
    )
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=15.0,
        help="per-request budget in seconds; a cold run past it answers "
        "504 with partial-result metadata (default 15)",
    )
    p_serve.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        help="Retry-After hint on 429/503/504 responses (default 1s)",
    )
    p_serve.add_argument(
        "--chaos-rate",
        type=float,
        default=0.0,
        help="deterministic per-request fault-injection rate (default 0)",
    )
    p_serve.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="seed of the serve chaos plan (default: the world seed)",
    )
    return parser


def _result(args):
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    rc = RunConfig.from_cli(args)
    if rc.shards is not None:
        from repro.pipeline.sharded import run_sharded

        mode = rc.validation_mode()
        if mode is not None and mode.value == "strict":
            raise SystemExit("--validate strict is not supported with --shards")
        result = run_sharded(rc)
    else:
        result = run_pipeline(rc)
    # stashed for the post-command observability hooks (ledger append)
    args._last_result = result
    args._last_config = rc
    return result


def _cmd_run(args) -> int:
    from repro.analysis import far_report, pc_report

    result = _result(args)
    far = far_report(result.dataset)
    pc = pc_report(result.dataset)
    cov = result.coverage
    print(result.timer.report())
    print()
    print(f"researchers: {result.dataset.researchers.num_rows}  "
          f"papers: {result.dataset.papers.num_rows}")
    if getattr(result, "plan", None) is not None:
        print(f"shards: {len(result.plan)}  "
              f"(cache hits {result.shard_cache_hits}, "
              f"executed {result.executed_shards})")
    print(f"FAR: {far.overall}  (paper: 9.9%)")
    print(f"PC:  {pc.memberships}  (paper: 18.46%)")
    print(f"coverage: manual {100*cov['manual']:.2f}% / genderize "
          f"{100*cov['genderize']:.2f}% / none {100*cov['none']:.2f}%")
    if result.degraded is not None:
        print(f"degraded: {result.degraded.summary()}")
    if result.contracts is not None:
        print(result.contracts.summary())
    return 0


def _cmd_experiment(args) -> int:
    from repro.report import EXPERIMENTS, run_experiment

    unknown = [i for i in args.ids if i not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment id(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    result = _result(args)
    for exp_id in args.ids:
        _, text = run_experiment(exp_id, result)
        print(f"===== {exp_id} =====")
        print(text)
        print()
    return 0


def _cmd_compare(args) -> int:
    from repro.report import compare_headlines
    from repro.report.compare import render_comparison

    result = _result(args)
    rows = compare_headlines(result)
    print(render_comparison(rows))
    close = sum(1 for r in rows if r.rel_error < 0.25)
    print(f"\n{close}/{len(rows)} statistics within 25% of the paper")
    return 0


def _cmd_export(args) -> int:
    from repro.report.export import export_artifact

    result = _result(args)
    out = export_artifact(result, args.out_dir)
    print(f"artifact written to {out}")
    return 0


def _cmd_universe(args) -> int:
    from repro.pipeline import run_pipeline as _rp
    from repro.synth import WorldConfig, build_world
    from repro.universe import systems_universe, universe_report

    targets = systems_universe(56)
    world = build_world(
        WorldConfig(seed=args.seed, scale=args.scale, include_timeline=False),
        targets=targets,
    )
    # the universe run ignores the resilience/contract options (as ever)
    # but honors the engine: a custom-target world fingerprints by its
    # edition roster, so repeat universe invocations are cache reads
    rc = RunConfig(engine=RunConfig.from_cli(args).engine, obs=getattr(args, "_obs", None))
    result = _rp(rc, world=world)
    args._last_result = result
    args._last_config = rc
    rep = universe_report(result.dataset, targets)
    print(f"{'subfield':<14s} {'confs':>5s}  women among authors")
    for r in rep.rows:
        print(f"{r.field:<14s} {r.conferences:>5d}  {r.authors}")
    print(f"\noverall: {rep.overall}")
    print(
        f"subfield heterogeneity: chi2={rep.heterogeneity.statistic:.1f} "
        f"(df={rep.heterogeneity.df}) p={rep.heterogeneity.p_value:.2g}"
    )
    return 0


def _cmd_report(args) -> int:
    from pathlib import Path

    from repro.report.textreport import full_report

    result = _result(args)
    text = full_report(result)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import ServeConfig, serve_forever

    return serve_forever(ServeConfig.from_cli(args))


def _cmd_cache(args) -> int:
    from repro.engine.cache import ArtifactCache
    from repro.pipeline.checkpoint import CheckpointMismatch

    if args.cache_dir is None:
        print("repro cache requires --cache-dir", file=sys.stderr)
        return 2
    if args.action == "gc" and args.max_bytes is None and args.max_entries is None:
        print("gc requires --max-bytes and/or --max-entries", file=sys.stderr)
        return 2
    try:
        cache = ArtifactCache.if_exists(args.cache_dir)
    except CheckpointMismatch as exc:
        print(f"not an engine cache: {exc}", file=sys.stderr)
        return 2
    if cache is None:
        # a cache that was never written is an empty cache, not an
        # error — and inspecting it must not conjure the directory
        if args.action == "stats":
            for line in (
                "entries:          0",
                "size:             0 bytes",
                "quarantined:      0",
                "quarantine size:  0 bytes",
            ):
                print(line)
        elif args.action == "verify":
            print("checked 0 entries: 0 ok")
        elif args.action == "gc":
            print("evicted 0 entries")
        elif args.purge:
            print("purged 0 quarantined files")
        else:
            print("quarantine is empty")
        return 0

    if args.action == "stats":
        s = cache.stats()
        print(f"entries:          {s['entries']}")
        print(f"size:             {s['size_bytes']} bytes")
        print(f"quarantined:      {s['quarantined']}")
        print(f"quarantine size:  {s['quarantine_bytes']} bytes")
        return 0

    if args.action == "verify":
        report = cache.verify()
        print(f"checked {report['checked']} entries: {report['ok']} ok")
        for entry, reason in report["quarantined"]:
            print(f"  quarantined {entry} ({reason})")
        return 1 if report["quarantined"] else 0

    if args.action == "gc":
        evicted = cache.gc(max_bytes=args.max_bytes, max_entries=args.max_entries)
        print(f"evicted {len(evicted)} entries")
        for name in evicted:
            print(f"  {name}")
        return 0

    # action == "quarantine": list (or purge) the quarantined files
    names = cache.quarantined()
    if args.purge:
        removed = cache.purge_quarantine()
        print(f"purged {removed} quarantined files")
        return 0
    if not names:
        print("quarantine is empty")
        return 0
    for name in names:
        print(name)
    return 0


def _cmd_runs(args) -> int:
    from pathlib import Path

    from repro.obs.dashboard import write_dashboard
    from repro.obs.ledger import RunLedger
    from repro.obs.sentinel import (
        DEFAULT_MIN_SECONDS,
        DEFAULT_THRESHOLD,
        diff_runs,
        regress,
    )

    ledger = RunLedger(Path(args.obs_dir) / "ledger")
    records = ledger.records()
    action = args.action

    if action in ("show", "diff", "regress") and not records:
        print(f"no runs recorded in {ledger.path}", file=sys.stderr)
        return 2

    if action == "list":
        if not records:
            print(f"no runs recorded in {ledger.path}")
            return 0
        print(
            f"{'run id':<22s} {'command':<10s} {'seed':>5s} {'scale':>6s} "
            f"{'total':>8s} {'cache':>7s}  scientific digest"
        )
        for rec in records:
            meta = rec.meta
            total = rec.timing.get("total")
            cache = rec.body.get("cache", {})
            total_s = f"{total:.2f}s" if isinstance(total, (int, float)) else "?"
            cache_s = f"{cache.get('hits', 0)}h/{cache.get('misses', 0)}m"
            digest = rec.body.get("digests", {}).get("scientific", "")[:16]
            print(
                f"{rec.run_id:<22s} {str(meta.get('command', '?')):<10s} "
                f"{str(meta.get('seed', '?')):>5s} "
                f"{str(meta.get('scale', '?')):>6s} "
                f"{total_s:>8s} {cache_s:>7s}  {digest}"
            )
        return 0

    if action == "show":
        if len(args.targets) > 1:
            print("runs show takes at most one run id", file=sys.stderr)
            return 2
        try:
            rec = ledger.get(args.targets[0]) if args.targets else records[-1]
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        import json

        print(json.dumps(rec.to_dict(), indent=2, sort_keys=True))
        return 0

    if action == "diff":
        if args.targets and len(args.targets) != 2:
            print(
                "runs diff takes exactly two run ids (or none for "
                "previous-vs-latest)",
                file=sys.stderr,
            )
            return 2
        if args.targets:
            try:
                baseline, candidate = (ledger.get(t) for t in args.targets)
            except KeyError as exc:
                print(str(exc), file=sys.stderr)
                return 2
        else:
            if len(records) < 2:
                print("need at least two runs to diff", file=sys.stderr)
                return 2
            baseline, candidate = records[-2], records[-1]
        diff = diff_runs(baseline, candidate)
        print(diff.render())
        return 0

    if action == "regress":
        candidate = None
        if args.targets:
            if len(args.targets) > 1:
                print("runs regress takes at most one run id", file=sys.stderr)
                return 2
            try:
                candidate = ledger.get(args.targets[0])
            except KeyError as exc:
                print(str(exc), file=sys.stderr)
                return 2
        report = regress(
            records,
            candidate=candidate,
            threshold=(
                args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
            ),
            min_seconds=DEFAULT_MIN_SECONDS,
        )
        print(report.render())
        return 0 if report.ok else EXIT_REGRESSION

    # action == "report": the HTML dashboard
    regression = regress(records) if len(records) >= 2 else None
    out = Path(args.output) if args.output else ledger.root / "dashboard.html"
    path = write_dashboard(records, out, regression=regression)
    print(f"dashboard written to {path}")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "experiment": _cmd_experiment,
    "compare": _cmd_compare,
    "export": _cmd_export,
    "universe": _cmd_universe,
    "report": _cmd_report,
    "cache": _cmd_cache,
    "runs": _cmd_runs,
    "serve": _cmd_serve,
}


def _finish_obs(args, obs) -> None:
    """Write the requested observability artifacts after a command."""
    from pathlib import Path

    from repro.obs import write_metrics, write_trace
    from repro.version import __version__

    out = Path(args.obs_dir)
    if args.trace:
        p = write_trace(obs.tracer, out / "trace.json")
        print(f"trace written to {p}")
    if args.metrics:
        p = write_metrics(
            obs.metrics,
            out / "metrics.json",
            meta={"version": __version__, "seed": args.seed},
        )
        print(f"metrics written to {p}")
    if args.ledger:
        result = getattr(args, "_last_result", None)
        if result is None:
            print("ledger: command produced no pipeline run to record")
        else:
            from repro.obs.ledger import RunLedger, build_run_record

            record = build_run_record(
                result,
                config=getattr(args, "_last_config", None),
                command=args.command,
            )
            ledger = RunLedger(out / "ledger")
            identified = ledger.append(record, events=obs.events)
            print(
                f"ledger: recorded {identified.run_id} "
                f"(scientific digest "
                f"{identified.body['digests']['scientific'][:16]}) "
                f"in {ledger.path}"
            )
    if args.profile and obs.profiler is not None:
        print(obs.profiler.render())


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    obs = None
    # 'runs'/'cache' only read artifacts back; 'serve' owns its whole
    # observability lifecycle (session record, event stream, drain flush)
    if args.command not in ("runs", "cache", "serve") and (
        args.trace or args.metrics or args.profile or args.ledger
    ):
        from repro.obs import ObsContext
        from repro.obs.context import use as obs_use

        obs = ObsContext(seed=args.seed, profile=args.profile)
        args._obs = obs
    try:
        if obs is not None:
            # the whole command runs under the context, so report/analysis
            # work after the pipeline (tabular kernels included) is counted
            with obs_use(obs):
                code = _COMMANDS[args.command](args)
            _finish_obs(args, obs)
            return code
        return _COMMANDS[args.command](args)
    except ContractViolationError as exc:
        # strict mode: surface the machine-readable violations and fail
        print(f"contract violation: {exc}", file=sys.stderr)
        for v in exc.violations[:10]:
            print(f"  - {v.code}: {v.message}", file=sys.stderr)
        if len(exc.violations) > 10:
            print(f"  ... and {len(exc.violations) - 10} more", file=sys.stderr)
        return EXIT_CONTRACT_VIOLATION


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
