"""The fault plan must be a pure function of (seed, service, key, attempt)."""

import pytest

from repro.faults import FaultConfig, FaultKind, FaultPlan


class TestFaultPlan:
    def test_rate_zero_never_faults(self):
        plan = FaultPlan(FaultConfig(rate=0.0, seed=1))
        assert all(plan.draw("svc", i) is None for i in range(500))

    def test_rate_one_always_faults(self):
        plan = FaultPlan(FaultConfig(rate=1.0, seed=1))
        assert all(plan.draw("svc", i) is not None for i in range(500))

    def test_decisions_independent_of_query_order(self):
        plan = FaultPlan(FaultConfig(rate=0.5, seed=9))
        forward = {k: plan.draw("svc", k) for k in range(100)}
        backward = {k: plan.draw("svc", k) for k in reversed(range(100))}
        assert forward == backward

    def test_same_seed_same_plan(self):
        a = FaultPlan(FaultConfig(rate=0.5, seed=4))
        b = FaultPlan(FaultConfig(rate=0.5, seed=4))
        assert [a.draw("s", i) for i in range(200)] == [
            b.draw("s", i) for i in range(200)
        ]

    def test_different_seeds_differ(self):
        a = FaultPlan(FaultConfig(rate=0.5, seed=4))
        b = FaultPlan(FaultConfig(rate=0.5, seed=5))
        assert [a.draw("s", i) for i in range(200)] != [
            b.draw("s", i) for i in range(200)
        ]

    def test_attempts_are_independent_draws(self):
        plan = FaultPlan(FaultConfig(rate=0.5, seed=4))
        draws = [plan.draw("s", "k", attempt=a) for a in range(1, 50)]
        assert len(set(draws)) > 1  # not all attempts fail the same way

    def test_empirical_rate(self):
        plan = FaultPlan(FaultConfig(rate=0.4, seed=9))
        frac = sum(plan.draw("svc", i) is not None for i in range(2000)) / 2000
        assert 0.35 < frac < 0.45

    def test_zero_weight_kind_never_drawn(self):
        plan = FaultPlan(FaultConfig(rate=1.0, seed=3, weights=(1.0, 1.0, 0.0, 1.0)))
        kinds = {plan.draw("svc", i) for i in range(500)}
        assert FaultKind.RATE_LIMIT not in kinds
        assert kinds == {FaultKind.TRANSIENT, FaultKind.TIMEOUT, FaultKind.MALFORMED}

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(rate=0.5, weights=(0.0, 0.0, 0.0, 0.0))
        with pytest.raises(ValueError):
            FaultConfig(rate=0.5, weights=(1.0, 1.0))

    def test_payload_rng_deterministic(self):
        plan = FaultPlan(FaultConfig(rate=1.0, seed=3))
        a = plan.payload_rng("svc", "key").random()
        b = plan.payload_rng("svc", "key").random()
        assert a == b
        assert plan.payload_rng("svc", "other").random() != a
