"""Benchmark SENS: the §2 sensitivity analysis (full re-analysis ×2)."""

from benchmarks.conftest import write_artifact
from repro.report import run_experiment


def test_sensitivity(benchmark, result, output_dir):
    """SENS — force unknowns to women, then men; re-run all analyses."""
    payload, text = benchmark(run_experiment, "SENS", result)
    write_artifact(output_dir, "SENS", text)
    benchmark.extra_info["unknowns"] = payload.unknowns
    benchmark.extra_info["all_stable"] = payload.all_stable
    assert payload.all_stable
