"""§5.3 / Fig. 8 — work sectors.

COM/EDU/GOV shares of unique researchers (8.6% / 72.8% / 18.6%) and the
women's share per sector × role, with the paper's nonsignificant χ²
contrasts (PC: χ² = 0.522, p = 0.77; authors: χ² = 1.629, p = 0.443).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import mask_eq, women_share
from repro.pipeline.dataset import AnalysisDataset
from repro.stats.chisquare import Chi2Result, chi2_contingency
from repro.stats.proportions import Proportion

__all__ = ["SectorReport", "sector_report"]

_SECTORS = ("COM", "EDU", "GOV")


@dataclass(frozen=True)
class SectorReport:
    """§5.3's quantities."""

    sector_shares: dict[str, float]                       # unique researchers
    women_by_sector_author: dict[str, Proportion]
    women_by_sector_pc: dict[str, Proportion]
    author_test: Chi2Result
    pc_test: Chi2Result


def _women_men_matrix(shares: dict[str, Proportion]) -> np.ndarray:
    return np.array(
        [[shares[s].hits, shares[s].n - shares[s].hits] for s in _SECTORS],
        dtype=np.float64,
    )


def sector_report(ds: AnalysisDataset) -> SectorReport:
    """Compute §5.3 over an analysis dataset."""
    r = ds.researchers
    with_sector = r.filter(lambda t: ~t.col("sector").is_missing())
    n = max(1, with_sector.num_rows)
    shares = {
        s: float(np.sum(mask_eq(with_sector, "sector", s))) / n for s in _SECTORS
    }

    def by_sector(flag_col: str) -> dict[str, Proportion]:
        out: dict[str, Proportion] = {}
        sub = with_sector.filter(
            lambda t: np.array([bool(x) for x in t[flag_col]], dtype=bool)
        )
        for s in _SECTORS:
            out[s] = women_share(sub.filter(lambda t: mask_eq(t, "sector", s)))
        return out

    authors = by_sector("is_author")
    pc = by_sector("is_pc")

    def test(shares_map: dict[str, Proportion]) -> Chi2Result:
        m = _women_men_matrix(shares_map)
        if (m.sum(axis=1) > 0).all() and (m.sum(axis=0) > 0).all():
            return chi2_contingency(m)
        return Chi2Result(float("nan"), 2, float("nan"), ())

    return SectorReport(
        sector_shares=shares,
        women_by_sector_author=authors,
        women_by_sector_pc=pc,
        author_test=test(authors),
        pc_test=test(pc),
    )
