"""Regression tests for the missing-key correctness fixes (METHODOLOGY §15).

Each test here fails on the pre-fix kernels:

- per-row ``tuple(col[i] ...)`` grouping hashed every NaN scalar as a
  distinct dict key, so each NaN row became its own singleton group;
- the joins dropped NaN-key matches (``nan != nan``) and the left-join
  duplicate guard never fired for duplicate NaN right keys;
- ``infer_dtype`` returned 'bool' for bool-with-``None`` input and the
  constructor silently coerced ``None → False``.
"""

import math

import numpy as np
import pytest

from repro.tabular import Column, Table, count, infer_dtype, inner_join, left_join, share

pytestmark = pytest.mark.tabular

NAN = float("nan")


class TestGroupbyMissingKeys:
    def test_nan_rows_form_single_group(self):
        t = Table({"x": [NAN, NAN, 1.0]})
        gb = t.groupby("x")
        assert len(gb) == 2  # pre-fix: 3 (one singleton group per NaN)

    def test_missing_group_position_is_first_appearance(self):
        t = Table({"x": [2.0, NAN, 2.0, NAN, 1.0]})
        keys = [k for k, _ in t.groupby("x")]
        assert keys[0] == (2.0,)
        assert math.isnan(keys[1][0])
        assert keys[2] == (1.0,)

    def test_group_lookup_with_any_nan_object(self):
        t = Table({"x": [NAN, 5.0, NAN]})
        gb = t.groupby("x")
        # a fresh NaN object (not the canonical singleton) must find it
        assert gb.group(float("nan")).num_rows == 2
        assert gb.group(np.float64("nan")).num_rows == 2

    def test_none_string_keys_form_single_group(self):
        t = Table({"g": [None, "F", None, "M", None]})
        sizes = {k[0]: sub.num_rows for k, sub in t.groupby("g")}
        assert sizes == {None: 3, "F": 1, "M": 1}

    def test_multi_key_missing_components(self):
        t = Table(
            {
                "conf": ["SC", None, "SC", None],
                "year": [NAN, 2017.0, NAN, 2017.0],
            }
        )
        gb = t.groupby("conf", "year")
        assert len(gb) == 2
        for key, sub in gb:
            assert sub.num_rows == 2

    def test_agg_over_missing_group(self):
        t = Table({"x": [NAN, NAN, 1.0], "g": ["F", "M", "F"]})
        out = t.groupby("x").agg(n=count(), far=share("g", "F"))
        recs = out.to_records()
        assert [r["n"] for r in recs] == [2, 1]
        assert recs[0]["far"] == 0.5


class TestJoinMissingKeys:
    def test_inner_join_matches_nan_keys(self):
        left = Table({"k": [1.0, NAN], "a": [1, 2]})
        right = Table({"k": [NAN, 1.0], "b": [10, 20]})
        out = inner_join(left, right, on="k")
        # pre-fix: the NaN pair silently dropped (1 row)
        assert out.num_rows == 2
        recs = out.to_records()
        assert recs[0]["b"] == 20
        assert recs[1]["b"] == 10

    def test_inner_join_matches_none_string_keys(self):
        left = Table({"k": ["a", None]})
        right = Table({"k": [None], "v": [7]})
        out = inner_join(left, right, on="k")
        assert out.num_rows == 1
        assert out["v"].tolist() == [7]

    def test_left_join_rejects_duplicate_nan_right_keys(self):
        left = Table({"k": [1.0]})
        right = Table({"k": [NAN, NAN], "v": [1, 2]})
        # pre-fix: nan != nan meant the guard never fired
        with pytest.raises(ValueError, match="duplicate"):
            left_join(left, right, on="k")

    def test_left_join_rejects_duplicate_none_right_keys(self):
        left = Table({"k": ["a"]})
        right = Table({"k": [None, None], "v": [1, 2]})
        with pytest.raises(ValueError, match="duplicate"):
            left_join(left, right, on="k")

    def test_left_join_matches_missing_left_keys(self):
        left = Table({"k": [NAN, 2.0]})
        right = Table({"k": [NAN], "v": [9]})
        out = left_join(left, right, on="k")
        assert out.num_rows == 2
        assert out["v"][0] == 9.0
        assert np.isnan(out["v"][1])


class TestBoolMissingPromotion:
    def test_infer_dtype_promotes_bool_with_none(self):
        assert infer_dtype([True, None, False]) == "float"

    def test_column_keeps_missing_as_nan(self):
        c = Column("b", [True, None, False])
        # pre-fix: kind stayed 'bool' and None coerced to False
        assert c.kind == "float"
        assert c.values[0] == 1.0
        assert np.isnan(c.values[1])
        assert c.values[2] == 0.0
        assert c.is_missing().tolist() == [False, True, False]

    def test_pure_bool_stays_bool(self):
        c = Column("b", [True, False])
        assert c.kind == "bool"
        assert infer_dtype([True, False]) == "bool"

    def test_table_from_records_with_missing_flags(self):
        t = Table.from_records([{"f": True}, {"f": None}, {"f": False}])
        col = t.col("f")
        assert col.kind == "float"
        # the missing flag must not count as either True or False
        assert int(np.nansum(col.values)) == 1
        assert col.is_missing().sum() == 1
