"""Tests for citation indices, incl. property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.scholar import g_index, h_index, i10_index

citation_vectors = st.lists(st.integers(0, 10_000), min_size=0, max_size=200)


class TestHIndex:
    @pytest.mark.parametrize(
        "cites,h",
        [
            ([], 0),
            ([0], 0),
            ([1], 1),
            ([10, 8, 5, 4, 3], 4),
            ([25, 8, 5, 3, 3], 3),
            ([9] * 9, 9),
            ([9] * 10, 9),
            ([10] * 10, 10),
            ([1, 1, 1, 1], 1),
        ],
    )
    def test_known_values(self, cites, h):
        assert h_index(cites) == h

    def test_hirsch_definition_example(self):
        # Hirsch 2005: h papers with >= h citations each
        assert h_index([100, 50, 25, 10, 5, 4, 3, 2, 1]) == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            h_index([-1, 5])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            h_index(np.zeros((2, 2), dtype=int))

    @given(citation_vectors)
    def test_definition_invariant(self, cites):
        h = h_index(cites)
        arr = np.sort(np.array(cites, dtype=np.int64))[::-1]
        assert 0 <= h <= len(cites)
        if h > 0:
            assert (arr[:h] >= h).all()
        if h < len(cites):
            assert arr[h] <= h  # no h+1 papers with >= h+1 citations

    @given(citation_vectors, st.integers(0, 100))
    def test_monotone_under_addition(self, cites, extra):
        assert h_index(cites + [extra]) >= h_index(cites)


class TestI10:
    def test_counts_threshold(self):
        assert i10_index([10, 9, 11, 0]) == 2

    def test_custom_threshold(self):
        assert i10_index([5, 5, 4], threshold=5) == 2

    @given(citation_vectors)
    def test_bounded_by_length(self, cites):
        assert 0 <= i10_index(cites) <= len(cites)


class TestGIndex:
    def test_known_value(self):
        assert g_index([10, 8, 5, 4, 3]) == 5

    def test_empty(self):
        assert g_index([]) == 0

    @given(citation_vectors)
    def test_g_at_least_h(self, cites):
        assert g_index(cites) >= h_index(cites)
