"""PC and visible-role staffing with exact women quotas.

§3.2/§3.3's statistics are about exact small counts (four conferences
with zero female PC chairs, 45 session-chair seats with zero women at
three conferences, SC's 29.6%-female PC), so staffing is quota-exact:
each conference role draws its women and men counts straight from the
calibration targets.  PC membership uses the coverage-guaranteeing
dealer (:mod:`repro.synth.dealing`) so every unique PC-pool member
serves somewhere; the small visible roles draw from the PC pool (they
go to established researchers).
"""

from __future__ import annotations

import numpy as np

from repro.calibration.targets import ConferenceTargets
from repro.confmodel.roles import Role, RoleAssignment
from repro.synth.dealing import deal
from repro.synth.population import PersonSpec

__all__ = ["staff_committees", "PC_QUORUM"]

# A program committee can never shrink below quorum, however small the
# world scale: a 1-member "committee" breaks the PC-report statistics.
PC_QUORUM = 3


def _scaled_women(size: int, raw_size: int, raw_women: int, scale_fn) -> int:
    """Women quota for a role under scaling, preserving exact zeros."""
    if raw_women == 0:
        return 0
    return min(size, max(1, scale_fn(raw_women)))


def staff_committees(
    targets: list[ConferenceTargets],
    pc_pool: list[PersonSpec],
    year: int,
    scale_fn,
    rng: np.random.Generator,
) -> list[RoleAssignment]:
    """Staff every non-author role for every conference."""
    women = [p for p in pc_pool if p.gender == "F"]
    men = [p for p in pc_pool if p.gender == "M"]
    out: list[RoleAssignment] = []
    key = lambda p: p.person_id

    # ---- PC memberships: full-coverage dealing --------------------------
    women_quota: dict[str, int] = {}
    men_quota: dict[str, int] = {}
    for t in targets:
        # quorum guard: tiny scale factors must not degenerate PCs to a
        # single member (scale < 1/pc_size used to round down to 1)
        size = max(scale_fn(t.pc_size), min(t.pc_size, PC_QUORUM))
        w = min(_scaled_women(size, t.pc_size, t.pc_women, scale_fn), len(women))
        women_quota[t.name] = w
        men_quota[t.name] = min(size - w, len(men))

    def top_up(quota: dict[str, int], pool_size: int) -> None:
        deficit = pool_size - sum(quota.values())
        names = sorted(quota, key=lambda k: -quota[k])
        i = 0
        while deficit > 0:
            name = names[i % len(names)]
            if quota[name] < pool_size:
                quota[name] += 1
                deficit -= 1
            i += 1

    top_up(women_quota, len(women))
    top_up(men_quota, len(men))
    women_deal = deal(women, women_quota, rng, key=key)
    men_deal = deal(men, men_quota, rng, key=key)
    for t in targets:
        for p in women_deal[t.name] + men_deal[t.name]:
            out.append(RoleAssignment(p.person_id, t.name, year, Role.PC_MEMBER))

    # ---- visible roles: small exact draws ---------------------------------
    role_plan = [
        (Role.PC_CHAIR, lambda t: t.pc_chairs, lambda t: t.pc_chair_women),
        (Role.KEYNOTE, lambda t: t.keynotes, lambda t: t.keynote_women),
        (Role.PANELIST, lambda t: t.panelists, lambda t: t.panelist_women),
        (Role.SESSION_CHAIR, lambda t: t.session_chairs, lambda t: t.session_chair_women),
    ]
    # Visible-role holders are public figures: they essentially always
    # have an identifiable web page, so prefer pool members with manual
    # evidence.  This keeps §3.3's exact zero/nonzero counts from being
    # blurred by unknown-gender appointees.
    from repro.gender.webevidence import EvidenceKind

    def prefer_visible(pool: list[PersonSpec]) -> list[PersonSpec]:
        withpage = [p for p in pool if p.evidence is not EvidenceKind.NONE]
        return withpage if withpage else pool

    vis_women = prefer_visible(women)
    vis_men = prefer_visible(men)

    for t in targets:
        for role, size_of, women_of in role_plan:
            raw = size_of(t)
            if raw <= 0:
                continue
            size = scale_fn(raw)
            w = min(_scaled_women(size, raw, women_of(t), scale_fn), size, len(vis_women))
            taken: set[str] = set()
            picked: list[PersonSpec] = []
            for pool, k in ((vis_women, w), (vis_men, size - w)):
                order = rng.permutation(len(pool))
                need = k
                for idx in order:
                    if need == 0:
                        break
                    p = pool[int(idx)]
                    if p.person_id not in taken:
                        picked.append(p)
                        taken.add(p.person_id)
                        need -= 1
                if need:
                    raise ValueError(
                        f"pool exhausted staffing {role} at {t.name}: short {need}"
                    )
            for p in picked:
                out.append(RoleAssignment(p.person_id, t.name, year, role))
    return out
