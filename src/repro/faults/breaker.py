"""Per-service circuit breaker.

Classic three-state breaker (closed → open → half-open) with one twist:
the cooldown is measured in *rejected calls*, not wall time, so breaker
behaviour is a pure function of the call sequence and therefore
deterministic across runs, platforms, and worker counts.  (Within the
pipeline a breaker is scoped to one :class:`~repro.faults.session.FaultSession`,
and sessions are scoped so that scheduling cannot reorder their calls:
one per harvest task, one per serial stage.)
"""

from __future__ import annotations

import enum

from repro.faults.errors import CircuitOpenError
from repro.faults.plan import BreakerConfig

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Trips after consecutive failures; recovers via a single probe."""

    __slots__ = ("service", "config", "state", "consecutive_failures",
                 "rejected_since_open", "times_opened")

    def __init__(self, service: str, config: BreakerConfig | None = None) -> None:
        self.service = service
        self.config = config or BreakerConfig()
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.rejected_since_open = 0
        self.times_opened = 0

    def check(self) -> None:
        """Gate a call: raise :class:`CircuitOpenError` while cooling down."""
        if self.state is BreakerState.CLOSED or self.state is BreakerState.HALF_OPEN:
            return
        self.rejected_since_open += 1
        if self.rejected_since_open >= self.config.cooldown_calls:
            self.state = BreakerState.HALF_OPEN  # let the next call probe
            return
        raise CircuitOpenError(
            self.service, (), f"open ({self.rejected_since_open} rejected)"
        )

    def record_success(self) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.rejected_since_open = 0

    def record_failure(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._open()  # failed probe: back to cooling down
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.config.failure_threshold:
            self._open()

    def _open(self) -> None:
        self.state = BreakerState.OPEN
        self.rejected_since_open = 0
        self.consecutive_failures = 0
        self.times_opened += 1
