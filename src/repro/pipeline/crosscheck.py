"""Cross-source validation: website scrape vs DBLP records.

Real bibliometric pipelines sanity-check their scrape against a second
bibliographic source.  This stage round-trips every harvested conference
through the DBLP-flavoured XML and reports any disagreement in titles or
author lists — an end-to-end integrity check the pipeline can run after
ingest (and the tests do).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harvest.dblp import from_dblp_xml, to_dblp_xml
from repro.harvest.scrape import HarvestedConference

__all__ = ["CrossCheckReport", "crosscheck_dblp"]


@dataclass
class CrossCheckReport:
    """Disagreements between the website scrape and the DBLP view."""

    conferences: int = 0
    papers_checked: int = 0
    title_mismatches: list[str] = field(default_factory=list)   # paper ids
    author_mismatches: list[str] = field(default_factory=list)
    missing_papers: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (
            self.title_mismatches or self.author_mismatches or self.missing_papers
        )


def crosscheck_dblp(
    harvested: list[HarvestedConference],
    dblp_xml_by_conference: dict[str, str] | None = None,
) -> CrossCheckReport:
    """Compare each conference's scraped papers against a DBLP view.

    ``dblp_xml_by_conference`` supplies an external DBLP document per
    conference name; when omitted, each conference is checked against
    its own export (a pure round-trip integrity check).
    """
    report = CrossCheckReport()
    for conf in harvested:
        report.conferences += 1
        if dblp_xml_by_conference and conf.conference in dblp_xml_by_conference:
            xml = dblp_xml_by_conference[conf.conference]
        else:
            xml = to_dblp_xml(conf.conference, conf.year, conf.papers)
        dblp = {p.paper_id: p for p in from_dblp_xml(xml)}
        for paper in conf.papers:
            report.papers_checked += 1
            other = dblp.get(paper.paper_id)
            if other is None:
                report.missing_papers.append(paper.paper_id)
                continue
            if other.title != paper.title:
                report.title_mismatches.append(paper.paper_id)
            if other.author_names != paper.author_names:
                report.author_mismatches.append(paper.paper_id)
    return report
