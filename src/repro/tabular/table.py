"""The Table container: an ordered set of equal-length columns."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.tabular.column import Column

__all__ = ["Table"]


class Table:
    """A column-store table.

    Construction::

        Table({"name": ["a", "b"], "n": [1, 2]})
        Table.from_records([{"name": "a", "n": 1}, {"name": "b", "n": 2}])

    All row-level operations return new tables; columns are shared (they
    are read-only arrays) so derivation is cheap.
    """

    __slots__ = ("_cols", "_order")

    def __init__(self, columns: Mapping[str, Any] | Sequence[Column] = ()) -> None:
        self._cols: dict[str, Column] = {}
        self._order: list[str] = []
        if isinstance(columns, Mapping):
            items: Iterable[tuple[str, Any]] = columns.items()
        else:
            items = ((c.name, c) for c in columns)
        n = None
        for name, values in items:
            col = values if isinstance(values, Column) else Column(name, values)
            if col.name != name:
                col = col.rename(name)
            if n is None:
                n = len(col)
            elif len(col) != n:
                raise ValueError(
                    f"column {name!r} has length {len(col)}, expected {n}"
                )
            self._cols[name] = col
            self._order.append(name)

    # ---------------------------------------------------------------- basic

    @property
    def columns(self) -> list[str]:
        return list(self._order)

    @property
    def num_rows(self) -> int:
        if not self._order:
            return 0
        return len(self._cols[self._order[0]])

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._cols

    def col(self, name: str) -> Column:
        try:
            return self._cols[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {', '.join(self._order)}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        """The raw array of a column (read-only)."""
        return self.col(name).values

    def row(self, i: int) -> dict[str, Any]:
        return {name: self._cols[name].values[i] for name in self._order}

    def iter_rows(self) -> Iterable[dict[str, Any]]:
        for i in range(self.num_rows):
            yield self.row(i)

    # ------------------------------------------------------------ derivation

    @classmethod
    def from_records(
        cls, records: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None
    ) -> "Table":
        """Build a table from dict rows.

        ``columns`` fixes the column set/order; otherwise it is the union
        of keys in first-seen order.  Missing keys become missing values.
        """
        if columns is None:
            cols: list[str] = []
            seen: set[str] = set()
            for r in records:
                for k in r:
                    if k not in seen:
                        seen.add(k)
                        cols.append(k)
        else:
            cols = list(columns)
        data = {c: [r.get(c) for r in records] for c in cols}
        return cls(data)

    def to_records(self) -> list[dict[str, Any]]:
        names = self._order
        lists = [self._cols[n].to_list() for n in names]
        return [dict(zip(names, vals)) for vals in zip(*lists)] if names else []

    def select(self, names: Sequence[str]) -> "Table":
        """Project onto ``names`` in the given order."""
        return Table([self.col(n) for n in names])

    def drop(self, names: Sequence[str]) -> "Table":
        keep = [n for n in self._order if n not in set(names)]
        return self.select(keep)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        cols = []
        for n in self._order:
            new = mapping.get(n, n)
            cols.append(self._cols[n].rename(new))
        return Table(cols)

    def with_column(self, name: str, values: Any) -> "Table":
        """Add or replace a column (computed arrays welcome)."""
        col = values if isinstance(values, Column) else Column(name, values)
        if col.name != name:
            col = col.rename(name)
        if len(col) != self.num_rows and self._order:
            raise ValueError(
                f"new column {name!r} has length {len(col)}, table has {self.num_rows} rows"
            )
        cols = [self._cols[n] for n in self._order if n != name]
        cols.append(col)
        return Table(cols)

    def with_derived(self, name: str, fn: Callable[["Table"], Any]) -> "Table":
        """Add a column computed from the whole table (vectorized)."""
        return self.with_column(name, fn(self))

    # -------------------------------------------------------------- row ops

    def filter(self, mask: Any) -> "Table":
        """Keep rows where ``mask`` (bool array or predicate on Table) holds."""
        if callable(mask):
            mask = mask(self)
        m = np.asarray(mask, dtype=bool)
        if m.shape != (self.num_rows,):
            raise ValueError(
                f"mask shape {m.shape} does not match row count {self.num_rows}"
            )
        return Table([self._cols[n].mask(m) for n in self._order])

    def take(self, indices: Any) -> "Table":
        idx = np.asarray(indices, dtype=np.int64)
        return Table([self._cols[n].take(idx) for n in self._order])

    def head(self, n: int) -> "Table":
        return self.take(np.arange(min(n, self.num_rows)))

    def sort_by(self, *names: str, descending: bool | Sequence[bool] = False) -> "Table":
        """Stable multi-key sort. ``descending`` may be per-key."""
        if not names:
            return self
        if isinstance(descending, bool):
            desc = [descending] * len(names)
        else:
            desc = list(descending)
            if len(desc) != len(names):
                raise ValueError("descending must match number of keys")
        idx = np.arange(self.num_rows)
        # Sort by least-significant key first (stable sorts compose).
        for name, d in reversed(list(zip(names, desc))):
            col = self.col(name)
            if col.kind == "str":
                # rank-encode once per key column: None sorts as "" and
                # lexicographic order is preserved, but the sort itself
                # runs on int codes instead of per-row str() calls
                from repro.tabular.codes import sort_codes

                keys = sort_codes(col)[idx]
            else:
                keys = col.values[idx]
            if d:
                # Stable descending: rank values ascending, then stably
                # sort by negated rank (plain reversal would break ties).
                _, inv = np.unique(keys, return_inverse=True)
                order = np.argsort(-inv, kind="stable")
            else:
                order = np.argsort(keys, kind="stable")
            idx = idx[order]
        return self.take(idx)

    def concat(self, other: "Table") -> "Table":
        """Stack rows of two tables with identical column sets."""
        if self._order != other._order:
            raise ValueError(
                f"column mismatch: {self._order} vs {other._order}"
            )
        cols = []
        for n in self._order:
            a, b = self._cols[n], other._cols[n]
            kind = a.kind if a.kind == b.kind else "str" if "str" in (a.kind, b.kind) else "float"
            merged = np.concatenate([a.values, b.values]) if kind != "str" else np.concatenate(
                [a.values.astype(object), b.values.astype(object)]
            )
            cols.append(Column(n, merged, kind=kind))
        return Table(cols)

    # ------------------------------------------------------------- analysis

    def groupby(self, *keys: str):
        from repro.tabular.groupby import GroupBy

        return GroupBy(self, keys)

    def value_counts(self, name: str) -> "Table":
        """Counts of distinct values of a column, descending by count.

        Missing entries (NaN/None) are excluded.  Counting runs on
        factorized codes (one ``bincount``), not a per-row dict.
        """
        from repro.tabular.codes import factorize

        col = self.col(name)
        f = factorize(col)
        counts = np.bincount(f.codes, minlength=f.n_codes)
        items = [
            (f.uniques[code], int(c))
            for code, c in enumerate(counts)
            if c and code != f.missing_code
        ]
        items.sort(key=lambda kv: (-kv[1], str(kv[0])))
        return Table({name: [k for k, _ in items], "count": [c for _, c in items]})

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.num_rows} rows x {len(self._order)} cols: {', '.join(self._order)})"

    def equals(self, other: "Table") -> bool:
        if self._order != other._order or self.num_rows != other.num_rows:
            return False
        return all(self._cols[n] == other._cols[n] for n in self._order)
