"""Tests for the collaboration-pattern extension (§6 future work)."""

import networkx as nx
import numpy as np
import pytest

from repro.collab import build_coauthorship_graph, collaboration_report


@pytest.fixture(scope="module")
def graph(small_result):
    return build_coauthorship_graph(small_result.dataset)


@pytest.fixture(scope="module")
def report(small_result):
    return collaboration_report(small_result.dataset)


class TestGraph:
    def test_nodes_are_authors(self, graph, small_result):
        ds = small_result.dataset
        n_authors = sum(1 for x in ds.researchers["is_author"] if bool(x))
        assert graph.number_of_nodes() == n_authors

    def test_edges_have_weights(self, graph):
        for _, _, data in list(graph.edges(data=True))[:50]:
            assert data["weight"] >= 1

    def test_gender_attribute_present(self, graph):
        genders = {d.get("gender") for _, d in graph.nodes(data=True)}
        assert "F" in genders and "M" in genders

    def test_coauthors_connected(self, graph, small_result):
        ds = small_result.dataset
        pos = ds.author_positions
        by_paper = {}
        for pid, rid in zip(pos["paper_id"], pos["researcher_id"]):
            by_paper.setdefault(pid, []).append(rid)
        # spot-check: the first multi-author paper's authors form a clique
        for authors in by_paper.values():
            if len(authors) >= 3:
                for i in range(len(authors)):
                    for j in range(i + 1, len(authors)):
                        assert graph.has_edge(authors[i], authors[j])
                break

    def test_repeat_collaboration_increases_weight(self, graph):
        weights = [d["weight"] for _, _, d in graph.edges(data=True)]
        # at least some pairs collaborate more than once in a 500+ paper world
        assert max(weights) >= 1


class TestReport:
    def test_degree_summaries(self, report):
        assert report.degree_women.n > 0
        assert report.degree_men.n > report.degree_women.n
        assert report.degree_men.mean > 0

    def test_team_sizes_reasonable(self, report):
        assert 2.5 < report.team_size_men.mean < 7
        assert 2.5 < report.team_size_women.mean < 7

    def test_mixing_near_random_in_null_world(self, report):
        """The generator assigns authors to papers independently of
        gender, so the measured mixing must sit near the random-mixing
        expectation — the extension's null-model check."""
        assert report.share_mixed_edges == pytest.approx(
            report.expected_mixed_edges, abs=0.05
        )
        assert abs(report.assortativity) < 0.1

    def test_all_male_paper_share(self, report):
        # with ~10% women and mean team ≈ 4.3, most papers are all-male
        assert 0.45 < report.all_male_paper_share < 0.85

    def test_solo_rates_small(self, report):
        assert report.solo_rate_men < 0.1
        assert report.solo_rate_women < 0.15

    def test_components(self, report):
        assert report.components >= 1
        assert report.largest_component > 10
