"""Tests for the coverage-guaranteeing dealer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.synth.dealing import deal


class TestDeal:
    def test_full_coverage(self):
        pool = list(range(50))
        quotas = {"a": 30, "b": 25, "c": 10}  # 65 >= 50
        out = deal(pool, quotas, np.random.default_rng(0))
        served = {m for members in out.values() for m in members}
        assert served == set(pool)

    def test_quotas_exact(self):
        pool = list(range(20))
        quotas = {"x": 12, "y": 10}
        out = deal(pool, quotas, np.random.default_rng(1))
        assert len(out["x"]) == 12 and len(out["y"]) == 10

    def test_no_duplicates_within_bucket(self):
        pool = list(range(30))
        quotas = {"a": 25, "b": 25, "c": 20}
        out = deal(pool, quotas, np.random.default_rng(2))
        for members in out.values():
            assert len(members) == len(set(members))

    def test_quota_equal_to_pool(self):
        pool = list(range(5))
        out = deal(pool, {"only": 5}, np.random.default_rng(3))
        assert sorted(out["only"]) == pool

    def test_quota_exceeding_pool_rejected(self):
        with pytest.raises(ValueError):
            deal([1, 2], {"a": 3}, np.random.default_rng(0))

    def test_quotas_below_pool_rejected(self):
        with pytest.raises(ValueError):
            deal(list(range(10)), {"a": 4}, np.random.default_rng(0))

    def test_negative_quota_rejected(self):
        with pytest.raises(ValueError):
            deal([1, 2], {"a": -1, "b": 4}, np.random.default_rng(0))

    def test_deterministic(self):
        pool = list(range(40))
        quotas = {"a": 25, "b": 25}
        one = deal(pool, quotas, np.random.default_rng(9))
        two = deal(pool, quotas, np.random.default_rng(9))
        assert one == two

    def test_key_function(self):
        pool = [{"id": i} for i in range(10)]
        out = deal(pool, {"a": 6, "b": 6}, np.random.default_rng(4), key=lambda p: p["id"])
        for members in out.values():
            ids = [m["id"] for m in members]
            assert len(ids) == len(set(ids))

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(2, 60),
        st.lists(st.integers(0, 60), min_size=1, max_size=6),
        st.integers(0, 1_000_000),
    )
    def test_property_invariants(self, pool_size, raw_quotas, seed):
        pool = list(range(pool_size))
        quotas = {f"b{i}": min(q, pool_size) for i, q in enumerate(raw_quotas)}
        total = sum(quotas.values())
        if total < pool_size:
            # top up the first bucket within its cap
            need = pool_size - total
            q0 = list(quotas)[0]
            quotas[q0] = min(pool_size, quotas[q0] + need)
            if sum(quotas.values()) < pool_size:
                return  # cannot cover; skip
        out = deal(pool, quotas, np.random.default_rng(seed))
        served = {m for members in out.values() for m in members}
        assert served == set(pool)
        for name, members in out.items():
            assert len(members) == quotas[name]
            assert len(set(members)) == len(members)
