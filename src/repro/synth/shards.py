"""Shard identity for the scaled synthetic universe.

A *shard* is one conference×edition cell.  The sharded pipeline builds,
harvests, links, enriches, and gender-infers each cell independently —
generation is a pure function of ``(seed, shard)`` — then merges the
per-shard results deterministically.  :class:`ShardPlan` is the stable
public surface that names the cells, fixes their order, and supports
editing a single edition without invalidating the rest of the universe.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.calibration.targets import ConferenceTargets
from repro.synth.config import WorldConfig

__all__ = ["ShardSpec", "ShardPlan"]

_DEFAULT_YEAR = 2017


@dataclass(frozen=True)
class ShardSpec:
    """One conference×edition cell of a sharded universe.

    The spec carries everything needed to rebuild the cell from scratch:
    the conference name, the edition year, and the calibration targets.
    Two specs with equal fields fingerprint identically, so the engine's
    content-addressed cache reuses a shard until its targets change.
    """

    conference: str
    year: int
    target: ConferenceTargets

    @property
    def key(self) -> str:
        """Stable shard identity, e.g. ``"HPCV01-2017"``."""
        return f"{self.conference}-{self.year}"


@dataclass(frozen=True)
class ShardPlan:
    """An ordered partition of a world into conference×edition shards.

    Shard order is fixed (sorted by ``(year, conference)``) and is the
    merge order, so results are byte-identical regardless of how many
    workers execute the shards or in which order they finish.
    """

    shards: tuple[ShardSpec, ...]

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("a shard plan needs at least one shard")
        keys = [s.key for s in self.shards]
        if len(set(keys)) != len(keys):
            raise ValueError("shard keys must be unique")

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    @property
    def keys(self) -> tuple[str, ...]:
        """Shard keys in merge order."""
        return tuple(s.key for s in self.shards)

    @classmethod
    def from_config(cls, config: WorldConfig) -> "ShardPlan":
        """Derive the shard plan a :class:`WorldConfig` describes.

        ``config.venues > 0`` selects the synthetic sharded universe
        (per-edition targets drawn purely from ``(seed, venue, year)``);
        otherwise the paper's nine 2017 conferences are replicated
        across ``config.years`` with re-yeared dates.
        """
        years = config.years or (_DEFAULT_YEAR,)
        if config.venues > 0:
            # imported lazily: repro.universe pulls in the analysis layer
            from repro.universe.catalog import edition_targets

            targets = edition_targets(config.seed, config.venues, years)
            specs = [
                ShardSpec(conference=t.name, year=int(t.date[:4]), target=t)
                for t in targets
            ]
        else:
            from repro.calibration.targets import CONFERENCES_2017

            specs = [
                ShardSpec(
                    conference=t.name,
                    year=year,
                    target=replace(t, date=f"{year}{t.date[4:]}"),
                )
                for year in years
                for t in CONFERENCES_2017
            ]
        specs.sort(key=lambda s: (s.year, s.conference))
        return cls(shards=tuple(specs))

    def with_target(self, key: str, **changes) -> "ShardPlan":
        """A new plan with one shard's targets edited.

        This is the incremental-rerun entry point: only the edited shard
        (and the merge) re-executes; every other shard's cache entry
        stays valid.
        """
        out = []
        hit = False
        for s in self.shards:
            if s.key == key:
                out.append(replace(s, target=replace(s.target, **changes)))
                hit = True
            else:
                out.append(s)
        if not hit:
            raise KeyError(f"no shard {key!r}; have {', '.join(self.keys)}")
        return replace(self, shards=tuple(out))
