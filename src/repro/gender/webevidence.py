"""Simulated manual web-evidence lookup.

The paper's primary method: find an unambiguous personal page and read a
gendered pronoun, or failing that, judge a photo.  We simulate what that
search *finds*: each researcher either has pronoun evidence, photo-only
evidence, or no usable page.  Availability is decided at world-build time
(quota-calibrated to the paper's 95.18% manual coverage) and recorded in
the evidence registry that this source reads.

Pronoun evidence always reflects the researcher's true gender (the
paper's author survey found no discrepancies between assigned and
self-identified gender).  Photo judgments carry a tiny configurable error
rate, representing human error the paper acknowledges as a limitation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.gender.model import Gender
from repro.util.rng import derive_seed

__all__ = ["EvidenceKind", "Evidence", "WebEvidenceSource"]


class EvidenceKind(str, Enum):
    PRONOUN = "pronoun"  # unambiguous page with a gendered pronoun
    PHOTO = "photo"      # page with a recognizable photo only
    NONE = "none"        # no unambiguous page found


@dataclass(frozen=True)
class Evidence:
    """What the manual search turned up for one researcher."""

    kind: EvidenceKind
    observed_gender: Gender  # UNKNOWN when kind is NONE


class WebEvidenceSource:
    """Performs the simulated manual lookups.

    Parameters
    ----------
    availability:
        Maps person id -> :class:`EvidenceKind`; built by the synthetic
        world with calibrated quotas.
    true_genders:
        Maps person id -> true :class:`Gender`.
    photo_error_rate:
        Probability a photo judgment is wrong (default 1%).
    seed:
        Root seed for the (deterministic) photo-judgment noise.
    """

    def __init__(
        self,
        availability: dict[str, EvidenceKind],
        true_genders: dict[str, Gender],
        photo_error_rate: float = 0.01,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= photo_error_rate <= 1.0:
            raise ValueError("photo_error_rate must be in [0, 1]")
        self._availability = availability
        self._true = true_genders
        self._err = float(photo_error_rate)
        self._seed = int(seed)
        self.lookups = 0

    def lookup(self, person_id: str) -> Evidence:
        """Simulate manually searching the web for one researcher."""
        self.lookups += 1
        kind = self._availability.get(person_id, EvidenceKind.NONE)
        if kind is EvidenceKind.NONE:
            return Evidence(EvidenceKind.NONE, Gender.UNKNOWN)
        truth = self._true[person_id]
        if truth is Gender.UNKNOWN:
            return Evidence(EvidenceKind.NONE, Gender.UNKNOWN)
        if kind is EvidenceKind.PRONOUN:
            return Evidence(kind, truth)
        # photo: mostly right, occasionally misjudged
        rng = np.random.default_rng(derive_seed(self._seed, "photo", person_id))
        if self._err > 0 and rng.random() < self._err:
            flipped = Gender.M if truth is Gender.F else Gender.F
            return Evidence(kind, flipped)
        return Evidence(kind, truth)
