"""Name-keyed personal-web evidence (the manual lookup's search step).

The paper's annotators searched researchers *by name* and required "an
unambiguous web page".  When two researchers share a name, no page is
unambiguous, so the lookup fails — an inherent limitation the simulation
must preserve.  This module projects the world's person-keyed evidence
onto name keys, blanking out collisions.
"""

from __future__ import annotations

from repro.confmodel.registry import WorldRegistry
from repro.gender.model import Gender
from repro.gender.webevidence import EvidenceKind
from repro.names.parsing import name_key

__all__ = ["build_name_keyed_evidence"]


def build_name_keyed_evidence(
    registry: WorldRegistry,
    evidence_availability: dict[str, EvidenceKind],
    true_genders: dict[str, Gender],
) -> tuple[dict[str, EvidenceKind], dict[str, Gender]]:
    """Project evidence/truth maps from person ids onto name keys.

    Returns ``(availability, truth)`` keyed by :func:`name_key`.  Names
    borne by more than one person map to ``EvidenceKind.NONE`` (no
    unambiguous page exists) with ``Gender.UNKNOWN`` truth — the manual
    step then fails over to genderize, as it should.
    """
    holders: dict[str, list[str]] = {}
    for pid, person in registry.people.items():
        holders.setdefault(name_key(person.full_name), []).append(pid)

    availability: dict[str, EvidenceKind] = {}
    truth: dict[str, Gender] = {}
    for key, pids in holders.items():
        if len(pids) == 1:
            pid = pids[0]
            availability[key] = evidence_availability.get(pid, EvidenceKind.NONE)
            truth[key] = true_genders.get(pid, Gender.UNKNOWN)
        else:
            availability[key] = EvidenceKind.NONE
            truth[key] = Gender.UNKNOWN
    return availability, truth
