"""Concurrent writers on one cache directory: the flock must serialize.

Two writers racing ``ArtifactCache.save`` on the *same* key is exactly
the shape two pipeline runs sharing a cache directory produce.  The
cross-process advisory lock (``.lock``, ``fcntl.flock``) must serialize
the envelope writes so the surviving entry is one valid envelope —
never an interleaved torn write that the next load would quarantine.

``flock`` locks are per open-file-description, so two handles inside one
process contend exactly like two processes do; threads are a faithful
(and much faster) stand-in.  On platforms without ``fcntl`` the cache
degrades to unlocked writes by design, so these tests skip cleanly.
"""

import threading
import time

import pytest

from repro.engine.cache import ArtifactCache
from repro.pipeline.checkpoint import CheckpointStore

fcntl = pytest.importorskip("fcntl", reason="advisory locking is POSIX-only")

pytestmark = [pytest.mark.engine, pytest.mark.chaos]

KEY = "c" * 64


class TestConcurrentSave:
    def test_two_writers_same_key_leave_one_valid_envelope(self, tmp_path):
        root = tmp_path / "cache"
        ArtifactCache(root)  # materialize meta.json before the race
        barrier = threading.Barrier(2)
        errors: list[BaseException] = []

        def writer(tag: int) -> None:
            try:
                cache = ArtifactCache(root)  # own handle, own lock fd
                barrier.wait()
                for i in range(20):
                    cache.save("ingest", KEY, {"writer": tag, "round": i})
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in (1, 2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []

        survivor = ArtifactCache(root)
        assert survivor.entries() == [f"ingest-{KEY[:24]}"]
        # the envelope is whole: digest verifies, payload unpickles, and
        # it is wholly one writer's (never a splice of both)
        outputs = survivor.load("ingest", KEY)
        assert outputs["writer"] in (1, 2) and outputs["round"] == 19
        assert survivor.quarantined() == []
        report = survivor.verify()
        assert report["ok"] == report["checked"] == 1

    def test_flock_actually_serializes_the_write_section(
        self, tmp_path, monkeypatch
    ):
        """The lock is load-bearing: saves never overlap, even when slow."""
        root = tmp_path / "cache"
        ArtifactCache(root)
        in_section = 0
        max_overlap = 0
        gauge = threading.Lock()
        real_save = CheckpointStore.save_stage

        def slow_save(self, stage, obj):
            nonlocal in_section, max_overlap
            with gauge:
                in_section += 1
                max_overlap = max(max_overlap, in_section)
            time.sleep(0.01)  # widen the window a torn write would need
            try:
                return real_save(self, stage, obj)
            finally:
                with gauge:
                    in_section -= 1

        monkeypatch.setattr(CheckpointStore, "save_stage", slow_save)
        barrier = threading.Barrier(2)

        def writer(tag: int) -> None:
            cache = ArtifactCache(root)
            barrier.wait()
            for i in range(5):
                cache.save("ingest", KEY, {"writer": tag, "round": i})

        threads = [threading.Thread(target=writer, args=(t,)) for t in (1, 2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert max_overlap == 1
