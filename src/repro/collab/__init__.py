"""Collaboration-pattern analysis (the paper's §6 future work).

"We also plan to address deeper gender questions that emerge from the
data, such as the differences in collaboration patterns between women
and men."  This package implements that follow-up study over the same
analysis dataset:

- :mod:`repro.collab.network`  — the coauthorship graph (networkx) with
  gender attributes.
- :mod:`repro.collab.metrics`  — per-gender degree/collaborator counts,
  team sizes, gender homophily (assortativity), solo-authorship rates,
  and mixed-team statistics.
"""

from repro.collab.network import build_coauthorship_graph
from repro.collab.metrics import collaboration_report, CollaborationReport

__all__ = [
    "build_coauthorship_graph",
    "collaboration_report",
    "CollaborationReport",
]
