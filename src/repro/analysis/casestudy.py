"""§3.4 — SC and ISC over 2016–2020.

Both flagship conferences run diversity programs, yet "women's
attendance rate at SC remained near constant at around 13%–14%" and
"for ISC, FAR values were in the range of 5%–9%".  The case study
consumes the world's timeline editions (author counts per year) and
summarizes FAR trajectories and their trend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.correlation import CorrelationResult, pearson
from repro.synth.timeline import TimelineEdition

__all__ = ["YearPoint", "CaseStudyReport", "casestudy_report"]


@dataclass(frozen=True)
class YearPoint:
    year: int
    far: float
    authors: int
    attendance_women_share: float | None


@dataclass(frozen=True)
class CaseStudyReport:
    """§3.4's quantities per conference."""

    series: dict[str, tuple[YearPoint, ...]]     # conference -> yearly FAR
    far_range: dict[str, tuple[float, float]]    # min/max FAR per conference
    trend: dict[str, CorrelationResult]          # FAR vs year correlation


def casestudy_report(timeline: list[TimelineEdition]) -> CaseStudyReport:
    """Summarize the SC/ISC timeline."""
    series: dict[str, list[YearPoint]] = {}
    for ed in sorted(timeline, key=lambda e: (e.conference, e.year)):
        series.setdefault(ed.conference, []).append(
            YearPoint(
                year=ed.year,
                far=ed.far,
                authors=ed.authors,
                attendance_women_share=ed.attendance_women_share,
            )
        )
    far_range: dict[str, tuple[float, float]] = {}
    trend: dict[str, CorrelationResult] = {}
    for conf, points in series.items():
        fars = np.array([p.far for p in points])
        years = np.array([p.year for p in points], dtype=float)
        far_range[conf] = (float(fars.min()), float(fars.max()))
        trend[conf] = pearson(years, fars)
    return CaseStudyReport(
        series={k: tuple(v) for k, v in series.items()},
        far_range=far_range,
        trend=trend,
    )
