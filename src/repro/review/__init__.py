"""Peer-review process simulation (§2 Limitations / §3.1).

The paper measures *accepted* papers only and reasons carefully about
what review bias could do to FAR: "FAR may undercount women if men are
more likely to submit papers or have them accepted", and §3.1 compares
double- vs single-blind conferences to probe for such bias.  This
package makes those arguments quantitative:

- :mod:`repro.review.process` — a submission/review simulator with
  explicit knobs: submission-pool FAR, per-reviewer identity-visible
  bias, review-policy (single/double blind), paper-quality model.
- :mod:`repro.review.inference` — inverse analysis: how much visible-
  identity bias would be needed to produce an observed accepted-FAR
  difference, and what the §3.1 contrast can/cannot detect.
"""

from repro.review.process import ReviewProcess, ReviewConfig, ReviewOutcome
from repro.review.inference import bias_sweep, detectable_bias, BiasSweepResult

__all__ = [
    "ReviewProcess",
    "ReviewConfig",
    "ReviewOutcome",
    "bias_sweep",
    "detectable_bias",
    "BiasSweepResult",
]
