"""Benchmark SCALE: the sharded streaming pipeline at 10⁵ researchers.

Two claims of the sharded execution model, measured end to end:

- **Scale ceiling** — a 12-venue, 3-year synthetic universe (36 shards)
  runs to a merged dataset of ≥10⁵ researchers in one benchmark round;
  the researchers/papers/wall/peak-RSS point lands in ``extra_info``.
- **Streaming memory** — peak RSS grows sublinearly in shard count at
  fixed per-shard size: 8 shards must stay within 2x the peak RSS of a
  single shard, because each shard's heavyweight intermediates (world,
  harvest, linked records) die with its node body and only compact
  analysis tables reach the merge.

Every configuration runs in its own subprocess so
``resource.getrusage(RUSAGE_SELF).ru_maxrss`` is that run's true
process-lifetime peak, not an artifact of earlier allocations in the
pytest process.  The session conftest publishes the collected stats to
``benchmarks/output/BENCH_scale.json``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[1] / "src")

# one subprocess per measured configuration; the child prints one JSON line
_CHILD = """
import json, resource, sys, time
from repro.api import RunConfig, WorldConfig, run_sharded

cfg = json.loads(sys.argv[1])
rc = RunConfig(
    world=WorldConfig(
        seed=cfg["seed"],
        scale=cfg["scale"],
        venues=cfg["venues"],
        years=tuple(cfg["years"]),
    ),
    shards=cfg["venues"],
    shard_workers=cfg["workers"],
)
t0 = time.perf_counter()
res = run_sharded(rc)
print(json.dumps({
    "researchers": res.researchers,
    "papers": res.dataset.papers.num_rows,
    "shards": len(res.plan),
    "wall_s": time.perf_counter() - t0,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def _measure(
    *, seed=7, scale=1.0, venues=1, years=(2017,), workers=1
) -> dict:
    cfg = {
        "seed": seed,
        "scale": scale,
        "venues": venues,
        "years": list(years),
        "workers": workers,
    }
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, json.dumps(cfg)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(out.stdout.splitlines()[-1])


@pytest.mark.benchmark(group="scale")
def test_scale_streaming_100k_researchers(benchmark):
    """36 shards, ≥3 years, ≥12 venues, ≥10⁵ merged researchers."""
    stats = benchmark.pedantic(
        lambda: _measure(
            scale=18.0, venues=12, years=(2016, 2017, 2018), workers=8
        ),
        rounds=1,
        iterations=1,
    )
    assert stats["shards"] == 36
    assert stats["researchers"] >= 100_000
    assert stats["papers"] > 0
    benchmark.extra_info.update(stats)


@pytest.mark.benchmark(group="scale")
def test_scale_peak_rss_sublinear_in_shard_count(benchmark):
    """Fixed per-shard size: 8x the shards must cost ≤ 2x the peak RSS."""

    def curve():
        return {
            v: _measure(scale=4.0, venues=v, workers=1) for v in (1, 2, 4, 8)
        }

    points = benchmark.pedantic(curve, rounds=1, iterations=1)
    rss1 = points[1]["peak_rss_kb"]
    rss8 = points[8]["peak_rss_kb"]
    assert points[8]["researchers"] > 4 * points[1]["researchers"]
    assert rss8 <= 2 * rss1, f"peak RSS {rss8}kB at 8 shards vs {rss1}kB at 1"
    benchmark.extra_info.update(
        {
            "curve": [
                {"venues": v, **stats} for v, stats in sorted(points.items())
            ],
            "rss_ratio_8_over_1": round(rss8 / rss1, 3),
        }
    )
