"""Unit tests for the declarative schema layer."""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.contracts import (
    ASSIGNMENT_SCHEMA,
    EDITION_SCHEMA,
    ENRICHMENT_SCHEMA,
    PAPER_SCHEMA,
    RESEARCHER_SCHEMA,
    ContractViolationError,
    FieldSpec,
    Invariant,
    RecordSchema,
    ValidationMode,
    Violation,
)
from repro.gender.model import Gender, GenderAssignment, InferenceMethod
from repro.harvest.scrape import HarvestedConference, HarvestedPaper
from repro.pipeline.enrich import Enrichment
from repro.pipeline.link import ResearcherRecord

pytestmark = pytest.mark.contracts


def make_edition(**overrides) -> HarvestedConference:
    base = HarvestedConference(
        conference="SC",
        year=2017,
        date="2017-11-12",
        country="US",
        accepted=61,
        submitted=327,
        review_policy="double",
    )
    return dataclasses.replace(base, **overrides)


def make_paper(**overrides) -> HarvestedPaper:
    base = HarvestedPaper(
        paper_id="SC-2017-p1",
        title="Exascale Something",
        author_names=("Ada Lovelace", "Grace Hopper"),
        author_emails=("ada@example.edu", None),
        citations_36mo=12,
        is_hpc_topic=True,
    )
    return dataclasses.replace(base, **overrides)


class TestFieldSpec:
    def test_missing_required(self):
        spec = FieldSpec("conference", (str,), required=True)
        vs = spec.validate("edition", make_edition(conference=None))
        assert [v.code for v in vs] == ["edition.field.conference.missing"]

    def test_none_ok_when_optional(self):
        spec = FieldSpec("accepted", (int,), min_value=0)
        assert spec.validate("edition", make_edition(accepted=None)) == []

    def test_type_violation(self):
        spec = FieldSpec("year", (int,), required=True)
        vs = spec.validate("edition", make_edition(year="2017"))
        assert vs[0].code == "edition.field.year.type"

    def test_bool_rejected_for_int_field(self):
        spec = FieldSpec("accepted", (int,), min_value=0)
        vs = spec.validate("edition", make_edition(accepted=True))
        assert vs and "bool" in vs[0].message

    def test_year_range(self):
        spec = FieldSpec("year", (int,), required=True, year=True)
        assert spec.validate("edition", make_edition(year=2017)) == []
        vs = spec.validate("edition", make_edition(year=7102))
        assert vs[0].code == "edition.field.year.range"

    def test_choices(self):
        spec = FieldSpec("review_policy", (str,), choices=("single", "double"))
        vs = spec.validate("edition", make_edition(review_policy="triple"))
        assert vs[0].code == "edition.field.review_policy.choice"

    def test_ok_agrees_with_validate(self):
        """The allocation-free fast path must match the slow path exactly."""
        specs = [
            FieldSpec("x", (str,), required=True, nonempty=True),
            FieldSpec("x", (int,), min_value=0, max_value=100),
            FieldSpec("x", (int,), year=True),
            FieldSpec("x", (str,), choices=("a", "b")),
            FieldSpec("x", (tuple,), required=True, nonempty=True),
            FieldSpec("x", (bool,)),
            FieldSpec("x", (float,), min_value=0.0),
        ]
        values = [
            None, "", "  ", "a", "c", "hello", 0, -1, 5, 101, 1959, 2017,
            2036, True, False, (), ("x",), 0.5, -0.5, float("nan"), [], b"x",
        ]
        for spec in specs:
            for value in values:
                record = type("R", (), {"x": value})()
                slow_clean = not spec.validate("t", record)
                assert spec.ok(value) == slow_clean, (spec, value)


class TestInvariant:
    def test_crashing_check_is_a_violation(self):
        inv = Invariant("boom", "must not crash", lambda r: r.no_such_attr)
        v = inv.validate("edition", make_edition())
        assert v is not None and "crashed" in v.message

    def test_pass_and_fail(self):
        inv = Invariant("t", "m", lambda r: r.accepted <= r.submitted)
        assert inv.validate("edition", make_edition()) is None
        assert inv.validate("edition", make_edition(accepted=400)) is not None


class TestEntitySchemas:
    def test_clean_edition_conforms(self):
        assert EDITION_SCHEMA.validate(make_edition()) == []

    def test_accepted_exceeds_submitted(self):
        vs = EDITION_SCHEMA.validate(make_edition(accepted=400))
        assert "edition.invariant.accepted-le-submitted" in [v.code for v in vs]

    def test_date_year_mismatch(self):
        vs = EDITION_SCHEMA.validate(make_edition(date="2016-11-12"))
        assert "edition.invariant.date-matches-year" in [v.code for v in vs]

    def test_clean_paper_conforms(self):
        assert PAPER_SCHEMA.validate(make_paper()) == []

    def test_paper_misaligned_emails(self):
        vs = PAPER_SCHEMA.validate(make_paper(author_emails=("a@b.c",)))
        assert "paper.invariant.emails-aligned" in [v.code for v in vs]

    def test_paper_duplicate_author_keys(self):
        vs = PAPER_SCHEMA.validate(
            make_paper(
                author_names=("Ada Lovelace", "ada  lovelace"),
                author_emails=(None, None),
            )
        )
        assert "paper.invariant.author-keys-unique" in [v.code for v in vs]

    def test_paper_no_authors(self):
        vs = PAPER_SCHEMA.validate(
            make_paper(author_names=(), author_emails=())
        )
        assert "paper.field.author_names.empty" in [v.code for v in vs]

    def test_researcher_key_consistency(self):
        rec = ResearcherRecord("r1", "Ada Lovelace", "wrong-key")
        vs = RESEARCHER_SCHEMA.validate(rec)
        assert "researcher.invariant.key-consistent" in [v.code for v in vs]

    def test_enrichment_negative_counter(self):
        e = Enrichment("r1", "US", "amer", "EDU", -3, 1, 1, 10, 4)
        vs = ENRICHMENT_SCHEMA.validate(e)
        assert "enrichment.field.gs_publications.range" in [v.code for v in vs]

    def test_enrichment_h_exceeds_pubs(self):
        e = Enrichment("r1", "US", "amer", "EDU", 5, 9, 1, 10, 4)
        vs = ENRICHMENT_SCHEMA.validate(e)
        assert "enrichment.invariant.h-le-pubs" in [v.code for v in vs]

    def test_assignment_confidence_out_of_range(self):
        a = GenderAssignment(Gender.F, InferenceMethod.GENDERIZE, 1.7)
        vs = ASSIGNMENT_SCHEMA.validate(a)
        assert "assignment.invariant.confidence-lawful" in [v.code for v in vs]

    def test_assignment_unassigned_is_lawful(self):
        assert ASSIGNMENT_SCHEMA.validate(GenderAssignment.unassigned()) == []

    def test_assignment_nan_with_method(self):
        a = GenderAssignment(Gender.M, InferenceMethod.MANUAL, float("nan"))
        assert ASSIGNMENT_SCHEMA.validate(a) != []


class TestViolationPlumbing:
    def test_violation_to_dict_roundtrip_fields(self):
        v = Violation("edition", "edition.field.year.range", "year", "msg", "7102")
        d = v.to_dict()
        assert d["code"] == "edition.field.year.range" and d["field"] == "year"

    def test_error_message_carries_codes(self):
        err = ContractViolationError(
            "harvest",
            "edition",
            "SC-2017",
            [Violation("edition", "edition.field.year.range", "year", "m")],
        )
        assert "edition.field.year.range" in str(err)
        assert err.stage == "harvest" and err.key == "SC-2017"

    def test_validation_mode_coercion(self):
        assert ValidationMode("strict") is ValidationMode.STRICT
        with pytest.raises(ValueError):
            ValidationMode("bogus")

    def test_schema_conforms(self):
        schema = RecordSchema(
            "t",
            fields=(FieldSpec("x", (int,), required=True),),
            invariants=(Invariant("pos", "x must be positive", lambda r: r.x > 0),),
        )
        good = type("R", (), {"x": 3})()
        bad = type("R", (), {"x": -3})()
        assert schema.conforms(good) and not schema.conforms(bad)
        assert math.isnan(GenderAssignment.unassigned().confidence)
