"""Tests for iterative proportional fitting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.calibration import ipf_fit


class TestIpf2D:
    def test_fits_both_margins(self):
        seed = np.ones((3, 4))
        rows = np.array([10.0, 20, 30])
        cols = np.array([15.0, 15, 15, 15])
        res = ipf_fit(seed, [((0,), rows), ((1,), cols)])
        assert res.converged
        assert np.allclose(res.table.sum(axis=1), rows)
        assert np.allclose(res.table.sum(axis=0), cols)

    def test_structural_zeros_preserved(self):
        seed = np.array([[1.0, 0.0], [1.0, 1.0]])
        res = ipf_fit(seed, [((0,), np.array([5.0, 5.0])), ((1,), np.array([6.0, 4.0]))])
        assert res.table[0, 1] == 0.0

    def test_independence_seed_gives_product(self):
        rows = np.array([2.0, 8.0])
        cols = np.array([5.0, 5.0])
        res = ipf_fit(np.ones((2, 2)), [((0,), rows), ((1,), cols)])
        expected = np.outer(rows, cols) / 10.0
        assert np.allclose(res.table, expected)

    def test_preserves_seed_odds_ratio(self):
        # IPF preserves interaction structure (odds ratios) of the seed
        seed = np.array([[4.0, 1.0], [1.0, 4.0]])
        res = ipf_fit(seed, [((0,), np.array([10.0, 10.0])), ((1,), np.array([10.0, 10.0]))])
        t = res.table
        odds = (t[0, 0] * t[1, 1]) / (t[0, 1] * t[1, 0])
        assert odds == pytest.approx(16.0, rel=1e-4)


class TestIpf3D:
    def test_three_margins(self):
        rng = np.random.default_rng(0)
        seed = rng.random((4, 3, 2)) + 0.05
        m0 = np.array([10.0, 20, 30, 40])
        m1 = np.array([50.0, 25, 25])
        m2 = np.array([70.0, 30])
        res = ipf_fit(seed, [((0,), m0), ((1,), m1), ((2,), m2)])
        assert res.converged
        assert np.allclose(res.table.sum(axis=(1, 2)), m0, rtol=1e-6)
        assert np.allclose(res.table.sum(axis=(0, 2)), m1, rtol=1e-6)
        assert np.allclose(res.table.sum(axis=(0, 1)), m2, rtol=1e-6)

    def test_joint_margin(self):
        rng = np.random.default_rng(1)
        seed = rng.random((3, 2, 2)) + 0.1
        joint = np.array([[10.0, 5], [8.0, 7], [6.0, 4]])  # dims (0,1)
        m2 = np.array([22.0, 18.0])
        res = ipf_fit(seed, [((0, 1), joint), ((2,), m2)])
        assert res.converged
        assert np.allclose(res.table.sum(axis=2), joint, rtol=1e-6)


class TestValidation:
    def test_mismatched_totals_rejected(self):
        with pytest.raises(ValueError, match="grand total"):
            ipf_fit(np.ones((2, 2)), [((0,), np.array([1.0, 1])), ((1,), np.array([3.0, 3]))])

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            ipf_fit(np.ones((2, 2)), [((0,), np.array([1.0, 1, 1]))])

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            ipf_fit(np.array([[-1.0, 1], [1, 1]]), [((0,), np.array([1.0, 1]))])

    def test_no_margins_rejected(self):
        with pytest.raises(ValueError):
            ipf_fit(np.ones((2, 2)), [])

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            ipf_fit(np.zeros((2, 2)), [((0,), np.array([1.0, 1]))])

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 6), st.integers(2, 6), st.integers(1, 10_000))
    def test_property_margins_met(self, r, c, total):
        rng = np.random.default_rng(r * 100 + c)
        rows = rng.random(r) + 0.1
        rows = rows / rows.sum() * total
        cols = rng.random(c) + 0.1
        cols = cols / cols.sum() * total
        res = ipf_fit(np.ones((r, c)), [((0,), rows), ((1,), cols)])
        assert res.converged
        assert np.allclose(res.table.sum(axis=1), rows, rtol=1e-5)
