"""Tests for table/figure builders and the experiment registry."""

import pytest

from repro.report import (
    EXPERIMENTS,
    build_fig1,
    build_fig2,
    build_fig7,
    build_table1,
    build_table2,
    build_table3,
    compare_headlines,
    run_experiment,
)
from repro.report.compare import render_comparison


class TestTables:
    def test_table1_columns_and_rows(self, small_result):
        table, text = build_table1(small_result.dataset)
        assert table.columns == [
            "Conference", "Date", "Papers", "Authors", "Acceptance", "Country",
        ]
        assert table.num_rows == 9
        assert "Table 1" in text

    def test_table1_sorted_by_date(self, small_result):
        table, _ = build_table1(small_result.dataset)
        dates = table["Date"].tolist()
        assert dates == sorted(dates)

    def test_table2_descending_totals(self, small_result):
        table, _ = build_table2(small_result.dataset)
        totals = table["Total"].tolist()
        assert totals == sorted(totals, reverse=True)
        assert table.num_rows == 10

    def test_table3_region_rows(self, small_result):
        table, text = build_table3(small_result.dataset)
        assert "Region" in table.columns
        assert table.num_rows >= 10
        assert "Northern America" in table["Region"].tolist()


class TestFigures:
    def test_fig1_roles(self, small_result):
        fig = build_fig1(small_result.dataset)
        assert set(fig.data["overall"]) == {
            "author", "pc_chair", "pc_member", "keynote", "panelist", "session_chair",
        }
        assert "Fig. 1" in fig.text

    def test_fig1_pc_above_authors(self, small_result):
        fig = build_fig1(small_result.dataset)
        assert fig.data["overall"]["pc_member"] > fig.data["overall"]["author"]

    def test_fig2_has_densities_and_stats(self, small_result):
        fig = build_fig2(small_result.dataset)
        assert "Welch" in fig.text
        assert fig.data["report"].n_male_lead > 0

    def test_fig7_threshold(self, small_result):
        fig = build_fig7(small_result.dataset, min_authors=5)
        assert all(c.author_total >= 5 for c in fig.data["countries"])


class TestRegistry:
    def test_all_experiments_run(self, small_result):
        for eid in EXPERIMENTS:
            payload, text = run_experiment(eid, small_result)
            assert isinstance(text, str) and text, eid

    def test_unknown_experiment(self, small_result):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("T99", small_result)

    def test_registry_covers_every_table_and_figure(self):
        for eid in ["T1", "T2", "T3"] + [f"F{i}" for i in range(1, 9)]:
            assert eid in EXPERIMENTS, eid


class TestCompare:
    def test_rows_complete(self, small_result):
        rows = compare_headlines(small_result)
        assert len(rows) >= 35
        stats = {r.statistic for r in rows}
        assert "far_overall" in stats and "welch_t" in stats

    def test_render(self, small_result):
        rows = compare_headlines(small_result)
        text = render_comparison(rows)
        assert "paper" in text and "measured" in text

    def test_error_properties(self, small_result):
        rows = compare_headlines(small_result)
        r = rows[0]
        assert r.abs_error == abs(r.measured - r.paper)
