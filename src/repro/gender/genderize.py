"""A deterministic genderize.io stand-in.

The real service returns, for a forename (optionally a country), a gender
guess, a probability, and the count of records behind it.  Our stand-in
computes those from the synthetic name banks: the reported probability is
the name's true female share perturbed by binomial sampling noise at the
name's (scaled) bearer count — small-count ambiguous names therefore get
unstable, low-confidence answers, reproducing the service's documented
weakness on Asian-origin and female names [Santamaria & Mihaljevic 2018].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.names.bank import NameBank, default_bank
from repro.names.parsing import forename_of
from repro.gender.model import Gender
from repro.util.rng import derive_seed

__all__ = ["GenderizeResponse", "GenderizeClient"]


@dataclass(frozen=True)
class GenderizeResponse:
    """What the service returns for one query.

    ``gender`` is None when the name is absent from the service's data —
    exactly how genderize.io signals an unknown name.
    """

    name: str
    gender: Gender | None
    probability: float
    count: int


class GenderizeClient:
    """Simulated remote gender-inference service.

    The client is deterministic for a given ``service_seed``: querying the
    same name always yields the same response (the real service's data is
    also fixed at query time).  It also counts queries, letting tests and
    benchmarks assert the pipeline's call volume (the paper used the
    service for only 1.79% of researchers).
    """

    #: scale from corpus weight to pretend record count
    COUNT_SCALE = 120

    def __init__(self, service_seed: int = 2017, bank: NameBank | None = None) -> None:
        self._seed = int(service_seed)
        self._bank = bank or default_bank()
        self.queries = 0
        # the service's data is frozen at query time, so one forename
        # always maps to one response: memoize it.  ``queries`` still
        # counts every call — the paper's call-volume statistic is about
        # how often the pipeline *asks*, not what computing costs.
        self._memo: dict[str, GenderizeResponse] = {}

    def query(self, full_name: str) -> GenderizeResponse:
        """Query the service with a full name (forename is extracted)."""
        self.queries += 1
        forename = forename_of(full_name)
        if forename is None:
            return GenderizeResponse(full_name, None, 0.0, 0)
        resp = self._memo.get(forename)
        if resp is None:
            resp = self._memo[forename] = self._infer(forename)
        return resp

    def _infer(self, forename: str) -> GenderizeResponse:
        entry = self._bank.lookup(forename)
        if entry is None:
            return GenderizeResponse(forename, None, 0.0, 0)
        count = max(1, entry.weight * self.COUNT_SCALE)
        rng = np.random.default_rng(derive_seed(self._seed, "genderize", forename.lower()))
        observed_female = int(rng.binomial(count, entry.female_share))
        p_female = observed_female / count
        if p_female >= 0.5:
            gender: Gender = Gender.F
            prob = p_female
        else:
            gender = Gender.M
            prob = 1.0 - p_female
        return GenderizeResponse(forename, gender, float(prob), int(count))

    def batch(self, names: list[str]) -> list[GenderizeResponse]:
        """Query many names (the real API supports batches of 10).

        Duplicate names in one batch resolve through the same memo, so
        a batch costs one inference per *distinct* forename.
        """
        return [self.query(n) for n in names]
