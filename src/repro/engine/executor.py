"""The engine: fingerprint, schedule, cache, execute.

``run_dag`` walks a :class:`~repro.engine.dag.StageGraph` in
topological generations.  For every node it derives a content-addressed
key — SHA-256 over the node's declared params, its code version, and
the keys of its upstream outputs (seed artifacts contribute their own
digests, e.g. the world fingerprint) — and then either

- **serves the node from cache** (``engine.cache.hits``; the node body
  never runs, its span carries ``cache_hit=True``), or
- **executes it** (``engine.cache.misses``), concurrently with the rest
  of its generation when an :class:`EngineConfig` requests workers —
  via the same deterministic ``parallel_map`` pool the ingest stage
  uses, so results are bit-identical across worker counts — and stores
  the outputs for the next run.

Execution policy (worker counts, directories, refresh) never enters a
key: a serial run and a parallel run address the same cache entries.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any

from repro.engine.cache import ArtifactCache
from repro.engine.dag import StageGraph
from repro.engine.fingerprint import fingerprint
from repro.engine.node import NodeResult, StageNode
from repro.obs.context import current as _obs
from repro.pipeline.config import EngineConfig
from repro.util.parallel import ParallelConfig, parallel_map

__all__ = ["EngineConfig", "EngineRun", "run_dag"]


@dataclass
class EngineRun:
    """Artifacts plus per-node accounting for one DAG execution."""

    artifacts: dict[str, Any] = field(default_factory=dict)
    results: list[NodeResult] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cache_hit)

    @property
    def executed(self) -> int:
        return sum(1 for r in self.results if not r.cache_hit)

    def __getitem__(self, artifact: str) -> Any:
        return self.artifacts[artifact]


def _node_task(task: tuple[StageNode, Any, dict[str, Any]]) -> dict[str, Any]:
    """Execute one node body (module-level: picklable for workers)."""
    node, params, inputs = task
    ctx = _obs()
    ctx.event("stage.start", node.name)
    with ctx.span("engine.node", node=node.name, cache_hit=False):
        outputs = node.fn(params, inputs)
    ctx.event("stage.end", node.name, cache_hit=False)
    missing = set(node.outputs) - set(outputs)
    if missing:
        raise RuntimeError(
            f"node {node.name!r} did not produce declared outputs: {sorted(missing)}"
        )
    return outputs


def run_dag(
    graph: StageGraph,
    params: Any,
    seeds: dict[str, Any] | None = None,
    seed_digests: dict[str, str] | None = None,
    engine: EngineConfig | None = None,
    timer: Any | None = None,
) -> EngineRun:
    """Execute ``graph``, returning every artifact it produced.

    ``seeds`` are caller-injected artifacts (a prebuilt world);
    ``seed_digests`` their content digests, folded into downstream keys.
    ``timer`` is an optional :class:`~repro.util.timing.StageTimer`:
    each node's load-or-execute time is recorded under its name, and
    cache hits are marked so reports don't read load time as work.
    """
    cfg = engine or EngineConfig()
    cache = ArtifactCache(cfg.cache_dir) if cfg.cache_dir is not None else None
    ctx = _obs()

    run = EngineRun(artifacts=dict(seeds or {}))
    digests: dict[str, str] = dict(seed_digests or {})
    for name in run.artifacts:
        digests.setdefault(name, fingerprint("seed", name))

    for generation in graph.generations():
        pending: list[StageNode] = []
        keys: dict[str, str] = {}
        for node in generation:
            key = fingerprint(
                "node",
                node.name,
                node.version,
                node.params,
                [(a, digests[a]) for a in node.inputs],
            )
            keys[node.name] = key
            if (
                cache is not None
                and node.cacheable
                and not cfg.refresh
                and cache.has(node.name, key)
            ):
                with _timed(timer, node.name), ctx.span(
                    "engine.node", node=node.name, cache_hit=True
                ):
                    outputs = cache.load(node.name, key)
                if timer is not None:
                    timer.mark_cached(node.name)
                ctx.metrics.inc("engine.cache.hits")
                ctx.event("cache.hit", node.name, key=key[:16])
                _adopt(run, digests, node, key, outputs, cache_hit=True)
                continue
            if cache is not None and node.cacheable:
                ctx.event("cache.miss", node.name, key=key[:16])
            pending.append(node)

        if not pending:
            continue
        tasks = [
            (node, params, {a: run.artifacts[a] for a in node.inputs})
            for node in pending
        ]
        if cfg.workers and cfg.workers > 1 and len(pending) > 1:
            pool = ParallelConfig(workers=cfg.workers, min_items_per_worker=1)
            label = "+".join(n.name for n in pending)
            with _timed(timer, label):
                produced = parallel_map(_node_task, tasks, pool)
        else:
            produced = []
            for task in tasks:
                with _timed(timer, task[0].name):
                    produced.append(_node_task(task))

        for node, outputs in zip(pending, produced):
            key = keys[node.name]
            ctx.metrics.inc("engine.cache.misses")
            ctx.metrics.inc("engine.nodes_executed")
            if cache is not None and node.cacheable:
                cache.save(node.name, key, outputs)
            _adopt(run, digests, node, key, outputs, cache_hit=False)

    return run


def _timed(timer: Any | None, name: str):
    return timer.stage(name) if timer is not None else nullcontext()


def _adopt(
    run: EngineRun,
    digests: dict[str, str],
    node: StageNode,
    key: str,
    outputs: dict[str, Any],
    cache_hit: bool,
) -> None:
    """Record one node's outputs and derive their artifact digests."""
    for name in node.outputs:
        run.artifacts[name] = outputs[name]
        # content-addressed by construction: the producing node's key
        # already encodes everything upstream, so the artifact digest
        # is (key, output-name) — no need to hash the pickled bytes
        digests[name] = fingerprint("artifact", key, name)
    run.results.append(
        NodeResult(node=node.name, outputs=outputs, cache_hit=cache_hit, key=key)
    )
