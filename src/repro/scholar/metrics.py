"""Author-level citation indices.

Implemented from the definitions (Hirsch 2005 for h; Google Scholar's
docs for i10; Egghe 2006 for g), each as a single vectorized pass over a
sorted citation vector.
"""

from __future__ import annotations

import numpy as np

__all__ = ["h_index", "i10_index", "g_index"]


def _as_counts(citations) -> np.ndarray:
    c = np.asarray(citations, dtype=np.int64)
    if c.ndim != 1:
        raise ValueError("citations must be a 1-D vector of counts")
    if np.any(c < 0):
        raise ValueError("citation counts must be nonnegative")
    return c


def h_index(citations) -> int:
    """Hirsch's h: the largest h such that h papers have ≥ h citations.

    >>> h_index([10, 8, 5, 4, 3])
    4
    """
    c = _as_counts(citations)
    if c.size == 0:
        return 0
    desc = np.sort(c)[::-1]
    ranks = np.arange(1, desc.size + 1)
    ok = desc >= ranks
    return int(ranks[ok][-1]) if ok.any() else 0


def i10_index(citations, threshold: int = 10) -> int:
    """Number of papers with at least ``threshold`` citations (GS's i10)."""
    c = _as_counts(citations)
    return int(np.sum(c >= threshold))


def g_index(citations) -> int:
    """Egghe's g: largest g such that the top g papers together have ≥ g².

    >>> g_index([10, 8, 5, 4, 3])
    5
    """
    c = _as_counts(citations)
    if c.size == 0:
        return 0
    desc = np.sort(c)[::-1]
    cum = np.cumsum(desc)
    ranks = np.arange(1, desc.size + 1)
    ok = cum >= ranks**2
    return int(ranks[ok][-1]) if ok.any() else 0
