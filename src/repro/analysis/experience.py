"""§5.1 / Figs. 3–6 — research experience.

Quantities: GS-profile coverage (69.65% of known-gender researchers),
distributions of past publications (GS and Semantic Scholar) and h-index
by gender × role, the GS↔S2 correlation (r = 0.334), and the Fig. 6
experience bands (novice h<13, mid-career 13–18, experienced >18;
44.8% of female authors vs 36.4% of male authors are novices,
χ² = 7.419, p = 0.00645).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import mask_eq
from repro.pipeline.dataset import AnalysisDataset
from repro.stats.chisquare import Chi2Result, chi2_contingency, chi2_two_proportions
from repro.stats.correlation import CorrelationResult, pearson
from repro.stats.descriptive import Summary, describe

__all__ = ["ExperienceReport", "experience_report", "band_of_h"]


def band_of_h(h: float) -> str:
    """Hirsch's stratification as used in Fig. 6."""
    if np.isnan(h):
        raise ValueError("h is NaN; filter unknown researchers first")
    if h < 13:
        return "novice"
    if h <= 18:
        return "mid-career"
    return "experienced"


@dataclass(frozen=True)
class GroupDistribution:
    """One (role, gender) cell of Figs. 3–5."""

    role: str      # 'author' | 'pc'
    gender: str    # 'F' | 'M'
    gs_pubs: Summary
    gs_h: Summary
    s2_pubs: Summary


@dataclass(frozen=True)
class ExperienceReport:
    """§5.1's quantities."""

    gs_coverage_known_gender: float
    gs_s2_correlation: CorrelationResult
    groups: tuple[GroupDistribution, ...]
    band_shares: dict[tuple[str, str], dict[str, float]]  # (role,gender) -> band -> share
    novice_female_authors: float
    novice_male_authors: float
    novice_test: Chi2Result
    bands_test: Chi2Result      # full 3x2 contingency over author bands


def _series(table, col: str) -> np.ndarray:
    return table[col].astype(np.float64)


def experience_report(ds: AnalysisDataset) -> ExperienceReport:
    """Compute §5.1 over an analysis dataset."""
    r = ds.researchers
    known = r.filter(lambda t: ~t.col("gender").is_missing())
    has_gs = np.array([bool(x) for x in known["has_gs"]], dtype=bool)
    coverage = float(has_gs.mean()) if known.num_rows else float("nan")

    corr = pearson(_series(known, "gs_pubs"), _series(known, "s2_pubs"))

    groups: list[GroupDistribution] = []
    for role, role_mask_col in (("author", "is_author"), ("pc", "is_pc")):
        for gender in ("F", "M"):
            sub = known.filter(
                lambda t: np.array([bool(x) for x in t[role_mask_col]], dtype=bool)
                & mask_eq(t, "gender", gender)
            )
            groups.append(
                GroupDistribution(
                    role=role,
                    gender=gender,
                    gs_pubs=describe(_series(sub, "gs_pubs")),
                    gs_h=describe(_series(sub, "gs_h")),
                    s2_pubs=describe(_series(sub, "s2_pubs")),
                )
            )

    # Fig. 6: bands over researchers with known h
    band_shares: dict[tuple[str, str], dict[str, float]] = {}
    band_counts: dict[tuple[str, str], dict[str, int]] = {}
    for role, role_mask_col in (("author", "is_author"), ("pc", "is_pc")):
        for gender in ("F", "M"):
            sub = known.filter(
                lambda t: np.array([bool(x) for x in t[role_mask_col]], dtype=bool)
                & mask_eq(t, "gender", gender)
            )
            h = _series(sub, "gs_h")
            h = h[~np.isnan(h)]
            counts = {"novice": 0, "mid-career": 0, "experienced": 0}
            for value in h:
                counts[band_of_h(float(value))] += 1
            total = max(1, int(h.size))
            band_counts[(role, gender)] = counts
            band_shares[(role, gender)] = {k: v / total for k, v in counts.items()}

    f_counts = band_counts[("author", "F")]
    m_counts = band_counts[("author", "M")]
    f_total = sum(f_counts.values())
    m_total = sum(m_counts.values())
    novice_test = chi2_two_proportions(
        f_counts["novice"], max(1, f_total), m_counts["novice"], max(1, m_total)
    )
    bands_matrix = np.array(
        [
            [f_counts["novice"], f_counts["mid-career"], f_counts["experienced"]],
            [m_counts["novice"], m_counts["mid-career"], m_counts["experienced"]],
        ]
    )
    bands_test = (
        chi2_contingency(bands_matrix)
        if bands_matrix.sum() > 0 and (bands_matrix.sum(axis=1) > 0).all()
        else Chi2Result(float("nan"), 2, float("nan"), ())
    )

    return ExperienceReport(
        gs_coverage_known_gender=coverage,
        gs_s2_correlation=corr,
        groups=tuple(groups),
        band_shares=band_shares,
        novice_female_authors=(
            f_counts["novice"] / f_total if f_total else float("nan")
        ),
        novice_male_authors=(
            m_counts["novice"] / m_total if m_total else float("nan")
        ),
        novice_test=novice_test,
        bands_test=bands_test,
    )
