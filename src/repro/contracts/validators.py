"""Stage-boundary validators: contracts applied at every hand-off.

The pipeline runner calls one validator per hand-off:

- harvest → link:   :func:`validate_harvest`
- link → enrich:    :func:`validate_linked`
- enrich → dataset: :func:`validate_enrichment`
- infer → dataset:  :func:`validate_assignments`

All of them funnel through :meth:`ContractSession.process`, which
implements the three modes: **strict** raises
:class:`~repro.contracts.schema.ContractViolationError` on the first
violation; **repair** runs the record through its repair heuristic,
re-validates, re-admits on success and withholds (quarantines) on
failure; **audit** records the violation and admits the record
unchanged.  Every decision lands in the session's
:class:`~repro.contracts.quarantine.QuarantineStore`, and the session
tracks the pre-validation baselines the end-of-run integrity audit
balances against.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.contracts.entities import (
    ASSIGNMENT_SCHEMA,
    EDITION_SCHEMA,
    ENRICHMENT_SCHEMA,
    PAPER_SCHEMA,
    RESEARCHER_SCHEMA,
    ROLE_SCHEMA,
)
from repro.contracts.quarantine import Disposition, QuarantineStore
from repro.contracts.repair import (
    repair_assignment,
    repair_edition,
    repair_enrichment,
    repair_paper,
    repair_researcher,
    repair_role,
)
from repro.contracts.schema import (
    ContractViolationError,
    RecordSchema,
    ValidationMode,
    Violation,
)
from repro.gender.model import GenderAssignment
from repro.obs.context import current as _obs

if TYPE_CHECKING:  # pipeline imports stay lazy: contracts ↔ pipeline cycle
    from repro.pipeline.enrich import Enrichment
    from repro.pipeline.link import LinkedData

__all__ = [
    "ContractSession",
    "validate_harvest",
    "validate_linked",
    "validate_enrichment",
    "validate_assignments",
]


@dataclass
class ContractSession:
    """Mode + quarantine store + conservation baselines for one run."""

    mode: ValidationMode = ValidationMode.REPAIR
    store: QuarantineStore = field(default_factory=QuarantineStore)
    # pre-validation tallies, keyed by entity; the integrity audit checks
    # ``admitted + held == baseline`` for each
    baselines: dict[str, int] = field(default_factory=dict)
    # per-edition scraped-paper counts (pre-validation), for the
    # per-conference conservation check
    papers_scraped: dict[str, int] = field(default_factory=dict)
    # editions flagged as scraped-from-corrupted-pages (from the fault layer)
    malformed_editions: tuple[str, ...] = ()

    def count(self, entity: str, n: int = 1) -> None:
        self.baselines[entity] = self.baselines.get(entity, 0) + n

    # ------------------------------------------------------------ the core

    def process(
        self,
        stage: str,
        entity: str,
        key: str,
        record: Any,
        schema: RecordSchema,
        repairer: Callable[[Any], tuple[Any, tuple[str, ...]]] | None = None,
        violations: list[Violation] | None = None,
    ) -> Any | None:
        """Validate one record; return the admitted record or ``None``.

        ``None`` means the record was withheld (quarantined as ``held``)
        and the caller must drop it from the flow — its absence is
        balanced by the integrity audit.  Callers that already validated
        (the hot-path pre-check) pass ``violations`` to avoid doing it
        twice.
        """
        if violations is None:
            violations = schema.validate(record)
        if not violations:
            return record
        obs = _obs()
        metrics = obs.metrics
        metrics.inc("contracts.violations", len(violations))
        obs.event(
            "contract.violation", entity, stage=stage, key=key, n=len(violations)
        )
        if self.mode is ValidationMode.STRICT:
            raise ContractViolationError(stage, entity, key, violations)
        if self.mode is ValidationMode.AUDIT:
            self.store.add(stage, entity, key, Disposition.FLAGGED, violations)
            metrics.inc(f"contracts.flagged.{entity}")
            obs.event("contract.flagged", entity, stage=stage, key=key)
            return record
        # repair mode
        if repairer is not None:
            repaired, tags = repairer(record)
            if tags:
                remaining = schema.validate(repaired)
                if not remaining:
                    self.store.add(
                        stage,
                        entity,
                        key,
                        Disposition.REPAIRED,
                        violations,
                        repairs=tags,
                    )
                    metrics.inc(f"contracts.repaired.{entity}")
                    obs.event(
                        "contract.repaired", entity, stage=stage, key=key,
                        repairs=",".join(sorted(tags)),
                    )
                    return repaired
                violations = remaining
        self.store.add(stage, entity, key, Disposition.HELD, violations)
        metrics.inc(f"contracts.held.{entity}")
        obs.event("contract.held", entity, stage=stage, key=key)
        return None

    def flag(
        self, stage: str, entity: str, key: str, code: str, message: str
    ) -> None:
        """Record an informational violation without affecting the flow."""
        _obs().metrics.inc(f"contracts.flagged.{entity}")
        _obs().event("contract.flagged", entity, stage=stage, key=key, code=code)
        self.store.add(
            stage,
            entity,
            key,
            Disposition.FLAGGED,
            [Violation(contract=entity, code=code, field=None, message=message)],
        )


# ---------------------------------------------------------------- harvest


def validate_harvest(
    conferences: list,
    session: ContractSession,
    malformed: Iterable[str] = (),
) -> list:
    """Apply edition/paper/role contracts at the harvest → link hand-off.

    ``malformed`` names editions the fault layer flagged as scraped from
    corrupted pages.  Strict mode refuses to analyze those at all — the
    fail-fast answer to dirty sources; repair/audit record the flag so
    the integrity audit can exempt their count mismatches.
    """
    session.malformed_editions = tuple(sorted(set(malformed)))
    out = []
    for conf in conferences:
        key = f"{conf.conference}-{conf.year}"
        session.count("edition")
        session.papers_scraped[key] = len(conf.papers)

        if key in session.malformed_editions:
            if session.mode is ValidationMode.STRICT:
                raise ContractViolationError(
                    "harvest",
                    "edition",
                    key,
                    [
                        Violation(
                            contract="edition",
                            code="edition.corrupted-source",
                            field=None,
                            message="edition was scraped from corrupted pages",
                        )
                    ],
                )
            session.flag(
                "harvest",
                "edition",
                key,
                "edition.corrupted-source",
                "edition was scraped from corrupted pages "
                "(count mismatches are expected and exempted by the audit)",
            )

        admitted = session.process(
            "harvest", "edition", key, conf, EDITION_SCHEMA, repair_edition
        )
        if admitted is None:
            continue

        # paper/role baselines cover *admitted* editions only: a held
        # edition withdraws its whole contents in one ledger entry
        session.count("paper", len(admitted.papers))
        session.count("role", len(admitted.roles))

        roles = []
        for i, role in enumerate(admitted.roles):
            violations = ROLE_SCHEMA.validate(role)
            if not violations:  # hot path: no key construction either
                roles.append(role)
                continue
            rk = f"{key}/role{i}:{getattr(role, 'role', '?')}"
            kept = session.process(
                "harvest", "role", rk, role, ROLE_SCHEMA, repair_role,
                violations=violations,
            )
            if kept is not None:
                roles.append(kept)

        papers = []
        for i, paper in enumerate(admitted.papers):
            violations = PAPER_SCHEMA.validate(paper)
            if not violations:
                papers.append(paper)
                continue
            # the quarantine key leads with the edition key so the audit
            # can attribute held papers to their conference
            pk = f"{key}/{getattr(paper, 'paper_id', '') or f'paper{i}'}"
            kept = session.process(
                "harvest", "paper", pk, paper, PAPER_SCHEMA, repair_paper,
                violations=violations,
            )
            if kept is not None:
                papers.append(kept)

        out.append(dataclasses.replace(admitted, roles=roles, papers=papers))
    return out


# ------------------------------------------------------------------- link


def validate_linked(linked: LinkedData, session: ContractSession) -> LinkedData:
    """Apply the researcher contract at the link → enrich hand-off.

    A withheld researcher is removed from the table *and* stripped from
    every paper's author list, so no dangling id survives into the
    dataset stage.
    """
    session.count("researcher", len(linked.researchers))
    researchers = {}
    for rid, rec in linked.researchers.items():
        violations = RESEARCHER_SCHEMA.validate(rec)
        if not violations:
            researchers[rid] = rec
            continue
        kept = session.process(
            "link", "researcher", rid, rec, RESEARCHER_SCHEMA,
            repair_researcher, violations=violations,
        )
        if kept is not None:
            researchers[rid] = kept
    if len(researchers) == len(linked.researchers) and all(
        researchers[rid] is linked.researchers[rid] for rid in researchers
    ):
        return linked

    held = set(linked.researchers) - set(researchers)
    # non-author role seats withheld along with their researcher must be
    # visible to the role-conservation audit
    from repro.confmodel.roles import Role
    from repro.pipeline.link import LinkedData

    lost_roles = sum(
        1
        for rid in held
        for _, _, role in linked.researchers[rid].roles
        if role is not Role.AUTHOR
    )
    if lost_roles:
        session.count("role_held_via_researcher", lost_roles)
    papers = [
        dataclasses.replace(
            p, author_ids=tuple(a for a in p.author_ids if a not in held)
        )
        if any(a in held for a in p.author_ids)
        else p
        for p in linked.papers
    ]
    return LinkedData(
        researchers=researchers,
        papers=papers,
        conferences=linked.conferences,
    )


# ----------------------------------------------------------------- enrich


def validate_enrichment(
    enrichment: dict[str, Enrichment], session: ContractSession
) -> dict[str, Enrichment]:
    """Apply the enrichment contract at the enrich → dataset hand-off.

    A withheld row is simply absent from the dict — the dataset already
    treats a missing enrichment as "no data", the paper's own situation
    for the 31.7% of researchers without a Google Scholar profile.
    """
    session.count("enrichment_row", len(enrichment))
    out = {}
    for rid, e in enrichment.items():
        violations = ENRICHMENT_SCHEMA.validate(e)
        if not violations:
            out[rid] = e
            continue
        kept = session.process(
            "enrich", "enrichment_row", rid, e, ENRICHMENT_SCHEMA,
            repair_enrichment, violations=violations,
        )
        if kept is not None:
            out[rid] = kept
    return out


# ------------------------------------------------------------------ infer


def validate_assignments(
    assignments: dict[str, GenderAssignment], session: ContractSession
) -> dict[str, GenderAssignment]:
    """Apply the assignment contract at the infer → dataset hand-off.

    Unlike other entities, a withheld assignment is substituted with an
    honest *unassigned* rather than removed: every researcher must keep
    an assignment so coverage fractions stay a partition (the paper's
    95.18 / 1.79 / 3.03 split).  The substitution itself is recorded.
    """
    session.count("assignment", len(assignments))
    out = {}
    for rid, a in assignments.items():
        violations = ASSIGNMENT_SCHEMA.validate(a)
        if not violations:
            out[rid] = a
            continue
        kept = session.process(
            "infer", "assignment", rid, a, ASSIGNMENT_SCHEMA,
            repair_assignment, violations=violations,
        )
        if kept is None:
            session.flag(
                "infer",
                "assignment",
                rid,
                "assignment.substituted-unassigned",
                "irreparable assignment replaced by an explicit unassigned",
            )
            kept = GenderAssignment.unassigned()
        out[rid] = kept
    return out
