"""Chaos acceptance: the full pipeline under seeded engine faults.

The robustness bar from the issue, proved end-to-end on the real
seven-node graph at test scale:

- under injected node exceptions the run completes — retries heal the
  faults, the retry accounting lands in ``DegradedCoverage``, and the
  analysis payload is byte-identical to a fault-free run;
- two identical-seed chaos runs produce byte-identical ledger bodies;
- torn cache writes never poison a later run: every damaged entry is
  quarantined and recomputed, and the rerun heals the cache to 100%
  servable;
- a fault rate no retry budget can beat surfaces as
  :class:`~repro.engine.supervise.IncompleteRunError` carrying the full
  failed/skipped accounting, not as a bare ``KeyError``.
"""

import json

import pytest

from repro.engine import ArtifactCache, IncompleteRunError
from repro.faults.chaos import ChaosConfig, ChaosPlan
from repro.obs import ObsContext
from repro.obs.ledger import build_run_record
from repro.pipeline import EngineConfig, RunConfig, run_pipeline
from repro.synth import WorldConfig

from tests.engine.test_engine_run import N_NODES, _dataset_bytes

pytestmark = [pytest.mark.engine, pytest.mark.chaos]

SMALL = WorldConfig(seed=11, scale=0.25)
NODES = ("world", "ingest", "link", "enrich", "infer", "dataset", "finalize")


def _run(cache_dir=None, chaos=None, obs=None):
    cfg = RunConfig(
        world=SMALL,
        engine=EngineConfig(
            cache_dir=None if cache_dir is None else str(cache_dir),
            chaos=chaos,
        ),
        obs=obs,
    )
    return run_pipeline(cfg), cfg


def _healing_chaos(rate=0.3, write_rate=0.0) -> ChaosConfig:
    """A seed that faults at least one pipeline node but lets every
    node succeed within the default 3-attempt budget."""
    for seed in range(3000):
        cfg = ChaosConfig(
            rate=rate, seed=seed, write_rate=write_rate, node_weights=(1.0, 0.0)
        )
        plan = ChaosPlan(cfg)
        draws = {n: [plan.draw_node(n, a) for a in (1, 2, 3)] for n in NODES}
        faulted = any(d[0] is not None for d in draws.values())
        all_heal = all(any(x is None for x in d) for d in draws.values())
        if faulted and all_heal:
            return cfg
    raise AssertionError("no healing chaos seed found")


@pytest.fixture(scope="module")
def baseline_bytes():
    result, _ = _run()
    return _dataset_bytes(result)


class TestChaosRunCompletes:
    def test_retries_heal_and_payload_matches_faultfree(self, baseline_bytes):
        result, _ = _run(chaos=_healing_chaos())
        assert _dataset_bytes(result) == baseline_bytes
        # the healed faults are accounted, not hidden
        assert result.degraded is not None
        assert result.degraded.node_retries >= 1
        assert result.degraded.virtual_time > 0.0
        # retries alone are not degradation: nothing was lost
        assert not result.degraded.is_degraded
        assert result.degraded.failed_nodes == ()
        assert "node retries" in result.degraded.summary()

    def test_ledger_bodies_byte_identical_across_identical_seeds(self, tmp_path):
        chaos = _healing_chaos(write_rate=1.0)
        bodies = []
        for name in ("one", "two"):
            obs = ObsContext(seed=5)
            result, cfg = _run(tmp_path / name, chaos=chaos, obs=obs)
            record = build_run_record(result, cfg)
            bodies.append(
                json.dumps(record.body, sort_keys=True, separators=(",", ":"))
            )
        assert bodies[0] == bodies[1]
        # chaos left fingerprints in the body: injected faults + retries
        body = json.loads(bodies[0])
        assert body["events"].get("fault.injected", 0) >= 1
        assert body["faults"]["node_retries"] >= 1


class TestTornWritesHeal:
    def test_corrupted_cache_quarantines_recomputes_heals(
        self, tmp_path, baseline_bytes
    ):
        cache_dir = tmp_path / "cache"
        # run 1: every cache write is torn/bit-flipped after the save —
        # this run already holds its outputs, so it completes cleanly
        torn = ChaosConfig(rate=0.0, write_rate=1.0, seed=2)
        poisoned, _ = _run(cache_dir, chaos=torn)
        assert _dataset_bytes(poisoned) == baseline_bytes

        # run 2: every load hits a damaged entry — quarantined as a
        # miss, recomputed, stored back clean
        obs = ObsContext(seed=6)
        healed, _ = _run(cache_dir, obs=obs)
        assert _dataset_bytes(healed) == baseline_bytes
        c = obs.metrics.counters
        assert c.get("engine.cache.hits", 0) == 0
        assert c.get("engine.cache.quarantined", 0) == N_NODES
        assert c.get("engine.nodes_executed", 0) == N_NODES

        # run 3: fully warm — the cache healed to 100% servable
        warm_obs = ObsContext(seed=7)
        warm, _ = _run(cache_dir, obs=warm_obs)
        assert _dataset_bytes(warm) == baseline_bytes
        assert warm_obs.metrics.counters.get("engine.cache.hits", 0) == N_NODES

        cache = ArtifactCache(cache_dir)
        assert len(cache.quarantined()) == N_NODES
        report = cache.verify()
        assert report["ok"] == report["checked"] == N_NODES


class TestUnhealableChaos:
    def test_incomplete_run_carries_accounting(self):
        fatal = ChaosConfig(rate=1.0, seed=1, node_weights=(1.0, 0.0))
        with pytest.raises(IncompleteRunError) as exc:
            _run(chaos=fatal)
        err = exc.value
        # the root node exhausted its budget; everything downstream was
        # isolated, not crashed into
        assert "world" in err.failed
        assert set(err.skipped) == set(NODES) - {"world"}
        assert err.missing
        assert "world" in str(err)
