"""Tests for the gender model types."""

import math

import pytest

from repro.gender.model import Gender, GenderAssignment, InferenceMethod


class TestGender:
    def test_known(self):
        assert Gender.F.known and Gender.M.known
        assert not Gender.UNKNOWN.known

    def test_values_roundtrip(self):
        assert Gender("F") is Gender.F
        assert Gender("U") is Gender.UNKNOWN

    def test_string_enum(self):
        assert Gender.F == "F"  # str enum: usable as a plain string


class TestAssignment:
    def test_unassigned_factory(self):
        a = GenderAssignment.unassigned()
        assert not a.known
        assert a.method is InferenceMethod.NONE
        assert math.isnan(a.confidence)

    def test_known_assignment(self):
        a = GenderAssignment(Gender.F, InferenceMethod.MANUAL, 1.0)
        assert a.known
        assert a.gender is Gender.F

    def test_frozen(self):
        a = GenderAssignment.unassigned()
        with pytest.raises(AttributeError):
            a.gender = Gender.F

    def test_method_values(self):
        assert InferenceMethod.GENDERIZE.value == "genderize"
        assert InferenceMethod.SENSITIVITY.value == "sensitivity"
