"""Split-apply-combine for :class:`repro.tabular.table.Table`."""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.obs.context import current as _obs
from repro.tabular.codes import MISSING, combine_codes, factorize, group_index
from repro.tabular.table import Table

__all__ = ["GroupBy"]


def _canonical(value: Any) -> Any:
    """Map any NaN float to the canonical missing-key singleton."""
    if isinstance(value, (float, np.floating)) and math.isnan(value):
        return MISSING
    return value


class GroupBy:
    """Grouping of a table by one or more key columns.

    Group order is first-appearance order of each key tuple, which keeps
    reports deterministic without a separate sort.  Missing keys (NaN in
    a float column, ``None`` in a string column) form a *single* group
    per the missing-key contract (METHODOLOGY §15); its position is its
    first appearance, like any other key.
    """

    def __init__(self, table: Table, keys: Sequence[str]) -> None:
        if not keys:
            raise ValueError("groupby requires at least one key column")
        self._table = table
        self._keys = tuple(keys)
        self._index = self._build_index()

    def _build_index(self) -> dict[tuple, np.ndarray]:
        cols = [self._table.col(k) for k in self._keys]
        index: dict[tuple, np.ndarray] = {}
        if self._table.num_rows:
            facts = [factorize(c) for c in cols]
            codes, span = combine_codes(facts)
            reps, groups = group_index(codes, span)
            for rep, rows in zip(reps, groups):
                key = tuple(f.key_at(rep) for f in facts)
                index[key] = rows
        m = _obs().metrics
        if m.enabled:
            m.inc("tabular.groupby.calls")
            m.inc("tabular.groupby.groups", len(index))
            m.inc("tabular.groupby.rows_in", self._table.num_rows)
        return index

    @property
    def keys(self) -> tuple[str, ...]:
        return self._keys

    def groups(self) -> dict[tuple, Table]:
        """Materialize each group as a sub-table."""
        return {k: self._table.take(idx) for k, idx in self._index.items()}

    def group(self, *key: Any) -> Table:
        """The sub-table for one key tuple (raises KeyError if absent).

        NaN components are canonicalized, so ``group(float("nan"))``
        finds the missing group regardless of which NaN object the
        caller passes.
        """
        k = tuple(_canonical(v) for v in key)
        if k not in self._index:
            raise KeyError(f"no group {k!r}")
        return self._table.take(self._index[k])

    def size(self) -> Table:
        """Table of group sizes with one row per group."""
        rows = []
        for k, idx in self._index.items():
            row = dict(zip(self._keys, k))
            row["count"] = int(idx.size)
            rows.append(row)
        return Table.from_records(rows, columns=list(self._keys) + ["count"])

    def agg(self, **aggregations: Callable[[Table], Any]) -> Table:
        """Apply named aggregation functions to each group.

        Each aggregation receives the group's sub-table and returns a
        scalar::

            t.groupby("conference").agg(
                far=lambda g: far_of(g),
                n=lambda g: g.num_rows,
            )

        The helpers in :mod:`repro.tabular.agg` declare which columns
        they read (a ``columns`` attribute on the callable); when every
        aggregation declares its columns, the per-group sub-tables are
        pruned to exactly those columns, which keeps the hot analysis
        loops from materializing untouched columns group by group.
        """
        source = self._agg_source(aggregations.values())
        rows = []
        for k, idx in self._index.items():
            sub = source.take(idx)
            row = dict(zip(self._keys, k))
            for name, fn in aggregations.items():
                row[name] = fn(sub)
            rows.append(row)
        return Table.from_records(
            rows, columns=list(self._keys) + list(aggregations.keys())
        )

    def _agg_source(self, fns) -> Table:
        """The table sub-groups are cut from: column-pruned when possible."""
        needed: set[str] = set()
        for fn in fns:
            cols = getattr(fn, "columns", None)
            if cols is None:
                return self._table
            needed.update(cols)
        keep = [c for c in self._table.columns if c in needed]
        if not keep:
            # zero-column tables lose their row count; keep one column
            # so ``count()``-style aggregations still see group sizes
            keep = self._table.columns[:1]
        return self._table.select(keep)

    def apply(self, fn: Callable[[tuple, Table], Mapping[str, Any]]) -> Table:
        """Apply ``fn(key, subtable) -> row dict`` to each group."""
        rows = []
        for k, idx in self._index.items():
            sub = self._table.take(idx)
            rows.append(dict(fn(k, sub)))
        return Table.from_records(rows)

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self):
        for k, idx in self._index.items():
            yield k, self._table.take(idx)
