"""Citation accrual over the 36 months after publication.

Fig. 2 plots paper citations exactly 36 months post-publication.  We
model accrual as a nonhomogeneous Poisson process whose monthly rate
ramps up over the first year and then decays slowly — the standard
empirical shape for CS conference papers.  Each paper carries a latent
attractiveness λ (drawn by the world generator from a calibrated
lognormal, with one deliberate >450-citation outlier); this module turns
λ into a month-by-month citation history, so any horizon (12, 24, 36
months) can be queried.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CitationAccrual", "accrue_citations", "monthly_shape"]


def monthly_shape(months: int = 36, normalize_months: int | None = None) -> np.ndarray:
    """Relative citation intensity per month since publication.

    Ramps linearly to a peak at month 12, then decays geometrically at
    2%/month.  Normalized so the first ``normalize_months`` entries sum
    to 1 (default: all of them) — with ``months=48,
    normalize_months=36`` a paper's λ is its expected *36-month* total
    while the history still extends to 4 years.
    """
    if months < 1:
        raise ValueError("months must be >= 1")
    norm = months if normalize_months is None else int(normalize_months)
    if not 1 <= norm <= months:
        raise ValueError("normalize_months must be in [1, months]")
    m = np.arange(1, months + 1, dtype=np.float64)
    ramp = np.minimum(m / 12.0, 1.0)
    decay = np.where(m > 12, 0.98 ** (m - 12), 1.0)
    shape = ramp * decay
    return shape / shape[:norm].sum()


@dataclass(frozen=True)
class CitationAccrual:
    """A paper's citation history.

    ``monthly`` holds citations earned in each month (length = horizon).
    """

    monthly: np.ndarray

    def total_at(self, month: int) -> int:
        """Cumulative citations ``month`` months after publication."""
        if month < 0:
            raise ValueError("month must be >= 0")
        m = min(month, self.monthly.size)
        return int(self.monthly[:m].sum())

    @property
    def total(self) -> int:
        return int(self.monthly.sum())


def accrue_citations(
    attractiveness: np.ndarray,
    rng: np.random.Generator,
    months: int = 36,
    normalize_months: int | None = None,
) -> list[CitationAccrual]:
    """Draw citation histories for papers with the given λ values.

    ``attractiveness`` is the expected citation total over the first
    ``normalize_months`` months (default: the full horizon); monthly
    counts are Poisson with the shared :func:`monthly_shape` profile.
    Vectorized: one (P, M) Poisson draw.
    """
    lam = np.asarray(attractiveness, dtype=np.float64)
    if np.any(lam < 0):
        raise ValueError("attractiveness must be nonnegative")
    shape = monthly_shape(months, normalize_months)
    rates = lam[:, None] * shape[None, :]
    draws = rng.poisson(rates)
    return [CitationAccrual(monthly=draws[i]) for i in range(lam.size)]
