"""Simulated Semantic Scholar author records.

The paper uses Semantic Scholar as a second, fully covering source of
past-publication counts (Fig. 5), noting that GS and S2 "use different
data and algorithms for questions such as name disambiguation, resulting
in low correlation (r = 0.334)".  The store therefore holds counts that
share only the rank structure of the truth: the world generator writes
them with heavy multiplicative noise plus occasional disambiguation
mix-ups (merging two researchers' records), which is what actually drives
the correlation down in the real services.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["S2Record", "SemanticScholarStore"]


@dataclass(frozen=True)
class S2Record:
    """A Semantic Scholar author record (past publications ca. 2017)."""

    author_id: str
    display_name: str
    publications: int


class SemanticScholarStore:
    """Registry of S2 records keyed by the pipeline's person id.

    Unlike GS, coverage is total: every author present in the proceedings
    has a record (matching the paper's "100% author coverage").
    """

    def __init__(self) -> None:
        self._records: dict[str, S2Record] = {}
        self._by_name: dict[str, list[str]] = {}

    def put(self, person_id: str, record: S2Record) -> None:
        from repro.names.parsing import name_key

        if person_id not in self._records:
            self._by_name.setdefault(name_key(record.display_name), []).append(person_id)
        self._records[person_id] = record

    def search_name(self, full_name: str) -> list[S2Record]:
        """All records matching a display name (S2's author search)."""
        from repro.names.parsing import cached_name_key

        ids = self._by_name.get(cached_name_key(full_name), [])
        return [self._records[i] for i in ids]

    def get(self, person_id: str) -> S2Record | None:
        return self._records.get(person_id)

    def publications_of(self, person_id: str) -> int | None:
        rec = self._records.get(person_id)
        return rec.publications if rec else None

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, person_id: str) -> bool:
        return person_id in self._records
