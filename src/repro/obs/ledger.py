"""The persistent run ledger: every run leaves a comparable record.

PR 3 gave a run telemetry (spans, metrics), PR 4 gave it an execution
engine with a cache — but both write their evidence once and throw it
away with the process.  Nothing compared run *N* to run *N−1*, so a
perf regression, a cache-discipline break, or a silent drift in a
headline statistic (the overall FAR, the SC/ISC trend) went unnoticed.

The ledger fixes that.  It is an **append-only JSONL file**
(``<obs-dir>/ledger/runs.jsonl``) where each line is one
:class:`RunRecord` with a strict determinism split:

- ``body`` — everything reproducible: the run-config fingerprint,
  per-stage execution facts (counts, cached/resumed flags), engine
  cache hit/miss counters, the metrics-registry snapshot digest,
  fault/contract/quarantine counters, the unified event-log type
  counts, and — the scientific payload — a flat map of **headline
  cells** (FAR overall/lead/last, per-conference ratios, the
  double-blind χ² contrasts, PC shares) plus SHA-256 digests over
  them.  Two identical-seed runs produce byte-identical bodies.
- ``timing`` — wall-clock stage durations and the record's wall time,
  quarantined exactly like ``metrics.json``'s ``"timing"`` section:
  present for the sentinel's noise-band analysis, excluded from the
  record digest.

``digest`` is SHA-256 over the canonical JSON encoding of ``body``, so
"did anything scientific change?" is one string comparison and "what
changed?" is a cell-level dict diff (:mod:`repro.obs.sentinel`).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.events import EventLog, write_events

__all__ = [
    "LEDGER_SCHEMA",
    "RunRecord",
    "RunLedger",
    "body_digest",
    "scientific_cells",
    "build_run_record",
    "build_service_record",
]

# bump on incompatible record-shape change; old ledgers are still
# readable (records carry their schema) but never compared across schemas
LEDGER_SCHEMA = 1


def body_digest(body: dict) -> str:
    """SHA-256 over the canonical JSON encoding of a record body.

    The body is plain JSON data by construction, so canonical form is
    simply sorted keys + compact separators — no object registry needed.
    """
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunRecord:
    """One ledger line: deterministic body, quarantined timing, digest."""

    body: dict
    timing: dict = field(default_factory=dict)
    run_id: str = ""
    digest: str = ""
    schema: int = LEDGER_SCHEMA

    def with_identity(self, run_id: str) -> "RunRecord":
        return RunRecord(
            body=self.body,
            timing=self.timing,
            run_id=run_id,
            digest=self.digest or body_digest(self.body),
            schema=self.schema,
        )

    # ------------------------------------------------------------ accessors

    @property
    def meta(self) -> dict:
        return self.body.get("meta", {})

    @property
    def scientific(self) -> dict:
        return self.body.get("scientific", {})

    @property
    def stage_seconds(self) -> dict[str, float]:
        return dict(self.timing.get("stages", {}))

    @property
    def config_fingerprint(self) -> str | None:
        return self.body.get("config_fingerprint")

    # ------------------------------------------------------------ round-trip

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "digest": self.digest or body_digest(self.body),
            "body": self.body,
            "timing": self.timing,
        }

    def to_json_line(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, d: dict) -> "RunRecord":
        return cls(
            body=d.get("body", {}),
            timing=d.get("timing", {}),
            run_id=d.get("run_id", ""),
            digest=d.get("digest", ""),
            schema=d.get("schema", LEDGER_SCHEMA),
        )


class RunLedger:
    """Append-only JSONL store of :class:`RunRecord`\\ s under one root.

    Layout::

        <root>/runs.jsonl              # one record per line, append-only
        <root>/<run_id>.events.jsonl   # the run's full event stream

    Appends are atomic at line granularity (single ``write`` of one
    ``\\n``-terminated line, fsynced), so a crashed writer can at worst
    lose its own line; :meth:`records` skips any torn tail line rather
    than refusing the whole ledger.
    """

    LEDGER_FILE = "runs.jsonl"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @property
    def path(self) -> Path:
        return self.root / self.LEDGER_FILE

    # -------------------------------------------------------------- writing

    def append(self, record: RunRecord, events: EventLog | None = None) -> RunRecord:
        """Assign a run id, append the record, return the identified record."""
        self.root.mkdir(parents=True, exist_ok=True)
        n = len(self.records())
        digest = record.digest or body_digest(record.body)
        identified = record.with_identity(f"run-{n + 1:04d}-{digest[:10]}")
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(identified.to_json_line() + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if events is not None and events.enabled and len(events):
            write_events(events, self.events_path(identified.run_id))
        return identified

    def events_path(self, run_id: str) -> Path:
        return self.root / f"{run_id}.events.jsonl"

    # -------------------------------------------------------------- reading

    def records(self) -> list[RunRecord]:
        """Every well-formed record, in append order."""
        if not self.path.exists():
            return []
        out: list[RunRecord] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                out.append(RunRecord.from_dict(json.loads(line)))
            except (json.JSONDecodeError, TypeError):
                continue  # torn tail line from a crashed writer
        return out

    def get(self, run_id: str) -> RunRecord:
        """Look up one record by exact id or unambiguous prefix."""
        records = self.records()
        exact = [r for r in records if r.run_id == run_id]
        if exact:
            return exact[-1]
        prefixed = [r for r in records if r.run_id.startswith(run_id)]
        if len(prefixed) == 1:
            return prefixed[0]
        if prefixed:
            raise KeyError(f"run id prefix {run_id!r} is ambiguous")
        raise KeyError(f"no run {run_id!r} in {self.path}")

    def latest(self) -> RunRecord | None:
        records = self.records()
        return records[-1] if records else None


# --------------------------------------------------------------- assembly


def scientific_cells(result: Any) -> dict[str, Any]:
    """The headline scientific outputs of a run as one flat cell map.

    Keys are stable dotted paths (``far.SC.authors``,
    ``blind.authors.chi2``); values are rendered proportions or plain
    floats.  The map — not just its digest — is stored in the ledger, so
    a digest change can be drilled down to the first differing cell
    without re-running anything.
    """
    # analysis imports are lazy: repro.obs must stay importable without
    # dragging in the analysis stack (and without import cycles)
    from repro.analysis.blind import blind_report
    from repro.analysis.far import far_report
    from repro.analysis.pc import pc_report

    ds = result.dataset
    far = far_report(ds)
    blind = blind_report(ds)
    pc = pc_report(ds)

    cells: dict[str, Any] = {
        "far.overall": str(far.overall),
        "far.lead": str(far.lead_overall),
        "far.last": str(far.last_overall),
        "far.last_vs_all.chi2": far.last_vs_all.statistic,
        "far.last_vs_all.p": far.last_vs_all.p_value,
        "blind.authors.double": str(blind.authors_double),
        "blind.authors.single": str(blind.authors_single),
        "blind.authors.chi2": blind.authors_test.statistic,
        "blind.authors.p": blind.authors_test.p_value,
        "blind.lead.double": str(blind.lead_double),
        "blind.lead.single": str(blind.lead_single),
        "blind.lead.chi2": blind.lead_test.statistic,
        "blind.lead.p": blind.lead_test.p_value,
        "pc.memberships": str(pc.memberships),
        "pc.excluding_sc": str(pc.excluding_sc),
        "pc.chairs": str(pc.chairs),
        "pc.vs_authors.chi2": pc.pc_vs_authors.statistic,
        "pc.vs_authors.p": pc.pc_vs_authors.p_value,
        "pc.zero_women_chairs": ",".join(pc.zero_women_chair_confs),
    }
    for conf in far.by_conference:
        cells[f"far.{conf.conference}.authors"] = str(conf.authors)
        cells[f"far.{conf.conference}.lead"] = str(conf.lead)
        cells[f"far.{conf.conference}.last"] = str(conf.last)
    for name in sorted(pc.by_conference):
        cells[f"pc.{name}"] = str(pc.by_conference[name])
    return cells


def build_run_record(
    result: Any,
    config: Any | None = None,
    command: str = "api",
    extra_meta: dict | None = None,
) -> RunRecord:
    """Assemble the ledger record for one finished pipeline run.

    ``result`` is a :class:`~repro.pipeline.runner.PipelineResult`;
    ``config`` the :class:`~repro.pipeline.config.RunConfig` it ran
    under (``None`` for prebuilt-world API calls — the world's own seed
    and scale still land in ``meta``).  Works with or without an
    observability context: without one the metrics/event sections are
    empty, the stage and scientific sections are always populated.
    """
    from repro.version import __version__

    timer = result.timer
    obs = getattr(result, "obs", None)
    metrics = obs.metrics if obs is not None and obs.enabled else None
    events = obs.events if obs is not None and obs.enabled else None

    stages = {
        name: {
            "count": timer.counts.get(name, 0),
            "cached": name in timer.cached,
            "resumed": name in timer.resumed,
        }
        for name in sorted(timer.durations)
    }

    counters: dict[str, int] = {}
    metrics_digest = ""
    if metrics is not None:
        snap = metrics.to_dict(exclude_timings=True)
        counters = snap["counters"]
        metrics_digest = body_digest(snap)

    meta: dict[str, Any] = {
        "version": __version__,
        "command": command,
        "seed": result.world.seed,
        "scale": result.world.config.scale,
        "engine": bool(config is not None and config.engine is not None),
    }
    if config is not None:
        mode = config.validation_mode()
        meta["validation"] = mode.value if mode is not None else None
    if extra_meta:
        meta.update(extra_meta)

    body: dict[str, Any] = {
        "schema": LEDGER_SCHEMA,
        "meta": {k: meta[k] for k in sorted(meta)},
        "config_fingerprint": (
            config.fingerprint() if config is not None else None
        ),
        "stages": stages,
        "cache": {
            "hits": counters.get("engine.cache.hits", 0),
            "misses": counters.get("engine.cache.misses", 0),
        },
        "counters": counters,
        "events": events.counts() if events is not None else {},
        "faults": _fault_section(result.degraded),
        "contracts": _contract_section(result.contracts),
    }
    cells = scientific_cells(result)
    body["scientific"] = {k: cells[k] for k in sorted(cells)}
    body["digests"] = {
        "scientific": body_digest(body["scientific"]),
        "metrics": metrics_digest,
    }

    timing = {
        "stages": {k: round(v, 6) for k, v in sorted(timer.durations.items())},
        "total": round(timer.total(), 6),
        "unix_time": round(time.time(), 3),
    }
    record = RunRecord(body=body, timing=timing)
    return RunRecord(
        body=record.body, timing=record.timing, digest=body_digest(record.body)
    )


def build_service_record(
    meta: dict,
    service: dict,
    timing: dict | None = None,
) -> RunRecord:
    """Assemble a ledger record for one *service session* (``repro serve``).

    A serve session is not a pipeline run — it has no scientific cells
    of its own (each query's cells are the engine's, already keyed by
    config fingerprint) — but it leaves the same determinism-split
    record: ``body`` carries the session metadata and the request
    counters (requests, shed, coalesced, 304s, deadline timeouts,
    breaker rejections …), all reproducible for a given request
    sequence; ``timing`` carries wall-clock facts only.
    """
    body = {
        "schema": LEDGER_SCHEMA,
        "meta": {k: meta[k] for k in sorted(meta)},
        "config_fingerprint": None,
        "service": {k: service[k] for k in sorted(service)},
    }
    return RunRecord(
        body=body,
        timing=dict(timing or {}),
        digest=body_digest(body),
    )


def _fault_section(degraded: Any | None) -> dict:
    if degraded is None:
        return {}
    return {
        "total_editions": degraded.total_editions,
        "harvested_editions": degraded.harvested_editions,
        "losses": len(degraded.losses),
        "retries": degraded.retries,
        "exhausted": degraded.exhausted,
        "breaker_opens": degraded.breaker_opens,
        # supervised-engine accounting; empty/zero on unsupervised runs
        "failed_nodes": sorted(getattr(degraded, "failed_nodes", ())),
        "skipped_nodes": sorted(getattr(degraded, "skipped_nodes", ())),
        "node_retries": getattr(degraded, "node_retries", 0),
    }


def _contract_section(contracts: Any | None) -> dict:
    if contracts is None:
        return {}
    quarantined = 0
    for dispositions in contracts.quarantine.counts().values():
        quarantined += sum(dispositions.values())
    return {
        "mode": contracts.mode,
        "audit_ok": contracts.ok,
        "audit_checks": len(contracts.audit.checks),
        "audit_failures": len(contracts.audit.failures),
        "quarantined": quarantined,
    }
