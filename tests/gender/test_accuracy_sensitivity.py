"""Tests for inference evaluation and the sensitivity reassignment."""

import numpy as np
import pytest

from repro.gender import (
    GenderizeClient,
    GenderResolver,
    ResolverPolicy,
    evaluate_inference,
    reassign_unknowns,
)
from repro.gender.model import Gender, GenderAssignment, InferenceMethod
from repro.gender.webevidence import EvidenceKind, WebEvidenceSource
from repro.names import default_bank


def _assign(g, m=InferenceMethod.MANUAL, c=1.0):
    return GenderAssignment(g, m, c)


class TestEvaluate:
    def test_perfect(self):
        truth = {"a": Gender.F, "b": Gender.M}
        assignments = {"a": _assign(Gender.F), "b": _assign(Gender.M)}
        rep = evaluate_inference(assignments, truth)
        assert rep.coverage == 1.0
        assert rep.accuracy == 1.0
        assert rep.error_asymmetry() == 0.0

    def test_partial_coverage(self):
        truth = {"a": Gender.F, "b": Gender.M}
        assignments = {"a": GenderAssignment.unassigned(), "b": _assign(Gender.M)}
        rep = evaluate_inference(assignments, truth)
        assert rep.coverage == 0.5
        assert rep.coverage_women == 0.0 and rep.coverage_men == 1.0

    def test_asymmetry_detected(self):
        truth = {f"w{i}": Gender.F for i in range(10)}
        truth.update({f"m{i}": Gender.M for i in range(10)})
        assignments = {}
        for pid, g in truth.items():
            # women misassigned half the time, men never
            if g is Gender.F and int(pid[1]) % 2 == 0:
                assignments[pid] = _assign(Gender.M)
            else:
                assignments[pid] = _assign(g)
        rep = evaluate_inference(assignments, truth)
        assert rep.error_asymmetry() > 0.3

    def test_genderize_less_accurate_for_women_than_manual(self):
        """The paper's §2 claim, measured on the synthetic name universe."""
        bank = default_bank()
        rng = np.random.default_rng(42)
        truth = {}
        names = {}
        for i in range(400):
            g = Gender.F if i % 4 == 0 else Gender.M  # 25% women
            cluster = "east_asian" if i % 2 else "western"
            truth[f"p{i}"] = g
            names[f"p{i}"] = f"{bank.sample_forename(g.value, cluster, rng)} X"
        # genderize-only resolver
        web = WebEvidenceSource({}, truth)
        r = GenderResolver(
            web, GenderizeClient(0), ResolverPolicy(use_manual=False)
        )
        auto = {pid: r.resolve(pid, names[pid]) for pid in truth}
        auto_rep = evaluate_inference(auto, truth)
        # manual resolver with full evidence
        web_full = WebEvidenceSource(
            {pid: EvidenceKind.PRONOUN for pid in truth}, truth
        )
        r2 = GenderResolver(web_full, GenderizeClient(0))
        manual = {pid: r2.resolve(pid, names[pid]) for pid in truth}
        manual_rep = evaluate_inference(manual, truth)
        assert manual_rep.coverage > auto_rep.coverage
        assert manual_rep.accuracy_women >= auto_rep.accuracy_women
        # automated inference is worse for women than for men
        assert auto_rep.accuracy_women < auto_rep.accuracy_men


class TestSensitivity:
    def test_flips_only_unknowns(self):
        assignments = {
            "a": _assign(Gender.F),
            "b": GenderAssignment.unassigned(),
        }
        out = reassign_unknowns(assignments, Gender.M)
        assert out["a"].gender is Gender.F
        assert out["b"].gender is Gender.M
        assert out["b"].method is InferenceMethod.SENSITIVITY

    def test_rejects_unknown_target(self):
        with pytest.raises(ValueError):
            reassign_unknowns({}, Gender.UNKNOWN)

    def test_original_untouched(self):
        assignments = {"b": GenderAssignment.unassigned()}
        reassign_unknowns(assignments, Gender.F)
        assert assignments["b"].gender is Gender.UNKNOWN
