"""Stage nodes: the unit of scheduling, fingerprinting, and caching.

A :class:`StageNode` declares what a pipeline stage *is* — its named
inputs and outputs, the module-level function that computes it, the
parameters that affect its result, and a code version — so the engine
can order stages by data dependency, run independent ones concurrently,
and key their artifacts content-addressably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = ["StageNode", "NodeResult"]


@dataclass(frozen=True)
class StageNode:
    """One declared pipeline stage.

    Attributes
    ----------
    name:
        Unique node name; also the default artifact name.
    fn:
        Module-level callable ``fn(params, inputs) -> dict[str, Any]``
        mapping output names to artifact values.  Must be picklable so
        independent nodes can run in ``parallel_map`` workers.
    inputs:
        Artifact names this node consumes (outputs of upstream nodes, or
        seed artifacts injected into the run).
    outputs:
        Artifact names this node produces; defaults to ``(name,)``.
    params:
        Result-affecting parameters, folded into the node fingerprint.
        Execution policy (worker counts, directories) must not go here.
    version:
        Code version of the stage body; bump on behavioral change to
        invalidate old cache entries.
    cacheable:
        Whether the node's outputs may be served from / stored to the
        artifact cache.
    """

    name: str
    fn: Callable[[Mapping[str, Any], Mapping[str, Any]], dict[str, Any]]
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    params: tuple[tuple[str, Any], ...] = ()
    version: str = "1"
    cacheable: bool = True

    def __post_init__(self) -> None:
        if not self.outputs:
            object.__setattr__(self, "outputs", (self.name,))
        if len(set(self.outputs)) != len(self.outputs):
            raise ValueError(f"node {self.name!r} declares duplicate outputs")

    @property
    def param_dict(self) -> dict[str, Any]:
        return dict(self.params)

    @staticmethod
    def freeze_params(params: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
        """Sort a params mapping into the hashable tuple form."""
        return tuple(sorted(params.items()))


@dataclass
class NodeResult:
    """What executing (or cache-loading) one node produced.

    ``status`` is ``"ok"`` (ran or cache-served), ``"failed"`` (a
    supervised node exhausted its attempts) or ``"skipped"`` (an
    upstream failure blocked it); ``attempts`` counts executions
    including retries (always 1 on the unsupervised path).
    """

    node: str
    outputs: dict[str, Any] = field(default_factory=dict)
    cache_hit: bool = False
    key: str = ""
    status: str = "ok"
    attempts: int = 1
