"""Evaluation of inference methods against ground truth.

The paper argues its manual approach "provided more gender data and
higher accuracy than automated approaches based on forename and country,
especially for women" (§2).  Because the synthetic world knows every
researcher's true gender, we can measure that claim directly: run any
assignment method over a population and score coverage, accuracy, and the
per-gender error asymmetry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gender.model import Gender, GenderAssignment

__all__ = ["AccuracyReport", "evaluate_inference"]


@dataclass(frozen=True)
class AccuracyReport:
    """Coverage/accuracy of a gender-assignment run.

    ``accuracy_women``/``accuracy_men`` are computed over researchers of
    that true gender who received *some* assignment, exposing the
    asymmetry automated methods exhibit.
    """

    n: int
    coverage: float          # fraction assigned (non-UNKNOWN)
    accuracy: float          # correct / assigned
    accuracy_women: float
    accuracy_men: float
    coverage_women: float
    coverage_men: float

    def error_asymmetry(self) -> float:
        """Men-minus-women accuracy gap (positive = worse for women)."""
        return self.accuracy_men - self.accuracy_women


def evaluate_inference(
    assignments: dict[str, GenderAssignment],
    truth: dict[str, Gender],
) -> AccuracyReport:
    """Score assignments against true genders.

    Researchers whose truth is UNKNOWN are skipped (nothing to score).
    """
    n = 0
    assigned = correct = 0
    counts = {Gender.F: [0, 0, 0], Gender.M: [0, 0, 0]}  # total, assigned, correct
    for pid, true_g in truth.items():
        if true_g is Gender.UNKNOWN:
            continue
        n += 1
        counts[true_g][0] += 1
        a = assignments.get(pid)
        if a is None or not a.known:
            continue
        assigned += 1
        counts[true_g][1] += 1
        if a.gender is true_g:
            correct += 1
            counts[true_g][2] += 1

    def safe(num: int, den: int) -> float:
        return num / den if den else float("nan")

    fw = counts[Gender.F]
    mw = counts[Gender.M]
    return AccuracyReport(
        n=n,
        coverage=safe(assigned, n),
        accuracy=safe(correct, assigned),
        accuracy_women=safe(fw[2], fw[1]),
        accuracy_men=safe(mw[2], mw[1]),
        coverage_women=safe(fw[1], fw[0]),
        coverage_men=safe(mw[1], mw[0]),
    )
