"""Sharded streaming pipeline: plan API, determinism, cache granularity.

The scientific claims this suite pins:

- a :class:`ShardPlan` is a stable, ordered partition of the universe —
  same config ⇒ same keys in the same (year, conference) order;
- the merged dataset's ledger body is byte-identical for any
  ``shard_workers`` count (parallelism is execution policy, not science);
- editing one edition's targets re-executes exactly that shard plus the
  merge — every other shard is served from the content-addressed cache;
- committee staffing keeps every PC at or above quorum even when
  ``scale`` rounds the nominal size below it.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.api import (
    EngineConfig,
    RunConfig,
    ShardPlan,
    ShardSpec,
    WorldConfig,
    run_pipeline,
    run_sharded,
)
from repro.obs.ledger import body_digest, build_run_record
from repro.synth.committees import PC_QUORUM
from repro.tabular import ChunkedTableBuilder, Column, Table, concat_tables

pytestmark = pytest.mark.scale

# three synthetic venues, one edition each: the smallest world that still
# exercises the cross-shard merge (sub-second end to end)
SMALL = WorldConfig(seed=9, scale=0.3, venues=3)


# ----------------------------------------------------------------- plan API


def test_plan_from_synthetic_config_is_sorted_and_unique():
    plan = ShardPlan.from_config(WorldConfig(seed=11, venues=3, years=(2016, 2017)))
    assert len(plan) == 6
    assert plan.keys == tuple(sorted(plan.keys, key=lambda k: (k[-4:], k)))
    assert len(set(plan.keys)) == 6
    for spec in plan:
        assert spec.key == f"{spec.conference}-{spec.year}"
        assert spec.target.date.startswith(str(spec.year))


def test_plan_from_paper_config_replicates_2017_roster():
    from repro.calibration.targets import CONFERENCES_2017

    plan = ShardPlan.from_config(WorldConfig(seed=1, years=(2016, 2017)))
    assert len(plan) == 2 * len(CONFERENCES_2017)
    names = {s.conference for s in plan}
    assert names == {t.name for t in CONFERENCES_2017}
    # dates are re-yeared copies of the paper's editions
    for spec in plan:
        assert spec.target.date.startswith(str(spec.year))


def test_plan_generation_is_pure_in_seed():
    a = ShardPlan.from_config(WorldConfig(seed=5, venues=4, years=(2018,)))
    b = ShardPlan.from_config(WorldConfig(seed=5, venues=4, years=(2018,)))
    c = ShardPlan.from_config(WorldConfig(seed=6, venues=4, years=(2018,)))
    assert a == b
    assert a.keys == c.keys  # identity is structural ...
    assert a != c  # ... but targets are seed-dependent draws


def test_with_target_edits_one_shard_only():
    plan = ShardPlan.from_config(SMALL)
    key = plan.keys[0]
    edited = plan.with_target(key, papers=plan.shards[0].target.papers + 2)
    assert edited.keys == plan.keys
    assert edited.shards[0].target.papers == plan.shards[0].target.papers + 2
    assert edited.shards[1:] == plan.shards[1:]
    with pytest.raises(KeyError):
        plan.with_target("NOPE-1999")


def test_plan_rejects_empty_and_duplicate_keys():
    with pytest.raises(ValueError):
        ShardPlan(shards=())
    spec = ShardPlan.from_config(SMALL).shards[0]
    with pytest.raises(ValueError):
        ShardPlan(shards=(spec, spec))


def test_worldconfig_scaling_surface_validation():
    with pytest.raises(ValueError):
        WorldConfig(seed=1, years=(2017, 2017))
    with pytest.raises(ValueError):
        WorldConfig(seed=1, venues=-1)
    with pytest.raises(ValueError):
        WorldConfig(seed=1, scale=2000.0)
    cfg = WorldConfig(seed=1, scale=0.01)
    assert cfg.scaled(40) == 1
    assert cfg.scaled(300, floor=3) == 3


# ------------------------------------------------------------ quorum floor


def test_committees_stay_at_quorum_under_tiny_scale():
    result = run_pipeline(RunConfig(world=WorldConfig(seed=3, scale=0.01)))
    slots = result.dataset.role_slots
    pc = [
        conf
        for conf, role in zip(slots["conference"], slots["role"])
        if role == "pc_member"
    ]
    counts = {c: pc.count(c) for c in set(pc)}
    assert counts, "expected PC slots in the dataset"
    assert min(counts.values()) >= PC_QUORUM


# ------------------------------------------------------------ sharded runs


def test_run_sharded_merges_a_consistent_dataset():
    res = run_sharded(RunConfig(world=SMALL, shards=3))
    assert len(res.plan) == 3
    assert res.researchers > 0
    rt = res.dataset.researchers
    rids = list(rt["researcher_id"])
    assert len(rids) == len(set(rids))
    known = set(rids)
    for tbl in (res.dataset.author_positions, res.dataset.role_slots):
        assert set(tbl["researcher_id"]) <= known
    assert set(res.dataset.papers["first_author"]) <= known
    assert abs(sum(res.coverage.values()) - 1.0) < 1e-9
    # merged demographics must agree with the researchers table
    gender_of = dict(zip(rt["researcher_id"], rt["gender"]))
    ap = res.dataset.author_positions
    for rid, g in zip(ap["researcher_id"], ap["gender"]):
        assert gender_of[rid] == g


def test_merge_is_byte_identical_across_worker_counts():
    world = WorldConfig(seed=9, scale=0.3, venues=3, years=(2016, 2017))
    digests = []
    for workers in (1, 4):
        rc = RunConfig(world=world, shards=3, shard_workers=workers)
        rec = build_run_record(run_sharded(rc), config=rc, command="test")
        digests.append(body_digest(rec.body))
    assert digests[0] == digests[1]


def test_fingerprint_ignores_workers_but_not_shards():
    world = WorldConfig(seed=9, scale=0.3, venues=3)
    f1 = RunConfig(world=world, shards=3, shard_workers=1).fingerprint()
    f4 = RunConfig(world=world, shards=3, shard_workers=4).fingerprint()
    f0 = RunConfig(world=world).fingerprint()
    assert f1 == f4  # execution policy
    assert f1 != f0  # scientific input


def test_editing_one_edition_reexecutes_exactly_that_shard(tmp_path):
    rc = RunConfig(
        world=SMALL, shards=3, engine=EngineConfig(cache_dir=str(tmp_path))
    )
    cold = run_sharded(rc)
    assert (cold.shard_cache_hits, cold.executed_shards) == (0, 3)
    assert not cold.merge_cache_hit

    warm = run_sharded(rc)
    assert (warm.shard_cache_hits, warm.executed_shards) == (3, 0)
    assert warm.merge_cache_hit

    key = cold.plan.keys[1]
    edited = cold.plan.with_target(
        key, papers=cold.plan.shards[1].target.papers + 2
    )
    partial = run_sharded(rc, plan=edited)
    assert (partial.shard_cache_hits, partial.executed_shards) == (2, 1)
    assert not partial.merge_cache_hit


def test_run_pipeline_refuses_sharded_configs():
    with pytest.raises(ValueError, match="run_sharded"):
        run_pipeline(RunConfig(world=WorldConfig(seed=1), shards=2))


def test_run_sharded_refuses_strict_validation():
    with pytest.raises(ValueError, match="strict"):
        run_sharded(RunConfig(world=SMALL, shards=3, validation="strict"))


def test_run_sharded_accepts_bare_worldconfig_shim():
    with pytest.deprecated_call():
        res = run_sharded(WorldConfig(seed=9, scale=0.3, venues=2))
    assert len(res.plan) == 2
    assert res.researchers > 0


# ------------------------------------------------------------------- CLI


def test_cli_accepts_shards_before_and_after_subcommand():
    from repro.cli import build_parser

    parser = build_parser()
    for argv in (
        ["--shards", "3", "--shard-workers", "2", "--scale", "0.5", "run"],
        ["run", "--shards", "3", "--shard-workers", "2", "--scale", "0.5"],
    ):
        args = parser.parse_args(argv)
        rc = RunConfig.from_cli(args)
        assert rc.shards == 3
        assert rc.shard_workers == 2
        assert rc.world.venues == 3


def test_serve_config_carries_sharding_through_for_query():
    from repro.serve.config import ServeConfig

    sc = ServeConfig(shards=3, shard_workers=2)
    rc = RunConfig.for_query(seed=sc.seed, scale=0.5, shards=sc.shards,
                             shard_workers=sc.shard_workers)
    assert rc.shards == 3
    assert rc.world.venues == 3
    # a CLI run with the same knobs addresses the same cache entries
    cli = RunConfig.for_query(seed=sc.seed, scale=0.5, shards=3, shard_workers=1)
    assert cli.fingerprint() == rc.fingerprint()


# --------------------------------------------------------- chunked builder


def test_chunked_builder_matches_whole_table_construction():
    b = ChunkedTableBuilder([("conference", "str"), ("n", "int")])
    b.append({"conference": ["SC", "ISC"], "n": [3, 4]})
    b.append({"conference": ["PPoPP"], "n": [5]})
    assert b.num_rows == 3
    built = b.build()
    whole = Table(
        [
            Column("conference", ["SC", "ISC", "PPoPP"], kind="str"),
            Column("n", [3, 4, 5], kind="int"),
        ]
    )
    assert built.columns == whole.columns
    for name in built.columns:
        assert list(built[name]) == list(whole[name])


def test_chunked_builder_validates_chunks():
    with pytest.raises(ValueError):
        ChunkedTableBuilder([])
    with pytest.raises(ValueError):
        ChunkedTableBuilder([("a", "int"), ("a", "str")])
    b = ChunkedTableBuilder([("a", "int"), ("b", "int")])
    with pytest.raises(KeyError):
        b.append({"a": [1]})
    with pytest.raises(ValueError):
        b.append({"a": [1, 2], "b": [1]})
    b.append({"a": [], "b": []})  # empty chunks are dropped, not errors
    assert b.num_rows == 0
    assert b.build().num_rows == 0


def test_chunked_builder_append_records():
    b = ChunkedTableBuilder([("name", "str"), ("x", "float")])
    b.append_records([{"name": "a", "x": 1.0}, {"name": "b"}])
    t = b.build()
    assert list(t["name"]) == ["a", "b"]
    assert np.isnan(t["x"][1])


def test_concat_tables_matches_pairwise_concat():
    t1 = Table([Column("k", ["a", "b"], kind="str"), Column("v", [1, 2], kind="int")])
    t2 = Table([Column("k", ["c"], kind="str"), Column("v", [3], kind="int")])
    t3 = Table([Column("k", ["d"], kind="str"), Column("v", [4], kind="int")])
    nary = concat_tables([t1, t2, t3])
    pairwise = t1.concat(t2).concat(t3)
    assert nary.columns == pairwise.columns
    for name in nary.columns:
        assert list(nary[name]) == list(pairwise[name])
    with pytest.raises(ValueError):
        concat_tables([])
    with pytest.raises(ValueError):
        concat_tables([t1, Table([Column("other", [1], kind="int")])])
