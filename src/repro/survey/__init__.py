"""The author survey substrate (§2's validation instrument).

"...based on a separate author survey we conducted where we found no
discrepancies between assigned gender and self-selected gender, we
believe such errors to be limited."  (The survey itself is published as
Frachtenberg & Koster, PeerJ CS 2020 [17].)

This package simulates that instrument: a survey is sent to a sample of
authors, a response model decides who answers (response rates differ by
seniority, as in the real survey), respondents self-identify, and the
validation compares self-identified gender against the pipeline's
assignments — reproducing the "no discrepancies among respondents"
check and quantifying what it can and cannot rule out.
"""

from repro.survey.instrument import AuthorSurvey, SurveyResponse
from repro.survey.validation import validate_assignments, SurveyValidation

__all__ = [
    "AuthorSurvey",
    "SurveyResponse",
    "validate_assignments",
    "SurveyValidation",
]
