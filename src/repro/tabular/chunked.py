"""Concat-free chunked table construction for streaming producers.

The sharded pipeline emits per-shard record batches; materializing each
batch as a :class:`Table` and folding with ``Table.concat`` is O(n·k)
in copies (every pairwise concat re-copies all prior rows).  The builder
here buffers typed per-column chunks and performs exactly **one**
``np.concatenate`` per column at :meth:`ChunkedTableBuilder.build`, so
peak memory is bounded by input + one output array per column, and the
amortized cost is a single copy per value.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.tabular.column import Column
from repro.tabular.table import Table

__all__ = ["ChunkedTableBuilder", "concat_tables"]


class ChunkedTableBuilder:
    """Accumulate typed column chunks; concatenate once at the end.

    The schema — column names, order, and kinds — is fixed up front so
    every chunk normalizes to the same dtype and the final adoption via
    ``Column._wrap`` needs no re-validation::

        b = ChunkedTableBuilder([("conference", "str"), ("n", "int")])
        for shard in shards:
            b.append({"conference": shard.names, "n": shard.counts})
        table = b.build()
    """

    def __init__(self, schema: Sequence[tuple[str, str]]) -> None:
        if not schema:
            raise ValueError("schema must name at least one column")
        self._names = [name for name, _ in schema]
        self._kinds = dict(schema)
        if len(self._kinds) != len(self._names):
            raise ValueError("duplicate column names in schema")
        self._chunks: dict[str, list[np.ndarray]] = {n: [] for n in self._names}
        self._rows = 0

    @property
    def num_rows(self) -> int:
        """Rows appended so far."""
        return self._rows

    def append(self, chunk: Mapping[str, Any]) -> None:
        """Append one record batch (column name → array/sequence).

        Every schema column must be present and all chunk columns must
        have the same length.  Values are normalized to the declared
        kind through the :class:`Column` constructor, so missing-value
        and dtype semantics match whole-table construction exactly.
        """
        n = None
        staged: list[tuple[str, np.ndarray]] = []
        for name in self._names:
            if name not in chunk:
                raise KeyError(f"chunk is missing column {name!r}")
            col = Column(name, chunk[name], kind=self._kinds[name])
            if n is None:
                n = len(col)
            elif len(col) != n:
                raise ValueError(
                    f"chunk column {name!r} has length {len(col)}, expected {n}"
                )
            staged.append((name, col.values))
        if n:
            for name, arr in staged:
                self._chunks[name].append(arr)
            self._rows += n

    def append_records(self, records: Sequence[Mapping[str, Any]]) -> None:
        """Append dict rows as one chunk (missing keys become missing)."""
        if records:
            self.append({n: [r.get(n) for r in records] for n in self._names})

    def build(self) -> Table:
        """Materialize the table: one concatenate per column."""
        cols = []
        for name in self._names:
            kind = self._kinds[name]
            parts = self._chunks[name]
            if not parts:
                arr = Column(name, [], kind=kind).values
            elif len(parts) == 1:
                arr = parts[0]
            else:
                arr = np.concatenate(parts)
            cols.append(Column._wrap(name, kind, arr))
        return Table(cols)


def concat_tables(tables: Sequence[Table]) -> Table:
    """Stack many same-schema tables with one concatenate per column.

    The n-ary analogue of ``Table.concat``: pairwise folding copies each
    row O(n) times, this copies it once.  Kind mismatches promote the
    way ``Table.concat`` does (any str → str, else float).
    """
    tables = list(tables)
    if not tables:
        raise ValueError("concat_tables needs at least one table")
    order = tables[0].columns
    for t in tables[1:]:
        if t.columns != order:
            raise ValueError(f"column mismatch: {order} vs {t.columns}")
    cols = []
    for name in order:
        kinds = {t.col(name).kind for t in tables}
        if len(kinds) == 1:
            kind = kinds.pop()
        else:
            kind = "str" if "str" in kinds else "float"
        parts = [
            t.col(name).values.astype(object if kind == "str" else np.float64)
            if t.col(name).kind != kind
            else t.col(name).values
            for t in tables
        ]
        cols.append(Column._wrap(name, kind, np.concatenate(parts)))
    return Table(cols)
