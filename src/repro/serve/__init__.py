"""repro.serve — fault-tolerant analysis-as-a-service over the engine cache.

The HTTP front door of the reproduction (``repro serve``): ``GET
/v1/far``, ``/v1/blind``, ``/v1/sensitivity`` answer the paper's
analysis queries straight out of the content-addressed engine cache,
``/v1/runs[/<id>]`` reads the run ledger back, and ``/healthz`` /
``/readyz`` serve probes.  Robustness is the design center, not an
afterthought:

- :mod:`repro.serve.admission` — bounded admission with load shedding
  (429 + ``Retry-After``, never an unbounded backlog);
- :mod:`repro.serve.service` — request coalescing (single-flight per
  config fingerprint), per-request deadlines (504 with partial-result
  metadata), per-config circuit breakers around cold engine runs
  (poisoned configs degrade to 503), content-addressed ETags (warm
  revalidation is a 304), and deterministic chaos injection;
- :mod:`repro.serve.http` — the stdlib ``ThreadingHTTPServer``
  transport with graceful SIGTERM drain (finish in-flight, flush the
  ledger, exit 0).

See METHODOLOGY §14 for the serving semantics contract.
"""

from repro.serve.admission import Admission, AdmissionController
from repro.serve.config import ServeConfig
from repro.serve.http import ReproServer, ServeHandler, serve_forever
from repro.serve.service import ANALYSIS_ENDPOINTS, AnalysisService, ServeResponse

__all__ = [
    "Admission",
    "AdmissionController",
    "ServeConfig",
    "AnalysisService",
    "ServeResponse",
    "ANALYSIS_ENDPOINTS",
    "ReproServer",
    "ServeHandler",
    "serve_forever",
]
