"""Tests for the author-survey substrate (§2 validation)."""

import pytest

from repro.gender.model import Gender, GenderAssignment, InferenceMethod
from repro.names.parsing import name_key
from repro.survey import AuthorSurvey, validate_assignments


@pytest.fixture(scope="module")
def survey(small_world):
    return AuthorSurvey(small_world.registry, seed=41)


@pytest.fixture(scope="module")
def responses(survey):
    return survey.run()


class TestInstrument:
    def test_only_contactable_authors(self, survey, small_world):
        reg = small_world.registry
        for pid in survey.contactable_authors():
            assert reg.people[pid].email

    def test_response_rate_near_nominal(self, survey, responses):
        n = len(survey.contactable_authors())
        rate = len(responses) / n
        assert 0.12 < rate < 0.35  # nominal 0.20 + seniority bump

    def test_deterministic(self, small_world):
        a = AuthorSurvey(small_world.registry, seed=9).run()
        b = AuthorSurvey(small_world.registry, seed=9).run()
        assert [r.person_id for r in a] == [r.person_id for r in b]

    def test_some_decline(self, small_world):
        responses = AuthorSurvey(
            small_world.registry, seed=3, decline_rate=0.2
        ).run()
        assert any(r.declined_gender_question for r in responses)
        for r in responses:
            if r.declined_gender_question:
                assert r.self_identified is Gender.UNKNOWN

    def test_validation_params(self, small_world):
        with pytest.raises(ValueError):
            AuthorSurvey(small_world.registry, seed=1, response_rate=0)
        with pytest.raises(ValueError):
            AuthorSurvey(small_world.registry, seed=1, decline_rate=1.0)


class TestValidation:
    def test_pipeline_agreement(self, small_result, responses):
        """Reproduces §2: no (or almost no) discrepancies between
        assigned and self-identified gender among respondents."""
        linked = small_result.linked
        id_map = {}
        for rid, rec in linked.researchers.items():
            id_map[rec.name_key] = rid
        mapping = {}
        for resp in responses:
            person = small_result.world.registry.people[resp.person_id]
            rid = id_map.get(name_key(person.full_name))
            if rid:
                mapping[resp.person_id] = rid
        val = validate_assignments(
            responses, small_result.dataset.assignments, mapping
        )
        assert val.n_checked > 30
        assert val.agreement_rate > 0.97
        assert val.detectable_rate == pytest.approx(3 / val.n_checked)

    def test_detects_planted_errors(self, responses):
        """A deliberately wrong assignment set must surface discrepancies."""
        wrong = {
            r.person_id: GenderAssignment(
                Gender.M if r.self_identified is Gender.F else Gender.F,
                InferenceMethod.MANUAL,
                1.0,
            )
            for r in responses
        }
        val = validate_assignments(responses, wrong)
        assert not val.no_discrepancies
        assert val.agreement_rate == 0.0

    def test_unassigned_respondents_skipped(self, responses):
        val = validate_assignments(responses, {})
        assert val.n_checked == 0
