"""Content-addressed artifact cache, persisted via the checkpoint store.

Each entry is one node materialization, keyed by the node's fingerprint
(world/config digest + node params + upstream digests — see
:mod:`repro.engine.fingerprint`).  :class:`~repro.pipeline.checkpoint.CheckpointStore`
provides the on-disk discipline the checkpoint layer already had:
atomic, fsynced writes and a ``meta.json`` fingerprint that refuses to
serve a directory written by an incompatible engine
(:class:`~repro.pipeline.checkpoint.CheckpointMismatch`) instead of
silently mixing formats.

Keys are content-addressed, so one cache directory serves any number of
distinct runs — different seeds, scales, policies — side by side; a
changed config simply misses and materializes new entries.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.engine.fingerprint import ENGINE_SCHEMA
from repro.obs.context import current as _obs
from repro.pipeline.checkpoint import CheckpointMismatch, CheckpointStore

__all__ = ["ArtifactCache", "CACHE_FORMAT"]

# identifies the cache directory layout + pickle protocol discipline;
# bump on incompatible change so old directories are refused, not misread
CACHE_FORMAT = {"format": "repro-engine-cache", "schema": ENGINE_SCHEMA}


class ArtifactCache:
    """Filesystem cache of node outputs, one pickle per materialization."""

    def __init__(self, root: str | Path) -> None:
        root_path = Path(root)
        # a populated directory without our meta.json is somebody else's
        # data — begin() would wipe it, so refuse instead
        if (
            root_path.is_dir()
            and any(root_path.iterdir())
            and not (root_path / CheckpointStore.META).exists()
        ):
            raise CheckpointMismatch(
                f"{root_path} exists, is not empty, and is not an engine "
                f"cache directory; refusing to adopt (or wipe) it"
            )
        self._store = CheckpointStore(root_path, dict(CACHE_FORMAT))
        # resume semantics on purpose: reuse a matching directory, raise
        # CheckpointMismatch on a foreign one, create a missing one
        self._store.begin(resume=True)

    @property
    def root(self) -> Path:
        return self._store.root

    @staticmethod
    def _entry(node: str, key: str) -> str:
        return f"{node}-{key[:24]}"

    def has(self, node: str, key: str) -> bool:
        return self._store.has_stage(self._entry(node, key))

    def load(self, node: str, key: str) -> dict[str, Any]:
        """Load one node's output dict; raises ``KeyError`` on a miss."""
        entry = self._entry(node, key)
        if not self._store.has_stage(entry):
            raise KeyError(f"cache miss for node {node!r} key {key[:12]}…")
        payload = self._store.load_stage(entry)
        if payload.get("key") != key:
            # 24-hex-char prefix collision (astronomically unlikely) or a
            # truncated/foreign entry: treat as a miss, never serve it
            raise KeyError(f"cache entry for node {node!r} does not match key")
        return payload["outputs"]

    def save(self, node: str, key: str, outputs: dict[str, Any]) -> None:
        self._store.save_stage(
            self._entry(node, key), {"key": key, "outputs": outputs}
        )
        _obs().event("cache.store", node, key=key[:16])

    # ------------------------------------------------------------ accounting

    def entries(self) -> list[str]:
        """Names of all cached materializations (sorted, for reports)."""
        return sorted(p.stem.replace(".stage", "") for p in self.root.glob("*.stage.pkl"))

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.root.glob("*.stage.pkl"))
