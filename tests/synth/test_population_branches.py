"""Branch coverage for the population builder's allocation internals."""

import numpy as np
import pytest

from repro.calibration.targets import REGION_ROLE_TARGETS
from repro.synth.config import WorldConfig
from repro.synth.population import PopulationBuilder
from repro.util.rng import RngStream


@pytest.fixture
def builder():
    return PopulationBuilder(WorldConfig(seed=13, scale=0.5), RngStream(13, ("w",)))


class TestCountryGenderCells:
    def test_author_cells_cover_pool(self, builder):
        cells = builder._country_gender_cells("author", 900, 90)
        assert sum(c for _, _, c in cells) == pytest.approx(900, abs=3)
        genders = {g for _, g, _ in cells}
        assert genders == {"F", "M"}

    def test_pc_cells_use_pc_margins(self, builder):
        cells = builder._country_gender_cells("pc", 900, 166)
        # Eastern Asia PC must be nearly women-free (Table 3: 2.9%)
        from repro.geo.regions import region_of_country

        ea_women = sum(
            c for code, g, c in cells
            if g == "F" and code and region_of_country(code) == "Eastern Asia"
        )
        ea_total = sum(
            c for code, _, c in cells
            if code and region_of_country(code) == "Eastern Asia"
        )
        if ea_total >= 20:
            assert ea_women / ea_total < 0.12

    def test_women_totals_reconciled(self, builder):
        cells = builder._country_gender_cells("author", 1000, 99)
        women = sum(c for _, g, c in cells if g == "F")
        assert women == pytest.approx(99, abs=2)

    def test_unknown_country_cells_present(self, builder):
        cells = builder._country_gender_cells("author", 1000, 99)
        unknown = [c for code, _, c in cells if code is None]
        assert sum(unknown) > 100  # the unidentified share

    def test_unknown_role_rejected(self, builder):
        with pytest.raises(ValueError):
            builder._country_gender_cells("editor", 100, 10)


class TestCommitteeHelpers:
    def test_scaled_women_preserves_zero(self):
        from repro.synth.committees import _scaled_women

        assert _scaled_women(10, 20, 0, lambda n: n // 2) == 0

    def test_scaled_women_floors_at_one(self):
        from repro.synth.committees import _scaled_women

        # a 1-woman quota must survive heavy downscaling
        assert _scaled_women(3, 30, 1, lambda n: max(1, n // 10)) == 1


class TestEditionBuilder:
    def test_submitted_scales_with_accepted(self):
        from repro.calibration.targets import CONFERENCES_2017
        from repro.synth.world import _edition_for

        sc = next(t for t in CONFERENCES_2017 if t.name == "SC")
        full = _edition_for(sc, 2017)
        half = _edition_for(sc, 2017, lambda n: max(1, n // 2))
        # 61/0.187 = 326 vs 2*(30/0.187 = 160): rounding costs a few units
        assert abs(full.submitted - 2 * half.submitted) <= 8
        assert half.submitted >= half.accepted or half.accepted == 0
