"""The HTTP front door: ``repro serve``.

A deliberately boring transport — stdlib
:class:`~http.server.ThreadingHTTPServer`, no new dependencies — whose
entire job is to move bytes between sockets and the
:class:`~repro.serve.service.AnalysisService`.  The robustness order of
operations per request:

1. ``/healthz`` (liveness) and ``/readyz`` (readiness) answer without
   admission — probes must work *especially* under overload;
2. everything else passes the bounded
   :class:`~repro.serve.admission.AdmissionController`: a full queue
   sheds the request with 429 + ``Retry-After`` before any work
   happens, a queue wait that outlives the budget answers 504, a
   draining server answers 503;
3. admitted requests are handled by the service (which owns ETags,
   coalescing, deadlines, breakers, chaos) and always release their
   slot.

Shutdown is graceful: SIGTERM/SIGINT flips readiness off, stops
accepting, lets in-flight requests finish (bounded by the drain
grace), flushes the session record + event stream to the run ledger,
and exits 0.

Response *bodies* are deterministic (canonical JSON, no wall-clock
content); timing rides in headers only (``Date``,
``X-Repro-Elapsed-Ms``) — the serving version of the ledger's
body/timing split.
"""

from __future__ import annotations

import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from repro.serve.admission import Admission, AdmissionController
from repro.serve.config import ServeConfig
from repro.serve.encode import canonical_json, error_payload
from repro.serve.service import AnalysisService, ServeResponse

__all__ = ["ServeHandler", "ReproServer", "serve_forever"]


class ServeHandler(BaseHTTPRequestHandler):
    """Route one request through admission into the service."""

    server_version = "repro-serve"
    sys_version = ""
    protocol_version = "HTTP/1.1"
    # one TCP segment per response: fully buffer writes and disable
    # Nagle, or keep-alive clients eat a ~40ms delayed-ACK stall on
    # every warm hit — the difference between "near-free 304s" and not
    wbufsize = -1
    disable_nagle_algorithm = True

    # ----------------------------------------------------------------- verbs

    def do_GET(self) -> None:  # noqa: N802 (http.server's spelling)
        started = time.perf_counter()
        server: "ReproServer" = self.server  # type: ignore[assignment]
        service = server.service
        parts = urlsplit(self.path)

        if parts.path == "/healthz":
            self._write(ServeResponse(200, canonical_json({"status": "alive"})),
                        started)
            return
        if parts.path == "/readyz":
            if service.draining:
                self._write(
                    ServeResponse(
                        503, canonical_json({"status": "draining"})
                    ),
                    started,
                )
            else:
                self._write(
                    ServeResponse(200, canonical_json({"status": "ready"})),
                    started,
                )
            return

        if service.draining:
            self._write(service.draining_response(), started)
            return
        decision = server.admission.acquire(service.config.deadline_s)
        if decision is Admission.SHED:
            self._write(service.shed_response(), started)
            return
        if decision is Admission.TIMEOUT:
            self._write(service.queue_timeout_response(), started)
            return
        if decision is Admission.DRAINING:
            self._write(service.draining_response(), started)
            return
        try:
            response = service.handle(
                parts.path,
                dict(parse_qsl(parts.query)),
                if_none_match=self.headers.get("If-None-Match"),
            )
            # write while still holding the slot: drain waits for idle
            # admission, so an in-flight response is fully flushed before
            # the process exits
            self._write(response, started)
        finally:
            server.admission.release()

    def do_POST(self) -> None:  # noqa: N802
        self._write(
            ServeResponse(
                405,
                canonical_json(
                    error_payload("method-not-allowed", "this service is GET-only")
                ),
                headers=(("Allow", "GET"),),
            ),
            time.perf_counter(),
        )

    do_PUT = do_DELETE = do_PATCH = do_POST

    # ----------------------------------------------------------------- output

    def _write(self, response: ServeResponse, started: float) -> None:
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", "application/json")
            for name, value in response.headers:
                self.send_header(name, value)
            # timing lives in headers, never bodies (determinism split)
            self.send_header(
                "X-Repro-Elapsed-Ms",
                f"{(time.perf_counter() - started) * 1000.0:.3f}",
            )
            if response.status == 304:
                self.send_header("Content-Length", "0")
                self.end_headers()
                return
            self.send_header("Content-Length", str(len(response.body)))
            self.end_headers()
            self.wfile.write(response.body)
        except (BrokenPipeError, ConnectionResetError):
            # a client that hung up mid-response is its problem, not ours
            self.close_connection = True

    def log_message(self, format: str, *args) -> None:
        # access logging is the event log's job (typed serve.* events),
        # not stderr's
        return


class ReproServer(ThreadingHTTPServer):
    """Threading HTTP server wired to one service + admission gate."""

    daemon_threads = True
    # drain manages in-flight work itself (bounded by drain_grace_s);
    # blocking close on daemon threads would hang on a stuck handler
    block_on_close = False

    def __init__(self, config: ServeConfig, service: AnalysisService | None = None):
        self.config = config
        self.service = service if service is not None else AnalysisService(config)
        self.admission = AdmissionController(
            config.max_concurrency, config.queue_depth
        )
        self._drain_started = threading.Event()
        super().__init__((config.host, config.port), ServeHandler)

    @property
    def bound_port(self) -> int:
        """The actual port (differs from config when ``port=0``)."""
        return self.server_address[1]

    # ----------------------------------------------------------------- drain

    def initiate_drain(self) -> None:
        """Begin a graceful shutdown (idempotent, callable from any thread)."""
        if self._drain_started.is_set():
            return
        self._drain_started.set()
        self.service.begin_drain()      # readyz → 503, new requests refused
        self.admission.drain()          # wake queued waiters so they 503 out
        self.shutdown()                 # stop the accept loop

    def drain_and_close(self) -> str | None:
        """Finish in-flight work, flush the ledger, close the socket."""
        self.admission.wait_idle(self.config.drain_grace_s)
        run_id = self.service.flush_ledger()
        self.server_close()
        return run_id


def serve_forever(
    config: ServeConfig,
    install_signals: bool = True,
    announce=print,
) -> int:
    """Run the server until SIGTERM/SIGINT, then drain gracefully.

    Returns 0 on a clean drain — the contract the acceptance test
    holds SIGTERM to: stop accepting, finish in-flight requests, write
    the session's ledger record, exit 0.
    """
    server = ReproServer(config)

    if install_signals and threading.current_thread() is threading.main_thread():
        def _on_signal(signum, frame):
            # shutdown() must not run on the serve_forever thread —
            # hand the drain to a helper and let the loop exit
            threading.Thread(target=server.initiate_drain, daemon=True).start()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)

    announce(
        f"repro serve listening on http://{config.host}:{server.bound_port} "
        f"(seed {config.seed}, scale {config.scale}, "
        f"concurrency {config.max_concurrency}, queue {config.queue_depth}, "
        f"deadline {config.deadline_s:g}s)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.initiate_drain()
    run_id = server.drain_and_close()
    counters = server.service.counters()
    served = counters.get("requests", 0)
    announce(
        f"drained: {served} request(s) served, "
        f"shed {counters.get('shed', 0)}, "
        f"coalesced {counters.get('coalesced', 0)}"
        + (f"; ledger record {run_id}" if run_id else "")
    )
    return 0
