"""Tests for countries, regions, domains, sectors."""

import pytest

from repro.geo import (
    Sector,
    academic_tlds,
    all_countries,
    country_by_code,
    country_by_name,
    country_by_tld,
    email_country,
    region_of_country,
    regions_present,
    split_email,
)
from repro.geo.regions import REGION_ORDER


class TestCountries:
    def test_lookup_by_code(self):
        us = country_by_code("us")
        assert us.name == "United States"
        assert us.subregion == "Northern America"

    def test_lookup_by_name_and_alias(self):
        assert country_by_name("Germany").cca2 == "DE"
        assert country_by_name("USA").cca2 == "US"
        assert country_by_name("UK").cca2 == "GB"
        assert country_by_name("czech republic").cca2 == "CZ"

    def test_unknown(self):
        assert country_by_code("XX") is None
        assert country_by_name("Atlantis") is None

    def test_tld_lookup(self):
        assert country_by_tld(".de").cca2 == "DE"
        assert country_by_tld("uk").cca2 == "GB"

    def test_unique_codes(self):
        codes = [c.cca2 for c in all_countries()]
        assert len(codes) == len(set(codes))

    def test_paper_table2_countries_present(self):
        for code in ["US", "CN", "FR", "DE", "ES", "IN", "CH", "JP", "GB", "CA"]:
            assert country_by_code(code) is not None


class TestRegions:
    def test_table3_regions_covered(self):
        present = set(regions_present())
        for region in REGION_ORDER:
            assert region in present, region

    def test_region_of_country(self):
        assert region_of_country("JP") == "Eastern Asia"
        assert region_of_country("AU") == "Australia and New Zealand"
        assert region_of_country("XX") is None

    def test_order_is_paper_order(self):
        assert REGION_ORDER[0] == "Northern America"
        assert REGION_ORDER[-1] == "Northern Africa"


class TestEmail:
    def test_split(self):
        assert split_email("a.b@cs.x.edu") == ("a.b", "cs.x.edu")
        assert split_email("not-an-email") is None
        assert split_email("a@b@c.com") is None
        assert split_email("a@nodot") is None

    def test_cc_tld(self):
        assert email_country("x@inria.fr").cca2 == "FR"
        assert email_country("x@cam.ac.uk").cca2 == "GB"

    def test_us_administered(self):
        assert email_country("x@mit.edu").cca2 == "US"
        assert email_country("x@ornl.gov").cca2 == "US"

    def test_generic_unresolved(self):
        assert email_country("x@google.com") is None
        assert email_country("x@example.org") is None

    def test_malformed(self):
        assert email_country("garbage") is None

    def test_academic_tlds(self):
        assert "edu" in academic_tlds()


class TestSector:
    def test_values(self):
        assert Sector.COM.value == "COM"
        assert Sector.EDU.describe() == "academia"
