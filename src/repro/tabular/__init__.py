"""A small NumPy-backed column-store table.

pandas is not available in this environment, so the analysis layer is
written against this minimal tabular engine instead.  It supports exactly
what the reproduction needs:

- typed columns backed by NumPy arrays (:mod:`repro.tabular.column`),
- an immutable-ish :class:`~repro.tabular.table.Table` with row filtering,
  column selection/derivation, and sorting,
- split-apply-combine grouping (:mod:`repro.tabular.groupby`),
- hash joins (:mod:`repro.tabular.join`),
- concat-free chunked construction for streaming producers
  (:mod:`repro.tabular.chunked`),
- aggregation helpers (:mod:`repro.tabular.agg`),
- CSV/JSON round-tripping (:mod:`repro.tabular.io`).

Design notes: string columns use NumPy object arrays rather than fixed-
width ``U`` dtypes so that filtering never truncates, and all row
operations are vectorized mask/fancy-index operations — no Python-level
per-row loops on the hot paths (per the scientific-Python optimization
guidance this project follows).
"""

from repro.tabular.column import Column, infer_dtype
from repro.tabular.table import Table
from repro.tabular.chunked import ChunkedTableBuilder, concat_tables
from repro.tabular.groupby import GroupBy
from repro.tabular.join import inner_join, left_join
from repro.tabular.agg import (
    count,
    mean,
    total,
    share,
    nan_mean,
    rate,
)
from repro.tabular.io import (
    table_to_csv,
    table_from_csv,
    table_to_json,
    table_from_json,
)

__all__ = [
    "Column",
    "infer_dtype",
    "Table",
    "ChunkedTableBuilder",
    "concat_tables",
    "GroupBy",
    "inner_join",
    "left_join",
    "count",
    "mean",
    "total",
    "share",
    "nan_mean",
    "rate",
    "table_to_csv",
    "table_from_csv",
    "table_to_json",
    "table_from_json",
]
