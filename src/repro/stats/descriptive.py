"""Descriptive summaries of numeric samples."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "describe"]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample (NaN entries excluded)."""

    n: int
    mean: float
    std: float  # sample standard deviation (ddof=1); NaN when n < 2
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    skewness: float  # Fisher-Pearson adjusted; NaN when n < 3

    def iqr(self) -> float:
        return self.q3 - self.q1

    def as_dict(self) -> dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "skewness": self.skewness,
        }


def describe(values) -> Summary:
    """Summarize a numeric sample, ignoring NaN.

    An empty (or all-NaN) sample yields ``n=0`` with NaN statistics.
    """
    v = np.asarray(values, dtype=np.float64)
    v = v[~np.isnan(v)]
    n = int(v.size)
    if n == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan, nan, nan)
    mean = float(np.mean(v))
    std = float(np.std(v, ddof=1)) if n >= 2 else float("nan")
    q1, med, q3 = (float(x) for x in np.percentile(v, [25, 50, 75]))
    if n >= 3 and std and not np.isnan(std) and std > 0:
        m3 = float(np.mean((v - mean) ** 3))
        g1 = m3 / (np.std(v, ddof=0) ** 3)
        skew = float(np.sqrt(n * (n - 1)) / (n - 2) * g1)
    else:
        skew = float("nan")
    return Summary(
        n=n,
        mean=mean,
        std=std,
        minimum=float(np.min(v)),
        q1=q1,
        median=med,
        q3=q3,
        maximum=float(np.max(v)),
        skewness=skew,
    )
