"""χ² tests for categorical contrasts.

The paper leans on χ² throughout: double- vs single-blind FAR
("χ² = 3.133, p = 0.0767"), last-author vs all authors, HPC-subset vs
overall, i-10 attainment by gender, experience bands, and the sector
breakdowns.  Two-proportion contrasts are 2×2 contingency tests; the
tables use R's convention of Yates continuity correction for 2×2 tables,
which we follow so our χ² values are comparable to the published ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

__all__ = ["Chi2Result", "chi2_contingency", "chi2_two_proportions", "chi2_gof"]


@dataclass(frozen=True)
class Chi2Result:
    """Outcome of a χ² test."""

    statistic: float
    df: int
    p_value: float
    expected: tuple  # expected counts, row-major nested tuples

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def _chi2_sf(x: float, df: int) -> float:
    """Survival function of the χ² distribution."""
    if np.isnan(x) or df <= 0:
        return float("nan")
    return float(special.gammaincc(df / 2.0, x / 2.0))


def chi2_contingency(table, correction: bool = True) -> Chi2Result:
    """Pearson χ² test of independence on an R×C contingency table.

    Parameters
    ----------
    table:
        2-D array of observed counts.
    correction:
        Apply Yates continuity correction when the table is 2×2 (matches
        R's ``chisq.test`` default, which the paper used).
    """
    obs = np.asarray(table, dtype=np.float64)
    if obs.ndim != 2:
        raise ValueError("contingency table must be 2-D")
    if np.any(obs < 0):
        raise ValueError("counts must be nonnegative")
    n = obs.sum()
    if n <= 0:
        raise ValueError("contingency table has zero total")
    rows = obs.sum(axis=1, keepdims=True)
    cols = obs.sum(axis=0, keepdims=True)
    expected = rows @ cols / n
    df = (obs.shape[0] - 1) * (obs.shape[1] - 1)
    if df == 0:
        return Chi2Result(0.0, 0, float("nan"), tuple(map(tuple, expected)))
    if np.any(expected == 0):
        # A zero marginal makes the statistic undefined; degenerate table.
        return Chi2Result(float("nan"), df, float("nan"), tuple(map(tuple, expected)))
    diff = np.abs(obs - expected)
    if correction and obs.shape == (2, 2):
        diff = np.maximum(diff - 0.5, 0.0)
    stat = float(np.sum(diff**2 / expected))
    return Chi2Result(stat, int(df), _chi2_sf(stat, int(df)), tuple(map(tuple, expected)))


def chi2_two_proportions(
    hits1: int, n1: int, hits2: int, n2: int, correction: bool = True
) -> Chi2Result:
    """χ² test that two binomial proportions are equal.

    Builds the 2×2 contingency table [[hits, misses], ...] and delegates
    to :func:`chi2_contingency`.  This is the exact shape of the paper's
    FAR contrasts (e.g. women among double- vs single-blind authors).
    """
    for label, (h, n) in {"group1": (hits1, n1), "group2": (hits2, n2)}.items():
        if not 0 <= h <= n:
            raise ValueError(f"{label}: hits {h} outside [0, {n}]")
    table = np.array(
        [[hits1, n1 - hits1], [hits2, n2 - hits2]], dtype=np.float64
    )
    return chi2_contingency(table, correction=correction)


def chi2_gof(observed, expected=None) -> Chi2Result:
    """χ² goodness-of-fit of observed counts against expected counts.

    ``expected`` defaults to a uniform distribution over the categories
    and is rescaled to the observed total.
    """
    obs = np.asarray(observed, dtype=np.float64)
    if obs.ndim != 1:
        raise ValueError("observed must be 1-D")
    if np.any(obs < 0):
        raise ValueError("counts must be nonnegative")
    n = obs.sum()
    if expected is None:
        exp = np.full(obs.shape, n / obs.size)
    else:
        exp = np.asarray(expected, dtype=np.float64)
        if exp.shape != obs.shape:
            raise ValueError("expected shape must match observed")
        if np.any(exp <= 0):
            raise ValueError("expected counts must be positive")
        exp = exp * (n / exp.sum())
    df = obs.size - 1
    stat = float(np.sum((obs - exp) ** 2 / exp))
    return Chi2Result(stat, int(df), _chi2_sf(stat, int(df)), tuple(exp))
