"""The HTML dashboard: self-contained, badge-labeled, dark-mode ready."""

import pytest

from repro.obs import render_dashboard, write_dashboard
from repro.obs.sentinel import regress

from tests.obs.test_sentinel import make_record

pytestmark = [pytest.mark.obs, pytest.mark.ledger]


class TestRenderDashboard:
    def test_empty_ledger_renders_a_hint(self):
        html = render_dashboard([])
        assert "<!DOCTYPE html>" in html
        assert "--ledger" in html

    def test_self_contained_single_document(self):
        html = render_dashboard([make_record()])
        # no external assets and no scripts: openable from disk, auditable
        assert "<script" not in html and "http" not in html.lower()
        assert "<style>" in html

    def test_run_table_lists_every_record(self):
        records = [make_record("run-0001-a"), make_record("run-0002-b")]
        html = render_dashboard(records)
        assert "run-0001-a" in html and "run-0002-b" in html

    def test_drift_badges_carry_text_not_just_color(self):
        records = [
            make_record("run-0001-a"),
            make_record("run-0002-b"),  # identical: clean successor
            make_record(
                "run-0003-c",
                cells={"far.overall": "DRIFTED", "pc.memberships": "x"},
            ),
            make_record("run-0004-d", fingerprint="cfg-other"),
        ]
        html = render_dashboard(records)
        assert "no drift" in html          # clean successor would say this...
        assert "drift (1 cells)" in html   # ...the drifted one says this
        assert "first of config" in html   # ...and the new config this

    def test_stage_bars_are_single_hue_and_direct_labeled(self):
        html = render_dashboard([make_record()])
        assert html.count('class="bar-fill"') == 2  # one bar per stage
        assert "ingest" in html and "enrich" in html
        assert "ms" in html  # values are plain text beside the bar

    def test_dark_mode_swaps_tokens_not_structure(self):
        html = render_dashboard([make_record()])
        assert "prefers-color-scheme: dark" in html
        assert "--bar: #2a78d6" in html and "--bar: #3987e5" in html

    def test_sentinel_verdict_is_rendered_verbatim(self):
        runs = [
            make_record("run-0001-a"),
            make_record("run-0002-b", cells={"far.overall": "DRIFTED"}),
        ]
        report = regress(runs)
        html = render_dashboard(runs, regression=report)
        assert "REGRESSED" in html
        assert "first differing cell" in html


class TestWriteDashboard:
    def test_writes_and_creates_parents(self, tmp_path):
        out = tmp_path / "nested" / "dashboard.html"
        path = write_dashboard([make_record()], out)
        assert path == out and out.exists()
        assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
