"""The stage graph: validation, topological order, parallel generations.

The graph is tiny (a handful of nodes), so clarity beats asymptotics:
Kahn's algorithm over sorted node names gives a *deterministic*
topological order, and grouping by longest-path depth yields
"generations" — sets of mutually independent nodes the scheduler may
run concurrently (e.g. scholar/geo enrichment and gender inference all
depend only on identity linking, so they share a generation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.node import StageNode

__all__ = ["GraphError", "StageGraph"]


class GraphError(ValueError):
    """The declared nodes do not form a runnable DAG."""


@dataclass
class StageGraph:
    """A validated DAG of :class:`StageNode`\\ s.

    ``seed_artifacts`` names artifacts injected by the caller (a
    prebuilt world, for instance) rather than produced by any node.
    """

    nodes: list[StageNode] = field(default_factory=list)
    seed_artifacts: tuple[str, ...] = ()

    def add(self, node: StageNode) -> StageNode:
        self.nodes.append(node)
        return node

    # ------------------------------------------------------------ structure

    def producers(self) -> dict[str, StageNode]:
        """Map every artifact name to the node that produces it."""
        out: dict[str, StageNode] = {}
        for node in self.nodes:
            for artifact in node.outputs:
                if artifact in out:
                    raise GraphError(
                        f"artifact {artifact!r} produced by both "
                        f"{out[artifact].name!r} and {node.name!r}"
                    )
                out[artifact] = node
        return out

    def dependencies(self) -> dict[str, set[str]]:
        """node name -> names of upstream nodes it depends on."""
        producers = self.producers()
        seeds = set(self.seed_artifacts)
        names = {n.name for n in self.nodes}
        if len(names) != len(self.nodes):
            raise GraphError("duplicate node names")
        deps: dict[str, set[str]] = {n.name: set() for n in self.nodes}
        for node in self.nodes:
            for artifact in node.inputs:
                if artifact in seeds:
                    continue
                producer = producers.get(artifact)
                if producer is None:
                    raise GraphError(
                        f"node {node.name!r} consumes unknown artifact {artifact!r}"
                    )
                if producer.name != node.name:
                    deps[node.name].add(producer.name)
        return deps

    # ------------------------------------------------------------- ordering

    def topological_order(self) -> list[StageNode]:
        """Deterministic topological order (Kahn over sorted names)."""
        return [node for gen in self.generations() for node in gen]

    def generations(self) -> list[list[StageNode]]:
        """Group nodes into dependency levels.

        Every node lands in the generation after its deepest
        dependency, so all nodes within one generation are mutually
        independent and may execute concurrently.  Raises
        :class:`GraphError` on cycles.
        """
        deps = self.dependencies()
        by_name = {n.name: n for n in self.nodes}
        done: set[str] = set()
        remaining = dict(deps)
        gens: list[list[StageNode]] = []
        while remaining:
            # a round's ready set is exactly the nodes whose longest
            # dependency path bottomed out last round
            ready = sorted(name for name, ds in remaining.items() if ds <= done)
            if not ready:
                cycle = ", ".join(sorted(remaining))
                raise GraphError(f"dependency cycle among: {cycle}")
            for name in ready:
                del remaining[name]
            done.update(ready)
            gens.append([by_name[name] for name in ready])
        return gens
