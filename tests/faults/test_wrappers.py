"""Resilient service wrappers: passthrough at rate 0, graceful at rate 1."""

import pytest

from repro.faults import (
    FaultConfig,
    FaultSession,
    ResilientGenderizeClient,
    ResilientGoogleScholar,
    ResilientSemanticScholar,
)
from repro.gender.genderize import GenderizeClient
from repro.scholar.gscholar import GoogleScholarStore, GSProfile
from repro.scholar.semanticscholar import S2Record, SemanticScholarStore

NAMES = ["Alice Smith", "Bob Jones", "Wei Zhang", "Maria Garcia", "John Doe"]

TRANSIENT_ONLY = (1.0, 0.0, 0.0, 0.0)


@pytest.fixture
def gs_store():
    store = GoogleScholarStore()
    for i, name in enumerate(NAMES):
        store.add(
            GSProfile(
                profile_id=f"gs{i}",
                display_name=name,
                affiliation="MIT, USA",
                publications=10 + i,
                h_index=5,
                i10_index=3,
                citations=100,
            )
        )
    return store


@pytest.fixture
def s2_store():
    store = SemanticScholarStore()
    for i, name in enumerate(NAMES):
        store.put(f"p{i}", S2Record(author_id=f"s2{i}", display_name=name,
                                    publications=20 + i))
    return store


class TestResilientGenderize:
    def test_rate_zero_passthrough(self):
        bare = GenderizeClient(service_seed=3)
        wrapped = ResilientGenderizeClient(
            GenderizeClient(service_seed=3), FaultSession(FaultConfig(rate=0.0))
        )
        for name in NAMES:
            assert wrapped.query(name) == bare.query(name)

    def test_rate_one_degrades_to_unknown_without_raising(self):
        session = FaultSession(FaultConfig(rate=1.0, seed=7, weights=TRANSIENT_ONLY))
        wrapped = ResilientGenderizeClient(GenderizeClient(service_seed=3), session)
        for name in NAMES:
            resp = wrapped.query(name)
            assert resp.gender is None and resp.count == 0
        assert len(session.losses) == len(NAMES)
        assert {r.stage for r in session.losses} == {"genderize"}

    def test_malformed_payloads_are_detected_and_retried(self):
        # malformed-only injection: every corrupted payload is rejected
        # client-side; the name is either answered by a clean retry or lost
        session = FaultSession(
            FaultConfig(rate=0.5, seed=11, weights=(0.0, 0.0, 0.0, 1.0))
        )
        wrapped = ResilientGenderizeClient(GenderizeClient(service_seed=3), session)
        for name in NAMES * 4:
            resp = wrapped.query(name)
            assert 0.0 <= resp.probability <= 1.0  # garbage never escapes
            assert resp.count >= 0
        assert session.snapshot.faults.get("malformed", 0) > 0

    def test_deterministic_across_sessions(self):
        def run():
            session = FaultSession(FaultConfig(rate=0.6, seed=21))
            wrapped = ResilientGenderizeClient(GenderizeClient(service_seed=3), session)
            return [wrapped.query(n) for n in NAMES * 3], list(session.losses)

        out_a, losses_a = run()
        out_b, losses_b = run()
        assert out_a == out_b
        assert losses_a == losses_b


class TestResilientScholar:
    def test_rate_zero_passthrough(self, gs_store, s2_store):
        session = FaultSession(FaultConfig(rate=0.0))
        gs = ResilientGoogleScholar(gs_store, session)
        s2 = ResilientSemanticScholar(s2_store, session)
        for name in NAMES:
            assert gs.unique_match(name) == gs_store.unique_match(name)
            assert s2.search_name(name) == s2_store.search_name(name)

    def test_rate_one_returns_no_data(self, gs_store, s2_store):
        session = FaultSession(FaultConfig(rate=1.0, seed=7, weights=TRANSIENT_ONLY))
        gs = ResilientGoogleScholar(gs_store, session)
        s2 = ResilientSemanticScholar(s2_store, session)
        for name in NAMES:
            assert gs.unique_match(name) is None
            assert gs.search(name) == []
            assert s2.search_name(name) == []
        stages = {r.stage for r in session.losses}
        assert stages == {"gscholar", "semanticscholar"}
        assert len(session.losses) == 3 * len(NAMES)
