"""Invariants that must hold for every seed, not just the fixture's.

The reproduction's key claims should be robust to the world's random
draws; these tests rebuild small worlds under several seeds and check
the calibrated invariants each time.
"""

import numpy as np
import pytest

from repro.analysis import blind_report, far_report, pc_report
from repro.pipeline import run_pipeline
from repro.synth import WorldConfig

SEEDS = [101, 202, 303]


@pytest.fixture(scope="module", params=SEEDS)
def seeded_result(request):
    return run_pipeline(
        WorldConfig(seed=request.param, scale=0.35, include_timeline=False)
    )


class TestSeedRobustness:
    def test_far_band(self, seeded_result):
        far = far_report(seeded_result.dataset)
        assert 0.07 < far.overall.value < 0.13

    def test_pc_above_authors(self, seeded_result):
        far = far_report(seeded_result.dataset)
        pc = pc_report(seeded_result.dataset)
        assert pc.memberships.value > 1.4 * far.overall.value

    def test_double_blind_below_single(self, seeded_result):
        b = blind_report(seeded_result.dataset)
        assert b.authors_double.value < b.authors_single.value

    def test_coverage_split(self, seeded_result):
        cov = seeded_result.coverage
        assert cov["manual"] > 0.92
        assert cov["none"] < 0.06

    def test_structure_scales(self, seeded_result):
        ds = seeded_result.dataset
        # 0.35 scale: papers ≈ 0.35 * 518 with per-conference rounding
        assert 160 <= ds.papers.num_rows <= 200

    def test_zero_women_quotas_survive_scaling(self, seeded_result):
        from repro.analysis import visible_report

        vis = visible_report(seeded_result.dataset)
        assert set(vis.zero_women_confs["session_chair"]) == {
            "HPDC", "HiPC", "HPCC",
        }
