"""Deterministic payload corruption for harvest and service responses.

The malformation matrix mirrors what real conference-site scrapes run
into: truncated pages, missing sections, CSS drift, non-numeric counts,
and proceedings headers with broken email markup.  Every corruption is
a pure function of the supplied generator, so the same fault seed
always breaks the same pages the same way.

:func:`corrupt_edition` returns the corrupted artifacts *plus the tags
of the operations applied*, which is how
:class:`~repro.faults.degradation.DegradedCoverage` accounts for every
loss the scraper later swallows.
"""

from __future__ import annotations

import dataclasses
import re

import numpy as np

from repro.gender.genderize import GenderizeResponse
from repro.harvest.proceedings import ProceedingsRecord
from repro.harvest.sitegen import ConferenceSite

__all__ = [
    "CORRUPTION_TAGS",
    "corrupt_edition",
    "corrupt_genderize_response",
    "genderize_response_wellformed",
]

_EMPTY_PAGE = "<html><head></head><body></body></html>"
_COUNT_RE = re.compile(r'(<p class="conf-(?:accepted|submitted)">)[^<]*(</p>)')


def _truncate(page: str, rng: np.random.Generator) -> str:
    if len(page) < 8:
        return ""
    cut = int(rng.integers(len(page) // 3, len(page)))
    return page[:cut]


def _op_truncate_index(site, proceedings, rng):
    return dataclasses.replace(site, index_html=_truncate(site.index_html, rng)), proceedings


def _op_truncate_papers(site, proceedings, rng):
    return dataclasses.replace(site, papers_html=_truncate(site.papers_html, rng)), proceedings


def _op_drop_committees(site, proceedings, rng):
    return dataclasses.replace(site, committees_html=_EMPTY_PAGE), proceedings


def _op_empty_program(site, proceedings, rng):
    return dataclasses.replace(site, program_html=_EMPTY_PAGE), proceedings


def _op_drop_papers_page(site, proceedings, rng):
    return dataclasses.replace(site, papers_html=""), proceedings


def _op_garble_counts(site, proceedings, rng):
    junk = ["TBD", "n/a", "many", ""][int(rng.integers(0, 4))]
    mangled = _COUNT_RE.sub(rf"\g<1>{junk}\g<2>", site.index_html)
    return dataclasses.replace(site, index_html=mangled), proceedings


def _op_css_drift(site, proceedings, rng):
    # the site redesign renamed a role class: scraper finds nothing there
    cls = ["pc-member", "pc-chair", "keynote", "session-chair"][int(rng.integers(0, 4))]
    out = site
    for attr in ("committees_html", "program_html"):
        page = getattr(out, attr).replace(f'class="{cls}"', f'class="x-{cls}"')
        out = dataclasses.replace(out, **{attr: page})
    return out, proceedings


def _op_break_email_brackets(site, proceedings, rng):
    # scanned front pages lose the closing '>' of "Name <email>" lines
    broken = [
        dataclasses.replace(r, fulltext_header=r.fulltext_header.replace(">", ""))
        for r in proceedings
    ]
    return site, broken


_OPERATIONS = {
    "truncate-index": _op_truncate_index,
    "truncate-papers": _op_truncate_papers,
    "drop-committees": _op_drop_committees,
    "empty-program": _op_empty_program,
    "drop-papers-page": _op_drop_papers_page,
    "garble-counts": _op_garble_counts,
    "css-drift": _op_css_drift,
    "break-email-brackets": _op_break_email_brackets,
}

CORRUPTION_TAGS: tuple[str, ...] = tuple(_OPERATIONS)


def corrupt_edition(
    site: ConferenceSite,
    proceedings: list[ProceedingsRecord],
    rng: np.random.Generator,
    max_ops: int = 3,
) -> tuple[ConferenceSite, list[ProceedingsRecord], tuple[str, ...]]:
    """Apply 1..max_ops distinct corruptions; return artifacts + tags."""
    n_ops = int(rng.integers(1, max_ops + 1))
    chosen = rng.choice(len(CORRUPTION_TAGS), size=n_ops, replace=False)
    tags = tuple(CORRUPTION_TAGS[int(i)] for i in sorted(chosen))
    for tag in tags:
        site, proceedings = _OPERATIONS[tag](site, proceedings, rng)
    return site, proceedings, tags


# --------------------------------------------------------------- genderize

def corrupt_genderize_response(
    resp: GenderizeResponse, rng: np.random.Generator
) -> GenderizeResponse:
    """A genderize payload a real client would reject and retry."""
    mode = int(rng.integers(0, 3))
    if mode == 0:  # impossible probability
        return dataclasses.replace(resp, probability=1.0 + float(rng.random()) * 9.0)
    if mode == 1:  # negative record count
        return dataclasses.replace(resp, count=-int(rng.integers(1, 1000)))
    return dataclasses.replace(resp, name="")  # empty echo field


def genderize_response_wellformed(resp: GenderizeResponse) -> bool:
    """Client-side validation of a genderize payload."""
    return 0.0 <= resp.probability <= 1.0 and resp.count >= 0 and resp.name != ""
