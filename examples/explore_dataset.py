#!/usr/bin/env python3
"""Working with the analysis dataset directly (the tabular API).

Usage::

    python examples/explore_dataset.py

The pipeline's output is a set of column-store tables; this example
shows the idioms a downstream analyst would use — filtering, groupby
aggregation, joins — to answer questions the paper does not ask, e.g.
"which conference has the largest average team size?" or "do double-
blind conferences attract more international authors?".
"""

from __future__ import annotations

import numpy as np

from repro.pipeline import RunConfig, run_pipeline
from repro.synth import WorldConfig
from repro.tabular import count, inner_join, mean, share
from repro.viz import format_table

def main() -> None:
    result = run_pipeline(RunConfig(world=WorldConfig(seed=7, scale=1.0)))
    ds = result.dataset

    # 1. average team size and FAR per conference, one groupby
    per_conf = ds.papers.groupby("conference").agg(
        papers=count(),
        avg_team=mean("num_authors"),
        women_lead_share=share("first_gender", "F"),
    )
    print(format_table(per_conf.sort_by("avg_team", descending=True),
                       "Team size and female-lead share by conference"))
    print()

    # 2. join author positions with researcher attributes, then ask:
    #    what share of each conference's author positions is non-US?
    positions = inner_join(
        ds.author_positions.select(["paper_id", "conference", "researcher_id"]),
        ds.researchers.select(["researcher_id", "country", "gender"]),
        on="researcher_id",
    )
    international = positions.groupby("conference").agg(
        positions=count(),
        non_us=lambda g: float(
            np.mean([c is not None and c != "US" for c in g["country"]])
        ),
    )
    print(format_table(international.sort_by("non_us", descending=True),
                       "International (non-US) share of author positions"))
    print()

    # 3. double-blind vs single-blind international share
    db_confs = {
        r["conference"] for r in ds.conferences.to_records() if r["double_blind"]
    }
    flags = np.array([c in db_confs for c in positions["conference"]], dtype=bool)
    non_us = np.array(
        [c is not None and c != "US" for c in positions["country"]], dtype=bool
    )
    print(f"non-US share at double-blind confs: {100*non_us[flags].mean():.1f}%  "
          f"vs single-blind: {100*non_us[~flags].mean():.1f}%")


if __name__ == "__main__":
    main()
