"""Simulated Google Scholar profile store.

Real GS has two properties the paper depends on: (1) only about two
thirds of researchers have a uniquely identifiable profile, and those who
do skew more experienced; (2) its publication counts disagree with
Semantic Scholar's because disambiguation and indexing differ.  The
store reproduces both: coverage is decided by the world generator (the
probability of having a profile rises with experience) and the stored
counts are the researcher's true past-publication count with multiplicative
indexing noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.names.parsing import cached_name_key, name_key

__all__ = ["GSProfile", "GoogleScholarStore"]


@dataclass(frozen=True)
class GSProfile:
    """A Google Scholar profile as the pipeline consumes it.

    Attributes mirror what the paper collected "ca. 2017": total previous
    publications, h-index, i10-index, total citations, plus the free-text
    affiliation used for country/sector resolution.
    """

    profile_id: str
    display_name: str
    affiliation: str
    publications: int
    h_index: int
    i10_index: int
    citations: int


class GoogleScholarStore:
    """Name-searchable registry of GS profiles.

    ``search`` mimics the manual "identify the unique GS profile"
    workflow: it returns all profiles whose normalized name matches, and
    the pipeline treats a non-unique result as unlinkable — the same
    reason the paper could link only ~68% of researchers.
    """

    def __init__(self) -> None:
        self._profiles: dict[str, GSProfile] = {}
        self._by_name: dict[str, list[str]] = {}

    def add(self, profile: GSProfile) -> None:
        if profile.profile_id in self._profiles:
            raise ValueError(f"duplicate profile id {profile.profile_id!r}")
        self._profiles[profile.profile_id] = profile
        self._by_name.setdefault(name_key(profile.display_name), []).append(
            profile.profile_id
        )

    def get(self, profile_id: str) -> GSProfile | None:
        return self._profiles.get(profile_id)

    def search(self, full_name: str) -> list[GSProfile]:
        """All profiles matching a name (may be 0, 1, or several)."""
        ids = self._by_name.get(cached_name_key(full_name), [])
        return [self._profiles[i] for i in ids]

    def unique_match(self, full_name: str) -> GSProfile | None:
        """The profile for a name iff exactly one matches (else None)."""
        hits = self.search(full_name)
        return hits[0] if len(hits) == 1 else None

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self):
        return iter(self._profiles.values())
