"""Benchmark IPF: calibration ablation.

DESIGN.md calls out constructive calibration (IPF + controlled rounding)
as the central design choice.  This bench (a) times an IPF fit of the
population-scale joint table, and (b) quantifies what independence
sampling would get wrong: the cross-tab error against the paper's
region × gender margins, with IPF vs a naive independent (outer-product)
table.
"""

import numpy as np
import pytest

from repro.calibration import ipf_fit
from repro.calibration.targets import REGION_ROLE_TARGETS


def _margins():
    """Region totals and gender totals from Table 3's author columns."""
    totals = np.array([r.author_total for r in REGION_ROLE_TARGETS], dtype=float)
    women = np.array(
        [r.author_total * r.author_pct_women / 100.0 for r in REGION_ROLE_TARGETS]
    )
    gender = np.array([women.sum(), totals.sum() - women.sum()])
    return totals, women, gender


def test_ipf_fit_speed(benchmark):
    """Raking a (regions × countries × gender)-sized table."""
    rng = np.random.default_rng(0)
    seed = rng.random((15, 40, 2)) + 0.05
    totals, _, gender = _margins()
    country_share = rng.random(40) + 0.1
    country = country_share / country_share.sum() * totals.sum()
    res = benchmark(
        ipf_fit,
        seed,
        [((0,), totals), ((1,), country), ((2,), gender)],
    )
    benchmark.extra_info["iterations"] = res.iterations
    assert res.converged


def test_ipf_vs_independent_sampling(benchmark):
    """Ablation: cross-tab error of IPF vs independence.

    The region × gender women counts are a *joint* constraint; an
    independent product of margins misses them by construction (Eastern
    Asia PC at 2.9% women vs Western Asia at 27% cannot come from any
    product distribution).
    """
    totals, women, gender = _margins()
    target_joint = np.stack([women, totals - women], axis=1)  # (region, gender)

    def fit_and_score():
        seed = np.maximum(target_joint, 1e-6)  # informative seed
        res = ipf_fit(seed, [((0,), totals), ((1,), gender)])
        ipf_err = np.abs(res.table - target_joint).sum()
        indep = np.outer(totals, gender) / totals.sum()
        indep_err = np.abs(indep - target_joint).sum()
        return ipf_err, indep_err

    ipf_err, indep_err = benchmark(fit_and_score)
    benchmark.extra_info["ipf_abs_error"] = round(float(ipf_err), 2)
    benchmark.extra_info["independent_abs_error"] = round(float(indep_err), 2)
    # The informative-seed IPF preserves the joint structure; independence
    # cannot (this is the ablation's point).
    assert ipf_err < indep_err
