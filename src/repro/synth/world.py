"""World orchestration: population → papers → committees → careers →
profiles → citations → timeline.

:func:`build_world` is a pure function of :class:`WorldConfig`: the same
config always yields the same world, byte for byte, because every random
decision derives from a named stream under the config's seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.calibration.targets import (
    CONFERENCES_2017,
    TOTALS,
    validate_targets,
)
from repro.confmodel.conference import Conference, ConferenceEdition
from repro.confmodel.entities import Paper, Person
from repro.confmodel.policies import DiversityPolicy, ReviewPolicy
from repro.confmodel.registry import WorldRegistry
from repro.confmodel.roles import Role
from repro.gender.model import Gender
from repro.gender.webevidence import EvidenceKind
from repro.scholar.citations import accrue_citations
from repro.scholar.gscholar import GoogleScholarStore, GSProfile
from repro.scholar.metrics import h_index as compute_h, i10_index
from repro.scholar.semanticscholar import S2Record, SemanticScholarStore
from repro.synth.careers import (
    CareerModel,
    gs_reported_publications,
    s2_reported_publications,
)
from repro.synth.citegen import draw_attractiveness
from repro.synth.config import WorldConfig
from repro.synth.contact import make_affiliation, make_email
from repro.synth.papers import build_papers, draw_conference_slates, tag_hpc_papers
from repro.synth.committees import staff_committees
from repro.synth.population import PersonSpec, PopulationBuilder
from repro.synth.timeline import TimelineEdition, build_timeline
from repro.util.rng import RngStream

__all__ = ["SyntheticWorld", "build_world"]

_YEAR = 2017


@dataclass
class SyntheticWorld:
    """Everything a pipeline run needs, plus the ground truth.

    The pipeline consumes only the *observable* members (registry
    structure as serialized by the harvest layer, the GS/S2 stores, the
    evidence availability); the ground-truth members (true genders) are
    for verification.
    """

    config: WorldConfig
    registry: WorldRegistry
    gs_store: GoogleScholarStore
    s2_store: SemanticScholarStore
    evidence_availability: dict[str, EvidenceKind]
    true_genders: dict[str, Gender]
    timeline: list[TimelineEdition] = field(default_factory=list)
    outlier_paper_id: str | None = None

    @property
    def seed(self) -> int:
        return self.config.seed


def _edition_for(target, year: int, scale_fn=lambda n: n) -> ConferenceEdition:
    conf = Conference(
        name=target.name,
        country_code="GB" if target.country == "UK" else target.country,
        review_policy=(
            ReviewPolicy.DOUBLE_BLIND if target.double_blind else ReviewPolicy.SINGLE_BLIND
        ),
        diversity=DiversityPolicy(
            diversity_chair=target.diversity_chair,
            code_of_conduct=target.code_of_conduct,
            childcare=target.childcare,
            demographic_reporting=target.demographic_reporting,
        ),
    )
    accepted = scale_fn(target.papers)
    return ConferenceEdition(
        conference=conf,
        year=year,
        date=target.date,
        acceptance_rate=target.acceptance_rate,
        submitted=max(accepted, round(accepted / target.acceptance_rate)),
    )


def build_world(
    config: WorldConfig | None = None,
    targets=None,
    *,
    year: int = _YEAR,
    rng_path: tuple = ("world",),
    population_plan=None,
) -> SyntheticWorld:
    """Build the full synthetic world for the given configuration.

    Parameters
    ----------
    config:
        World configuration (seed, scale, rates).
    targets:
        Conference target list; defaults to the paper's nine 2017
        conferences.  Passing a custom list (e.g. from
        :mod:`repro.universe`) builds a world for those conferences, with
        pool sizes derived from the targets via
        :func:`repro.synth.population.plan_from_targets`.
    year:
        Edition year stamped on conferences, papers, and roles.
    rng_path:
        Root path of the world's named rng tree.  Shard builds pass a
        per-shard path (e.g. ``("shard", conf, year)``) so each shard is
        a pure, independent function of ``(seed, shard identity)``.
    population_plan:
        Explicit :class:`repro.synth.population.PopulationPlan` override;
        defaults to ``plan_from_targets(targets)`` for custom target
        lists.  Single-shard builds pass repeat factors of 1.0 because a
        one-edition pool has no cross-conference overlap to discount.
    """
    from repro.synth.population import plan_from_targets

    cfg = config or WorldConfig()
    custom = targets is not None
    if not custom:
        validate_targets()
        targets = list(CONFERENCES_2017)
    else:
        targets = list(targets)
        if not targets:
            raise ValueError("targets must be a nonempty conference list")
    stream = RngStream(cfg.seed, tuple(rng_path))

    # ---- population ------------------------------------------------------
    plan = population_plan
    if plan is None and custom:
        plan = plan_from_targets(targets)
    pop = PopulationBuilder(cfg, stream, plan=plan).build()
    everyone = pop.everyone()
    spec_by_id = {p.person_id: p for p in everyone}

    # ---- registry skeleton ------------------------------------------------
    registry = WorldRegistry()
    for t in targets:
        registry.add_edition(_edition_for(t, year, cfg.scaled))

    # ---- papers ------------------------------------------------------------
    slate_rng = stream.child("slates").generator()
    slates = draw_conference_slates(targets, pop.authors, cfg.scaled, slate_rng)
    papers: list[Paper] = []
    for t in targets:
        prng = stream.child("papers", t.name).generator()
        papers.extend(
            build_papers(t, slates[t.name], year, cfg.scaled, prng, paper_id_start=0)
        )

    # HPC tagging (§4.1): the paper tags 178 of 518 papers; custom
    # universes tag the same fraction of their own paper count.
    tag_rng = stream.child("hpc-tags").generator()
    hpc_fraction = TOTALS["hpc_papers"] / TOTALS["papers"]
    hpc_count = (
        cfg.scaled(TOTALS["hpc_papers"])
        if not custom
        else min(len(papers), int(round(len(papers) * hpc_fraction)))
    )
    tag_hpc_papers(papers, spec_by_id, hpc_count, tag_rng)

    # ---- committees --------------------------------------------------------
    c_rng = stream.child("committees").generator()
    roles = staff_committees(targets, pop.pc_members, year, cfg.scaled, c_rng)

    # anyone staffed who was PC-pool gets is_pc already; visible-only people
    # may come from the pc pool as well, nothing to update.

    # ---- careers -----------------------------------------------------------
    career_rng = stream.child("careers").generator()
    model = CareerModel(career_rng)
    careers = {}
    for p in everyone:
        kind = "pc" if p.is_pc else "author"
        careers[p.person_id] = model.draw_career(kind, p.gender)

    # ---- persons into registry ----------------------------------------------
    contact_rng = stream.child("contact").generator()
    email_flags = contact_rng.random(len(everyone)) < cfg.email_rate
    for i, p in enumerate(everyone):
        career = careers[p.person_id]
        affiliation = make_affiliation(p.sector, p.country_code, contact_rng)
        email = (
            make_email(p.full_name, p.sector, p.country_code, contact_rng)
            if p.is_author and email_flags[i]
            else None
        )
        registry.add_person(
            Person(
                person_id=p.person_id,
                full_name=p.full_name,
                country_code=p.country_code or "",
                sector=p.sector,
                true_gender=Gender(p.gender),
                web_evidence=p.evidence,
                past_publications=career.past_publications,
                career_citations=list(career.citation_vector),
                email=email,
                affiliation=affiliation,
            )
        )

    for paper in papers:
        registry.add_paper(paper)
    for r in roles:
        registry.add_role(r)

    # ---- scholar stores ------------------------------------------------------
    gs_store = GoogleScholarStore()
    s2_store = SemanticScholarStore()
    gs_rng = stream.child("gscholar").generator()
    # GS coverage: overall ~68.3%, increasing with experience.  Draw a
    # propensity from band: experienced 0.88, mid 0.75, novice 0.52 —
    # these average to ≈0.68-0.70 over the realized band mix.
    gs_prob = {"experienced": 0.87, "mid-career": 0.74, "novice": 0.50}
    for p in everyone:
        career = careers[p.person_id]
        if gs_rng.random() < gs_prob[career.band]:
            vec = np.array(career.citation_vector, dtype=np.int64)
            gs_store.add(
                GSProfile(
                    profile_id=f"gs-{p.person_id}",
                    display_name=p.full_name,
                    affiliation=registry.people[p.person_id].affiliation,
                    publications=gs_reported_publications(
                        career.past_publications, gs_rng
                    ),
                    h_index=compute_h(vec) if vec.size else 0,
                    i10_index=i10_index(vec) if vec.size else 0,
                    citations=int(vec.sum()),
                )
            )
        if p.is_author:
            s2_store.put(
                p.person_id,
                S2Record(
                    author_id=f"s2-{p.person_id}",
                    display_name=p.full_name,
                    publications=s2_reported_publications(
                        career.past_publications, gs_rng
                    ),
                ),
            )

    # ---- paper citations (Fig. 2) ---------------------------------------------
    cite_rng = stream.child("citations").generator()
    lead_genders = [spec_by_id[p.first_author].gender for p in papers]
    # The Fig. 2 outlier must be *observably* female-led, so restrict the
    # choice to leads with manual web evidence (their inferred gender will
    # be known to the pipeline).
    female_led = [
        i
        for i, g in enumerate(lead_genders)
        if g == "F"
        and spec_by_id[papers[i].first_author].evidence is not EvidenceKind.NONE
    ]
    outlier_idx = int(female_led[int(cite_rng.integers(len(female_led)))]) if female_led else None
    lam = draw_attractiveness(lead_genders, cite_rng, outlier_index=outlier_idx)
    histories = accrue_citations(lam, cite_rng, months=48, normalize_months=36)
    for paper, hist in zip(papers, histories):
        paper.citation_monthly = [int(x) for x in hist.monthly]
        paper.citations_36mo = hist.total_at(36)
    outlier_paper_id = papers[outlier_idx].paper_id if outlier_idx is not None else None

    # ---- evidence / truth maps ---------------------------------------------------
    evidence = {p.person_id: p.evidence for p in everyone}
    truth = {p.person_id: Gender(p.gender) for p in everyone}

    # ---- timeline (SC/ISC case study; paper's conference set only) --------
    timeline: list[TimelineEdition] = []
    if cfg.include_timeline and not custom:
        timeline = build_timeline(cfg.scaled, stream.child("timeline").generator())

    registry.validate()
    return SyntheticWorld(
        config=cfg,
        registry=registry,
        gs_store=gs_store,
        s2_store=s2_store,
        evidence_availability=evidence,
        true_genders=truth,
        timeline=timeline,
        outlier_paper_id=outlier_paper_id,
    )
