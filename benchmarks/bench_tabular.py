"""Benchmark TAB: factorized tabular kernels vs the legacy per-row loops.

Every headline cell of the reproduction (FAR by conference/role/year,
blind-review contrasts) funnels through the groupby/join/agg kernels,
so their cost bounds the analysis stage.  Each benchmark here times the
factorized kernel at 10³/10⁴/10⁵ rows and re-times the legacy per-row
implementation (inlined below, as shipped before the vectorization) on
the same table, reporting ``speedup_vs_baseline`` in ``extra_info`` —
the numbers land in ``benchmarks/output/BENCH_tabular.json`` via the
session hook.

Regress-style band: at the 10⁵-row scale the groupby / join / agg
kernels must hold a ≥5x speedup over the legacy loops.  The assertion
lives in the benchmark itself so the win cannot silently erode.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.tabular import Table, count, inner_join, left_join, mean, share

SIZES = (1_000, 10_000, 100_000)
FULL_SCALE = 100_000  # the band is enforced at this size
SPEEDUP_BAND = 5.0

_CONFS = ["SC", "ISC", "HPDC", "IPDPS", "ICS", "PPoPP", "SPAA", "CCGrid", "Cluster"]
_ROLES = ["author", "pc-member", "pc-chair", "keynote", "panelist"]


def _world_table(n: int, seed: int = 7) -> Table:
    """A researcher-role table shaped like the analysis-stage input."""
    rng = np.random.default_rng(seed)
    gender = rng.choice(["F", "M"], size=n, p=[0.12, 0.88]).astype(object)
    gender[rng.random(n) < 0.03] = None  # the paper's 3.03% unassigned
    cites = rng.exponential(12.0, size=n)
    cites[rng.random(n) < 0.05] = np.nan
    return Table(
        {
            "conference": [_CONFS[i] for i in rng.integers(0, len(_CONFS), n)],
            "year": [2013 + int(y) for y in rng.integers(0, 5, n)],
            "role": [_ROLES[i] for i in rng.integers(0, len(_ROLES), n)],
            "gender": gender,
            "cites": cites,
            "country": [f"c{int(i):02d}" for i in rng.integers(0, 40, n)],
            "sector": [["EDU", "COM", "GOV"][int(i)] for i in rng.integers(0, 3, n)],
        }
    )


def _profile_table(n_keys: int, seed: int = 11) -> Table:
    """A unique-key enrichment table to join against (right side)."""
    rng = np.random.default_rng(seed)
    return Table(
        {
            "country": [f"c{i:02d}" for i in range(n_keys)],
            "region": [f"r{int(i)}" for i in rng.integers(0, 6, n_keys)],
            "weight": rng.uniform(0.5, 2.0, n_keys),
        }
    )


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ---- legacy kernels (pre-vectorization, verbatim shape) ---------------------


def _legacy_groupby_index(table: Table, keys: list[str]) -> dict:
    cols = [table.col(k).values for k in keys]
    buckets: dict[tuple, list[int]] = {}
    for i in range(table.num_rows):
        key = tuple(col[i] for col in cols)
        buckets.setdefault(key, []).append(i)
    return {k: np.array(v, dtype=np.int64) for k, v in buckets.items()}


def _legacy_key_rows(table: Table, keys: list[str]) -> list[tuple]:
    cols = [table.col(k).values for k in keys]
    return [tuple(col[i] for col in cols) for i in range(table.num_rows)]


def _legacy_inner_join_rows(left: Table, right: Table, keys: list[str]):
    index: dict[tuple, list[int]] = {}
    for j, key in enumerate(_legacy_key_rows(right, keys)):
        index.setdefault(key, []).append(j)
    li: list[int] = []
    ri: list[int] = []
    for i, key in enumerate(_legacy_key_rows(left, keys)):
        for j in index.get(key, ()):
            li.append(i)
            ri.append(j)
    return np.array(li, dtype=np.int64), np.array(ri, dtype=np.int64)


def _legacy_agg(table: Table, keys: list[str], aggregations: dict) -> list[dict]:
    rows = []
    for k, idx in _legacy_groupby_index(table, keys).items():
        sub = table.take(idx)  # full width: no column pruning
        row = dict(zip(keys, k))
        for name, fn in aggregations.items():
            row[name] = fn(sub)
        rows.append(row)
    return rows


def _legacy_value_counts(table: Table, name: str):
    col = table.col(name)
    counts: dict = {}
    for v in col.values:
        if col.kind == "float" and np.isnan(v):
            continue
        if v is None:
            continue
        counts[v] = counts.get(v, 0) + 1
    return sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))


def _legacy_sort_by_str(table: Table, name: str) -> np.ndarray:
    col = table.col(name)
    keys = np.array(["" if v is None else str(v) for v in col.values])
    return np.argsort(keys, kind="stable")


# ---- benchmarks -------------------------------------------------------------


def _record(benchmark, legacy_s: float, n: int, enforce: bool) -> None:
    new_s = benchmark.stats.stats.min
    speedup = legacy_s / new_s if new_s else float("inf")
    benchmark.extra_info["rows"] = n
    benchmark.extra_info["legacy_ms"] = round(legacy_s * 1000, 3)
    benchmark.extra_info["new_ms"] = round(new_s * 1000, 3)
    benchmark.extra_info["speedup_vs_baseline"] = round(speedup, 1)
    if enforce and n >= FULL_SCALE:
        assert speedup >= SPEEDUP_BAND, (
            f"kernel speedup regressed: {speedup:.1f}x < {SPEEDUP_BAND}x "
            f"at {n} rows (legacy {legacy_s * 1000:.1f}ms, new {new_s * 1000:.1f}ms)"
        )


@pytest.mark.parametrize("n", SIZES)
def test_groupby_index(benchmark, n):
    """Multi-key group index construction (conference x year)."""
    t = _world_table(n)
    keys = ["conference", "year"]
    benchmark(lambda: t.groupby(*keys))
    legacy_s = _best_of(lambda: _legacy_groupby_index(t, keys))
    _record(benchmark, legacy_s, n, enforce=True)


@pytest.mark.parametrize("n", SIZES)
def test_inner_join(benchmark, n):
    """Many-to-one join of the role table onto country enrichment."""
    t = _world_table(n)
    profiles = _profile_table(40)
    benchmark(lambda: inner_join(t, profiles, on="country"))
    legacy_s = _best_of(lambda: _legacy_inner_join_rows(t, profiles, ["country"]))
    _record(benchmark, legacy_s, n, enforce=True)


@pytest.mark.parametrize("n", SIZES)
def test_left_join(benchmark, n):
    """Left join with the one-to-at-most-one uniqueness check."""
    t = _world_table(n)
    profiles = _profile_table(40)
    benchmark(lambda: left_join(t, profiles, on="country"))
    legacy_s = _best_of(lambda: _legacy_inner_join_rows(t, profiles, ["country"]))
    _record(benchmark, legacy_s, n, enforce=True)


@pytest.mark.parametrize("n", SIZES)
def test_groupby_agg(benchmark, n):
    """The FAR cell computation: share of women per conference/year."""
    t = _world_table(n)
    aggs = dict(n=count(), far=share("gender", "F"), cites=mean("cites"))
    benchmark(lambda: t.groupby("conference", "year").agg(**aggs))
    legacy_s = _best_of(
        lambda: _legacy_agg(t, ["conference", "year"], dict(aggs))
    )
    _record(benchmark, legacy_s, n, enforce=True)


@pytest.mark.parametrize("n", SIZES)
def test_value_counts(benchmark, n):
    """Distinct-value counting on a string column with missing entries."""
    t = _world_table(n)
    benchmark(lambda: t.value_counts("gender"))
    legacy_s = _best_of(lambda: _legacy_value_counts(t, "gender"))
    _record(benchmark, legacy_s, n, enforce=False)


@pytest.mark.parametrize("n", SIZES)
def test_sort_by_str(benchmark, n):
    """Stable sort on a string key (rank-encoded vs per-row str())."""
    t = _world_table(n)
    benchmark(lambda: t.sort_by("conference", "country"))
    legacy_s = _best_of(
        lambda: (_legacy_sort_by_str(t, "country"), _legacy_sort_by_str(t, "conference"))
    )
    _record(benchmark, legacy_s, n, enforce=False)
