"""Fuzz tests: the HTML parser must never crash on arbitrary input
(except its one documented error, unmatched close tags)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.harvest.html import HtmlParseError, parse_html, render, el


class TestParserFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=200))
    def test_never_crashes_unexpectedly(self, text):
        try:
            tree = parse_html(text)
        except HtmlParseError:
            return  # the documented failure mode
        # whatever parsed must render and be walkable
        assert tree.text() is not None
        for node in tree.iter():
            assert isinstance(node.tag, str)

    @settings(max_examples=100, deadline=None)
    @given(
        st.recursive(
            st.text(
                alphabet=st.characters(blacklist_characters="<>&\"", blacklist_categories=["Cs", "Cc"]),
                max_size=10,
            ),
            lambda children: st.builds(
                lambda tag, kids: el(tag, *kids),
                st.sampled_from(["div", "span", "p", "ul", "li"]),
                st.lists(children, max_size=3),
            ),
            max_leaves=10,
        )
    )
    def test_render_parse_roundtrip_structure(self, node):
        if isinstance(node, str):
            return
        tree = parse_html(render(node))
        rendered_again = render(tree.children[0]) if tree.children else ""
        assert rendered_again == render(node)

    def test_deeply_nested(self):
        html = "<div>" * 300 + "x" + "</div>" * 300
        tree = parse_html(html)
        assert tree.text() == "x"

    def test_interleaved_tags_autoclose(self):
        # <b><i></b></i> — parser auto-closes i when b closes
        tree = parse_html("<b><i>t</b>")
        assert tree.find(tag="b") is not None

    def test_attribute_garbage_tolerated(self):
        tree = parse_html('<div data-x=nope class="ok y">t</div>')
        node = tree.find(tag="div")
        assert node is not None
        assert "ok" in node.classes
