"""Artifact export: dump every dataset table and artifact to disk.

The original paper ships a data artifact (CSV + analysis source); this
module produces the equivalent bundle from a pipeline run::

    out/
      tables/      researchers.csv, author_positions.csv, ...
      artifacts/   T1.txt ... SENS.txt (rendered tables/figures)
      comparison.csv                   (paper vs measured)
      MANIFEST.json
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.export import write_metrics, write_trace
from repro.pipeline.runner import PipelineResult
from repro.report.compare import compare_headlines
from repro.report.experiments import EXPERIMENTS, run_experiment
from repro.tabular import Table, table_to_csv
from repro.version import __version__

__all__ = ["export_artifact"]


def export_artifact(result: PipelineResult, out_dir: str | Path) -> Path:
    """Write the full artifact bundle; returns the output directory."""
    out = Path(out_dir)
    tables_dir = out / "tables"
    artifacts_dir = out / "artifacts"
    tables_dir.mkdir(parents=True, exist_ok=True)
    artifacts_dir.mkdir(parents=True, exist_ok=True)

    ds = result.dataset
    table_files = {}
    for name in (
        "researchers",
        "author_positions",
        "conf_authors",
        "papers",
        "conferences",
        "role_slots",
    ):
        path = tables_dir / f"{name}.csv"
        table_to_csv(getattr(ds, name), path)
        table_files[name] = str(path.relative_to(out))

    artifact_files = {}
    for exp_id in EXPERIMENTS:
        _, text = run_experiment(exp_id, result)
        path = artifacts_dir / f"{exp_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        artifact_files[exp_id] = str(path.relative_to(out))

    rows = compare_headlines(result)
    comparison = Table.from_records(
        [
            {
                "experiment": r.experiment,
                "statistic": r.statistic,
                "paper": r.paper,
                "measured": r.measured,
                "abs_error": r.abs_error,
            }
            for r in rows
        ]
    )
    table_to_csv(comparison, out / "comparison.csv")

    manifest = {
        "version": __version__,
        "seed": result.world.seed,
        "scale": result.world.config.scale,
        "researchers": ds.researchers.num_rows,
        "papers": ds.papers.num_rows,
        "coverage": result.coverage,
        "tables": table_files,
        "artifacts": artifact_files,
        "comparison": "comparison.csv",
    }
    if result.contracts is not None:
        # machine-readable quarantine + integrity audit alongside the tables
        (out / "contracts.json").write_text(
            json.dumps(result.contracts.to_dict(), indent=2), encoding="utf-8"
        )
        manifest["contracts"] = "contracts.json"
        manifest["integrity_ok"] = result.contracts.ok
    if result.obs is not None and result.obs.enabled:
        # observability artifacts: Chrome trace + deterministic metrics
        write_trace(result.obs.tracer, out / "trace.json")
        write_metrics(
            result.obs.metrics,
            out / "metrics.json",
            timing=dict(result.timer.durations),
            meta={"version": __version__, "seed": result.world.seed},
        )
        manifest["trace"] = "trace.json"
        manifest["metrics"] = "metrics.json"
        # the run's ledger record + unified event stream, so a shipped
        # bundle can be diffed against any future run with `runs diff`
        from repro.obs.events import write_events
        from repro.obs.ledger import build_run_record

        record = build_run_record(result, command="export")
        (out / "run_record.json").write_text(
            json.dumps(record.to_dict(), indent=2, sort_keys=True),
            encoding="utf-8",
        )
        manifest["run_record"] = "run_record.json"
        if len(result.obs.events):
            write_events(result.obs.events, out / "events.jsonl")
            manifest["events"] = "events.jsonl"
    (out / "MANIFEST.json").write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    return out
