"""Number formatting shared by the ASCII report renderers."""

from __future__ import annotations

import math

__all__ = ["fmt_count", "fmt_pct", "fmt_float"]


def fmt_count(n: int) -> str:
    """Format an integer count with thousands separators."""
    return f"{int(n):,}"


def fmt_pct(fraction: float, digits: int = 2) -> str:
    """Format a fraction in [0,1] as a percentage string.

    >>> fmt_pct(0.0991)
    '9.91%'
    """
    if fraction is None or (isinstance(fraction, float) and math.isnan(fraction)):
        return "n/a"
    return f"{100.0 * fraction:.{digits}f}%"


def fmt_float(x: float, digits: int = 3) -> str:
    """Format a float compactly, mapping NaN to 'n/a'."""
    if x is None or (isinstance(x, float) and math.isnan(x)):
        return "n/a"
    return f"{x:.{digits}g}"
