"""The regression sentinel: compare runs, flag drift, stay deterministic.

Two failure families threaten a longitudinal reproduction:

- **scientific drift** — a headline number (overall FAR, an SC/ISC
  per-conference ratio, a χ² contrast) silently changes between runs
  that should be identical.  Any drift is a finding; there is no noise
  band on determinism.
- **performance regression** — a stage gets slower than its own
  history.  Wall time *is* noisy, so the sentinel compares each stage
  against the **median of its recorded history** and only flags
  excursions beyond a relative threshold *and* an absolute floor —
  deterministic given the recorded data, since the ledger, not the
  current machine state, is the input.

:func:`diff_runs` is the pairwise microscope (down to the first
differing scientific cell); :func:`regress` is the fleet-level check
``repro runs regress`` and ``make regress`` run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median

from repro.obs.ledger import RunRecord

__all__ = [
    "DriftCell",
    "TimingFlag",
    "RunDiff",
    "RegressionReport",
    "diff_runs",
    "regress",
    "DEFAULT_THRESHOLD",
    "DEFAULT_MIN_SECONDS",
]

# flag a stage only when it exceeds its historical median by more than
# 25% *and* by more than 50 ms — both bounds are needed: the relative
# one scales to slow stages, the absolute one keeps micro-stages (whose
# medians sit in scheduler-jitter territory) from crying wolf
DEFAULT_THRESHOLD = 0.25
DEFAULT_MIN_SECONDS = 0.05


@dataclass(frozen=True)
class DriftCell:
    """One key whose recorded value differs between two runs."""

    key: str
    baseline: object
    candidate: object

    def render(self) -> str:
        return f"{self.key}: {self.baseline!r} -> {self.candidate!r}"


@dataclass(frozen=True)
class TimingFlag:
    """One stage whose duration broke out of its historical noise band."""

    stage: str
    baseline_median: float
    candidate: float
    samples: int

    @property
    def ratio(self) -> float:
        if self.baseline_median <= 0:
            return float("inf")
        return self.candidate / self.baseline_median

    def render(self) -> str:
        return (
            f"{self.stage}: {self.candidate * 1e3:.1f} ms vs median "
            f"{self.baseline_median * 1e3:.1f} ms over {self.samples} run(s) "
            f"({self.ratio:.2f}x)"
        )


@dataclass
class RunDiff:
    """Everything deterministic that changed between two ledger records."""

    baseline_id: str
    candidate_id: str
    same_config: bool
    digest_changed: bool
    scientific_drift: tuple[DriftCell, ...] = ()
    counter_changes: tuple[DriftCell, ...] = ()
    event_changes: tuple[DriftCell, ...] = ()
    stage_changes: tuple[DriftCell, ...] = ()

    @property
    def has_scientific_drift(self) -> bool:
        return bool(self.scientific_drift)

    @property
    def clean(self) -> bool:
        return not (
            self.scientific_drift
            or self.counter_changes
            or self.event_changes
            or self.stage_changes
        )

    def first_drift(self) -> DriftCell | None:
        """The first differing scientific cell (drill-down entry point)."""
        return self.scientific_drift[0] if self.scientific_drift else None

    def render(self) -> str:
        lines = [f"diff {self.baseline_id} -> {self.candidate_id}"]
        if not self.same_config:
            lines.append(
                "  config fingerprints differ — runs are not like-for-like "
                "(drift below is expected)"
            )
        if self.clean and not self.digest_changed:
            lines.append("  identical: no scientific drift, no counter changes")
            return "\n".join(lines)
        if self.scientific_drift:
            first = self.first_drift()
            lines.append(
                f"  scientific drift: {len(self.scientific_drift)} cell(s); "
                f"first differing cell -> {first.render()}"
            )
            for cell in self.scientific_drift[1:6]:
                lines.append(f"    {cell.render()}")
            if len(self.scientific_drift) > 6:
                lines.append(
                    f"    ... and {len(self.scientific_drift) - 6} more"
                )
        for label, cells in (
            ("counters", self.counter_changes),
            ("events", self.event_changes),
            ("stages", self.stage_changes),
        ):
            if cells:
                lines.append(f"  {label}: {len(cells)} change(s)")
                for cell in cells[:4]:
                    lines.append(f"    {cell.render()}")
                if len(cells) > 4:
                    lines.append(f"    ... and {len(cells) - 4} more")
        return "\n".join(lines)


def _dict_drift(a: dict, b: dict) -> tuple[DriftCell, ...]:
    """Cells present-and-equal in neither; sorted by key for determinism."""
    out = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            out.append(DriftCell(key=key, baseline=va, candidate=vb))
    return tuple(out)


def diff_runs(baseline: RunRecord, candidate: RunRecord) -> RunDiff:
    """Field-by-field deterministic comparison of two ledger records."""
    return RunDiff(
        baseline_id=baseline.run_id or "<baseline>",
        candidate_id=candidate.run_id or "<candidate>",
        same_config=baseline.config_fingerprint == candidate.config_fingerprint,
        digest_changed=(baseline.digest or "") != (candidate.digest or ""),
        scientific_drift=_dict_drift(baseline.scientific, candidate.scientific),
        counter_changes=_dict_drift(
            baseline.body.get("counters", {}), candidate.body.get("counters", {})
        ),
        event_changes=_dict_drift(
            baseline.body.get("events", {}), candidate.body.get("events", {})
        ),
        stage_changes=_dict_drift(
            baseline.body.get("stages", {}), candidate.body.get("stages", {})
        ),
    )


@dataclass
class RegressionReport:
    """The sentinel's verdict on the latest run against its history."""

    diff: RunDiff | None
    timing: tuple[TimingFlag, ...] = ()
    baseline_ids: tuple[str, ...] = ()
    threshold: float = DEFAULT_THRESHOLD
    min_seconds: float = DEFAULT_MIN_SECONDS
    notes: tuple[str, ...] = ()

    @property
    def scientific_drift(self) -> tuple[DriftCell, ...]:
        return self.diff.scientific_drift if self.diff is not None else ()

    @property
    def ok(self) -> bool:
        """True when the sentinel found nothing to flag."""
        if self.timing:
            return False
        if self.diff is None:
            return True
        # a deliberate config change explains drift; same-config drift never is
        return not (self.diff.same_config and self.diff.has_scientific_drift)

    def render(self) -> str:
        if self.diff is None:
            return "sentinel: no baseline run in the ledger yet — nothing to compare"
        lines = [
            f"sentinel: candidate {self.diff.candidate_id} vs baseline "
            f"{self.diff.baseline_id} "
            f"(timing medians over {len(self.baseline_ids)} run(s), "
            f"threshold {self.threshold:.0%} + {self.min_seconds * 1e3:.0f} ms)"
        ]
        for note in self.notes:
            lines.append(f"  note: {note}")
        drift = self.scientific_drift
        if drift:
            first = drift[0]
            lines.append(
                f"  SCIENTIFIC DRIFT: {len(drift)} cell(s) changed; "
                f"first differing cell -> {first.render()}"
            )
            for cell in drift[1:6]:
                lines.append(f"    {cell.render()}")
        else:
            lines.append("  scientific drift: none (digests identical)")
        if self.timing:
            lines.append(f"  TIMING REGRESSIONS: {len(self.timing)} stage(s)")
            for flag in self.timing:
                lines.append(f"    {flag.render()}")
        else:
            lines.append("  timing regressions: none")
        lines.append(f"  verdict: {'OK' if self.ok else 'REGRESSED'}")
        return "\n".join(lines)


def regress(
    history: list[RunRecord],
    candidate: RunRecord | None = None,
    baseline: RunRecord | None = None,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> RegressionReport:
    """Judge ``candidate`` (default: the latest record) against history.

    The scientific comparison runs against ``baseline`` (default: the
    most recent earlier run with the *same config fingerprint*, falling
    back to the immediately previous run with a like-for-like warning).
    The timing comparison uses the per-stage **median over every earlier
    same-config run**, so one historically slow run cannot poison the
    band — and the whole verdict is a pure function of ledger contents.
    """
    runs = list(history)
    if candidate is None:
        if not runs:
            return RegressionReport(diff=None, threshold=threshold,
                                    min_seconds=min_seconds)
        candidate = runs[-1]
    prior = [r for r in runs if r is not candidate and r.run_id != candidate.run_id]
    if not prior:
        return RegressionReport(diff=None, threshold=threshold,
                                min_seconds=min_seconds)

    notes: list[str] = []
    same_config = [
        r for r in prior if r.config_fingerprint == candidate.config_fingerprint
    ]
    if baseline is None:
        if same_config:
            baseline = same_config[-1]
        else:
            baseline = prior[-1]
            notes.append(
                "no earlier run shares this config fingerprint; comparing "
                "against the previous run — expect drift from the config change"
            )

    diff = diff_runs(baseline, candidate)

    # timing: median over every earlier same-config run (the baseline run
    # alone is one sample; history tightens the band)
    timing_pool = same_config if same_config else [baseline]
    flags: list[TimingFlag] = []
    cand_stages = candidate.body.get("stages", {})
    for stage, secs in sorted(candidate.stage_seconds.items()):
        info = cand_stages.get(stage, {})
        if info.get("cached") or info.get("resumed"):
            continue  # near-zero load time, not comparable work
        samples = [
            r.stage_seconds[stage]
            for r in timing_pool
            if stage in r.stage_seconds
            and not r.body.get("stages", {}).get(stage, {}).get("cached")
            and not r.body.get("stages", {}).get(stage, {}).get("resumed")
        ]
        if not samples:
            continue
        base = median(samples)
        if secs > base * (1.0 + threshold) and secs - base > min_seconds:
            flags.append(
                TimingFlag(
                    stage=stage,
                    baseline_median=base,
                    candidate=secs,
                    samples=len(samples),
                )
            )

    return RegressionReport(
        diff=diff,
        timing=tuple(flags),
        baseline_ids=tuple(r.run_id for r in timing_pool),
        threshold=threshold,
        min_seconds=min_seconds,
        notes=tuple(notes),
    )
