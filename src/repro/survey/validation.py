"""Comparing pipeline assignments against survey self-identification."""

from __future__ import annotations

from dataclasses import dataclass

from repro.gender.model import GenderAssignment
from repro.survey.instrument import SurveyResponse

__all__ = ["SurveyValidation", "validate_assignments"]


@dataclass(frozen=True)
class SurveyValidation:
    """Outcome of the §2 validation check.

    ``discrepancies`` lists respondent ids whose assigned gender differs
    from their self-identified gender — the paper found zero.
    ``power_note`` quantifies the check's sensitivity: with ``n_checked``
    respondents, error rates below ``detectable_rate`` would likely be
    missed (the limitation the paper acknowledges implicitly).
    """

    n_responses: int
    n_checked: int             # responded, answered the gender Q, and assigned
    n_agree: int
    discrepancies: tuple[str, ...]
    agreement_rate: float
    detectable_rate: float     # 3/n rule-of-thumb upper bound at ~95%

    @property
    def no_discrepancies(self) -> bool:
        return not self.discrepancies


def validate_assignments(
    responses: list[SurveyResponse],
    assignments: dict[str, GenderAssignment],
    id_mapping: dict[str, str] | None = None,
) -> SurveyValidation:
    """Run the validation.

    Parameters
    ----------
    responses:
        Survey responses (person ids are ground-truth ids).
    assignments:
        Pipeline assignments keyed by pipeline researcher id.
    id_mapping:
        Ground-truth person id → pipeline researcher id.  Identity when
        omitted.
    """
    mapping = id_mapping or {}
    checked = agree = 0
    discrepancies: list[str] = []
    for resp in responses:
        if resp.declined_gender_question or not resp.self_identified.known:
            continue
        rid = mapping.get(resp.person_id, resp.person_id)
        a = assignments.get(rid)
        if a is None or not a.known:
            continue
        checked += 1
        if a.gender is resp.self_identified:
            agree += 1
        else:
            discrepancies.append(resp.person_id)
    return SurveyValidation(
        n_responses=len(responses),
        n_checked=checked,
        n_agree=agree,
        discrepancies=tuple(discrepancies),
        agreement_rate=agree / checked if checked else float("nan"),
        detectable_rate=3.0 / checked if checked else float("nan"),
    )
