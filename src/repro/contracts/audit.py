"""The end-of-run integrity audit: conservation, not vibes.

After every stage has run (and every contract has had its say), the
audit checks that *counts are conserved end-to-end* — the property whose
silent failure produces systematically wrong demographic numbers without
a single crash:

- every harvested edition is analyzed, quarantined, or lost to faults;
- every scraped paper is in the papers table or in quarantine, per
  conference, with counts cross-checked against the proceedings;
- authorship positions equal the sum of per-paper author counts;
- FAR numerators and denominators recomputed independently from the
  tables match the analysis module's report;
- no gender category appears in any table that inference never emitted;
- every researcher row keeps exactly one gender assignment, and the
  coverage fractions remain a partition.

The result is plain data on :class:`ContractReport` (attached to
``PipelineResult.contracts``), rendered in the run report next to the
degraded-coverage section, and — in strict mode — escalated to a
non-zero CLI exit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.contracts.quarantine import QuarantineStore
from repro.contracts.validators import ContractSession
from repro.faults.degradation import DegradedCoverage

__all__ = ["AuditCheck", "IntegrityAudit", "ContractReport", "run_integrity_audit"]


@dataclass(frozen=True)
class AuditCheck:
    """One conservation invariant: expected vs actual, machine-readable."""

    name: str
    ok: bool
    expected: str
    actual: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "expected": self.expected,
            "actual": self.actual,
            "detail": self.detail,
        }


@dataclass
class IntegrityAudit:
    """All conservation checks for one run."""

    checks: tuple[AuditCheck, ...] = ()

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> tuple[AuditCheck, ...]:
        return tuple(c for c in self.checks if not c.ok)

    def summary(self) -> str:
        if self.ok:
            return f"integrity audit: {len(self.checks)}/{len(self.checks)} checks balanced"
        names = ", ".join(c.name for c in self.failures)
        return (
            f"integrity audit: {len(self.checks) - len(self.failures)}"
            f"/{len(self.checks)} checks balanced; FAILED: {names}"
        )

    def to_dict(self) -> dict:
        return {"ok": self.ok, "checks": [c.to_dict() for c in self.checks]}


@dataclass
class ContractReport:
    """Everything the contracts layer learned about one run."""

    mode: str
    quarantine: QuarantineStore = field(default_factory=QuarantineStore)
    audit: IntegrityAudit = field(default_factory=IntegrityAudit)

    @property
    def ok(self) -> bool:
        return self.audit.ok

    def summary(self) -> str:
        counts = self.quarantine.counts()
        if counts:
            per = ", ".join(
                f"{entity}: " + "/".join(f"{n} {d}" for d, n in dispositions.items())
                for entity, dispositions in counts.items()
            )
            q = f"quarantine({per})"
        else:
            q = "quarantine empty"
        return f"contracts[{self.mode}]: {q}; {self.audit.summary()}"

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "quarantine": self.quarantine.to_dict(),
            "audit": self.audit.to_dict(),
        }


def _check(
    checks: list[AuditCheck],
    name: str,
    expected,
    actual,
    detail: str = "",
) -> None:
    checks.append(
        AuditCheck(
            name=name,
            ok=expected == actual,
            expected=str(expected),
            actual=str(actual),
            detail=detail,
        )
    )


def run_integrity_audit(
    dataset,
    inference,
    session: ContractSession,
    degraded: DegradedCoverage | None = None,
    proceedings_counts: dict[str, int] | None = None,
    enrichment_rows: int | None = None,
) -> IntegrityAudit:
    """Check every conservation invariant for a finished run."""
    checks: list[AuditCheck] = []
    store = session.store
    base = session.baselines

    # ---- edition conservation --------------------------------------------
    admitted_editions = dataset.conferences.num_rows
    held_editions = store.held_count("edition")
    _check(
        checks,
        "edition-conservation",
        base.get("edition", 0),
        admitted_editions + held_editions,
        "validated editions == analyzed + quarantined",
    )
    if degraded is not None:
        dropped = len(degraded.dropped_editions)
        _check(
            checks,
            "edition-accounting",
            degraded.total_editions,
            base.get("edition", 0) + dropped,
            "harvest targets == validated + lost-to-faults",
        )

    # ---- paper conservation ----------------------------------------------
    admitted_papers = dataset.papers.num_rows
    held_papers = store.held_count("paper")
    _check(
        checks,
        "paper-conservation",
        base.get("paper", 0),
        admitted_papers + held_papers,
        "scraped papers (admitted editions) == analyzed + quarantined",
    )

    # ---- per-conference paper counts vs proceedings ----------------------
    held_paper_keys = store.held_keys("paper")
    by_conf: dict[str, int] = {}
    for conf, year in zip(
        dataset.papers["conference"], dataset.papers["year"]
    ):
        k = f"{conf}-{year}"
        by_conf[k] = by_conf.get(k, 0) + 1
    mismatches: list[str] = []
    presumed_lost = 0
    held_edition_keys = set(store.held_keys("edition"))
    for key, scraped in sorted(session.papers_scraped.items()):
        if key in held_edition_keys:
            continue  # a held edition withdraws its papers wholesale
        held_here = sum(1 for hk in held_paper_keys if hk.startswith(f"{key}/"))
        analyzed = by_conf.get(key, 0)
        if analyzed + held_here != scraped:
            mismatches.append(f"{key}: {analyzed}+{held_here}!={scraped}")
        if proceedings_counts and key in proceedings_counts:
            expected = proceedings_counts[key]
            if key in session.malformed_editions:
                presumed_lost += max(0, expected - scraped)
            elif scraped != expected:
                mismatches.append(f"{key}: scraped {scraped} != proceedings {expected}")
    checks.append(
        AuditCheck(
            name="conf-paper-counts",
            ok=not mismatches,
            expected="per-conference papers match proceedings",
            actual="; ".join(mismatches) or "all match",
            detail=(
                f"{presumed_lost} papers presumed lost to page corruption "
                f"on {len(session.malformed_editions)} malformed editions"
                if presumed_lost
                else ""
            ),
        )
    )

    # ---- authorship-position conservation --------------------------------
    import numpy as np

    positions = dataset.author_positions.num_rows
    from_papers = int(np.sum(dataset.papers["num_authors"]))
    _check(
        checks,
        "position-conservation",
        from_papers,
        positions,
        "author positions == sum of per-paper author counts",
    )

    # ---- researcher conservation -----------------------------------------
    if "researcher" in base:
        _check(
            checks,
            "researcher-conservation",
            base["researcher"],
            dataset.researchers.num_rows + store.held_count("researcher"),
            "linked researchers == table rows + quarantined",
        )

    # ---- role conservation ------------------------------------------------
    if "role" in base:
        lost_via_researcher = base.get("role_held_via_researcher", 0)
        _check(
            checks,
            "role-conservation",
            base["role"],
            dataset.role_slots.num_rows
            + store.held_count("role")
            + lost_via_researcher,
            "harvested role seats == slots + quarantined (+ held researchers')",
        )

    # ---- enrichment conservation -----------------------------------------
    if enrichment_rows is not None and "enrichment_row" in base:
        _check(
            checks,
            "enrichment-conservation",
            base["enrichment_row"],
            enrichment_rows + store.held_count("enrichment_row"),
            "enrichment rows == admitted + quarantined",
        )

    # ---- FAR numerators/denominators -------------------------------------
    from repro.analysis import far_report

    far = far_report(dataset)
    genders = np.asarray(dataset.author_positions["gender"], dtype=object)
    n_f = int(np.count_nonzero(genders == "F"))
    n_known = n_f + int(np.count_nonzero(genders == "M"))
    _check(
        checks,
        "far-overall",
        (n_f, n_known),
        (far.overall.hits, far.overall.n),
        "FAR numerator/denominator recomputed from author_positions",
    )
    firsts = genders[np.asarray(dataset.author_positions["is_first"], dtype=bool)]
    lead_f = int(np.count_nonzero(firsts == "F"))
    _check(
        checks,
        "far-lead",
        (lead_f, lead_f + int(np.count_nonzero(firsts == "M"))),
        (far.lead_overall.hits, far.lead_overall.n),
        "lead-author FAR recomputed from first positions",
    )

    # ---- gender category closure -----------------------------------------
    emitted = {a.gender.value for a in inference.assignments.values() if a.known}
    observed = set()
    for table in (
        dataset.researchers,
        dataset.author_positions,
        dataset.conf_authors,
        dataset.role_slots,
    ):
        observed.update(np.asarray(table["gender"], dtype=object).tolist())
    observed.discard(None)
    phantom = sorted(observed - emitted)
    checks.append(
        AuditCheck(
            name="gender-category-closure",
            ok=not phantom,
            expected=f"categories within {sorted(emitted)}",
            actual=f"phantom categories: {phantom}" if phantom else "closed",
            detail="no table may contain a gender inference never emitted",
        )
    )

    # ---- assignment coverage ---------------------------------------------
    rids = set(dataset.researchers["researcher_id"])
    missing = sorted(rids - set(inference.assignments))
    checks.append(
        AuditCheck(
            name="assignment-coverage",
            ok=not missing,
            expected="every researcher row has a gender assignment",
            actual=f"{len(missing)} missing ({missing[:5]})" if missing else "complete",
        )
    )
    cov_sum = sum(inference.coverage.values())
    checks.append(
        AuditCheck(
            name="coverage-partition",
            ok=abs(cov_sum - 1.0) < 1e-9 or not inference.assignments,
            expected="1.0",
            actual=f"{cov_sum:.12f}",
            detail="manual + genderize + none must partition the population",
        )
    )

    return IntegrityAudit(checks=tuple(checks))
