"""§3.2/§3.4 — diversity policies vs representation.

Two claims get quantified here:

1. "Even if we assume that the PC ratios are more representative ...
   they are also likely insufficient on their own as catalysts to
   increase the ratios among authors, as **the two metrics appear to be
   unrelated**" — the per-conference correlation between PC women share
   and author FAR.
2. §3.4's observation that the two diversity-policy conferences (SC,
   ISC) nevertheless sit at the *bottom* of the FAR range — the
   policy-group contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import mask_eq, women_share
from repro.analysis.far import far_report
from repro.analysis.pc import pc_report
from repro.pipeline.dataset import AnalysisDataset
from repro.stats.chisquare import Chi2Result
from repro.stats.correlation import CorrelationResult, pearson
from repro.stats.proportions import Proportion, proportion_diff

__all__ = ["PolicyReport", "policy_report"]


@dataclass(frozen=True)
class PolicyReport:
    """Policy-vs-representation quantities."""

    pc_vs_author_correlation: CorrelationResult   # per-conference (pc, far)
    per_conference: dict[str, tuple[float, float]]  # conf -> (author FAR, pc share)
    policy_confs: tuple[str, ...]                 # with a diversity chair
    far_policy: Proportion                        # authors at policy confs
    far_no_policy: Proportion
    policy_test: Chi2Result
    policy_confs_below_average: bool              # §3.4's paradox


def policy_report(ds: AnalysisDataset) -> PolicyReport:
    """Compute the policy analyses over a dataset."""
    far = far_report(ds)
    pc = pc_report(ds)

    per_conf: dict[str, tuple[float, float]] = {}
    fars, pcs = [], []
    for c in far.by_conference:
        pc_share = pc.by_conference.get(c.conference)
        if pc_share is None or not pc_share.n or not c.authors.n:
            continue
        per_conf[c.conference] = (c.authors.value, pc_share.value)
        fars.append(c.authors.value)
        pcs.append(pc_share.value)
    corr = pearson(np.array(pcs), np.array(fars))

    confs = ds.conferences
    policy_confs = tuple(
        name
        for name, has in zip(confs["conference"], confs["diversity_chair"])
        if bool(has)
    )
    in_policy = np.array(
        [c in policy_confs for c in ds.author_positions["conference"]], dtype=bool
    )
    pos = ds.author_positions
    far_policy = women_share(pos.filter(in_policy))
    far_no = women_share(pos.filter(~in_policy))

    return PolicyReport(
        pc_vs_author_correlation=corr,
        per_conference=per_conf,
        policy_confs=policy_confs,
        far_policy=far_policy,
        far_no_policy=far_no,
        policy_test=proportion_diff(far_policy, far_no),
        policy_confs_below_average=(
            far_policy.value < far.overall.value if far_policy.n else False
        ),
    )
