"""A single markdown run report covering the whole reproduction.

:func:`full_report` renders one self-contained markdown document —
headline statistics, all three tables, figure summaries, coverage,
sensitivity — suitable for dropping into a lab notebook or CI artifact.
Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

from repro.analysis import (
    blind_report,
    casestudy_report,
    experience_report,
    far_report,
    hpc_topic_report,
    pc_report,
    reception_report,
    sector_report,
    sensitivity_report,
    visible_report,
)
from repro.pipeline.runner import PipelineResult
from repro.report.compare import compare_headlines
from repro.report.tables import build_table1, build_table2, build_table3
from repro.version import __version__

__all__ = ["full_report"]


def _pct(x: float, digits: int = 2) -> str:
    return f"{100 * x:.{digits}f}%"


def full_report(result: PipelineResult) -> str:
    """Render the complete markdown run report."""
    ds = result.dataset
    far = far_report(ds)
    blind = blind_report(ds)
    pc = pc_report(ds)
    vis = visible_report(ds)
    hpc = hpc_topic_report(ds)
    rec = reception_report(ds)
    exp = experience_report(ds)
    sec = sector_report(ds)
    sens = sensitivity_report(ds)
    cov = result.coverage

    lines: list[str] = []
    add = lines.append
    add(f"# Reproduction run report (repro {__version__})")
    add("")
    add(f"- seed: {result.world.seed}, scale: {result.world.config.scale}")
    add(f"- researchers: {ds.researchers.num_rows}, papers: {ds.papers.num_rows}")
    add(f"- pipeline wall time: {result.timer.total() * 1e3:.0f} ms")
    add("")

    add("## Gender-assignment coverage (§2)")
    add("")
    add(f"manual {_pct(cov['manual'])} · genderize {_pct(cov['genderize'])} · "
        f"unassigned {_pct(cov['none'])}  (paper: 95.18% / 1.79% / 3.03%)")
    add("")

    add("## Authors (§3.1)")
    add("")
    add(f"- FAR overall: **{far.overall}** (paper 9.9%)")
    add(f"- SC {far.conference('SC').authors}, ISC {far.conference('ISC').authors}")
    add(f"- double-blind {blind.authors_double} vs single-blind "
        f"{blind.authors_single} (χ²={blind.authors_test.statistic:.2f}, "
        f"p={blind.authors_test.p_value:.3f})")
    add(f"- lead authors: {far.lead_overall}; last authors: {far.last_overall}")
    add("")

    add("## Committees and visible roles (§3.2–§3.3)")
    add("")
    add(f"- PC memberships: {pc.memberships} (SC: {pc.by_conference['SC']}; "
        f"excluding SC: {pc.excluding_sc})")
    add(f"- zero-women PC chairs: {', '.join(pc.zero_women_chair_confs) or 'none'}")
    add(f"- zero-women session chairs: "
        f"{', '.join(vis.zero_women_confs['session_chair']) or 'none'} "
        f"({vis.zero_session_chair_seats} seats)")
    add("")

    add("## Papers (§4)")
    add("")
    add(f"- HPC-topic subset: {hpc.hpc_papers}/{hpc.all_papers}; author FAR "
        f"{hpc.authors_hpc} vs overall {hpc.authors_all}")
    add(f"- citations (Fig. 2): women-led n={rec.n_female_lead} mean "
        f"{rec.mean_female:.2f} (excl. outlier {rec.mean_female_no_outlier:.2f}); "
        f"men-led n={rec.n_male_lead} mean {rec.mean_male:.2f}; "
        f"Welch t={rec.welch_no_outlier.statistic:.2f}")
    add("")

    add("## Demographics (§5)")
    add("")
    add(f"- GS coverage (known gender): {_pct(exp.gs_coverage_known_gender)}; "
        f"GS↔S2 r={exp.gs_s2_correlation.r:.3f}")
    add(f"- novice authors: women {_pct(exp.novice_female_authors, 1)} vs men "
        f"{_pct(exp.novice_male_authors, 1)} (χ²={exp.novice_test.statistic:.2f})")
    add(f"- sectors: COM {_pct(sec.sector_shares['COM'], 1)} / EDU "
        f"{_pct(sec.sector_shares['EDU'], 1)} / GOV {_pct(sec.sector_shares['GOV'], 1)}")
    add("")

    if result.world.timeline:
        cs = casestudy_report(result.world.timeline)
        add("## SC/ISC case study (§3.4)")
        add("")
        for conf, (lo, hi) in cs.far_range.items():
            add(f"- {conf}: FAR range {_pct(lo, 1)}–{_pct(hi, 1)} over 2016–2020")
        add("")

    add("## Sensitivity (§2)")
    add("")
    add(f"- unknowns: {sens.unknowns}; all observations stable: "
        f"**{sens.all_stable}**")
    add("")

    # survey validation (§2's "no discrepancies" check)
    from repro.names.parsing import name_key
    from repro.survey import AuthorSurvey, validate_assignments

    survey = AuthorSurvey(result.world.registry, seed=result.world.seed)
    responses = survey.run()
    id_map = {
        rec.name_key: rid for rid, rec in result.linked.researchers.items()
    }
    mapping = {}
    for resp in responses:
        person = result.world.registry.people[resp.person_id]
        rid = id_map.get(name_key(person.full_name))
        if rid:
            mapping[resp.person_id] = rid
    val = validate_assignments(responses, ds.assignments, mapping)
    add("## Author-survey validation (§2)")
    add("")
    add(f"- responses: {val.n_responses}; checked: {val.n_checked}; "
        f"agreement: {_pct(val.agreement_rate)}; discrepancies: "
        f"{len(val.discrepancies)} (paper: none)")
    add(f"- detectability floor (3/n): error rates below "
        f"{_pct(val.detectable_rate, 1)} would likely go unnoticed")
    add("")

    add("## Tables")
    for build in (build_table1, build_table2, build_table3):
        _, text = build(ds)
        add("")
        add("```")
        add(text)
        add("```")
    add("")

    rows = compare_headlines(result)
    close = sum(1 for r in rows if r.rel_error < 0.25)
    add("## Agreement with the paper")
    add("")
    add(f"{close}/{len(rows)} headline statistics within 25% relative error; "
        "see EXPERIMENTS.md for the full ledger.")
    add("")

    if result.degraded is not None:
        from repro.report.degraded import render_degraded

        add(render_degraded(result.degraded))
        add("")
    if result.contracts is not None:
        from repro.report.integrity import render_integrity

        add(render_integrity(result.contracts))
        add("")
    if result.obs is not None and result.obs.enabled:
        add(_render_observability(result))
        add("")
    return "\n".join(lines)


def _render_observability(result: PipelineResult) -> str:
    """The run's trace/metrics summary (only rendered when obs was on)."""
    obs = result.obs
    lines: list[str] = []
    add = lines.append
    add("## Observability")
    add("")
    add("```")
    add(result.timer.report())
    add("```")
    add("")
    spans = obs.tracer.finished
    add(f"- trace: {len(spans)} spans (deterministic IDs, seed {obs.seed}); "
        f"export with `--trace` and load in chrome://tracing")
    slowest = sorted(spans, key=lambda s: s.duration, reverse=True)[:5]
    if slowest:
        add("- slowest spans: "
            + ", ".join(f"{s.name} {s.duration * 1e3:.1f} ms" for s in slowest))
    counters = obs.metrics.to_dict(exclude_timings=True)["counters"]
    if counters:
        add(f"- metrics: {len(obs.metrics)} series; notable counters:")
        for name in sorted(counters):
            add(f"  - `{name}` = {counters[name]}")
    if result.timer.resumed:
        add("- resumed from checkpoint: "
            + ", ".join(sorted(result.timer.resumed))
            + " (durations are checkpoint-load time, not fresh work)")
    if obs.profiler is not None and obs.profiler.profiles:
        add(f"- cProfile captured for {len(obs.profiler.profiles)} stage(s); "
            f"top-{obs.profiler.top_n} cumulative printed by `--profile`")
    return "\n".join(lines)
