"""§3.3 — visible roles: keynotes, panelists, session chairs.

"four conferences with no women at all in this role [keynotes]. Even
more striking ... three conferences had zero female session chairs out
of a total of 45 session chairs: HPDC, HPCC, and HiPC. Only SC shows a
ratio that is approaching gender parity."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.common import mask_eq, women_share
from repro.pipeline.dataset import AnalysisDataset
from repro.stats.proportions import Proportion

__all__ = ["VisibleReport", "visible_report"]

_VISIBLE = ("keynote", "panelist", "session_chair")


@dataclass(frozen=True)
class VisibleReport:
    """§3.3's quantities, per visible role."""

    overall: dict[str, Proportion]                       # role -> share
    by_conference: dict[str, dict[str, Proportion]]      # role -> conf -> share
    zero_women_confs: dict[str, tuple[str, ...]]         # role -> conf names
    zero_session_chair_seats: int                        # paper: 45


def visible_report(ds: AnalysisDataset) -> VisibleReport:
    """Compute §3.3 over an analysis dataset."""
    slots = ds.role_slots
    overall: dict[str, Proportion] = {}
    by_conf: dict[str, dict[str, Proportion]] = {}
    zero: dict[str, tuple[str, ...]] = {}

    seats_at: dict[str, int] = {}
    for role in _VISIBLE:
        tab = slots.filter(lambda t: mask_eq(t, "role", role))
        overall[role] = women_share(tab)
        conf_map: dict[str, Proportion] = {}
        zero_confs: list[str] = []
        for conf in ds.conferences["conference"]:
            sub = tab.filter(lambda t: mask_eq(t, "conference", conf))
            p = women_share(sub)
            conf_map[conf] = p
            if role == "session_chair":
                seats_at[conf] = sub.num_rows  # all seats, unknowns included
            if p.n > 0 and p.hits == 0:
                zero_confs.append(conf)
        by_conf[role] = conf_map
        zero[role] = tuple(zero_confs)

    zero_seats = sum(seats_at[c] for c in zero["session_chair"])
    return VisibleReport(
        overall=overall,
        by_conference=by_conf,
        zero_women_confs=zero,
        zero_session_chair_seats=zero_seats,
    )
