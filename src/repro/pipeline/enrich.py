"""Enrichment: scholar profiles, country, sector.

Resolution order follows §2:

- **country** — email domains first ("more timely"), then the GS
  affiliation string; unresolvable stays None.
- **sector**  — affiliation regexes, then email-domain heuristics
  (.edu/.ac.* → EDU, .gov/gov.* → GOV, corporate .com → COM).
- **Google Scholar** — link iff the name matches exactly one profile.
- **Semantic Scholar** — name search; first record (S2 has full author
  coverage, matching the paper's Fig. 5 source).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.affiliations import classify_affiliation
from repro.geo.countries import Country
from repro.geo.domains import email_country, split_email
from repro.geo.regions import region_of_country
from repro.obs.context import current as _obs
from repro.pipeline.link import LinkedData, ResearcherRecord
from repro.scholar.gscholar import GoogleScholarStore
from repro.scholar.semanticscholar import SemanticScholarStore

__all__ = ["Enrichment", "enrich_researchers", "sector_from_email"]


@dataclass
class Enrichment:
    """Per-researcher enrichment outcome."""

    researcher_id: str
    country_code: str | None
    region: str | None
    sector: str | None
    gs_publications: int | None
    gs_h_index: int | None
    gs_i10: int | None
    gs_citations: int | None
    s2_publications: int | None

    @property
    def has_gs(self) -> bool:
        return self.gs_publications is not None


def sector_from_email(address: str) -> str | None:
    """Heuristic sector from an email domain."""
    parts = split_email(address)
    if parts is None:
        return None
    _, domain = parts
    labels = domain.split(".")
    if "edu" in labels or "ac" in labels:
        return "EDU"
    if "gov" in labels or "mil" in labels:
        return "GOV"
    if labels[-1] == "com":
        return "COM"
    return None


def enrich_researchers(
    linked: LinkedData,
    gs_store: GoogleScholarStore,
    s2_store: SemanticScholarStore,
    session: "FaultSession | None" = None,
) -> dict[str, Enrichment]:
    """Enrich every linked researcher.

    With a :class:`~repro.faults.session.FaultSession`, the scholar
    lookups run behind resilient wrappers: a researcher whose GS/S2
    search exhausts its retries is enriched from whatever sources
    remain (the paper's own 68.3% GS coverage, made explicit), and the
    loss is recorded on the session.
    """
    gs: "GoogleScholarStore | ResilientGoogleScholar" = gs_store
    s2: "SemanticScholarStore | ResilientSemanticScholar" = s2_store
    if session is not None:
        from repro.faults.wrappers import (
            ResilientGoogleScholar,
            ResilientSemanticScholar,
        )

        gs = ResilientGoogleScholar(gs_store, session)
        s2 = ResilientSemanticScholar(s2_store, session)
    ctx = _obs()
    out: dict[str, Enrichment] = {}
    with ctx.span("enrich.researchers", rows=len(linked.researchers)):
        out.update(_enrich_all(linked, gs, s2))
    ctx.metrics.inc("enrich.rows", len(out))
    ctx.metrics.inc("enrich.gs_hits", sum(1 for e in out.values() if e.has_gs))
    ctx.metrics.inc(
        "enrich.s2_hits", sum(1 for e in out.values() if e.s2_publications is not None)
    )
    return out


def _enrich_all(linked, gs, s2) -> dict[str, Enrichment]:
    out: dict[str, Enrichment] = {}
    for rid, rec in linked.researchers.items():
        profile = gs.unique_match(rec.full_name)
        affiliation_guess = (
            classify_affiliation(profile.affiliation) if profile else None
        )

        country: Country | None = None
        for email in rec.emails:
            country = email_country(email)
            if country is not None:
                break
        if country is None and affiliation_guess is not None:
            country = affiliation_guess.country

        sector: str | None = None
        if affiliation_guess is not None and affiliation_guess.sector is not None:
            sector = affiliation_guess.sector.value
        if sector is None:
            for email in rec.emails:
                sector = sector_from_email(email)
                if sector is not None:
                    break

        s2_hits = s2.search_name(rec.full_name)
        s2_pubs = s2_hits[0].publications if s2_hits else None

        code = country.cca2 if country else None
        out[rid] = Enrichment(
            researcher_id=rid,
            country_code=code,
            region=region_of_country(code) if code else None,
            sector=sector,
            gs_publications=profile.publications if profile else None,
            gs_h_index=profile.h_index if profile else None,
            gs_i10=profile.i10_index if profile else None,
            gs_citations=profile.citations if profile else None,
            s2_publications=s2_pubs,
        )
    return out
