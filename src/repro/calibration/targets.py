"""Every constant the paper publishes, as structured data.

Sources are cited by section/table/figure.  Where the paper's prose is
ambiguous, the interpretation is documented inline and in DESIGN.md
("Known deviations").

Three kinds of values live here:

1. **Generation targets** — consumed by :mod:`repro.synth` to construct
   the world (conference sizes, per-conference FAR, country mixes, ...).
2. **Derived interpretations** — numbers we computed from the paper's own
   numbers to make the targets mutually consistent (marked ``derived``).
3. **PAPER_STATS** — the headline statistics used only for the
   paper-vs-measured comparison in EXPERIMENTS.md, never by generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ConferenceTargets",
    "CONFERENCES_2017",
    "CountryTarget",
    "COUNTRY_TARGETS",
    "RegionRoleTarget",
    "REGION_ROLE_TARGETS",
    "SECTOR_SHARES",
    "SECTOR_WOMEN_SHARE",
    "EXPERIENCE_BANDS",
    "TOTALS",
    "PAPER_STATS",
    "SC_ISC_TIMELINE",
]


# --------------------------------------------------------------------------
# Per-conference targets (Table 1 + §3 + derived role compositions)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ConferenceTargets:
    """Calibration targets for one 2017 conference edition.

    ``papers``, ``unique_authors``, ``acceptance_rate``, ``country`` and
    ``date`` are Table 1 verbatim.  ``author_positions`` scales the
    2 236 total authorship positions (§3.1) over conferences
    proportionally to unique authors (derived).  Role sizes and women
    counts are derived so that every §3.2/§3.3 statistic holds exactly:
    1 220 PC memberships at 18.46% women, SC's PC of 225 at 29.6%, the
    16.1% rate excluding SC, 36 PC chairs / 30 keynotes with four
    conferences at zero women each, 158 session chairs with zero women at
    HPDC+HiPC+HPCC (45 seats), 106 panelists.

    ``far`` is the target share of women among *known-gender* authors:
    SC 8.12% and ISC 5.77% are §3.1 verbatim; the others are derived to
    average 10.52% (the paper's single-blind pooled rate).

    ``lead_far`` is the share of women among first authors: derived from
    §3.1's 6.17% (double-blind pooled) / 11.79% (single-blind pooled).
    ``last_far`` similarly targets the pooled 8.4% for last authors.
    """

    name: str
    date: str
    papers: int
    unique_authors: int
    acceptance_rate: float
    country: str
    author_positions: int
    far: float
    lead_far: float
    last_far: float
    pc_size: int
    pc_women: int
    pc_chairs: int
    pc_chair_women: int
    keynotes: int
    keynote_women: int
    panelists: int
    panelist_women: int
    session_chairs: int
    session_chair_women: int
    double_blind: bool
    diversity_chair: bool
    code_of_conduct: bool
    childcare: bool
    demographic_reporting: bool
    #: research subfield; always "HPC" for the paper's set, used by the
    #: §6 universe extension (repro.universe) to compare subfields
    field: str = "HPC"

    @property
    def submitted(self) -> int:
        """Submission count implied by the acceptance rate."""
        return round(self.papers / self.acceptance_rate)


CONFERENCES_2017: tuple[ConferenceTargets, ...] = (
    ConferenceTargets(
        name="CCGrid", date="2017-05-14", papers=72, unique_authors=296,
        acceptance_rate=0.252, country="ES", author_positions=314,
        far=0.1050, lead_far=0.1150, last_far=0.0880,
        pc_size=130, pc_women=20, pc_chairs=4, pc_chair_women=1,
        keynotes=3, keynote_women=1, panelists=10, panelist_women=1,
        session_chairs=16, session_chair_women=2,
        double_blind=False, diversity_chair=False, code_of_conduct=False,
        childcare=False, demographic_reporting=False,
    ),
    ConferenceTargets(
        name="IPDPS", date="2017-05-29", papers=116, unique_authors=447,
        acceptance_rate=0.228, country="US", author_positions=473,
        far=0.1020, lead_far=0.1160, last_far=0.0850,
        pc_size=180, pc_women=28, pc_chairs=4, pc_chair_women=1,
        keynotes=3, keynote_women=1, panelists=14, panelist_women=2,
        session_chairs=25, session_chair_women=3,
        double_blind=False, diversity_chair=False, code_of_conduct=False,
        childcare=False, demographic_reporting=False,
    ),
    ConferenceTargets(
        name="ISC", date="2017-06-18", papers=22, unique_authors=99,
        acceptance_rate=0.333, country="DE", author_positions=105,
        far=0.0577, lead_far=0.0600, last_far=0.0500,  # §3.1: 5.77%
        pc_size=90, pc_women=14, pc_chairs=4, pc_chair_women=1,
        keynotes=4, keynote_women=1, panelists=12, panelist_women=2,
        session_chairs=12, session_chair_women=2,
        double_blind=True, diversity_chair=True, code_of_conduct=True,
        childcare=False, demographic_reporting=True,
    ),
    ConferenceTargets(
        name="HPDC", date="2017-06-28", papers=19, unique_authors=76,
        acceptance_rate=0.190, country="US", author_positions=81,
        far=0.0950, lead_far=0.1050, last_far=0.0800,
        pc_size=60, pc_women=9, pc_chairs=4, pc_chair_women=0,
        keynotes=3, keynote_women=0, panelists=8, panelist_women=0,
        session_chairs=10, session_chair_women=0,  # §3.3: zero women
        double_blind=False, diversity_chair=False, code_of_conduct=False,
        childcare=False, demographic_reporting=False,
    ),
    ConferenceTargets(
        name="ICPP", date="2017-08-14", papers=60, unique_authors=234,
        acceptance_rate=0.286, country="UK", author_positions=248,
        far=0.1100, lead_far=0.1250, last_far=0.0900,
        pc_size=140, pc_women=22, pc_chairs=4, pc_chair_women=0,
        keynotes=3, keynote_women=0, panelists=10, panelist_women=1,
        session_chairs=14, session_chair_women=2,
        double_blind=False, diversity_chair=False, code_of_conduct=False,
        childcare=False, demographic_reporting=False,
    ),
    ConferenceTargets(
        name="EuroPar", date="2017-08-30", papers=50, unique_authors=179,
        acceptance_rate=0.284, country="ES", author_positions=190,
        far=0.1000, lead_far=0.1100, last_far=0.0850,
        pc_size=160, pc_women=26, pc_chairs=4, pc_chair_women=1,
        keynotes=3, keynote_women=1, panelists=12, panelist_women=1,
        session_chairs=16, session_chair_women=2,
        double_blind=False, diversity_chair=False, code_of_conduct=False,
        childcare=False, demographic_reporting=False,
    ),
    ConferenceTargets(
        name="SC", date="2017-11-13", papers=61, unique_authors=325,
        acceptance_rate=0.187, country="US", author_positions=344,
        far=0.0812, lead_far=0.0650, last_far=0.0700,  # §3.1: 8.12%
        pc_size=225, pc_women=67, pc_chairs=4, pc_chair_women=2,  # §3.2: 29.6%
        keynotes=4, keynote_women=2, panelists=20, panelist_women=4,
        session_chairs=30, session_chair_women=13,  # §3.3: near parity
        double_blind=True, diversity_chair=True, code_of_conduct=True,
        childcare=True, demographic_reporting=True,
    ),
    ConferenceTargets(
        name="HiPC", date="2017-12-18", papers=41, unique_authors=168,
        acceptance_rate=0.223, country="IN", author_positions=178,
        far=0.0980, lead_far=0.1100, last_far=0.0800,
        pc_size=105, pc_women=17, pc_chairs=4, pc_chair_women=0,
        keynotes=3, keynote_women=0, panelists=10, panelist_women=1,
        session_chairs=15, session_chair_women=0,  # §3.3: zero women
        double_blind=False, diversity_chair=False, code_of_conduct=False,
        childcare=False, demographic_reporting=False,
    ),
    ConferenceTargets(
        name="HPCC", date="2017-12-18", papers=77, unique_authors=287,
        acceptance_rate=0.438, country="TH", author_positions=303,
        far=0.1150, lead_far=0.1250, last_far=0.0950,
        pc_size=130, pc_women=24, pc_chairs=4, pc_chair_women=0,
        keynotes=4, keynote_women=0, panelists=10, panelist_women=1,
        session_chairs=20, session_chair_women=0,  # §3.3: zero women
        double_blind=False, diversity_chair=False, code_of_conduct=False,
        childcare=False, demographic_reporting=False,
    ),
)


# --------------------------------------------------------------------------
# Geography targets (Table 2, Table 3, Fig. 7)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CountryTarget:
    """Table 2 / Fig. 7 row: researcher count and % women per country.

    ``total`` counts authors + PC members (role slots); ``pct_women``
    applies to known-gender researchers of the country.
    """

    cca2: str
    total: int
    pct_women: float


# Table 2 (top ten) verbatim, then Fig. 7's remaining countries with
# ≥10 authors (totals/percentages derived: Fig. 7 prints only a chart, so
# we chose plausible magnitudes that respect the regional sums of Table 3).
COUNTRY_TARGETS: tuple[CountryTarget, ...] = (
    CountryTarget("US", 1408, 15.38),
    CountryTarget("CN", 200, 10.43),
    CountryTarget("FR", 147, 13.61),
    CountryTarget("DE", 139, 8.63),
    CountryTarget("ES", 123, 8.94),
    CountryTarget("IN", 72, 5.63),
    CountryTarget("CH", 64, 14.06),
    CountryTarget("JP", 63, 1.59),
    CountryTarget("GB", 52, 7.69),
    CountryTarget("CA", 44, 6.82),
    # Fig. 7 tail (derived)
    CountryTarget("IT", 40, 7.50),
    CountryTarget("NL", 34, 8.82),
    CountryTarget("AU", 30, 6.67),
    CountryTarget("KR", 28, 7.14),
    CountryTarget("BR", 26, 11.54),
    CountryTarget("SE", 22, 9.09),
    CountryTarget("AT", 20, 10.00),
    CountryTarget("BE", 18, 11.11),
    CountryTarget("PL", 16, 6.25),
    CountryTarget("SG", 15, 6.67),
    CountryTarget("IL", 14, 14.29),
    CountryTarget("GR", 13, 7.69),
    CountryTarget("PT", 12, 8.33),
    CountryTarget("TR", 12, 16.67),
    CountryTarget("SA", 10, 20.00),
)


@dataclass(frozen=True)
class RegionRoleTarget:
    """Table 3 row: per-region totals and % women for authors and PC."""

    region: str
    author_pct_women: float
    author_total: int
    pc_pct_women: float
    pc_total: int


# Table 3 verbatim.
REGION_ROLE_TARGETS: tuple[RegionRoleTarget, ...] = (
    RegionRoleTarget("Northern America", 9.78, 930, 24.47, 523),
    RegionRoleTarget("Western Europe", 8.98, 256, 16.35, 159),
    RegionRoleTarget("Eastern Asia", 11.94, 201, 2.90, 69),
    RegionRoleTarget("Southern Europe", 6.60, 106, 12.50, 80),
    RegionRoleTarget("Northern Europe", 7.69, 65, 8.00, 50),
    RegionRoleTarget("Southern Asia", 6.35, 63, 5.00, 20),
    RegionRoleTarget("South America", 8.33, 36, 27.27, 11),
    RegionRoleTarget("Australia and New Zealand", 8.33, 24, 0.00, 14),
    RegionRoleTarget("Western Asia", 27.27, 22, 12.50, 24),
    RegionRoleTarget("South-Eastern Asia", 5.00, 20, 0.00, 4),
    RegionRoleTarget("Eastern Europe", 0.00, 12, 11.76, 17),
    RegionRoleTarget("Western Africa", 50.00, 2, 0.00, 0),
    RegionRoleTarget("Central America", 100.00, 1, 0.00, 0),
    RegionRoleTarget("Central Asia", 0.00, 1, 0.00, 0),
    RegionRoleTarget("Northern Africa", 0.00, 1, 0.00, 0),
)


# --------------------------------------------------------------------------
# Sector targets (§2, §5.3, Fig. 8)
# --------------------------------------------------------------------------

#: Work sector distribution over unique researchers (§2).
SECTOR_SHARES: dict[str, float] = {"COM": 0.086, "EDU": 0.728, "GOV": 0.186}

#: Women share per (role, sector) — Fig. 8 prints a chart only; values
#: are derived to respect the χ² statistics of §5.3 (PC: GOV/EDU above
#: COM, nonsignificant χ²=0.522; authors near-flat, χ²=1.629).
SECTOR_WOMEN_SHARE: dict[tuple[str, str], float] = {
    ("author", "COM"): 0.088,
    ("author", "EDU"): 0.100,
    ("author", "GOV"): 0.108,
    ("pc_member", "COM"): 0.155,
    ("pc_member", "EDU"): 0.185,
    ("pc_member", "GOV"): 0.200,
}


# --------------------------------------------------------------------------
# Experience targets (§5.1, Figs. 3–6)
# --------------------------------------------------------------------------

#: Hirsch's stratification as used by Fig. 6: novice h < 13,
#: mid-career 13 ≤ h ≤ 18, experienced h > 18.
EXPERIENCE_BANDS: dict[str, tuple[float, float]] = {
    "novice": (0.0, 13.0),        # h < 13
    "mid-career": (13.0, 19.0),   # 13 <= h <= 18
    "experienced": (19.0, float("inf")),
}

#: Novice share targets among authors by gender (Fig. 6 / §5.1 text).
NOVICE_SHARE = {"F": 0.448, "M": 0.364}


# --------------------------------------------------------------------------
# Global totals and coverage (§2, §3.1, §5)
# --------------------------------------------------------------------------

TOTALS: dict[str, float] = {
    "papers": 518,                 # Table 1 sum
    "author_positions": 2236,      # §3.1 "all 2236 authors" (positions)
    "conference_unique_authors": 2111,  # Table 1 sum (unique per conference)
    "unique_coauthors": 1885,      # §2 "1885 unique coauthors"
    "pc_memberships": 1220,        # §3.2 (with repeats)
    "unique_pc_members": 908,      # §2 "PC members ... (908 total)"
    "pc_chairs": 36,
    "keynotes": 30,
    "panelists": 106,
    "session_chairs": 158,
    "far_overall": 0.099,          # §3.1
    "pc_far": 0.1846,              # §3.2
    "manual_coverage": 0.9518,     # §2
    "genderize_coverage": 0.0179,  # §2
    "unknown_rate": 0.0303,        # §2 (144 researchers in the paper)
    "gs_coverage_known_gender": 0.6965,  # §5.1
    "gs_coverage_overall": 0.683,  # §2
    "hpc_papers": 178,             # §4.1
    "hpc_author_far": 0.101,       # §4.1
    "sector_COM": 0.086,
    "sector_EDU": 0.728,
    "sector_GOV": 0.186,
}


# --------------------------------------------------------------------------
# SC/ISC 2016–2020 case study (§3.4)
# --------------------------------------------------------------------------

#: (year -> FAR target). SC stays near its 2017 value; ISC ranges 5–9%.
#: SC's published attendance (not authorship) was 13–14%; SC shared a FAR
#: of 12% for 2018 only, which we use verbatim.
SC_ISC_TIMELINE: dict[str, dict[int, float]] = {
    "SC": {2016: 0.095, 2017: 0.0812, 2018: 0.12, 2019: 0.10, 2020: 0.105},
    "ISC": {2016: 0.05, 2017: 0.0577, 2018: 0.07, 2019: 0.09, 2020: 0.08},
}

#: SC attendance (not authorship) women share, §3.4.
SC_ATTENDANCE_WOMEN: dict[int, float] = {
    2016: 0.135, 2017: 0.14, 2018: 0.13, 2019: 0.14, 2020: 0.135,
}


# --------------------------------------------------------------------------
# PAPER_STATS — headline values for the paper-vs-measured report only.
# Keys are experiment ids from DESIGN.md §4.
# --------------------------------------------------------------------------

PAPER_STATS: dict[str, dict[str, float]] = {
    "S3.1": {
        "far_overall": 9.9,                 # % women among all authors
        "far_sc": 8.12,
        "far_isc": 5.77,
        "far_double_blind": 7.57,           # SC+ISC pooled
        "far_single_blind": 10.52,
        "blind_chi2": 3.133,
        "blind_p": 0.0767,
        "lead_far_single": 11.79,
        "lead_far_double": 6.17,
        "lead_chi2": 1.662,
        "lead_p": 0.197,
        "last_far": 8.4,
        "last_chi2": 0.724,
        "last_p": 0.395,
    },
    "S3.2": {
        "pc_far": 18.46,
        "pc_memberships": 1220,
        "sc_pc_far": 29.6,
        "pc_far_excl_sc": 16.1,
        "zero_women_chair_confs": 4,
    },
    "S3.3": {
        "zero_women_keynote_confs": 4,
        "zero_women_session_chair_confs": 3,
        "zero_session_chair_seats": 45,
    },
    "S4.1": {
        "hpc_papers": 178,
        "all_papers": 518,
        "hpc_author_far": 10.1,
        "hpc_chi2": 4.656,
        "hpc_p": 0.031,
        "hpc_lead_far": 11.05,
        "hpc_lead_n": 172,
        "hpc_lead_women": 19,
        "overall_lead_far": 10.86,
        "hpc_lead_chi2": 0.0547,
        "hpc_lead_p": 0.8151,
    },
    "F2": {
        "papers_female_lead": 53,
        "papers_male_lead": 435,
        "mean_cites_female": 13.04,
        "mean_cites_male": 10.55,
        "mean_cites_female_no_outlier": 7.63,
        "welch_t": -2.18,
        "welch_df": 86,
        "welch_p": 0.032,
        "i10_share_female": 23.0,
        "i10_share_male": 38.0,
        "i10_chi2": 3.69,
        "i10_p": 0.055,
    },
    "F5": {
        "gs_s2_r": 0.334,
    },
    "F6": {
        "novice_female_authors": 44.8,
        "novice_male_authors": 36.4,
        "novice_chi2": 7.419,
        "novice_p": 0.00645,
    },
    "F8": {
        "pc_sector_chi2": 0.522,
        "pc_sector_p": 0.77,
        "author_sector_chi2": 1.629,
        "author_sector_p": 0.443,
    },
    "COVERAGE": {
        "manual_pct": 95.18,
        "genderize_pct": 1.79,
        "unknown_pct": 3.03,
        "gs_coverage_known": 69.65,
        "gs_coverage_overall": 68.3,
        "gs_s2_r": 0.334,
    },
}


def validate_targets() -> None:
    """Cross-check the target tables against the paper's totals.

    Raises AssertionError when an internal inconsistency sneaks in; run
    by the test suite and at world-build time.
    """
    confs = CONFERENCES_2017
    assert sum(c.papers for c in confs) == TOTALS["papers"]
    assert sum(c.unique_authors for c in confs) == TOTALS["conference_unique_authors"]
    assert sum(c.author_positions for c in confs) == TOTALS["author_positions"]
    assert sum(c.pc_size for c in confs) == TOTALS["pc_memberships"]
    assert sum(c.pc_chairs for c in confs) == TOTALS["pc_chairs"]
    assert sum(c.keynotes for c in confs) == TOTALS["keynotes"]
    assert sum(c.panelists for c in confs) == TOTALS["panelists"]
    assert sum(c.session_chairs for c in confs) == TOTALS["session_chairs"]
    # §3.2: 18.46% of PC memberships are women
    pc_women = sum(c.pc_women for c in confs)
    assert abs(pc_women / TOTALS["pc_memberships"] - TOTALS["pc_far"]) < 0.005, pc_women
    # §3.2: excluding SC, 16.1%
    non_sc = [c for c in confs if c.name != "SC"]
    rate = sum(c.pc_women for c in non_sc) / sum(c.pc_size for c in non_sc)
    assert abs(rate - 0.161) < 0.005, rate
    # §3.3: zero-women counts
    assert sum(1 for c in confs if c.keynote_women == 0) == 4
    assert sum(1 for c in confs if c.pc_chair_women == 0) == 4
    zero_sc = [c for c in confs if c.session_chair_women == 0]
    assert {c.name for c in zero_sc} == {"HPDC", "HiPC", "HPCC"}
    assert sum(c.session_chairs for c in zero_sc) == 45
    # Table 3 totals are consistent with the region list
    assert len(REGION_ROLE_TARGETS) == 15
