"""Metrics registry unit tests and the pipeline determinism guarantee."""

import pytest

from repro.faults import FaultConfig
from repro.obs import ObsContext
from repro.obs.metrics import MetricsRegistry
from repro.pipeline import run_pipeline
from repro.util.parallel import ParallelConfig

pytestmark = pytest.mark.obs


class TestRegistry:
    def test_counters_accumulate(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 4)
        assert m.counters["a"] == 5

    def test_gauges_overwrite(self):
        m = MetricsRegistry()
        m.set_gauge("g", 1.5)
        m.set_gauge("g", 2.5)
        assert m.gauges["g"] == 2.5

    def test_histogram_buckets(self):
        m = MetricsRegistry()
        for v in (0.5, 3, 7, 5000):
            m.observe("h", v, buckets=(1, 5, 10))
        h = m.histograms["h"]
        assert h["counts"] == [1, 1, 1, 1]  # <=1, <=5, <=10, overflow
        assert h["count"] == 4
        assert h["sum"] == pytest.approx(5010.5)

    def test_merge_is_additive(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        b.inc("c", 3)
        b.inc("d")
        a.observe("h", 1, buckets=(1, 2))
        b.observe("h", 2, buckets=(1, 2))
        a.merge(b)
        assert a.counters == {"c": 5, "d": 1}
        assert a.histograms["h"]["counts"] == [1, 1, 0]

    def test_merge_rejects_mismatched_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 1, buckets=(1, 2))
        b.observe("h", 1, buckets=(5, 6))
        with pytest.raises(ValueError, match="mismatched buckets"):
            a.merge(b)

    def test_to_dict_sorted_and_timing_excluded(self):
        m = MetricsRegistry()
        m.inc("z")
        m.inc("a")
        m.set_gauge("time.stage.ingest", 0.5)
        m.set_gauge("pipeline.rows", 10)
        d = m.to_dict(exclude_timings=True)
        assert list(d["counters"]) == ["a", "z"]
        assert "time.stage.ingest" not in d["gauges"]
        assert d["gauges"]["pipeline.rows"] == 10
        assert "time.stage.ingest" in m.to_dict()["gauges"]


class TestPipelineDeterminism:
    def test_two_seeded_runs_identical_metrics(self, small_world):
        runs = []
        for _ in range(2):
            obs = ObsContext(seed=small_world.seed)
            run_pipeline(world=small_world, obs=obs, validation="repair")
            runs.append(obs)
        assert runs[0].metrics.to_dict(exclude_timings=True) == runs[1].metrics.to_dict(
            exclude_timings=True
        )
        assert runs[0].tracer.identity() == runs[1].tracer.identity()

    def test_metrics_independent_of_worker_count(self, small_world):
        def run(workers):
            obs = ObsContext(seed=small_world.seed)
            run_pipeline(
                world=small_world,
                obs=obs,
                faults=FaultConfig(rate=0.3, seed=5),
                parallel=ParallelConfig(workers=workers, min_items_per_worker=1),
            )
            return obs

        serial, parallel = run(1), run(2)
        assert serial.metrics.to_dict(True) == parallel.metrics.to_dict(True)
        assert serial.tracer.identity() == parallel.tracer.identity()

    def test_pipeline_populates_expected_series(self, small_world):
        obs = ObsContext(seed=small_world.seed)
        result = run_pipeline(world=small_world, obs=obs)
        c = obs.metrics.counters
        g = obs.metrics.gauges
        assert c["harvest.editions"] == len(result.linked.conferences)
        assert c["enrich.rows"] == len(result.dataset.researchers)
        assert g["pipeline.researchers"] == result.dataset.researchers.num_rows
        assert any(k.startswith("time.stage.") for k in g)
        assert obs.metrics.histograms["harvest.papers_per_edition"]["count"] == c[
            "harvest.editions"
        ]

    def test_fault_metrics_feed_registry(self, small_world):
        obs = ObsContext(seed=small_world.seed)
        result = run_pipeline(
            world=small_world, obs=obs, faults=FaultConfig(rate=0.4, seed=3)
        )
        c = obs.metrics.counters
        assert sum(v for k, v in c.items() if k.startswith("faults.injected.")) > 0
        assert c.get("faults.retries", 0) == result.degraded.retries

    def test_contract_metrics_feed_registry(self, small_world):
        obs = ObsContext(seed=small_world.seed)
        result = run_pipeline(
            world=small_world,
            obs=obs,
            faults=FaultConfig(rate=0.4, seed=3),
            validation="repair",
        )
        c = obs.metrics.counters
        dispositions = len(result.contracts.quarantine.entries)
        counted = sum(
            v
            for k, v in c.items()
            if k.startswith(("contracts.repaired.", "contracts.held.", "contracts.flagged."))
        )
        assert counted == dispositions


class TestTabularMetrics:
    def test_groupby_and_join_counted_under_context(self):
        from repro.obs.context import use
        from repro.tabular import Table, inner_join

        left = Table.from_records(
            [{"k": "a", "x": 1}, {"k": "b", "x": 2}, {"k": "a", "x": 3}]
        )
        right = Table.from_records([{"k": "a", "y": 10}, {"k": "b", "y": 20}])
        obs = ObsContext(seed=0)
        with use(obs):
            joined = inner_join(left, right, on="k")
            left.groupby("k").size()
        assert obs.metrics.counters["tabular.join.calls"] == 1
        assert obs.metrics.counters["tabular.join.rows_out"] == joined.num_rows
        assert obs.metrics.counters["tabular.groupby.calls"] >= 1
        assert obs.metrics.counters["tabular.groupby.rows_in"] >= 3

    def test_no_context_no_counting(self):
        from repro.obs.context import current

        assert current().enabled is False


class TestSnapshotKeyOrder:
    """Regression: metrics.json key order must not depend on worker merge order."""

    def test_histogram_registration_order_does_not_leak(self):
        """Workers can register histograms in any order; the snapshot sorts."""
        import json

        def build(order):
            main = MetricsRegistry()
            for name in order:
                worker = MetricsRegistry()
                worker.observe(name, 5)
                # simulate the serialization boundary: buckets arrive as lists
                worker.histograms[name]["buckets"] = list(
                    worker.histograms[name]["buckets"]
                )
                main.merge(worker)
            return main

        a = build(["harvest.papers_per_edition", "enrich.citations"])
        b = build(["enrich.citations", "harvest.papers_per_edition"])
        # byte-identical WITHOUT sort_keys: insertion order is already sorted
        assert json.dumps(a.to_dict()) == json.dumps(b.to_dict())
        assert list(a.to_dict()["histograms"]) == sorted(a.to_dict()["histograms"])

    def test_histogram_inner_fields_are_sorted(self):
        m = MetricsRegistry()
        m.observe("h", 3)
        snap = m.to_dict()["histograms"]["h"]
        assert list(snap) == ["buckets", "count", "counts", "sum"]

    def test_parallel_pipeline_snapshot_is_byte_stable(self, small_world):
        """The end-to-end guarantee: serial and 3-worker runs serialize alike."""
        import json

        def snapshot(workers):
            obs = ObsContext(seed=small_world.seed)
            run_pipeline(
                world=small_world,
                obs=obs,
                parallel=ParallelConfig(workers=workers, min_items_per_worker=1)
                if workers
                else None,
            )
            return json.dumps(obs.metrics.to_dict(exclude_timings=True))

        assert snapshot(0) == snapshot(3)
