"""Synthetic world generation.

Builds the ground-truth researcher population, conference editions,
papers, committees, careers, and citation histories — all calibrated to
the published marginals in :mod:`repro.calibration.targets` and all
driven by named RNG streams so the world is a pure function of the seed.

Submodules (build order):

- :mod:`repro.synth.config`      — :class:`WorldConfig` (seed, scale).
- :mod:`repro.synth.careers`     — experience bands, publication counts,
  career citation vectors with exact target h-index.
- :mod:`repro.synth.citegen`     — per-paper citation attractiveness.
- :mod:`repro.synth.population`  — the people pools (gender, country,
  sector, names, web evidence, emails, affiliations).
- :mod:`repro.synth.papers`      — paper/authorship construction with
  first/last-position gender quotas.
- :mod:`repro.synth.committees`  — PC and visible-role staffing.
- :mod:`repro.synth.timeline`    — SC/ISC 2016–2020 mini-editions.
- :mod:`repro.synth.shards`      — conference×edition shard identity for
  the scaled universe (:class:`~repro.synth.shards.ShardPlan`).
- :mod:`repro.synth.world`       — the orchestrator producing a
  :class:`~repro.synth.world.SyntheticWorld`.
"""

from repro.synth.config import WorldConfig
from repro.synth.shards import ShardPlan, ShardSpec
from repro.synth.world import SyntheticWorld, build_world

__all__ = ["WorldConfig", "ShardPlan", "ShardSpec", "SyntheticWorld", "build_world"]
