"""Tests for the offline PEP 517/660 build backend."""

import sys
import zipfile
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "_build"))

import offline_backend  # noqa: E402


class TestBackend:
    def test_version_matches_package(self):
        import repro

        assert offline_backend.VERSION == repro.__version__

    def test_editable_wheel_contains_pth(self, tmp_path):
        name = offline_backend.build_editable(str(tmp_path))
        with zipfile.ZipFile(tmp_path / name) as zf:
            names = zf.namelist()
            pth = next(n for n in names if n.endswith(".pth"))
            target = zf.read(pth).decode().strip()
        assert Path(target) == (ROOT / "src").resolve()
        assert any(n.endswith("METADATA") for n in names)
        assert any(n.endswith("RECORD") for n in names)

    def test_regular_wheel_contains_package(self, tmp_path):
        name = offline_backend.build_wheel(str(tmp_path))
        with zipfile.ZipFile(tmp_path / name) as zf:
            names = set(zf.namelist())
        assert "repro/__init__.py" in names
        assert "repro/pipeline/runner.py" in names
        assert not any(n.endswith(".pyc") for n in names)

    def test_metadata_lists_dependencies(self, tmp_path):
        di = offline_backend.prepare_metadata_for_build_editable(str(tmp_path))
        metadata = (tmp_path / di / "METADATA").read_text()
        assert "Requires-Dist: numpy" in metadata
        assert "Name: repro" in metadata

    def test_no_build_requirements(self):
        assert offline_backend.get_requires_for_build_editable() == []
        assert offline_backend.get_requires_for_build_wheel() == []

    def test_record_hashes_verify(self, tmp_path):
        import base64
        import hashlib

        name = offline_backend.build_editable(str(tmp_path))
        with zipfile.ZipFile(tmp_path / name) as zf:
            record = next(n for n in zf.namelist() if n.endswith("RECORD"))
            entries = zf.read(record).decode().strip().splitlines()
            for line in entries:
                fname, digest, _size = line.rsplit(",", 2)
                if not digest:
                    continue
                data = zf.read(fname)
                expect = base64.urlsafe_b64encode(
                    hashlib.sha256(data).digest()
                ).rstrip(b"=").decode()
                assert digest == f"sha256={expect}"
