"""Tests for multiple-comparison corrections."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.stats.multiple import (
    bonferroni,
    holm_bonferroni,
    significant_after_correction,
)

p_lists = st.lists(st.floats(0, 1), min_size=1, max_size=30)


class TestBonferroni:
    def test_known_values(self):
        out = bonferroni([0.01, 0.04, 0.03])
        assert np.allclose(out, [0.03, 0.12, 0.09])

    def test_clipped_at_one(self):
        assert bonferroni([0.5, 0.5]).max() == 1.0

    def test_nan_passthrough(self):
        out = bonferroni([0.01, np.nan])
        assert np.isnan(out[1])
        assert out[0] == pytest.approx(0.01)  # m counts observed tests only

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            bonferroni([1.5])
        with pytest.raises(ValueError):
            bonferroni([[0.1]])


class TestHolm:
    def test_known_example(self):
        # classic: p = (0.01, 0.04, 0.03), m=3
        # sorted: 0.01*3=0.03; 0.03*2=0.06; 0.04*1=0.04 -> monotone: 0.06
        out = holm_bonferroni([0.01, 0.04, 0.03])
        assert np.allclose(out, [0.03, 0.06, 0.06])

    def test_monotone_in_rank(self):
        p = np.array([0.001, 0.01, 0.02, 0.9])
        adj = holm_bonferroni(p)
        order = np.argsort(p)
        assert (np.diff(adj[order]) >= -1e-12).all()

    @given(p_lists)
    def test_holm_no_larger_than_bonferroni(self, ps):
        holm = holm_bonferroni(ps)
        bonf = bonferroni(ps)
        assert (holm <= bonf + 1e-12).all()

    @given(p_lists)
    def test_adjusted_at_least_raw(self, ps):
        adj = holm_bonferroni(ps)
        assert (adj >= np.asarray(ps) - 1e-12).all()

    def test_single_test_unchanged(self):
        assert holm_bonferroni([0.04])[0] == pytest.approx(0.04)


class TestSignificance:
    def test_mask(self):
        sig = significant_after_correction([0.001, 0.2, np.nan], alpha=0.05)
        assert sig.tolist() == [True, False, False]

    def test_methods_agree_on_extremes(self):
        ps = [1e-10, 0.99]
        for method in ("holm", "bonferroni"):
            sig = significant_after_correction(ps, method=method)
            assert sig.tolist() == [True, False]

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            significant_after_correction([0.01], method="fdr")

    def test_paper_battery_strong_results_survive(self, full_result):
        """Apply Holm to the reproduction's own test battery: the clearly
        significant findings (PC≫authors, citation gap) must survive."""
        from repro.analysis import far_report, pc_report, reception_report

        ds = full_result.dataset
        pc = pc_report(ds)
        rec = reception_report(ds)
        far = far_report(ds)
        battery = {
            "pc_vs_authors": pc.pc_vs_authors.p_value,
            "citations": rec.welch_no_outlier.p_value,
            "i10": rec.i10_test.p_value,
            "last_vs_all": far.last_vs_all.p_value,
        }
        sig = significant_after_correction(list(battery.values()))
        by_name = dict(zip(battery, sig))
        assert by_name["pc_vs_authors"]
        assert by_name["citations"]
        assert not by_name["last_vs_all"]  # nonsignificant raw, stays so
