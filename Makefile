# Canonical targets for the reproduction.

PYTHON ?= python
FAULT_RATE ?= 0.5

# run straight from the source tree; harmless when pip-installed
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: install test faults contracts obs engine ledger chaos serve serve-test bench-serve tabular-bench scale scale-bench regress engine-demo audit bench examples artifact report trace profile verify-all clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test: faults contracts engine
	$(PYTHON) -m pytest tests/

# resilience suite at an elevated, env-tunable fault rate
faults:
	REPRO_FAULT_RATE=$(FAULT_RATE) $(PYTHON) -m pytest tests/ -m faults

# data-contract suite (schemas, repair heuristics, integrity audit)
contracts:
	$(PYTHON) -m pytest tests/ -m contracts

# observability suite (trace spans, metrics registry, export formats)
obs:
	$(PYTHON) -m pytest tests/ -m obs

# stage-DAG engine suite (fingerprints, DAG ordering, artifact cache)
engine:
	$(PYTHON) -m pytest tests/ -m engine

# run-ledger suite (event log, run records, sentinel, dashboard, runs CLI)
ledger:
	$(PYTHON) -m pytest tests/ -m ledger

# the analysis-as-a-service front door (Ctrl-C / SIGTERM drains gracefully)
serve:
	$(PYTHON) -m repro --cache-dir out/cache serve

# serving-layer suite (admission, deadlines, coalescing, ETags, drain)
serve-test:
	$(PYTHON) -m pytest tests/serve -m serve

# serving benchmark: warm/cold ratio, p50/p99, shed behaviour at 2x overload
bench-serve:
	$(PYTHON) -m pytest benchmarks/bench_serve.py --benchmark-only

# tabular kernel benchmark: factorized groupby/join/agg vs the legacy
# per-row loops; enforces the >=5x band at the 1e5-row scale
tabular-bench:
	$(PYTHON) -m pytest benchmarks/bench_tabular.py --benchmark-only

# sharded-scaling suite (shard plans, worker-count determinism,
# per-shard cache invalidation, committee-quorum floor)
scale:
	$(PYTHON) -m pytest tests/ -m scale

# sharded-scaling benchmark: a 36-shard 10^5-researcher universe end to
# end, plus the peak-RSS-vs-shard-count band (writes BENCH_scale.json)
scale-bench:
	$(PYTHON) -m pytest benchmarks/bench_scale.py --benchmark-only

# chaos suite: supervised execution under injected node/cache faults,
# quarantine/repair, and end-to-end heal-to-100% runs
chaos:
	$(PYTHON) -m pytest tests/engine tests/faults -m chaos

# the standing determinism check: two identical-seed ledgered runs must
# show zero scientific drift (the sentinel exits non-zero on any drifted
# cell; the generous timing threshold keeps machine noise out of it)
regress:
	rm -rf out/regress
	$(PYTHON) -m repro --ledger --obs-dir out/regress --seed 7 --scale 0.25 run
	$(PYTHON) -m repro --ledger --obs-dir out/regress --seed 7 --scale 0.25 run
	$(PYTHON) -m repro --obs-dir out/regress runs diff
	$(PYTHON) -m repro --obs-dir out/regress runs regress --threshold 3.0

# cold run populates the artifact cache; the repeat run is served
# entirely from it (every stage line reports "(cache hit)")
engine-demo:
	$(PYTHON) -m repro --cache-dir out/cache run
	$(PYTHON) -m repro --cache-dir out/cache run

# strict end-to-end validation of the seed world: any contract
# violation or unbalanced conservation check exits non-zero
audit:
	$(PYTHON) -m repro --validate=strict run

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for s in examples/*.py; do echo "== $$s"; $(PYTHON) $$s --help >/dev/null 2>&1 || true; done
	$(PYTHON) examples/quickstart.py --scale 0.25

artifact:
	$(PYTHON) -m repro export out/artifact

report:
	$(PYTHON) -m repro report --output out/report.md

# Chrome trace + deterministic metrics for one seeded run (chrome://tracing)
trace:
	$(PYTHON) -m repro --trace --metrics --obs-dir out/obs run

# per-stage cProfile top-N on stdout
profile:
	$(PYTHON) -m repro --profile run

verify-all: test bench
	$(PYTHON) examples/regenerate_paper.py > out/regenerate.txt

clean:
	rm -rf out benchmarks/output .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
