"""Admission control: bounded executors, bounded waiters, shed the rest."""

import threading
import time

import pytest

from repro.serve import Admission, AdmissionController

pytestmark = pytest.mark.serve


class TestBounds:
    def test_admits_up_to_max_concurrency(self):
        gate = AdmissionController(max_concurrency=3, queue_depth=0)
        assert [gate.acquire(0.0) for _ in range(3)] == [Admission.ADMITTED] * 3
        assert gate.executing == 3

    def test_sheds_immediately_beyond_the_queue(self):
        """The defining property: a full queue sheds NOW, it never blocks."""
        gate = AdmissionController(max_concurrency=1, queue_depth=0)
        assert gate.acquire(5.0) is Admission.ADMITTED
        t0 = time.perf_counter()
        assert gate.acquire(5.0) is Admission.SHED
        assert time.perf_counter() - t0 < 0.5  # no wait despite the 5s budget
        assert gate.waiting == 0

    def test_backlog_is_bounded_by_construction(self):
        """executing + waiting can never exceed the configured bounds."""
        gate = AdmissionController(max_concurrency=2, queue_depth=3)
        for _ in range(2):
            assert gate.acquire(0.0) is Admission.ADMITTED
        results: list[Admission] = []
        threads = [
            threading.Thread(target=lambda: results.append(gate.acquire(2.0)))
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        time.sleep(0.2)  # let every thread reach the gate
        # beyond 3 waiters, the other 5 were shed without blocking
        assert results.count(Admission.SHED) == 5
        assert gate.waiting == 3
        for _ in range(5):
            gate.release()  # 2 executors release + headroom wakes the queue
        for t in threads:
            t.join(timeout=5)
        assert results.count(Admission.ADMITTED) == 3

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrency=0, queue_depth=1)
        with pytest.raises(ValueError):
            AdmissionController(max_concurrency=1, queue_depth=-1)


class TestQueueing:
    def test_release_wakes_a_waiter(self):
        gate = AdmissionController(max_concurrency=1, queue_depth=1)
        assert gate.acquire(0.0) is Admission.ADMITTED
        got: list[Admission] = []
        t = threading.Thread(target=lambda: got.append(gate.acquire(5.0)))
        t.start()
        time.sleep(0.05)
        assert gate.waiting == 1
        gate.release()
        t.join(timeout=5)
        assert got == [Admission.ADMITTED]
        assert gate.executing == 1 and gate.waiting == 0

    def test_queue_wait_past_deadline_times_out(self):
        gate = AdmissionController(max_concurrency=1, queue_depth=1)
        assert gate.acquire(0.0) is Admission.ADMITTED
        t0 = time.perf_counter()
        assert gate.acquire(0.05) is Admission.TIMEOUT
        assert 0.04 <= time.perf_counter() - t0 < 2.0
        assert gate.waiting == 0  # the waiter cleaned up after itself


class TestDrain:
    def test_drain_refuses_new_work(self):
        gate = AdmissionController(max_concurrency=2, queue_depth=2)
        gate.drain()
        assert gate.acquire(1.0) is Admission.DRAINING

    def test_drain_wakes_queued_waiters(self):
        gate = AdmissionController(max_concurrency=1, queue_depth=2)
        assert gate.acquire(0.0) is Admission.ADMITTED
        got: list[Admission] = []
        threads = [
            threading.Thread(target=lambda: got.append(gate.acquire(30.0)))
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        time.sleep(0.05)
        gate.drain()
        for t in threads:
            t.join(timeout=5)  # woken immediately, not after 30s
        assert got == [Admission.DRAINING, Admission.DRAINING]

    def test_wait_idle_returns_when_work_finishes(self):
        gate = AdmissionController(max_concurrency=1, queue_depth=0)
        assert gate.acquire(0.0) is Admission.ADMITTED
        threading.Timer(0.05, gate.release).start()
        assert gate.wait_idle(5.0) is True

    def test_wait_idle_gives_up_after_the_grace(self):
        gate = AdmissionController(max_concurrency=1, queue_depth=0)
        assert gate.acquire(0.0) is Admission.ADMITTED  # never released
        t0 = time.perf_counter()
        assert gate.wait_idle(0.05) is False
        assert time.perf_counter() - t0 < 2.0
