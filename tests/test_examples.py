"""Every example script must run to completion (CI-style check)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

#: script -> extra args keeping runtime reasonable
CASES = {
    "quickstart.py": ["--scale", "0.2"],
    "regenerate_paper.py": ["--seed", "7"],
    "sensitivity_audit.py": ["--seed", "7"],
    "audit_custom_conference.py": [],
    "inference_shootout.py": ["--seed", "7"],
    "collaboration_patterns.py": ["--seed", "7"],
    "systems_universe.py": ["--scale", "0.2"],
    "review_bias_bounds.py": [],
    "parity_forecast.py": ["--years", "40"],
    "explore_dataset.py": [],
}


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(CASES), (
        "examples and CASES out of sync: "
        f"missing={scripts - set(CASES)}, stale={set(CASES) - scripts}"
    )


@pytest.mark.parametrize("script,args", CASES.items(), ids=list(CASES))
def test_example_runs(script, args):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{script} produced no output"
