"""Tests for reception (Fig. 2) and experience (Figs. 3-6) analyses."""

import numpy as np
import pytest

from repro.analysis import experience_report, reception_report
from repro.analysis.experience import band_of_h


class TestReception:
    def test_sample_sizes(self, small_result):
        rep = reception_report(small_result.dataset)
        assert rep.n_female_lead > 0
        assert rep.n_male_lead > rep.n_female_lead

    def test_outlier_excluded_when_large(self, small_result):
        rep = reception_report(small_result.dataset)
        if rep.outlier_citations is not None:
            assert rep.outlier_citations >= 100
            assert rep.mean_female_no_outlier < rep.mean_female

    def test_direction_matches_paper(self, small_result):
        rep = reception_report(small_result.dataset)
        # women's papers (outlier excluded) average fewer citations
        assert rep.mean_female_no_outlier < rep.mean_male
        assert rep.i10_female < rep.i10_male

    def test_kdes_integrate(self, small_result):
        rep = reception_report(small_result.dataset)
        assert rep.kde_male is not None
        assert rep.kde_male.integral() == pytest.approx(1.0, abs=0.05)

    def test_threshold_disables_exclusion(self, small_result):
        rep = reception_report(small_result.dataset, outlier_threshold=10**9)
        assert rep.outlier_citations is None
        assert rep.mean_female_no_outlier == pytest.approx(rep.mean_female)


class TestBands:
    def test_band_of_h(self):
        assert band_of_h(0) == "novice"
        assert band_of_h(12.9) == "novice"
        assert band_of_h(13) == "mid-career"
        assert band_of_h(18) == "mid-career"
        assert band_of_h(19) == "experienced"

    def test_band_of_nan_rejected(self):
        with pytest.raises(ValueError):
            band_of_h(float("nan"))


class TestExperience:
    def test_gs_coverage_band(self, small_result):
        exp = experience_report(small_result.dataset)
        assert 0.55 < exp.gs_coverage_known_gender < 0.85

    def test_low_gs_s2_correlation(self, small_result):
        exp = experience_report(small_result.dataset)
        # the paper's central point: the two services disagree (r≈0.33)
        assert 0.1 < exp.gs_s2_correlation.r < 0.65
        assert exp.gs_s2_correlation.significant()

    def test_group_distributions_right_skewed(self, small_result):
        exp = experience_report(small_result.dataset)
        for g in exp.groups:
            if g.gs_pubs.n >= 30:
                assert g.gs_pubs.mean > g.gs_pubs.median

    def test_pc_more_experienced(self, small_result):
        exp = experience_report(small_result.dataset)
        by_key = {(g.role, g.gender): g for g in exp.groups}
        for gender in ("F", "M"):
            assert (
                by_key[("pc", gender)].gs_pubs.median
                >= by_key[("author", gender)].gs_pubs.median
            )

    def test_women_more_novice(self, small_result):
        # At 0.25 scale only ~30 GS-linked female authors remain, so allow
        # sampling slack; the strict direction check runs on the full world
        # in tests/integration/test_reproduction.py.
        exp = experience_report(small_result.dataset)
        assert exp.novice_female_authors > exp.novice_male_authors - 0.10

    def test_band_shares_sum_to_one(self, small_result):
        exp = experience_report(small_result.dataset)
        for shares in exp.band_shares.values():
            assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)

    def test_men_pull_right(self, small_result):
        """'there appear to be relatively more male authors in experienced
        or senior positions' (§5.1)."""
        exp = experience_report(small_result.dataset)
        f = exp.band_shares[("author", "F")]["experienced"]
        m = exp.band_shares[("author", "M")]["experienced"]
        assert m > f
