"""Tests for population planning from custom conference targets."""

import pytest

from repro.calibration.targets import CONFERENCES_2017, TOTALS
from repro.synth.population import plan_from_targets


class TestPlanFromTargets:
    def test_paper_targets_recover_paper_pools(self):
        plan = plan_from_targets(CONFERENCES_2017)
        assert plan.unique_authors == pytest.approx(
            TOTALS["unique_coauthors"], rel=0.01
        )
        assert plan.unique_pc == pytest.approx(
            TOTALS["unique_pc_members"], rel=0.01
        )

    def test_far_is_weighted_mean(self):
        plan = plan_from_targets(CONFERENCES_2017)
        share = plan.women_authors / plan.unique_authors
        assert share == pytest.approx(TOTALS["far_overall"], abs=0.01)

    def test_pc_far(self):
        plan = plan_from_targets(CONFERENCES_2017)
        share = plan.women_pc / plan.unique_pc
        assert share == pytest.approx(TOTALS["pc_far"], abs=0.01)

    def test_repeat_factors(self):
        plan_loose = plan_from_targets(CONFERENCES_2017, author_repeat=1.0)
        plan_tight = plan_from_targets(CONFERENCES_2017, author_repeat=2.0)
        assert plan_loose.unique_authors > plan_tight.unique_authors

    def test_minimum_pool_sizes(self):
        tiny = [CONFERENCES_2017[2]]  # ISC: 99 unique authors
        plan = plan_from_targets(tiny)
        assert plan.unique_authors >= 2
        assert plan.women_authors >= 1
