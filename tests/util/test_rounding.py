"""Tests for largest-remainder apportionment."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.rounding import largest_remainder, proportional_ints, round_preserving_sum


class TestLargestRemainder:
    def test_exact_division(self):
        out = largest_remainder(np.array([1.0, 1.0]), 10)
        assert out.tolist() == [5, 5]

    def test_remainder_goes_to_largest_fraction(self):
        # quotas 3.3, 6.7 -> floor 3, 6; leftover goes to the .7
        out = largest_remainder(np.array([3.3, 6.7]), 10)
        assert out.tolist() == [3, 7]

    def test_zero_total(self):
        assert largest_remainder(np.array([1.0, 2.0]), 0).sum() == 0

    def test_zero_weight_cells_get_nothing(self):
        out = largest_remainder(np.array([0.0, 1.0]), 5)
        assert out.tolist() == [0, 5]

    def test_2d_shape_preserved(self):
        w = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = largest_remainder(w, 10)
        assert out.shape == (2, 2)
        assert out.sum() == 10

    def test_negative_total_raises(self):
        with pytest.raises(ValueError):
            largest_remainder(np.array([1.0]), -1)

    def test_negative_weights_raise(self):
        with pytest.raises(ValueError):
            largest_remainder(np.array([-1.0, 2.0]), 3)

    def test_all_zero_weights_with_positive_total_raise(self):
        with pytest.raises(ValueError):
            largest_remainder(np.array([0.0, 0.0]), 3)

    def test_tie_broken_by_index(self):
        out = largest_remainder(np.array([1.0, 1.0, 1.0]), 2)
        assert out.tolist() == [1, 1, 0]

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_sum_invariant(self, weights, total):
        out = largest_remainder(np.array(weights), total)
        assert out.sum() == total
        assert (out >= 0).all()

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100), min_size=2, max_size=10),
        st.integers(min_value=1, max_value=1000),
    )
    def test_within_one_of_quota(self, weights, total):
        w = np.array(weights)
        out = largest_remainder(w, total)
        quota = w * total / w.sum()
        assert (np.abs(out - quota) < 1.0 + 1e-9).all()


class TestRoundPreservingSum:
    def test_identity_on_integers(self):
        v = np.array([1.0, 2.0, 3.0])
        assert round_preserving_sum(v).tolist() == [1, 2, 3]

    def test_sum_is_rounded_total(self):
        v = np.array([1.4, 1.4, 1.4])  # sum 4.2 -> 4
        out = round_preserving_sum(v)
        assert out.sum() == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            round_preserving_sum(np.array([-0.5, 1.0]))

    def test_all_zero(self):
        assert round_preserving_sum(np.zeros(3)).sum() == 0


def test_proportional_ints_alias():
    assert proportional_ints(np.array([2.0, 1.0]), 9).tolist() == [6, 3]
