"""The run ledger: determinism split, append-only store, event streams."""

import json

import pytest

from repro.obs import ObsContext, RunLedger, RunRecord, build_run_record
from repro.obs.ledger import body_digest, scientific_cells
from repro.pipeline import EngineConfig, RunConfig, run_pipeline
from repro.synth import WorldConfig

pytestmark = [pytest.mark.obs, pytest.mark.ledger]


def _ledgered_run(seed=11, scale=0.1, **kw):
    obs = ObsContext(seed=seed)
    config = RunConfig(
        world=WorldConfig(seed=seed, scale=scale), obs=obs, **kw
    )
    result = run_pipeline(config)
    return build_run_record(result, config=config, command="test"), obs


class TestDeterminism:
    def test_identical_seed_runs_have_byte_identical_bodies(self):
        """The acceptance property: same seed => same body, byte for byte.

        Wall-clock facts live exclusively in the ``timing`` sub-object,
        which the digest never covers.
        """
        a, _ = _ledgered_run(seed=11)
        b, _ = _ledgered_run(seed=11)
        canon = lambda body: json.dumps(body, sort_keys=True)  # noqa: E731
        assert canon(a.body) == canon(b.body)
        assert a.digest == b.digest == body_digest(a.body)
        # wall-clock facts live only under ``timing``, never in the body
        assert "timing" not in a.body and "unix_time" not in canon(a.body)

    def test_different_seed_changes_scientific_digest(self):
        a, _ = _ledgered_run(seed=11)
        b, _ = _ledgered_run(seed=12)
        assert a.body["digests"]["scientific"] != b.body["digests"]["scientific"]
        assert a.config_fingerprint != b.config_fingerprint

    def test_timing_keys_mirror_stage_keys(self):
        rec, _ = _ledgered_run()
        assert set(rec.timing["stages"]) == set(rec.body["stages"])
        assert rec.timing["total"] >= 0
        assert "unix_time" in rec.timing


class TestScientificCells:
    def test_headline_cells_present(self, small_result):
        cells = scientific_cells(small_result)
        for key in (
            "far.overall", "far.lead", "far.last", "far.last_vs_all.chi2",
            "blind.authors.chi2", "pc.memberships", "pc.chairs",
        ):
            assert key in cells
        # per-conference drill-down cells exist for the core conferences
        assert "far.SC.authors" in cells and "pc.SC" in cells

    def test_cells_land_sorted_in_the_body(self, small_result):
        rec = build_run_record(small_result)
        keys = list(rec.body["scientific"])
        assert keys == sorted(keys)
        assert rec.body["digests"]["scientific"] == body_digest(
            rec.body["scientific"]
        )


class TestLedgerStore:
    def test_append_assigns_sequential_prefixed_ids(self, tmp_path, small_result):
        ledger = RunLedger(tmp_path)
        rec = build_run_record(small_result)
        first = ledger.append(rec)
        second = ledger.append(rec)
        assert first.run_id.startswith("run-0001-")
        assert second.run_id.startswith("run-0002-")
        assert first.run_id.endswith(rec.digest[:10])

    def test_round_trip_preserves_everything(self, tmp_path, small_result):
        ledger = RunLedger(tmp_path)
        rec = ledger.append(build_run_record(small_result))
        back = ledger.records()[-1]
        assert back.to_dict() == rec.to_dict()

    def test_torn_tail_line_is_skipped(self, tmp_path, small_result):
        ledger = RunLedger(tmp_path)
        ledger.append(build_run_record(small_result))
        with open(ledger.path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": 1, "run_id": "run-0002')  # crashed writer
        assert len(ledger.records()) == 1
        # and the next append still works, numbering past the good records
        nxt = ledger.append(build_run_record(small_result))
        assert nxt.run_id.startswith("run-0002-")

    def test_get_by_prefix(self, tmp_path, small_result):
        ledger = RunLedger(tmp_path)
        rec = ledger.append(build_run_record(small_result))
        assert ledger.get("run-0001").run_id == rec.run_id
        with pytest.raises(KeyError, match="no run"):
            ledger.get("run-9999")

    def test_event_stream_written_beside_the_ledger(self, tmp_path):
        rec, obs = _ledgered_run()
        ledger = RunLedger(tmp_path)
        identified = ledger.append(rec, events=obs.events)
        stream = ledger.events_path(identified.run_id)
        assert stream.exists()
        lines = [json.loads(l) for l in stream.read_text().splitlines()]
        assert len(lines) == len(obs.events)
        assert {e["type"] for e in lines} >= {"run.start", "run.end"}


class TestWarmEngineRun:
    def test_warm_run_records_cache_hits_for_every_stage(self, tmp_path):
        """The acceptance property: a warm engine run is all cache.hit."""
        engine = EngineConfig(cache_dir=str(tmp_path / "cache"))
        cold, _ = _ledgered_run(engine=engine)
        warm, obs = _ledgered_run(engine=engine)
        assert cold.body["cache"]["misses"] > 0
        stages = set(warm.body["stages"])
        hit_names = {e.name for e in obs.events.by_type("cache.hit")}
        assert hit_names == stages
        assert warm.body["cache"] == {"hits": len(stages), "misses": 0}
        assert all(info["cached"] for info in warm.body["stages"].values())
        # warm and cold agree on the science even though execution differed
        assert (
            warm.body["digests"]["scientific"]
            == cold.body["digests"]["scientific"]
        )


class TestRecordShape:
    def test_record_without_obs_still_has_stages_and_science(self, small_result):
        rec = build_run_record(small_result)
        assert rec.body["stages"] and rec.body["scientific"]
        assert rec.body["events"] == {}
        assert rec.schema == 1

    def test_from_dict_tolerates_unknown_future_fields(self):
        rec = RunRecord.from_dict(
            {"schema": 2, "body": {"meta": {}}, "timing": {}, "novel": True}
        )
        assert rec.schema == 2 and rec.body == {"meta": {}}
