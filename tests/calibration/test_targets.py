"""Consistency tests for the calibration constants."""

import pytest

from repro.calibration.targets import (
    CONFERENCES_2017,
    COUNTRY_TARGETS,
    PAPER_STATS,
    REGION_ROLE_TARGETS,
    SECTOR_SHARES,
    TOTALS,
    validate_targets,
)


class TestTable1:
    def test_validate_passes(self):
        validate_targets()

    def test_table1_verbatim(self):
        by_name = {c.name: c for c in CONFERENCES_2017}
        assert by_name["SC"].papers == 61
        assert by_name["SC"].unique_authors == 325
        assert by_name["SC"].acceptance_rate == 0.187
        assert by_name["IPDPS"].papers == 116
        assert by_name["HPCC"].acceptance_rate == 0.438
        assert by_name["ISC"].country == "DE"
        assert by_name["HiPC"].country == "IN"

    def test_nine_conferences(self):
        assert len(CONFERENCES_2017) == 9

    def test_only_sc_isc_double_blind(self):
        db = {c.name for c in CONFERENCES_2017 if c.double_blind}
        assert db == {"SC", "ISC"}

    def test_only_sc_isc_diversity_chair(self):
        dc = {c.name for c in CONFERENCES_2017 if c.diversity_chair}
        assert dc == {"SC", "ISC"}

    def test_submitted_consistent_with_acceptance(self):
        for c in CONFERENCES_2017:
            assert abs(c.papers / c.submitted - c.acceptance_rate) < 0.01


class TestGeo:
    def test_table2_top10_verbatim(self):
        top = COUNTRY_TARGETS[:10]
        assert (top[0].cca2, top[0].total, top[0].pct_women) == ("US", 1408, 15.38)
        assert (top[7].cca2, top[7].total, top[7].pct_women) == ("JP", 63, 1.59)

    def test_fig7_has_25_countries(self):
        assert len(COUNTRY_TARGETS) == 25

    def test_table3_author_totals(self):
        total = sum(r.author_total for r in REGION_ROLE_TARGETS)
        assert total == 1740  # sum of the printed column

    def test_table3_ordered_by_authors(self):
        totals = [r.author_total for r in REGION_ROLE_TARGETS]
        assert totals == sorted(totals, reverse=True)


class TestShares:
    def test_sector_shares_sum_to_one(self):
        assert sum(SECTOR_SHARES.values()) == pytest.approx(1.0)

    def test_coverage_splits_sum_to_one(self):
        s = (
            TOTALS["manual_coverage"]
            + TOTALS["genderize_coverage"]
            + TOTALS["unknown_rate"]
        )
        assert s == pytest.approx(1.0, abs=0.001)

    def test_paper_stats_have_core_experiments(self):
        for key in ["S3.1", "S3.2", "S3.3", "S4.1", "F2", "F6", "F8", "COVERAGE"]:
            assert key in PAPER_STATS
