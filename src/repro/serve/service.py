"""The analysis service: cache-backed queries with graceful degradation.

:class:`AnalysisService` is the transport-free core of ``repro serve``
— the HTTP layer (:mod:`repro.serve.http`) only parses requests and
writes responses; every serving decision lives here, so the robustness
contracts are unit-testable without sockets:

- **Three-tier warm path.**  A query is served from the in-process
  body cache (identical endpoint+params seen before), else from the
  in-process dataset memo (same config, different endpoint), else from
  the on-disk content-addressed engine cache, else by a cold engine
  run.  ETags derive from the same fingerprints that key the engine
  cache, so a client replaying ``If-None-Match`` gets a 304 without
  touching any tier.
- **Request coalescing.**  N identical in-flight configs trigger one
  engine run (single-flight keyed by ``RunConfig.fingerprint()``); the
  other N−1 requests wait on the first run's completion event.
- **Deadlines.**  A request waits at most its budget for the cold run;
  on expiry it answers 504 with partial-result metadata (the stages
  completed so far).  The run itself keeps going and lands in the warm
  set, so the client's retry is a cache read.
- **Circuit breaking.**  Each config fingerprint gets its own
  :class:`~repro.faults.breaker.CircuitBreaker` around cold-path
  execution: a config that keeps failing degrades to fast 503s while
  every other config — and the whole warm path — keeps serving.
- **Deterministic chaos.**  With a :class:`~repro.faults.chaos.ChaosConfig`,
  each request draws a fault from a seed-derived plan keyed by request
  identity and per-identity ordinal.  Same seed + same request sequence
  ⇒ byte-identical response bodies, which is what the chaos determinism
  tests assert.

Every decision emits a typed ``serve.*`` event into the unified event
log; the session's counters land in the run ledger on drain.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.engine.fingerprint import fingerprint
from repro.faults.breaker import CircuitBreaker
from repro.faults.chaos import ChaosKind, ChaosPlan
from repro.faults.errors import CircuitOpenError
from repro.obs.events import EventLog
from repro.pipeline.config import RunConfig
from repro.serve.config import ServeConfig
from repro.serve.encode import (
    blind_payload,
    canonical_json,
    error_payload,
    far_payload,
    sensitivity_payload,
)
from repro.util.timing import StageTimer

__all__ = ["AnalysisService", "ServeResponse", "ANALYSIS_ENDPOINTS"]

#: the analysis endpoints under /v1/ (``runs`` is routed separately)
ANALYSIS_ENDPOINTS = ("far", "blind", "sensitivity")

#: bumped when response shapes change, so ETags from an old server
#: never validate against a new one's bodies
SERVE_SCHEMA = 1

_DATASET_MEMO = 8     # configs held in memory (each is a full dataset)
_BODY_MEMO = 512      # rendered bodies held in memory (small JSON blobs)


@dataclass(frozen=True)
class ServeResponse:
    """One transport-free response: status, canonical body, headers."""

    status: int
    body: bytes
    headers: tuple[tuple[str, str], ...] = ()

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 400


class _BadRequest(ValueError):
    """A request parameter failed validation (→ 400)."""


class _DeadlineExceeded(Exception):
    """The cold run outlived the request budget (→ 504)."""

    def __init__(self, stages: list[str], waiters: int) -> None:
        super().__init__("deadline exceeded")
        self.stages = stages
        self.waiters = waiters


class _ColdRunFailed(Exception):
    """The cold engine run raised (→ 503, breaker already charged)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class _InFlight:
    """Single-flight state for one config fingerprint."""

    event: threading.Event = field(default_factory=threading.Event)
    timer: StageTimer = field(default_factory=StageTimer)
    result: Any = None          # AnalysisDataset on success
    source: str = "cold"        # "cold" | "disk"
    error: str | None = None
    waiters: int = 0


class AnalysisService:
    """Answer analysis queries out of the engine cache, degrade gracefully."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self._lock = threading.Lock()
        self._datasets: OrderedDict[str, Any] = OrderedDict()
        self._bodies: OrderedDict[tuple, bytes] = OrderedDict()
        self._inflight: dict[str, _InFlight] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._counters: dict[str, int] = {}
        self._chaos = ChaosPlan(config.chaos) if config.chaos is not None else None
        self._chaos_seen: dict[str, int] = {}
        self.events = EventLog()
        self._draining = False

    # ------------------------------------------------------------ accounting

    def _count(self, key: str, by: int = 1) -> None:
        self._counters[key] = self._counters.get(key, 0) + by

    def _emit(self, type: str, name: str = "", **attrs: Any) -> None:
        with self._lock:
            self.events.emit(type, name, **attrs)

    def counters(self) -> dict[str, int]:
        """A sorted snapshot of the session counters."""
        with self._lock:
            return {k: self._counters[k] for k in sorted(self._counters)}

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------ lifecycle

    def begin_drain(self) -> None:
        """Flip readiness off; in-flight work continues, new work is refused."""
        self._draining = True
        self._emit("serve.drain", "begin")

    def session_record(self):
        """The serve session as a ledger record (body = counters, no timing)."""
        from repro.obs.ledger import build_service_record
        from repro.version import __version__

        meta = {
            "command": "serve",
            "version": __version__,
            "seed": self.config.seed,
            "scale": self.config.scale,
            "chaos": self.config.chaos is not None,
            "engine": self.config.cache_dir is not None,
        }
        return build_service_record(meta, self.counters())

    def flush_ledger(self) -> str | None:
        """Append the session record + event stream; returns the run id."""
        if self.config.obs_dir is None:
            return None
        from repro.obs.ledger import RunLedger

        self._emit("serve.drain", "flush")
        ledger = RunLedger(Path(self.config.obs_dir) / "ledger")
        identified = ledger.append(self.session_record(), events=self.events)
        return identified.run_id

    # --------------------------------------------------------------- routing

    def handle(
        self,
        path: str,
        query: dict[str, str],
        if_none_match: str | None = None,
        deadline_s: float | None = None,
    ) -> ServeResponse:
        """Serve one admitted request; never raises.

        ``path`` is the URL path (``/v1/far``), ``query`` the parsed
        query parameters, ``deadline_s`` the remaining request budget
        (defaults to the configured one).
        """
        self._count_emit("requests", "serve.request", path)
        try:
            if not path.startswith("/v1/"):
                return self._error(404, "not-found", f"no route {path!r}")
            tail = path[len("/v1/"):].strip("/")
            if tail == "runs" or tail.startswith("runs/"):
                return self._handle_runs(tail, if_none_match)
            if tail not in ANALYSIS_ENDPOINTS:
                return self._error(404, "not-found", f"no endpoint {tail!r}")
            return self._handle_analysis(tail, query, if_none_match, deadline_s)
        except _BadRequest as exc:
            return self._error(400, "bad-request", str(exc))
        except Exception as exc:  # belt: a handler bug must not 500
            self._emit("serve.error", path, error=type(exc).__name__)
            return self._error(
                503, "internal", f"{type(exc).__name__}: {exc}", retry_after=True
            )

    def _count_emit(self, counter: str, event: str, name: str, **attrs: Any) -> None:
        with self._lock:
            self._count(counter)
            self.events.emit(event, name, **attrs)

    # ------------------------------------------------------------- analysis

    def _handle_analysis(
        self,
        endpoint: str,
        query: dict[str, str],
        if_none_match: str | None,
        deadline_s: float | None,
    ) -> ServeResponse:
        seed, scale, conference, deadline = self._params(query, deadline_s)
        rc = RunConfig.for_query(
            seed,
            scale,
            shards=self.config.shards,
            shard_workers=self.config.shard_workers,
            cache_dir=self.config.cache_dir,
        )
        fp = rc.fingerprint()
        identity = f"{endpoint}:{fp[:16]}" + (
            f":{conference}" if conference is not None else ""
        )

        # deterministic chaos behind the handler: drawn per request
        # identity+ordinal, before any cache tier, so injected faults
        # hit warm and cold paths alike — and identically across
        # same-seed sessions given the same request sequence
        injected = self._chaos_draw(identity)
        if injected is ChaosKind.EXCEPTION or injected is ChaosKind.HANG:
            with self._lock:
                self._count("chaos.injected")
                self._breaker(fp).record_failure()
            if injected is ChaosKind.EXCEPTION:
                return self._error(
                    503, "injected-fault",
                    f"chaos: injected exception serving {identity}",
                    retry_after=True,
                )
            return ServeResponse(
                504,
                canonical_json(
                    error_payload(
                        "injected-hang",
                        f"chaos: injected hang serving {identity}",
                        partial={"stages": [], "state": "hung"},
                    )
                ),
                headers=(("Retry-After", self._retry_after),),
            )

        etag = self._etag(endpoint, fp, conference)
        if if_none_match is not None and etag in {
            t.strip() for t in if_none_match.split(",")
        }:
            self._count_emit(
                "not_modified", "serve.not_modified", endpoint, etag=etag.strip('"')
            )
            return ServeResponse(304, b"", headers=(("ETag", etag),))

        body_key = (endpoint, fp, conference)
        with self._lock:
            body = self._bodies.get(body_key)
            if body is not None:
                self._bodies.move_to_end(body_key)
                self._count("hits.body")
        if body is None:
            try:
                ds, source = self._dataset(rc, fp, deadline)
            except CircuitOpenError:
                self._count_emit(
                    "breaker_open", "serve.breaker_open", endpoint, config=fp[:16]
                )
                return self._error(
                    503, "circuit-open",
                    f"cold path for config {fp[:16]} is circuit-broken",
                    retry_after=True,
                )
            except _ColdRunFailed as exc:
                self._count_emit("cold_failures", "serve.error", endpoint,
                                 error="cold-run")
                return self._error(
                    503, "cold-run-failed", exc.reason, retry_after=True
                )
            except _DeadlineExceeded as exc:
                self._count_emit("deadline", "serve.deadline", endpoint,
                                 config=fp[:16])
                return ServeResponse(
                    504,
                    canonical_json(
                        error_payload(
                            "deadline-exceeded",
                            f"cold run for config {fp[:16]} outlived the "
                            f"request budget; it continues in the background",
                            partial={
                                "stages_completed": exc.stages,
                                "state": "executing",
                                "coalesced_waiters": exc.waiters,
                            },
                            config_fingerprint=fp,
                        )
                    ),
                    headers=(("Retry-After", self._retry_after),),
                )
            with self._lock:
                self._count(f"hits.{source}" if source != "cold" else "cold_runs")
            body = self._render(endpoint, ds, seed, scale, fp, conference)
            if isinstance(body, ServeResponse):  # unknown conference → 404
                return body
            with self._lock:
                self._bodies[body_key] = body
                while len(self._bodies) > _BODY_MEMO:
                    self._bodies.popitem(last=False)
        self._count_emit("responses.200", "serve.response", endpoint, status=200)
        return ServeResponse(
            200,
            body,
            headers=(
                ("ETag", etag),
                ("Cache-Control", "no-cache"),
            ),
        )

    def _render(
        self, endpoint: str, ds: Any, seed: int, scale: float,
        fp: str, conference: str | None,
    ) -> bytes | ServeResponse:
        # analysis imports are lazy, mirroring repro.obs.ledger: the
        # service core must import without the full analysis stack
        from repro.analysis.blind import blind_report
        from repro.analysis.far import far_report
        from repro.analysis.sensitivity import sensitivity_report

        if endpoint == "far":
            report = far_report(ds)
            if conference is not None and not any(
                c.conference == conference for c in report.by_conference
            ):
                known = ",".join(c.conference for c in report.by_conference)
                return self._error(
                    404, "unknown-conference",
                    f"no conference {conference!r} (known: {known})",
                )
            payload = far_payload(report, seed, scale, fp, conference)
        elif endpoint == "blind":
            payload = blind_payload(blind_report(ds), seed, scale, fp)
        else:
            payload = sensitivity_payload(sensitivity_report(ds), seed, scale, fp)
        return canonical_json(payload)

    # ------------------------------------------------------------ parameters

    def _params(
        self, query: dict[str, str], deadline_s: float | None
    ) -> tuple[int, float, str | None, float]:
        allowed = {"seed", "scale", "conference", "deadline"}
        unknown = sorted(set(query) - allowed)
        if unknown:
            raise _BadRequest(
                f"unknown parameter(s) {','.join(unknown)} "
                f"(allowed: {','.join(sorted(allowed))})"
            )
        try:
            seed = int(query.get("seed", self.config.seed))
        except ValueError:
            raise _BadRequest(f"seed must be an integer, got {query['seed']!r}")
        try:
            scale = float(query.get("scale", self.config.scale))
        except ValueError:
            raise _BadRequest(f"scale must be a number, got {query['scale']!r}")
        if not 0.0 < scale <= self.config.max_scale:
            raise _BadRequest(
                f"scale must be in (0, {self.config.max_scale}], got {scale}"
            )
        deadline = self.config.deadline_s if deadline_s is None else deadline_s
        if "deadline" in query:
            try:
                requested = float(query["deadline"])
            except ValueError:
                raise _BadRequest(
                    f"deadline must be a number, got {query['deadline']!r}"
                )
            if requested <= 0:
                raise _BadRequest(f"deadline must be > 0, got {requested}")
            # a request may tighten its budget, never extend the server's
            deadline = min(deadline, requested)
        return seed, scale, query.get("conference"), deadline

    # ----------------------------------------------------------------- etag

    def _etag(self, endpoint: str, fp: str, conference: str | None) -> str:
        """Content-addressed validator, derivable without running anything.

        Folds the serve schema, the endpoint, and the config fingerprint
        — the exact digest the engine cache keys on — so a match means
        "the bytes you hold are what the cache would serve", and a 304
        costs no cache tier at all.
        """
        digest = fingerprint(
            "serve", SERVE_SCHEMA, endpoint, fp, conference or ""
        )
        return f'"{digest[:32]}"'

    # ---------------------------------------------------------------- chaos

    def _chaos_draw(self, identity: str) -> ChaosKind | None:
        if self._chaos is None:
            return None
        with self._lock:
            ordinal = self._chaos_seen.get(identity, 0) + 1
            self._chaos_seen[identity] = ordinal
        kind = self._chaos.draw_node(identity, ordinal)
        if kind is not None:
            self._emit(
                "fault.injected", identity, kind=kind.value, site="serve", n=ordinal
            )
        return kind

    # ------------------------------------------------------------- the runs

    def _breaker(self, fp: str) -> CircuitBreaker:
        """The per-config breaker (caller holds the lock)."""
        breaker = self._breakers.get(fp)
        if breaker is None:
            breaker = CircuitBreaker(f"serve:{fp[:16]}", self.config.breaker)
            self._breakers[fp] = breaker
        return breaker

    def _dataset(self, rc: RunConfig, fp: str, deadline: float) -> tuple[Any, str]:
        """The analysis dataset for one config: memo, coalesce, or run."""
        owner = False
        with self._lock:
            ds = self._datasets.get(fp)
            if ds is not None:
                self._datasets.move_to_end(fp)
                return ds, "memory"
            fl = self._inflight.get(fp)
            if fl is None:
                self._breaker(fp).check()  # CircuitOpenError → 503
                fl = _InFlight()
                self._inflight[fp] = fl
                owner = True
            else:
                fl.waiters += 1
                self._count("coalesced")
                self.events.emit("serve.coalesced", fp[:16], waiters=fl.waiters)
        if owner:
            threading.Thread(
                target=self._compute, args=(rc, fp, fl), daemon=True
            ).start()
        if not fl.event.wait(deadline):
            raise _DeadlineExceeded(
                stages=sorted(fl.timer.durations), waiters=fl.waiters
            )
        if fl.error is not None:
            raise _ColdRunFailed(fl.error)
        return fl.result, fl.source

    def _compute(self, rc: RunConfig, fp: str, fl: _InFlight) -> None:
        """Cold path, run in its own thread so deadlines can expire past it."""
        # engine imports are lazy for the same cycle reasons as the
        # pipeline runner's (_run_engine)
        from repro.engine import PipelineParams, build_graph, run_dag

        try:
            if rc.shards is not None:
                from repro.pipeline.sharded import run_sharded

                res = run_sharded(rc)
                ds = res.dataset
                executed = res.executed_shards + (0 if res.merge_cache_hit else 1)
            else:
                params = PipelineParams(world_config=rc.world)
                graph = build_graph(params)
                run = run_dag(graph, params, engine=rc.engine, timer=fl.timer)
                ds = run["dataset"]
                executed = run.executed
        except Exception as exc:
            with self._lock:
                fl.error = f"{type(exc).__name__}: {exc}"
                self._breaker(fp).record_failure()
                self._inflight.pop(fp, None)
        else:
            with self._lock:
                fl.result = ds
                fl.source = "disk" if executed == 0 else "cold"
                self._breaker(fp).record_success()
                self._datasets[fp] = ds
                while len(self._datasets) > _DATASET_MEMO:
                    self._datasets.popitem(last=False)
                self._inflight.pop(fp, None)
        finally:
            fl.event.set()

    # ------------------------------------------------------------------ runs

    def _handle_runs(self, tail: str, if_none_match: str | None) -> ServeResponse:
        if self.config.obs_dir is None:
            return self._error(404, "no-ledger", "server has no ledger configured")
        from repro.obs.ledger import RunLedger

        ledger = RunLedger(Path(self.config.obs_dir) / "ledger")
        run_id = tail[len("runs/"):] if tail.startswith("runs/") else ""
        if not run_id:
            body = canonical_json(
                {"runs": [r.run_id for r in ledger.records()]}
            )
            self._count_emit("responses.200", "serve.response", "runs", status=200)
            return ServeResponse(200, body)
        try:
            record = ledger.get(run_id)
        except KeyError as exc:
            return self._error(404, "unknown-run", str(exc))
        etag = f'"{record.digest[:32]}"'
        if if_none_match is not None and etag in {
            t.strip() for t in if_none_match.split(",")
        }:
            self._count_emit("not_modified", "serve.not_modified", "runs")
            return ServeResponse(304, b"", headers=(("ETag", etag),))
        self._count_emit("responses.200", "serve.response", "runs", status=200)
        return ServeResponse(
            200, canonical_json(record.to_dict()), headers=(("ETag", etag),)
        )

    # ---------------------------------------------------------------- errors

    @property
    def _retry_after(self) -> str:
        return str(max(1, round(self.config.retry_after_s)))

    def _error(
        self, status: int, code: str, message: str, retry_after: bool = False
    ) -> ServeResponse:
        self._count_emit(
            f"responses.{status}", "serve.response", code, status=status
        )
        headers: tuple[tuple[str, str], ...] = ()
        if retry_after:
            headers = (("Retry-After", self._retry_after),)
        return ServeResponse(
            status, canonical_json(error_payload(code, message)), headers=headers
        )

    # ------------------------------------------------- shed/timeout replies
    # (built here so the HTTP layer never hand-rolls a body)

    def shed_response(self) -> ServeResponse:
        self._count_emit("shed", "serve.shed", "admission")
        return ServeResponse(
            429,
            canonical_json(
                error_payload(
                    "overloaded",
                    "admission queue is full; retry after the hinted delay",
                )
            ),
            headers=(("Retry-After", self._retry_after),),
        )

    def queue_timeout_response(self) -> ServeResponse:
        self._count_emit("deadline", "serve.deadline", "admission")
        return ServeResponse(
            504,
            canonical_json(
                error_payload(
                    "deadline-exceeded",
                    "request spent its whole budget waiting for an "
                    "execution slot",
                    partial={"stages_completed": [], "state": "queued"},
                )
            ),
            headers=(("Retry-After", self._retry_after),),
        )

    def draining_response(self) -> ServeResponse:
        self._count_emit("rejected_draining", "serve.response", "draining",
                         status=503)
        return ServeResponse(
            503,
            canonical_json(
                error_payload("draining", "server is draining; not accepting work")
            ),
            headers=(("Retry-After", self._retry_after),),
        )
