"""Rendering of the degraded-coverage report.

Turns a :class:`~repro.faults.degradation.DegradedCoverage` into the
markdown section the run report and the CLI print, putting the
reproduction's injected losses side by side with the coverage gaps the
paper itself worked under (68.3% GS coverage, 3.03% unresolved
genders).
"""

from __future__ import annotations

from repro.faults.degradation import DegradedCoverage

__all__ = ["render_degraded"]


def render_degraded(dc: DegradedCoverage) -> str:
    """Markdown section describing what a faulted run lost."""
    lines: list[str] = []
    add = lines.append
    add("## Degraded coverage (fault model)")
    add("")
    add(f"- editions harvested: {dc.harvested_editions}/{dc.total_editions}")
    dropped = dc.dropped_editions
    if dropped:
        add(f"- editions dropped: {len(dropped)} ({', '.join(dropped)})")
    malformed = dc.malformed_editions
    if malformed:
        add(f"- editions scraped from malformed pages: {len(malformed)} "
            f"({', '.join(malformed)})")
    persons = dc.dropped_persons
    if persons:
        add(f"- person lookups lost to faults: {len(persons)}")
    if dc.resumed_editions:
        add(f"- editions resumed from checkpoint: {len(dc.resumed_editions)}")
    per_stage = dc.per_stage()
    if per_stage:
        add(f"- losses per stage: "
            + ", ".join(f"{k}={v}" for k, v in per_stage.items()))
    if dc.fault_counts:
        add(f"- injected faults: "
            + ", ".join(f"{k}={v}" for k, v in sorted(dc.fault_counts.items())))
    add(f"- service calls: "
        + (", ".join(f"{k}={v}" for k, v in sorted(dc.service_calls.items()))
           or "none"))
    add(f"- retries: {dc.retries}, exhausted: {dc.exhausted}, "
        f"breaker opens: {dc.breaker_opens}, "
        f"virtual time: {dc.virtual_time:.2f}s")
    if not dc.is_degraded:
        add("- no data was lost: every service call eventually succeeded")
    return "\n".join(lines)
