"""Benchmark CHAOS: supervision overhead and recovery under faults.

The robustness bar: wrapping the engine in a
:class:`~repro.engine.supervise.Supervisor` must cost under 5% on the
fault-free path (it only adds per-node bookkeeping — no sleeping, the
backoff clock is virtual), and a run under a fixed chaos rate must
complete by retrying through the injected faults.  ``extra_info``
records the retry/quarantine accounting so ``BENCH_chaos.json`` shows
not just how fast the harness is but what it survived.
"""

import time

import pytest

from repro.faults.chaos import ChaosConfig, ChaosPlan
from repro.pipeline import EngineConfig, RunConfig, run_pipeline
from repro.synth import WorldConfig

# robustness benches measure harness overhead, not pipeline throughput:
# the small world keeps the fault-free baseline fast enough to repeat
SMALL = WorldConfig(seed=11, scale=0.25)
NODES = ("world", "ingest", "link", "enrich", "infer", "dataset", "finalize")


def _cfg(chaos=None, supervise=False, cache_dir=None) -> RunConfig:
    from repro.engine import SupervisorConfig

    return RunConfig(
        world=SMALL,
        engine=EngineConfig(
            cache_dir=None if cache_dir is None else str(cache_dir),
            supervise=SupervisorConfig() if supervise else None,
            chaos=chaos,
        ),
    )


def _healing_chaos(rate: float = 0.3) -> ChaosConfig:
    """A seed that injects faults every node can retry through."""
    for seed in range(3000):
        cfg = ChaosConfig(rate=rate, seed=seed, node_weights=(1.0, 0.0))
        plan = ChaosPlan(cfg)
        draws = {n: [plan.draw_node(n, a) for a in (1, 2, 3)] for n in NODES}
        if any(d[0] is not None for d in draws.values()) and all(
            any(x is None for x in d) for d in draws.values()
        ):
            return cfg
    raise AssertionError("no healing chaos seed found")


def test_supervised_faultfree(benchmark):
    """Fault-free run under supervision — the overhead acceptance bench.

    Alternating min-of-N comparison against the bare engine: minima
    discard scheduler noise, alternation cancels thermal drift.  The
    supervised minimum must stay within 5% of the bare one.
    """
    res = benchmark(run_pipeline, _cfg(supervise=True))
    benchmark.extra_info["researchers"] = res.dataset.researchers.num_rows

    bare, supervised = [], []
    for _ in range(3):
        t0 = time.perf_counter()
        run_pipeline(_cfg())
        bare.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_pipeline(_cfg(supervise=True))
        supervised.append(time.perf_counter() - t0)
    overhead = min(supervised) / min(bare) - 1.0
    benchmark.extra_info["bare_seconds"] = round(min(bare), 3)
    benchmark.extra_info["supervised_seconds"] = round(min(supervised), 3)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 2)
    assert overhead < 0.05, f"supervision overhead {overhead:.1%} >= 5%"


def test_chaos_recovery(benchmark):
    """Full run at a fixed injected-fault rate: completes by retrying."""
    chaos = _healing_chaos()

    def run():
        return run_pipeline(_cfg(chaos=chaos))

    res = benchmark(run)
    degraded = res.degraded
    assert degraded is not None and degraded.node_retries >= 1
    assert not degraded.is_degraded  # healed: nothing was lost
    benchmark.extra_info["chaos_rate"] = chaos.rate
    benchmark.extra_info["chaos_seed"] = chaos.seed
    benchmark.extra_info["node_retries"] = degraded.node_retries
    benchmark.extra_info["virtual_backoff_seconds"] = round(
        degraded.virtual_time, 3
    )


def test_quarantine_heal_cycle(benchmark, tmp_path_factory):
    """Heal a fully poisoned cache: quarantine + recompute every node."""
    from repro.engine import ArtifactCache

    torn = ChaosConfig(rate=0.0, write_rate=1.0, seed=2)

    def poison():
        cache_dir = tmp_path_factory.mktemp("poisoned")
        run_pipeline(_cfg(chaos=torn, cache_dir=cache_dir))
        return (cache_dir,), {}

    def heal(cache_dir):
        return run_pipeline(_cfg(cache_dir=cache_dir)), cache_dir

    (res, cache_dir) = benchmark.pedantic(heal, setup=poison, rounds=3)
    cache = ArtifactCache(cache_dir)
    quarantined = len(cache.quarantined())
    assert quarantined == len(NODES)
    assert cache.verify()["quarantined"] == []
    benchmark.extra_info["entries_quarantined_per_round"] = quarantined
