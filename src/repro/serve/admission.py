"""Bounded admission control with load shedding.

The server's thread-per-connection model needs a hard bound between
"connection accepted" and "analysis work running", or overload turns
into unbounded concurrent engine runs.  The
:class:`AdmissionController` provides that bound: at most
``max_concurrency`` requests execute at once, at most ``queue_depth``
more wait for a slot, and everything beyond that is **shed
immediately** (the handler answers 429 + ``Retry-After`` and the
connection thread exits).  Backlog is therefore bounded by
construction — overload costs shed requests, never memory.

Decisions are explicit (:class:`Admission`) rather than boolean so the
handler can map each outcome to its own status code: shed → 429,
queue-wait past the request deadline → 504, drain → 503.
"""

from __future__ import annotations

import enum
import threading
import time

__all__ = ["Admission", "AdmissionController"]


class Admission(enum.Enum):
    """Outcome of one admission attempt."""

    ADMITTED = "admitted"
    SHED = "shed"          # queue full: reject now, never block
    TIMEOUT = "timeout"    # waited in the queue past the deadline
    DRAINING = "draining"  # server is shutting down; no new work


class AdmissionController:
    """Counting gate: bounded executors, bounded waiters, sheds the rest."""

    def __init__(self, max_concurrency: int, queue_depth: int) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        self.max_concurrency = max_concurrency
        self.queue_depth = queue_depth
        self._cond = threading.Condition()
        self._executing = 0
        self._waiting = 0
        self._draining = False

    # ------------------------------------------------------------ properties

    @property
    def executing(self) -> int:
        with self._cond:
            return self._executing

    @property
    def waiting(self) -> int:
        with self._cond:
            return self._waiting

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    # -------------------------------------------------------------- admitting

    def acquire(self, timeout_s: float) -> Admission:
        """Try to admit one request, waiting at most ``timeout_s``.

        Returns :attr:`Admission.ADMITTED` with an execution slot held
        (the caller must :meth:`release`), or a rejection — which never
        holds anything.
        """
        with self._cond:
            if self._draining:
                return Admission.DRAINING
            if self._executing < self.max_concurrency:
                self._executing += 1
                return Admission.ADMITTED
            if self._waiting >= self.queue_depth:
                return Admission.SHED
            self._waiting += 1
            try:
                deadline = time.monotonic() + timeout_s
                while self._executing >= self.max_concurrency:
                    if self._draining:
                        return Admission.DRAINING
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return Admission.TIMEOUT
                    self._cond.wait(remaining)
                self._executing += 1
                return Admission.ADMITTED
            finally:
                self._waiting -= 1

    def release(self) -> None:
        """Return an execution slot and wake one waiter."""
        with self._cond:
            self._executing -= 1
            self._cond.notify_all()

    # ---------------------------------------------------------------- drain

    def drain(self) -> None:
        """Stop admitting; wake every queued waiter so it can 503 out."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def wait_idle(self, grace_s: float) -> bool:
        """Block until no request is executing (or the grace runs out)."""
        deadline = time.monotonic() + grace_s
        with self._cond:
            while self._executing > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True
