"""Gaussian kernel density estimation for the paper's density figures.

Figures 2–5 are density plots (citations; past publications; h-index).
This module provides a vectorized Gaussian KDE with Silverman's rule of
thumb, evaluated on an explicit grid — the same construction R's
``geom_density`` uses by default (Silverman there is ``bw.nrd0``).

The evaluation is a single broadcasted NumPy expression (grid × sample),
which for the paper's sample sizes (hundreds to low thousands) is far
faster than per-point Python loops; see the project's optimization notes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["silverman_bandwidth", "gaussian_kde", "KdeResult"]

_SQRT_2PI = float(np.sqrt(2.0 * np.pi))


def silverman_bandwidth(sample: np.ndarray) -> float:
    """Silverman's rule-of-thumb bandwidth (R's ``bw.nrd0``).

    ``0.9 * min(sd, IQR/1.34) * n^{-1/5}``, with fallbacks when the IQR
    or sd degenerate to zero.
    """
    v = np.asarray(sample, dtype=np.float64)
    v = v[~np.isnan(v)]
    n = v.size
    if n < 2:
        raise ValueError("bandwidth requires at least 2 observations")
    sd = float(np.std(v, ddof=1))
    q1, q3 = np.percentile(v, [25, 75])
    iqr = float(q3 - q1)
    spread = min(sd, iqr / 1.34) if iqr > 0 else sd
    if spread <= 0:
        spread = max(abs(float(v[0])), 1.0)
    return 0.9 * spread * n ** (-0.2)


@dataclass(frozen=True)
class KdeResult:
    """A density estimate evaluated on a grid."""

    grid: np.ndarray
    density: np.ndarray
    bandwidth: float
    n: int

    def integral(self) -> float:
        """Trapezoid integral of the density over the grid (≈1)."""
        return float(np.trapezoid(self.density, self.grid))

    def mode(self) -> float:
        """Grid point of maximum density."""
        return float(self.grid[int(np.argmax(self.density))])


def gaussian_kde(
    sample,
    grid=None,
    bandwidth: float | None = None,
    num_points: int = 256,
    cut: float = 3.0,
    log_scale: bool = False,
) -> KdeResult:
    """Estimate a Gaussian KDE of ``sample`` on ``grid``.

    Parameters
    ----------
    sample:
        Numeric observations (NaN dropped).
    grid:
        Evaluation points; default spans
        ``[min - cut*bw, max + cut*bw]`` with ``num_points`` points.
    bandwidth:
        Kernel bandwidth; default Silverman.
    log_scale:
        Estimate the density of ``log10(1 + x)`` instead (the paper's
        experience figures use log-scaled axes for right-skewed counts).
        The returned grid is in the transformed coordinates.
    """
    v = np.asarray(sample, dtype=np.float64)
    v = v[~np.isnan(v)]
    if v.size < 2:
        raise ValueError("KDE requires at least 2 observations")
    if log_scale:
        if np.any(v < 0):
            raise ValueError("log_scale requires nonnegative data")
        v = np.log10(1.0 + v)
    bw = silverman_bandwidth(v) if bandwidth is None else float(bandwidth)
    if bw <= 0:
        raise ValueError(f"bandwidth must be positive, got {bw}")
    if grid is None:
        lo = float(v.min()) - cut * bw
        hi = float(v.max()) + cut * bw
        grid = np.linspace(lo, hi, num_points)
    else:
        grid = np.asarray(grid, dtype=np.float64)
    # (G, 1) - (1, N) broadcast: one pass, no Python loop.
    z = (grid[:, None] - v[None, :]) / bw
    dens = np.exp(-0.5 * z * z).sum(axis=1) / (v.size * bw * _SQRT_2PI)
    return KdeResult(grid=grid, density=dens, bandwidth=bw, n=int(v.size))
