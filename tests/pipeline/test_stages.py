"""Tests for the individual pipeline stages."""

import numpy as np
import pytest

from repro.confmodel.roles import Role
from repro.pipeline import (
    enrich_researchers,
    infer_genders,
    ingest_world,
    link_identities,
)
from repro.harvest.webindex import build_name_keyed_evidence
from repro.util.parallel import ParallelConfig


@pytest.fixture(scope="module")
def harvested(small_world):
    return ingest_world(small_world)


@pytest.fixture(scope="module")
def linked(harvested):
    return link_identities(harvested)


class TestIngest:
    def test_nine_conferences(self, harvested):
        assert len(harvested) == 9
        assert {h.conference for h in harvested} == {
            "CCGrid", "IPDPS", "ISC", "HPDC", "ICPP", "EuroPar", "SC", "HiPC", "HPCC",
        }

    def test_ordered_by_date(self, harvested):
        dates = [h.date for h in harvested]
        assert dates == sorted(dates)

    def test_parallel_matches_serial(self, small_world, harvested):
        par = ingest_world(
            small_world, parallel=ParallelConfig(workers=3, min_items_per_worker=1)
        )
        assert [h.conference for h in par] == [h.conference for h in harvested]
        assert [len(h.papers) for h in par] == [len(h.papers) for h in harvested]
        for a, b in zip(par, harvested):
            assert [p.author_names for p in a.papers] == [
                p.author_names for p in b.papers
            ]


class TestLink:
    def test_authors_and_roles_linked(self, linked, small_world):
        # every truth person who participated should appear (collisions aside)
        n_truth = len(small_world.registry.people)
        assert linked.researchers
        assert abs(len(linked.researchers) - n_truth) / n_truth < 0.05

    def test_paper_author_ids_resolve(self, linked):
        for paper in linked.papers[:50]:
            for rid in paper.author_ids:
                assert rid in linked.researchers

    def test_roles_aggregated_per_person(self, linked):
        multi = [r for r in linked.researchers.values() if len(r.roles) > 1]
        assert multi  # repeats exist (PC members on several conferences etc.)

    def test_emails_collected(self, linked):
        with_email = [r for r in linked.researchers.values() if r.emails]
        assert with_email

    def test_is_author_is_pc_flags(self, linked):
        some_pc = [r for r in linked.researchers.values() if r.is_pc_member]
        some_author = [r for r in linked.researchers.values() if r.is_author]
        assert some_pc and some_author

    def test_by_name(self, linked):
        rec = next(iter(linked.researchers.values()))
        assert linked.by_name(rec.full_name) is rec
        assert linked.by_name("No Such Person Xyz") is None


class TestEnrich:
    def test_enrichment_fields(self, linked, small_world):
        enr = enrich_researchers(linked, small_world.gs_store, small_world.s2_store)
        assert set(enr) == set(linked.researchers)
        vals = list(enr.values())
        gs_cov = np.mean([e.has_gs for e in vals])
        assert 0.5 < gs_cov < 0.9
        country_cov = np.mean([e.country_code is not None for e in vals])
        assert country_cov > 0.5

    def test_country_prefers_email(self, linked, small_world):
        enr = enrich_researchers(linked, small_world.gs_store, small_world.s2_store)
        # a researcher with a ccTLD email must resolve to that country
        for rid, rec in linked.researchers.items():
            for email in rec.emails:
                tld = email.rsplit(".", 1)[-1]
                if tld == "de":
                    assert enr[rid].country_code == "DE"
                    return

    def test_s2_coverage_for_authors(self, linked, small_world):
        enr = enrich_researchers(linked, small_world.gs_store, small_world.s2_store)
        authors = [rid for rid, r in linked.researchers.items() if r.is_author]
        cov = np.mean([enr[rid].s2_publications is not None for rid in authors])
        assert cov > 0.95


class TestInfer:
    def test_coverage_split(self, linked, small_world):
        avail, truth = build_name_keyed_evidence(
            small_world.registry,
            small_world.evidence_availability,
            small_world.true_genders,
        )
        out = infer_genders(linked, avail, truth, seed=small_world.seed)
        assert out.coverage["manual"] > 0.9
        assert out.coverage["none"] < 0.06
        assert out.genderize_queries > 0
        assert out.manual_lookups == len(linked.researchers)

    def test_assignments_deterministic(self, linked, small_world):
        avail, truth = build_name_keyed_evidence(
            small_world.registry,
            small_world.evidence_availability,
            small_world.true_genders,
        )
        a = infer_genders(linked, avail, truth, seed=1)
        b = infer_genders(linked, avail, truth, seed=1)
        assert {k: v.gender for k, v in a.assignments.items()} == {
            k: v.gender for k, v in b.assignments.items()
        }
