"""Embedded country dataset (subset of mledoze/countries).

Each record carries the fields the paper's pipeline uses: common name,
ISO 3166-1 alpha-2 code (``cca2``), country-code TLD, UN M49 region and
subregion.  Subregion strings follow the M49 names exactly as they appear
in the paper's Table 3 ("Northern America", "Western Europe", ...), with
the paper's one deviation: it groups Australia and New Zealand as
"Australia and New Zealand" (the M49 subregion) rather than Oceania.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Country",
    "all_countries",
    "country_by_code",
    "country_by_name",
    "country_by_tld",
]


@dataclass(frozen=True)
class Country:
    """A country record.

    Attributes
    ----------
    name:
        Common English name, e.g. "United States".
    cca2:
        ISO 3166-1 alpha-2, e.g. "US".
    tld:
        Country-code top-level domain without the dot, e.g. "us".
    region:
        M49 region, e.g. "Americas".
    subregion:
        M49 subregion as used by Table 3, e.g. "Northern America".
    """

    name: str
    cca2: str
    tld: str
    region: str
    subregion: str


# name, cca2, tld, region, subregion
_RAW: list[tuple[str, str, str, str, str]] = [
    # Northern America
    ("United States", "US", "us", "Americas", "Northern America"),
    ("Canada", "CA", "ca", "Americas", "Northern America"),
    # Western Europe
    ("France", "FR", "fr", "Europe", "Western Europe"),
    ("Germany", "DE", "de", "Europe", "Western Europe"),
    ("Switzerland", "CH", "ch", "Europe", "Western Europe"),
    ("Netherlands", "NL", "nl", "Europe", "Western Europe"),
    ("Belgium", "BE", "be", "Europe", "Western Europe"),
    ("Austria", "AT", "at", "Europe", "Western Europe"),
    ("Luxembourg", "LU", "lu", "Europe", "Western Europe"),
    # Eastern Asia
    ("China", "CN", "cn", "Asia", "Eastern Asia"),
    ("Japan", "JP", "jp", "Asia", "Eastern Asia"),
    ("South Korea", "KR", "kr", "Asia", "Eastern Asia"),
    ("Taiwan", "TW", "tw", "Asia", "Eastern Asia"),
    ("Hong Kong", "HK", "hk", "Asia", "Eastern Asia"),
    # Southern Europe
    ("Spain", "ES", "es", "Europe", "Southern Europe"),
    ("Italy", "IT", "it", "Europe", "Southern Europe"),
    ("Greece", "GR", "gr", "Europe", "Southern Europe"),
    ("Portugal", "PT", "pt", "Europe", "Southern Europe"),
    ("Slovenia", "SI", "si", "Europe", "Southern Europe"),
    ("Croatia", "HR", "hr", "Europe", "Southern Europe"),
    # Northern Europe
    ("United Kingdom", "GB", "uk", "Europe", "Northern Europe"),
    ("Sweden", "SE", "se", "Europe", "Northern Europe"),
    ("Norway", "NO", "no", "Europe", "Northern Europe"),
    ("Denmark", "DK", "dk", "Europe", "Northern Europe"),
    ("Finland", "FI", "fi", "Europe", "Northern Europe"),
    ("Ireland", "IE", "ie", "Europe", "Northern Europe"),
    ("Iceland", "IS", "is", "Europe", "Northern Europe"),
    ("Estonia", "EE", "ee", "Europe", "Northern Europe"),
    # Southern Asia
    ("India", "IN", "in", "Asia", "Southern Asia"),
    ("Pakistan", "PK", "pk", "Asia", "Southern Asia"),
    ("Bangladesh", "BD", "bd", "Asia", "Southern Asia"),
    ("Sri Lanka", "LK", "lk", "Asia", "Southern Asia"),
    ("Iran", "IR", "ir", "Asia", "Southern Asia"),
    # South America
    ("Brazil", "BR", "br", "Americas", "South America"),
    ("Argentina", "AR", "ar", "Americas", "South America"),
    ("Chile", "CL", "cl", "Americas", "South America"),
    ("Colombia", "CO", "co", "Americas", "South America"),
    # Australia and New Zealand
    ("Australia", "AU", "au", "Oceania", "Australia and New Zealand"),
    ("New Zealand", "NZ", "nz", "Oceania", "Australia and New Zealand"),
    # Western Asia
    ("Turkey", "TR", "tr", "Asia", "Western Asia"),
    ("Israel", "IL", "il", "Asia", "Western Asia"),
    ("Saudi Arabia", "SA", "sa", "Asia", "Western Asia"),
    ("United Arab Emirates", "AE", "ae", "Asia", "Western Asia"),
    ("Qatar", "QA", "qa", "Asia", "Western Asia"),
    # South-Eastern Asia
    ("Singapore", "SG", "sg", "Asia", "South-Eastern Asia"),
    ("Thailand", "TH", "th", "Asia", "South-Eastern Asia"),
    ("Malaysia", "MY", "my", "Asia", "South-Eastern Asia"),
    ("Vietnam", "VN", "vn", "Asia", "South-Eastern Asia"),
    ("Indonesia", "ID", "id", "Asia", "South-Eastern Asia"),
    ("Philippines", "PH", "ph", "Asia", "South-Eastern Asia"),
    # Eastern Europe
    ("Poland", "PL", "pl", "Europe", "Eastern Europe"),
    ("Czechia", "CZ", "cz", "Europe", "Eastern Europe"),
    ("Russia", "RU", "ru", "Europe", "Eastern Europe"),
    ("Hungary", "HU", "hu", "Europe", "Eastern Europe"),
    ("Romania", "RO", "ro", "Europe", "Eastern Europe"),
    ("Bulgaria", "BG", "bg", "Europe", "Eastern Europe"),
    ("Slovakia", "SK", "sk", "Europe", "Eastern Europe"),
    ("Ukraine", "UA", "ua", "Europe", "Eastern Europe"),
    # Western Africa
    ("Nigeria", "NG", "ng", "Africa", "Western Africa"),
    ("Ghana", "GH", "gh", "Africa", "Western Africa"),
    ("Senegal", "SN", "sn", "Africa", "Western Africa"),
    # Central America
    ("Mexico", "MX", "mx", "Americas", "Central America"),
    ("Costa Rica", "CR", "cr", "Americas", "Central America"),
    ("Guatemala", "GT", "gt", "Americas", "Central America"),
    # Central Asia
    ("Kazakhstan", "KZ", "kz", "Asia", "Central Asia"),
    ("Uzbekistan", "UZ", "uz", "Asia", "Central Asia"),
    # Northern Africa
    ("Egypt", "EG", "eg", "Africa", "Northern Africa"),
    ("Algeria", "DZ", "dz", "Africa", "Northern Africa"),
    ("Morocco", "MA", "ma", "Africa", "Northern Africa"),
    ("Tunisia", "TN", "tn", "Africa", "Northern Africa"),
    # Southern Africa / Eastern Africa (not in Table 3 but harvestable)
    ("South Africa", "ZA", "za", "Africa", "Southern Africa"),
    ("Kenya", "KE", "ke", "Africa", "Eastern Africa"),
]

_COUNTRIES: tuple[Country, ...] = tuple(Country(*row) for row in _RAW)
_BY_CODE = {c.cca2: c for c in _COUNTRIES}
_BY_NAME = {c.name.lower(): c for c in _COUNTRIES}
_BY_TLD = {c.tld: c for c in _COUNTRIES}

# Aliases seen in affiliation strings and the paper's own tables.
_NAME_ALIASES = {
    "usa": "US",
    "united states of america": "US",
    "uk": "GB",
    "great britain": "GB",
    "england": "GB",
    "korea": "KR",
    "republic of korea": "KR",
    "czech republic": "CZ",
    "uae": "AE",
    "viet nam": "VN",
    "russian federation": "RU",
    "prc": "CN",
}


def all_countries() -> tuple[Country, ...]:
    """All embedded country records (immutable)."""
    return _COUNTRIES


def country_by_code(cca2: str) -> Country | None:
    """Lookup by ISO alpha-2 code (case-insensitive)."""
    return _BY_CODE.get(cca2.upper())


def country_by_name(name: str) -> Country | None:
    """Lookup by common name or known alias (case-insensitive)."""
    key = name.strip().lower()
    if key in _BY_NAME:
        return _BY_NAME[key]
    alias = _NAME_ALIASES.get(key)
    return _BY_CODE.get(alias) if alias else None


def country_by_tld(tld: str) -> Country | None:
    """Lookup by country-code TLD (with or without leading dot)."""
    return _BY_TLD.get(tld.lstrip(".").lower())
