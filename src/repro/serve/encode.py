"""Deterministic JSON encoding of analysis responses.

Every response body the server emits comes through
:func:`canonical_json`: sorted keys, compact separators, ``allow_nan``
off (NaN/±inf render as ``null`` via :func:`num`).  Canonical encoding
is what makes the serving determinism contract checkable — two
identical-seed server sessions answering the same request sequence
produce **byte-identical** bodies, so the chaos tests can compare
bytes, not parsed approximations.  Anything wall-clock shaped (elapsed
time, dates) rides in response *headers*, never in a body — the same
body/timing split the run ledger enforces.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.analysis.blind import BlindReport
from repro.analysis.far import FarReport
from repro.analysis.sensitivity import SensitivityReport
from repro.stats.chisquare import Chi2Result
from repro.stats.proportions import Proportion

__all__ = [
    "canonical_json",
    "num",
    "proportion_payload",
    "chi2_payload",
    "far_payload",
    "blind_payload",
    "sensitivity_payload",
    "error_payload",
]


def canonical_json(payload: dict) -> bytes:
    """The one canonical body encoding (sorted, compact, NaN-free)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def num(x: Any) -> float | None:
    """A JSON-safe number: finite floats pass, NaN/±inf become null."""
    if x is None:
        return None
    f = float(x)
    return f if math.isfinite(f) else None


def proportion_payload(p: Proportion) -> dict:
    return {"hits": p.hits, "n": p.n, "value": num(p.value)}


def chi2_payload(c: Chi2Result) -> dict:
    return {"chi2": num(c.statistic), "df": c.df, "p": num(c.p_value)}


def _config_payload(seed: int, scale: float, fingerprint: str) -> dict:
    return {"seed": seed, "scale": scale, "fingerprint": fingerprint}


def far_payload(
    report: FarReport,
    seed: int,
    scale: float,
    fingerprint: str,
    conference: str | None = None,
) -> dict:
    """§3.1 FAR cells; with ``conference`` only that venue's slice."""
    confs = report.by_conference
    if conference is not None:
        confs = tuple(c for c in confs if c.conference == conference)
    return {
        "endpoint": "far",
        "config": _config_payload(seed, scale, fingerprint),
        "overall": proportion_payload(report.overall),
        "lead": proportion_payload(report.lead_overall),
        "last": proportion_payload(report.last_overall),
        "last_vs_all": chi2_payload(report.last_vs_all),
        "by_conference": {
            c.conference: {
                "authors": proportion_payload(c.authors),
                "lead": proportion_payload(c.lead),
                "last": proportion_payload(c.last),
            }
            for c in confs
        },
    }


def blind_payload(
    report: BlindReport, seed: int, scale: float, fingerprint: str
) -> dict:
    """The double- vs single-blind review contrasts."""
    return {
        "endpoint": "blind",
        "config": _config_payload(seed, scale, fingerprint),
        "double_blind_conferences": sorted(report.double_blind_confs),
        "authors": {
            "double": proportion_payload(report.authors_double),
            "single": proportion_payload(report.authors_single),
            "test": chi2_payload(report.authors_test),
        },
        "lead": {
            "double": proportion_payload(report.lead_double),
            "single": proportion_payload(report.lead_single),
            "test": chi2_payload(report.lead_test),
        },
    }


def sensitivity_payload(
    report: SensitivityReport, seed: int, scale: float, fingerprint: str
) -> dict:
    """The §2 unknown-gender sensitivity bands."""
    return {
        "endpoint": "sensitivity",
        "config": _config_payload(seed, scale, fingerprint),
        "unknowns": report.unknowns,
        "all_stable": report.all_stable,
        "far_values": {k: num(v) for k, v in sorted(report.far_values.items())},
        "observations": [
            {
                "name": o.name,
                "baseline": o.baseline,
                "all_women": o.all_women,
                "all_men": o.all_men,
                "stable": o.stable,
            }
            for o in sorted(report.observations, key=lambda o: o.name)
        ],
    }


def error_payload(code: str, message: str, **extra: Any) -> dict:
    """The uniform error body: ``{"error": {"code", "message", ...}}``."""
    body = {"code": code, "message": message}
    body.update(extra)
    return {"error": body}
