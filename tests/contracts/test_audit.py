"""End-to-end tests: the integrity audit and the CLI contract modes."""

from __future__ import annotations

import pytest

from repro.cli import EXIT_CONTRACT_VIOLATION, main
from repro.contracts import ContractViolationError, ValidationMode
from repro.faults import FaultConfig
from repro.pipeline import run_pipeline
from repro.synth import WorldConfig

pytestmark = pytest.mark.contracts


@pytest.fixture(scope="module")
def repair_result(small_world):
    return run_pipeline(world=small_world, validation="repair")


class TestPipelineIntegration:
    def test_clean_world_audit_balances(self, repair_result):
        contracts = repair_result.contracts
        assert contracts is not None and contracts.mode == "repair"
        assert contracts.audit.ok, contracts.audit.summary()
        # a clean synthetic world quarantines nothing
        assert len(contracts.quarantine) == 0

    def test_validation_modes_do_not_change_clean_output(self, small_world):
        plain = run_pipeline(world=small_world)
        validated = run_pipeline(world=small_world, validation="repair")
        assert (
            plain.dataset.researchers.num_rows
            == validated.dataset.researchers.num_rows
        )
        assert plain.dataset.papers.num_rows == validated.dataset.papers.num_rows
        assert plain.coverage == validated.coverage

    def test_strict_clean_world_passes(self, small_world):
        result = run_pipeline(world=small_world, validation=ValidationMode.STRICT)
        assert result.contracts.audit.ok

    def test_no_validation_no_report(self, small_result):
        assert small_result.contracts is None

    def test_faulted_repair_run_balances(self):
        """The ISSUE acceptance run: faults at 5%, repair mode, audit even."""
        result = run_pipeline(
            WorldConfig(seed=7, scale=0.5),
            faults=FaultConfig(rate=0.05, seed=7),
            validation="repair",
        )
        assert result.contracts is not None
        assert result.contracts.audit.ok, result.contracts.audit.summary()
        # every edition is analyzed, quarantined, or accounted as lost
        check = {c.name: c for c in result.contracts.audit.checks}
        assert "edition-accounting" in check and check["edition-accounting"].ok

    def test_faulted_strict_run_raises(self):
        """At 5% faults some edition is scraped from corrupted pages —
        strict mode must refuse it."""
        with pytest.raises(ContractViolationError):
            run_pipeline(
                WorldConfig(seed=7, scale=0.5),
                faults=FaultConfig(rate=0.05, seed=7),
                validation="strict",
            )

    def test_audit_report_in_run_report(self, repair_result):
        from repro.report import full_report, render_integrity

        section = render_integrity(repair_result.contracts)
        assert "Data contracts and integrity audit" in section
        assert "checks balanced" in section
        assert section in full_report(repair_result)


class TestCLI:
    def test_strict_faulted_exits_nonzero(self, capsys):
        code = main(
            ["--scale", "0.5", "--fault-rate", "0.05", "--validate=strict", "run"]
        )
        assert code == EXIT_CONTRACT_VIOLATION
        err = capsys.readouterr().err
        assert "contract violation" in err
        assert "edition.corrupted-source" in err

    def test_repair_faulted_exits_zero(self, capsys):
        code = main(
            ["--scale", "0.5", "--fault-rate", "0.05", "--validate=repair", "run"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "contracts[repair]" in out
        assert "checks balanced" in out

    def test_validate_off_prints_no_contracts(self, capsys):
        code = main(["--scale", "0.25", "--validate=off", "run"])
        assert code == 0
        assert "contracts[" not in capsys.readouterr().out


class TestExport:
    def test_contracts_json_in_bundle(self, tmp_path, repair_result):
        import json

        from repro.report.export import export_artifact

        out = export_artifact(repair_result, tmp_path / "bundle")
        data = json.loads((out / "contracts.json").read_text())
        assert data["mode"] == "repair" and data["audit"]["ok"]
        manifest = json.loads((out / "MANIFEST.json").read_text())
        assert manifest["contracts"] == "contracts.json"
        assert manifest["integrity_ok"] is True
