"""Tests for the conference domain model."""

import pytest

from repro.confmodel import (
    Authorship,
    Conference,
    ConferenceEdition,
    DiversityPolicy,
    Paper,
    Person,
    ReviewPolicy,
    Role,
    RoleAssignment,
    WorldRegistry,
)
from repro.gender.model import Gender
from repro.gender.webevidence import EvidenceKind


def person(pid, name="Ann Smith"):
    return Person(
        person_id=pid,
        full_name=name,
        country_code="US",
        sector="EDU",
        true_gender=Gender.F,
        web_evidence=EvidenceKind.PRONOUN,
        past_publications=3,
    )


def edition(name="SC", year=2017):
    conf = Conference(
        name=name,
        country_code="US",
        review_policy=ReviewPolicy.DOUBLE_BLIND,
        diversity=DiversityPolicy(diversity_chair=True, code_of_conduct=True),
    )
    return ConferenceEdition(
        conference=conf, year=year, date="2017-11-13",
        acceptance_rate=0.187, submitted=327,
    )


def paper(pid, authors, conf="SC", year=2017):
    n = len(authors)
    return Paper(
        paper_id=pid,
        conference=conf,
        year=year,
        title="T",
        authorships=[Authorship(a, i, n) for i, a in enumerate(authors)],
        is_hpc=True,
    )


class TestAuthorship:
    def test_first_last(self):
        a = Authorship("p", 0, 3)
        z = Authorship("q", 2, 3)
        assert a.is_first and not a.is_last
        assert z.is_last and not z.is_first

    def test_single_author_is_first_not_last(self):
        solo = Authorship("p", 0, 1)
        assert solo.is_first and not solo.is_last


class TestRoles:
    def test_visible_roles(self):
        assert Role.KEYNOTE.is_visible
        assert not Role.AUTHOR.is_visible
        assert Role.PC_MEMBER.is_elected


class TestPolicies:
    def test_any_policy(self):
        assert DiversityPolicy(code_of_conduct=True).any_policy
        assert not DiversityPolicy().any_policy

    def test_double_blind_flag(self):
        assert edition().conference.is_double_blind


class TestRegistry:
    def test_basic_insertion(self):
        reg = WorldRegistry()
        reg.add_edition(edition())
        reg.add_person(person("p1"))
        reg.add_person(person("p2", "Bo Li"))
        reg.add_paper(paper("x1", ["p1", "p2"]))
        assert len(reg.papers_of("SC", 2017)) == 1
        # author roles auto-derived
        assert len(reg.roles_of(role=Role.AUTHOR)) == 2
        reg.validate()

    def test_duplicate_rejection(self):
        reg = WorldRegistry()
        reg.add_edition(edition())
        with pytest.raises(ValueError):
            reg.add_edition(edition())
        reg.add_person(person("p1"))
        with pytest.raises(ValueError):
            reg.add_person(person("p1"))

    def test_manual_author_role_rejected(self):
        reg = WorldRegistry()
        reg.add_edition(edition())
        reg.add_person(person("p1"))
        with pytest.raises(ValueError):
            reg.add_role(RoleAssignment("p1", "SC", 2017, Role.AUTHOR))

    def test_validate_catches_missing_person(self):
        reg = WorldRegistry()
        reg.add_edition(edition())
        reg.add_person(person("p1"))
        reg.add_paper(paper("x1", ["p1"]))
        reg.papers["x1"].authorships.append(Authorship("ghost", 1, 1))
        with pytest.raises(ValueError):
            reg.validate()

    def test_validate_catches_bad_positions(self):
        reg = WorldRegistry()
        reg.add_edition(edition())
        reg.add_person(person("p1"))
        p = paper("x1", ["p1"])
        p.authorships = [Authorship("p1", 1, 1)]  # gap at 0
        reg.papers["x1"] = p
        reg.editions["SC-2017"].paper_ids.append("x1")
        with pytest.raises(ValueError):
            reg.validate()

    def test_unique_author_ids(self):
        reg = WorldRegistry()
        reg.add_edition(edition())
        reg.add_edition(edition("ISC"))
        reg.add_person(person("p1"))
        reg.add_person(person("p2", "Bo Li"))
        reg.add_paper(paper("x1", ["p1", "p2"]))
        reg.add_paper(paper("y1", ["p1"], conf="ISC"))
        assert reg.unique_author_ids() == {"p1", "p2"}

    def test_roles_of_filters(self):
        reg = WorldRegistry()
        reg.add_edition(edition())
        reg.add_person(person("p1"))
        reg.add_role(RoleAssignment("p1", "SC", 2017, Role.KEYNOTE))
        assert len(reg.roles_of("SC", 2017, Role.KEYNOTE)) == 1
        assert reg.roles_of("ISC") == []

    def test_paper_accessors(self):
        p = paper("x", ["a", "b", "c"])
        assert p.first_author == "a"
        assert p.last_author == "c"
        assert p.num_authors == 3
        assert p.author_ids() == ["a", "b", "c"]

    def test_submitted_derived(self):
        ed = edition()
        assert ed.submitted == 327
        assert ed.key == "SC-2017"
