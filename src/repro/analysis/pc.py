"""§3.2 — program committees.

"Among the 1220 total PC members, 18.46% are women (with repeats)...
The SC conference invited the most women to its PC ... (29.6%). But even
excluding the data from SC, the ratio of women among PCs is still
16.1%."  Plus: four of nine conferences appointed no women PC chairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.common import mask_eq, women_share
from repro.pipeline.dataset import AnalysisDataset
from repro.stats.chisquare import Chi2Result
from repro.stats.proportions import Proportion, proportion_diff

__all__ = ["PcReport", "pc_report"]


@dataclass(frozen=True)
class PcReport:
    """§3.2's quantities."""

    memberships: Proportion              # women among all PC seats (repeats)
    by_conference: dict[str, Proportion]
    excluding_sc: Proportion
    pc_vs_authors: Chi2Result            # PC ratio ≈ 2× author ratio
    chairs: Proportion
    chairs_by_conference: dict[str, Proportion]
    zero_women_chair_confs: tuple[str, ...]


def pc_report(ds: AnalysisDataset) -> PcReport:
    """Compute §3.2 over an analysis dataset."""
    slots = ds.role_slots
    pc = slots.filter(lambda t: mask_eq(t, "role", "pc_member"))
    memberships = women_share(pc)

    by_conf: dict[str, Proportion] = {}
    for conf in ds.conferences["conference"]:
        by_conf[conf] = women_share(pc.filter(lambda t: mask_eq(t, "conference", conf)))

    non_sc = pc.filter(lambda t: ~mask_eq(t, "conference", "SC"))
    excluding_sc = women_share(non_sc)

    authors = women_share(ds.author_positions)
    pc_vs_authors = proportion_diff(memberships, authors)

    chairs_tab = slots.filter(lambda t: mask_eq(t, "role", "pc_chair"))
    chairs = women_share(chairs_tab)
    chairs_by_conf: dict[str, Proportion] = {}
    zero: list[str] = []
    for conf in ds.conferences["conference"]:
        p = women_share(chairs_tab.filter(lambda t: mask_eq(t, "conference", conf)))
        chairs_by_conf[conf] = p
        if p.n > 0 and p.hits == 0:
            zero.append(conf)

    return PcReport(
        memberships=memberships,
        by_conference=by_conf,
        excluding_sc=excluding_sc,
        pc_vs_authors=pc_vs_authors,
        chairs=chairs,
        chairs_by_conference=chairs_by_conf,
        zero_women_chair_confs=tuple(zero),
    )
