"""Tests for the DBLP cross-check stage."""

import dataclasses

import pytest

from repro.harvest.dblp import to_dblp_xml
from repro.pipeline import ingest_world
from repro.pipeline.crosscheck import crosscheck_dblp


@pytest.fixture(scope="module")
def harvested(small_world):
    return ingest_world(small_world)


class TestCrossCheck:
    def test_clean_on_honest_harvest(self, harvested):
        rep = crosscheck_dblp(harvested)
        assert rep.clean
        assert rep.conferences == 9
        assert rep.papers_checked == sum(len(h.papers) for h in harvested)

    def test_detects_title_corruption(self, harvested):
        conf = harvested[0]
        corrupted = [
            dataclasses.replace(p, title="CORRUPTED") if i == 0 else p
            for i, p in enumerate(conf.papers)
        ]
        xml = to_dblp_xml(conf.conference, conf.year, corrupted)
        rep = crosscheck_dblp([conf], {conf.conference: xml})
        assert not rep.clean
        assert rep.title_mismatches == [conf.papers[0].paper_id]

    def test_detects_author_reorder(self, harvested):
        conf = harvested[0]
        victim = next(p for p in conf.papers if len(p.author_names) >= 2)
        corrupted = [
            dataclasses.replace(p, author_names=tuple(reversed(p.author_names)))
            if p.paper_id == victim.paper_id
            else p
            for p in conf.papers
        ]
        xml = to_dblp_xml(conf.conference, conf.year, corrupted)
        rep = crosscheck_dblp([conf], {conf.conference: xml})
        assert victim.paper_id in rep.author_mismatches

    def test_detects_missing_paper(self, harvested):
        conf = harvested[0]
        xml = to_dblp_xml(conf.conference, conf.year, conf.papers[1:])
        rep = crosscheck_dblp([conf], {conf.conference: xml})
        assert rep.missing_papers == [conf.papers[0].paper_id]

    def test_partial_external_views(self, harvested):
        conf0 = harvested[0]
        xml = to_dblp_xml(conf0.conference, conf0.year, conf0.papers)
        rep = crosscheck_dblp(harvested, {conf0.conference: xml})
        assert rep.clean  # others fall back to self-roundtrip
