"""Review and diversity policies per conference."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["ReviewPolicy", "DiversityPolicy"]


class ReviewPolicy(str, Enum):
    """Whether author identities are hidden from reviewers.

    SC and ISC are the only double-blind conferences in the dataset
    (§3.1); the others are single-blind.
    """

    SINGLE_BLIND = "single"
    DOUBLE_BLIND = "double"


@dataclass(frozen=True)
class DiversityPolicy:
    """Explicit diversity policies a conference advertises (§2, §3.4)."""

    diversity_chair: bool = False
    code_of_conduct: bool = False
    childcare: bool = False
    demographic_reporting: bool = False

    @property
    def any_policy(self) -> bool:
        return (
            self.diversity_chair
            or self.code_of_conduct
            or self.childcare
            or self.demographic_reporting
        )
