"""Self-healing cache: verify-on-load, quarantine, repair, maintenance.

Every damage mode an on-disk cache can suffer — torn writes, flipped
bits, foreign pickles, prefix collisions, concurrent deletion — must
cost at worst a recompute, never a crash.  These tests corrupt entries
on disk the way :mod:`repro.faults.chaos` does and prove the load path
quarantines them as misses, ``verify``/``gc``/``stats`` stay honest
under the damage, and a rerun through the executor heals the cache to
a fully-servable state.
"""

import hashlib
import os
import pickle

import pytest

from repro.engine import ArtifactCache, EngineConfig, StageGraph, StageNode, run_dag
from repro.engine.cache import QUARANTINE_DIR
from repro.obs import ObsContext
from repro.obs.context import use as obs_use

pytestmark = [pytest.mark.engine, pytest.mark.chaos]

KEY = "a" * 64
KEY2 = "b" * 64


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


def _rewrite(cache, node, key, mutate):
    """Load the on-disk envelope, apply ``mutate``, write it back."""
    path = cache.entry_path(node, key)
    envelope = pickle.loads(path.read_bytes())
    mutate(envelope)
    path.write_bytes(pickle.dumps(envelope))


class TestQuarantineOnLoad:
    def test_garbage_bytes_are_a_miss_not_a_crash(self, cache):
        cache.save("n", KEY, {"n": 1})
        cache.entry_path("n", KEY).write_bytes(b"\x00not a pickle")
        with pytest.raises(KeyError):
            cache.load("n", KEY)
        assert cache.quarantined() == ["n-" + KEY[:24] + ".stage.pkl"]
        assert not cache.has("n", KEY)  # out of the cache's namespace

    def test_torn_write_is_a_miss(self, cache):
        cache.save("n", KEY, {"n": list(range(50))})
        path = cache.entry_path("n", KEY)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(KeyError):
            cache.load("n", KEY)
        assert len(cache.quarantined()) == 1

    def test_digest_mismatch_is_a_miss(self, cache):
        cache.save("n", KEY, {"n": 1})

        def flip_payload(env):
            raw = bytearray(env["payload"])
            raw[len(raw) // 2] ^= 0x40  # digest no longer matches
            env["payload"] = bytes(raw)

        _rewrite(cache, "n", KEY, flip_payload)
        with pytest.raises(KeyError):
            cache.load("n", KEY)
        assert len(cache.quarantined()) == 1

    def test_unpicklable_payload_is_a_miss(self, cache):
        cache.save("n", KEY, {"n": 1})

        def honest_garbage(env):
            env["payload"] = b"digest-matches-but-will-not-unpickle"
            env["digest"] = hashlib.sha256(env["payload"]).hexdigest()

        _rewrite(cache, "n", KEY, honest_garbage)
        with pytest.raises(KeyError):
            cache.load("n", KEY)
        assert len(cache.quarantined()) == 1

    def test_full_key_verified_not_just_prefix(self, cache):
        """A well-formed entry for a colliding key is a miss — but it is
        another run's valid data, so it must NOT be quarantined."""
        cache.save("n", KEY, {"n": 1})
        other = KEY[:24] + "f" * 40  # same 24-char prefix, different key

        def foreign_key(env):
            env["key"] = other

        _rewrite(cache, "n", KEY, foreign_key)
        with pytest.raises(KeyError):
            cache.load("n", KEY)
        assert cache.quarantined() == []
        assert cache.has("n", KEY)  # still on disk, untouched

    def test_quarantine_emits_event_and_metric(self, cache):
        cache.save("n", KEY, {"n": 1})
        cache.entry_path("n", KEY).write_bytes(b"garbage")
        obs = ObsContext(seed=1)
        with obs_use(obs):
            with pytest.raises(KeyError):
                cache.load("n", KEY)
        events = obs.events.by_type("cache.quarantine")
        assert [(e.name, e.attrs["reason"]) for e in events] == [("n", "unreadable")]

    def test_colliding_quarantine_names_get_suffixes(self, cache):
        for _ in range(2):
            cache.save("n", KEY, {"n": 1})
            cache.entry_path("n", KEY).write_bytes(b"garbage")
            with pytest.raises(KeyError):
                cache.load("n", KEY)
        names = cache.quarantined()
        assert len(names) == 2 and len(set(names)) == 2


class TestMaintenance:
    def test_verify_quarantines_only_the_damaged(self, cache):
        cache.save("good", KEY, {"good": 1})
        cache.save("bad", KEY2, {"bad": 2})
        cache.entry_path("bad", KEY2).write_bytes(b"garbage")
        report = cache.verify()
        assert report["checked"] == 2
        assert report["ok"] == 1
        assert report["quarantined"] == [
            ("bad-" + KEY2[:24], "unreadable")
        ]
        # the survivor is still servable, the damaged one is a miss
        assert cache.load("good", KEY) == {"good": 1}
        assert not cache.has("bad", KEY2)

    def test_verify_clean_cache_reports_all_ok(self, cache):
        cache.save("a", KEY, {"a": 1})
        cache.save("b", KEY2, {"b": 2})
        assert cache.verify() == {"checked": 2, "ok": 2, "quarantined": []}

    def test_stats_counts_both_namespaces(self, cache):
        cache.save("a", KEY, {"a": 1})
        cache.save("b", KEY2, {"b": 2})
        cache.entry_path("b", KEY2).write_bytes(b"garbage")
        cache.verify()
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["quarantined"] == 1
        assert stats["size_bytes"] > 0 and stats["quarantine_bytes"] > 0

    def test_purge_quarantine(self, cache):
        cache.save("a", KEY, {"a": 1})
        cache.entry_path("a", KEY).write_bytes(b"garbage")
        cache.verify()
        assert cache.purge_quarantine() == 1
        assert cache.quarantined() == []

    def test_gc_evicts_oldest_first(self, cache):
        for i, key in enumerate((KEY, KEY2)):
            cache.save(f"n{i}", key, {f"n{i}": i})
            os.utime(cache.entry_path(f"n{i}", key), (1000 + i, 1000 + i))
        evicted = cache.gc(max_entries=1)
        assert evicted == ["n0-" + KEY[:24]]
        assert cache.entries() == ["n1-" + KEY2[:24]]

    def test_gc_by_bytes(self, cache):
        cache.save("a", KEY, {"a": list(range(100))})
        cache.save("b", KEY2, {"b": 1})
        assert cache.gc(max_bytes=0)  # everything over a zero budget
        assert cache.entries() == []

    def test_gc_without_bounds_is_a_noop(self, cache):
        cache.save("a", KEY, {"a": 1})
        assert cache.gc() == []
        assert cache.entries() == ["a-" + KEY[:24]]

    def test_accounting_tolerates_concurrent_deletion(self, cache, tmp_path):
        """Satellite: a dangling path mid-glob (concurrent gc/quarantine)
        must not crash size_bytes/stats/gc."""
        cache.save("a", KEY, {"a": 1})
        dangling = cache.root / "ghost.stage.pkl"
        dangling.symlink_to(tmp_path / "never-exists")
        assert cache.size_bytes() > 0
        assert cache.stats()["entries"] == 2  # entries() only lists names
        assert cache.gc(max_entries=5) == []


# ------------------------------------------------- executor fall-through


def _produce(params, inputs):
    return {"node": {"value": 42}}


def _graph():
    return StageGraph(nodes=[StageNode(name="node", fn=_produce)])


class TestExecutorHealing:
    """Satellite: ``has()`` true + ``load()`` raising must fall through
    to execution, and the rerun heals the cache."""

    def test_corrupt_entry_recomputes_and_heals(self, tmp_path):
        cfg = EngineConfig(cache_dir=tmp_path / "cache")
        cold = run_dag(_graph(), params={}, engine=cfg)
        assert cold.cache_hits == 0 and cold.executed == 1

        cache = ArtifactCache(cfg.cache_dir)
        [entry] = cache.entries()
        (cache.root / f"{entry}.stage.pkl").write_bytes(b"torn")

        obs = ObsContext(seed=1)
        with obs_use(obs):
            healed = run_dag(_graph(), params={}, engine=cfg)
        # the lie was caught: recomputed, not served or crashed
        assert healed.cache_hits == 0 and healed.executed == 1
        assert healed.artifacts["node"] == {"value": 42}
        assert [e.type for e in obs.events.by_type("cache.quarantine")]
        assert [e.name for e in obs.events.by_type("cache.miss")] == ["node"]

        warm = run_dag(_graph(), params={}, engine=cfg)
        assert warm.cache_hits == 1 and warm.executed == 0
        assert warm.artifacts["node"] == {"value": 42}
        assert ArtifactCache(cfg.cache_dir).verify()["ok"] == 1
