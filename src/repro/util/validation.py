"""Argument validation helpers with consistent error messages.

Every helper accepts an optional ``quarantine`` callback.  Without one,
a failed check raises ``ValueError`` (the argument-validation use).
With one, the helper *reports* the failure by calling
``quarantine(message)`` and returns the offending value unchanged — the
contract-validation use (:mod:`repro.contracts`), where the caller
collects violations instead of crashing on the first dirty record.
"""

from __future__ import annotations

from typing import Any, Callable, Collection

__all__ = [
    "check_fraction",
    "check_nonnegative",
    "check_positive",
    "check_in",
    "check_year_range",
    "check_nonempty_str",
]

Quarantine = Callable[[str], None]


def _fail(message: str, quarantine: Quarantine | None) -> bool:
    """Dispatch a failed check; returns True so callers can bail out."""
    if quarantine is None:
        raise ValueError(message)
    quarantine(message)
    return True


def check_fraction(
    value: float, name: str, quarantine: Quarantine | None = None
) -> float:
    """Ensure ``value`` lies in [0, 1]; return it as float."""
    v = float(value)
    if not 0.0 <= v <= 1.0:
        _fail(f"{name} must be in [0, 1], got {value!r}", quarantine)
    return v


def check_nonnegative(
    value: float, name: str, quarantine: Quarantine | None = None
) -> float:
    """Ensure ``value`` >= 0; return it as float."""
    v = float(value)
    if v < 0:
        _fail(f"{name} must be nonnegative, got {value!r}", quarantine)
    return v


def check_positive(
    value: float, name: str, quarantine: Quarantine | None = None
) -> float:
    """Ensure ``value`` > 0; return it as float."""
    v = float(value)
    if v <= 0:
        _fail(f"{name} must be positive, got {value!r}", quarantine)
    return v


def check_in(
    value: Any,
    options: Collection[Any],
    name: str,
    quarantine: Quarantine | None = None,
) -> Any:
    """Ensure ``value`` is one of ``options``; return it unchanged."""
    if value not in options:
        opts = ", ".join(sorted(repr(o) for o in options))
        _fail(f"{name} must be one of {opts}; got {value!r}", quarantine)
    return value


def check_year_range(
    value: int,
    name: str,
    lo: int = 1960,
    hi: int = 2035,
    quarantine: Quarantine | None = None,
) -> int:
    """Ensure ``value`` is a plausible conference year in [lo, hi]."""
    v = int(value)
    if not lo <= v <= hi:
        _fail(f"{name} must be a year in [{lo}, {hi}], got {value!r}", quarantine)
    return v


def check_nonempty_str(
    value: Any, name: str, quarantine: Quarantine | None = None
) -> Any:
    """Ensure ``value`` is a non-blank string; return it unchanged."""
    if not isinstance(value, str) or not value.strip():
        _fail(f"{name} must be a non-empty string, got {value!r}", quarantine)
    return value
