"""Benchmark CONTRACT: cost of the data-contract layer.

The contracts promise to be cheap enough to leave on by default
(``--validate=repair`` is the CLI default), so the headline number here
is *relative overhead*: a validated run must stay within a few percent
of the bare pipeline (< 5% is the target recorded in METHODOLOGY.md §9).
The per-entity benches isolate where the validation time actually goes.
"""

import pytest

from repro.contracts import (
    ASSIGNMENT_SCHEMA,
    EDITION_SCHEMA,
    PAPER_SCHEMA,
    ContractSession,
    ValidationMode,
    validate_harvest,
)
from repro.pipeline import run_pipeline
from repro.pipeline.ingest import ingest_world
from repro.synth import WorldConfig, build_world


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(seed=7, scale=1.0, include_timeline=False))


@pytest.fixture(scope="module")
def harvested(world):
    return ingest_world(world)


def test_pipeline_unvalidated(benchmark, world):
    """Baseline: the pipeline with contracts disabled."""
    res = benchmark(run_pipeline, world=world)
    benchmark.extra_info["researchers"] = res.dataset.researchers.num_rows


def test_pipeline_validate_repair(benchmark, world):
    """The default mode end-to-end; compare against the baseline bench."""
    res = benchmark(run_pipeline, world=world, validation="repair")
    contracts_ms = 1e3 * res.timer.durations.get("contracts", 0.0)
    audit_ms = 1e3 * res.timer.durations.get("audit", 0.0)
    benchmark.extra_info["contracts_ms"] = round(contracts_ms, 2)
    benchmark.extra_info["audit_ms"] = round(audit_ms, 2)
    benchmark.extra_info["validation_overhead_pct"] = round(
        100.0 * contracts_ms / (1e3 * res.timer.total()), 2
    )
    assert res.contracts is not None and res.contracts.audit.ok


def test_pipeline_validate_audit(benchmark, world):
    """Audit mode: validation without any repair attempts."""
    res = benchmark(run_pipeline, world=world, validation="audit")
    assert res.contracts is not None


def test_validate_harvest_stage(benchmark, harvested):
    """The heaviest single boundary: every edition, paper, and role."""

    def run():
        session = ContractSession(mode=ValidationMode.REPAIR)
        return validate_harvest(list(harvested), session)

    out = benchmark(run)
    benchmark.extra_info["editions"] = len(out)
    benchmark.extra_info["papers"] = sum(len(c.papers) for c in out)


def test_schema_validate_hot_records(benchmark, harvested):
    """Raw per-record schema cost over conforming records (the hot path)."""
    conf = harvested[0]
    papers = conf.papers[:50]

    def run():
        n = 0
        n += len(EDITION_SCHEMA.validate(conf))
        for p in papers:
            n += len(PAPER_SCHEMA.validate(p))
        return n

    violations = benchmark(run)
    assert violations == 0


def test_schema_validate_assignment(benchmark, world):
    """Assignment contract over a realistic assignment set."""
    res = run_pipeline(world=world)
    assignments = list(res.inference.assignments.values())

    def run():
        return sum(len(ASSIGNMENT_SCHEMA.validate(a)) for a in assignments)

    assert benchmark(run) == 0
