"""The ``repro cache`` maintenance subcommand end to end."""

import pytest

from repro.cli import main
from repro.engine import ArtifactCache

pytestmark = [pytest.mark.engine, pytest.mark.chaos]

KEY = "a" * 64
KEY2 = "b" * 64


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


@pytest.fixture
def cache_dir(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    cache.save("good", KEY, {"good": 1})
    cache.save("bad", KEY2, {"bad": 2})
    return tmp_path / "cache"


def _corrupt(cache_dir):
    ArtifactCache(cache_dir).entry_path("bad", KEY2).write_bytes(b"garbage")


class TestCacheStats:
    def test_counts_entries_and_quarantine(self, cache_dir, capsys):
        code, out = run_cli(capsys, "--cache-dir", str(cache_dir), "cache", "stats")
        assert code == 0
        assert "entries:          2" in out
        assert "quarantined:      0" in out

    def test_requires_cache_dir(self, capsys):
        assert main(["cache", "stats"]) == 2

    def test_foreign_directory_refused(self, tmp_path, capsys):
        (tmp_path / "somebody.txt").write_text("else's data")
        assert main(["--cache-dir", str(tmp_path), "cache", "stats"]) == 2


class TestCacheVerify:
    def test_clean_cache_exits_zero(self, cache_dir, capsys):
        code, out = run_cli(capsys, "--cache-dir", str(cache_dir), "cache", "verify")
        assert code == 0
        assert "checked 2 entries: 2 ok" in out

    def test_corruption_found_exits_nonzero(self, cache_dir, capsys):
        _corrupt(cache_dir)
        code, out = run_cli(capsys, "--cache-dir", str(cache_dir), "cache", "verify")
        assert code == 1
        assert "quarantined bad-" in out and "unreadable" in out
        # verify is idempotent: the damage is gone now
        code, out = run_cli(capsys, "--cache-dir", str(cache_dir), "cache", "verify")
        assert code == 0
        assert "checked 1 entries: 1 ok" in out


class TestCacheGc:
    def test_requires_a_budget(self, cache_dir, capsys):
        assert main(["--cache-dir", str(cache_dir), "cache", "gc"]) == 2

    def test_evicts_to_entry_budget(self, cache_dir, capsys):
        code, out = run_cli(
            capsys,
            "--cache-dir", str(cache_dir), "cache", "gc", "--max-entries", "1",
        )
        assert code == 0
        assert "evicted 1 entries" in out
        assert len(ArtifactCache(cache_dir).entries()) == 1


class TestCacheQuarantine:
    def test_lists_quarantined_files(self, cache_dir, capsys):
        _corrupt(cache_dir)
        main(["--cache-dir", str(cache_dir), "cache", "verify"])
        capsys.readouterr()
        code, out = run_cli(
            capsys, "--cache-dir", str(cache_dir), "cache", "quarantine"
        )
        assert code == 0
        assert "bad-" in out

    def test_empty_quarantine_says_so(self, cache_dir, capsys):
        code, out = run_cli(
            capsys, "--cache-dir", str(cache_dir), "cache", "quarantine"
        )
        assert code == 0 and "quarantine is empty" in out

    def test_purge_deletes(self, cache_dir, capsys):
        _corrupt(cache_dir)
        main(["--cache-dir", str(cache_dir), "cache", "verify"])
        capsys.readouterr()
        code, out = run_cli(
            capsys,
            "--cache-dir", str(cache_dir), "cache", "quarantine", "--purge",
        )
        assert code == 0 and "purged 1 quarantined files" in out
        assert ArtifactCache(cache_dir).quarantined() == []


class TestCacheMissingDir:
    """Regression: maintenance against a cache that was never created.

    ``repro cache stats|verify|gc|quarantine`` on a nonexistent directory
    must report an empty cache and exit 0 — and must NOT create the
    directory as a side effect (a read-only report has no business
    materializing state on disk).
    """

    @pytest.fixture
    def missing(self, tmp_path):
        return tmp_path / "never-created"

    def test_stats_reports_empty_and_exits_zero(self, missing, capsys):
        code, out = run_cli(capsys, "--cache-dir", str(missing), "cache", "stats")
        assert code == 0
        assert "entries:          0" in out
        assert not missing.exists()

    def test_verify_checks_nothing_and_exits_zero(self, missing, capsys):
        code, out = run_cli(capsys, "--cache-dir", str(missing), "cache", "verify")
        assert code == 0
        assert "checked 0 entries: 0 ok" in out
        assert not missing.exists()

    def test_gc_evicts_nothing_and_exits_zero(self, missing, capsys):
        code, out = run_cli(
            capsys,
            "--cache-dir", str(missing), "cache", "gc", "--max-entries", "1",
        )
        assert code == 0
        assert "evicted 0 entries" in out
        assert not missing.exists()

    def test_gc_still_requires_a_budget(self, missing, capsys):
        # argument validation precedes the existence check
        assert main(["--cache-dir", str(missing), "cache", "gc"]) == 2
        assert not missing.exists()

    def test_quarantine_is_empty_and_exits_zero(self, missing, capsys):
        code, out = run_cli(
            capsys, "--cache-dir", str(missing), "cache", "quarantine"
        )
        assert code == 0 and "quarantine is empty" in out
        assert not missing.exists()

    def test_empty_directory_counts_as_no_cache(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code, out = run_cli(capsys, "--cache-dir", str(empty), "cache", "stats")
        assert code == 0
        assert "entries:          0" in out
        # and if_exists never adopted it: no meta.json materialized
        assert list(empty.iterdir()) == []
