"""Pearson correlation vs the SciPy oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as ss

from repro.stats import pearson

RNG = np.random.default_rng(5)


class TestPearson:
    def test_matches_scipy(self):
        x = RNG.normal(0, 1, 80)
        y = 0.4 * x + RNG.normal(0, 1, 80)
        ours = pearson(x, y)
        ref = ss.pearsonr(x, y)
        assert ours.r == pytest.approx(ref.statistic)
        assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-6)

    def test_nan_pairs_dropped(self):
        x = np.array([1.0, 2.0, np.nan, 4.0, 5.0])
        y = np.array([2.0, np.nan, 3.0, 8.0, 10.0])
        r = pearson(x, y)
        assert r.n == 3

    def test_perfect_correlation(self):
        r = pearson([1, 2, 3, 4], [2, 4, 6, 8])
        assert r.r == pytest.approx(1.0)
        assert r.p_value == 0.0

    def test_perfect_anticorrelation(self):
        r = pearson([1, 2, 3], [3, 2, 1])
        assert r.r == pytest.approx(-1.0)

    def test_constant_input_nan(self):
        r = pearson([1, 1, 1], [1, 2, 3])
        assert np.isnan(r.r)

    def test_too_few_points(self):
        r = pearson([1, 2], [2, 4])
        assert np.isnan(r.r)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2, 3], [1, 2])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(5, 60), st.floats(-0.9, 0.9))
    def test_property_matches_scipy(self, n, slope):
        rng = np.random.default_rng(n)
        x = rng.normal(0, 1, n)
        y = slope * x + rng.normal(0, 1, n)
        ours = pearson(x, y)
        ref = ss.pearsonr(x, y)
        assert ours.r == pytest.approx(ref.statistic, abs=1e-10)
        assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-5, abs=1e-10)
