"""Offline PEP 517/660 build backend (see pyproject's ``backend-path``).

No network in this environment: build isolation cannot fetch setuptools,
and the installed setuptools cannot build editable wheels without
``wheel``.  This zero-dependency backend implements just enough of
PEP 517 (``build_wheel``) and PEP 660 (``build_editable``) for plain
``pip install -e .`` to work offline: a ``.pth`` file pointing at
``src/`` for editable installs, a straight copy of ``src/repro`` for
regular wheels, and spec-compliant METADATA/WHEEL/RECORD files with
sha256 digests.
"""

from __future__ import annotations

import base64
import csv
import hashlib
import io
import zipfile
from pathlib import Path

NAME = "repro"
VERSION = "1.0.0"
DEPENDENCIES = ["numpy>=1.23", "scipy>=1.9"]

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"

_DIST_INFO = f"{NAME}-{VERSION}.dist-info"


# ------------------------------------------------------------ PEP 517 hooks


def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def _metadata_text() -> str:
    lines = [
        "Metadata-Version: 2.1",
        f"Name: {NAME}",
        f"Version: {VERSION}",
        "Summary: Reproduction of 'Representation of Women in HPC Conferences'",
        "Requires-Python: >=3.10",
        "License: MIT",
    ]
    lines.extend(f"Requires-Dist: {dep}" for dep in DEPENDENCIES)
    return "\n".join(lines) + "\n"


def _wheel_text(tag: str) -> str:
    return (
        "Wheel-Version: 1.0\n"
        "Generator: offline_backend (repro)\n"
        f"Root-Is-Purelib: true\nTag: {tag}\n"
    )


def prepare_metadata_for_build_wheel(metadata_directory, config_settings=None):
    di = Path(metadata_directory) / _DIST_INFO
    di.mkdir(parents=True, exist_ok=True)
    (di / "METADATA").write_text(_metadata_text(), encoding="utf-8")
    return _DIST_INFO


def prepare_metadata_for_build_editable(metadata_directory, config_settings=None):
    return prepare_metadata_for_build_wheel(metadata_directory, config_settings)


# ------------------------------------------------------------ wheel writing


def _digest(data: bytes) -> str:
    raw = hashlib.sha256(data).digest()
    return "sha256=" + base64.urlsafe_b64encode(raw).rstrip(b"=").decode()


class _WheelWriter:
    """Accumulate files, then close with a spec-compliant RECORD."""

    def __init__(self, path: Path) -> None:
        self._zf = zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED)
        self._records: list[tuple[str, str, int]] = []

    def add(self, arcname: str, data: bytes) -> None:
        self._zf.writestr(arcname, data)
        self._records.append((arcname, _digest(data), len(data)))

    def close(self) -> None:
        record_name = f"{_DIST_INFO}/RECORD"
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        for row in self._records:
            writer.writerow(row)
        writer.writerow((record_name, "", ""))
        self._zf.writestr(record_name, buf.getvalue())
        self._zf.close()


def _wheel_name(tag: str) -> str:
    return f"{NAME}-{VERSION}-{tag}.whl"


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    tag = "py3-none-any"
    name = _wheel_name(tag)
    w = _WheelWriter(Path(wheel_directory) / name)
    w.add(f"__editable__.{NAME}.pth", f"{SRC.resolve()}\n".encode())
    w.add(f"{_DIST_INFO}/METADATA", _metadata_text().encode())
    w.add(f"{_DIST_INFO}/WHEEL", _wheel_text(tag).encode())
    w.close()
    return name


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    tag = "py3-none-any"
    name = _wheel_name(tag)
    w = _WheelWriter(Path(wheel_directory) / name)
    for path in sorted((SRC / NAME).rglob("*")):
        if not path.is_file() or path.suffix == ".pyc" or "__pycache__" in path.parts:
            continue
        w.add(str(path.relative_to(SRC)), path.read_bytes())
    w.add(f"{_DIST_INFO}/METADATA", _metadata_text().encode())
    w.add(f"{_DIST_INFO}/WHEEL", _wheel_text(tag).encode())
    w.close()
    return name


def build_sdist(sdist_directory, config_settings=None):  # pragma: no cover
    raise NotImplementedError("sdists are not needed offline; build a wheel")
