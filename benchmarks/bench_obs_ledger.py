"""Benchmark OBS-LEDGER: cost of recording a run in the ledger.

The ledger promises that leaving ``--ledger`` on costs essentially
nothing: assembling the record re-runs the three headline analyses on
the already-built dataset and the append is one fsynced line, so the
headline number is *relative overhead* — an instrumented-and-ledgered
pipeline must stay within 5% of the instrumented pipeline alone.  The
micro benches isolate the pieces (record assembly, the append, the
sentinel's read-compare path).
"""

import pytest

from repro.obs import ObsContext
from repro.obs.ledger import RunLedger, build_run_record
from repro.obs.sentinel import regress
from repro.pipeline import run_pipeline
from repro.synth import WorldConfig, build_world


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(seed=7, scale=1.0, include_timeline=False))


def test_pipeline_observed(benchmark, world):
    """Baseline: spans + metrics on, no ledger (bench_obs's observed run)."""

    def run():
        return run_pipeline(world=world, obs=ObsContext(seed=7))

    res = benchmark(run)
    benchmark.extra_info["researchers"] = res.dataset.researchers.num_rows


def test_pipeline_ledgered(benchmark, world, tmp_path_factory):
    """Observed run + record assembly + ledger append (<5% over observed)."""
    ledger = RunLedger(tmp_path_factory.mktemp("ledger"))

    def run():
        obs = ObsContext(seed=7)
        res = run_pipeline(world=world, obs=obs)
        record = build_run_record(res, command="bench")
        return ledger.append(record, events=obs.events)

    rec = benchmark(run)
    benchmark.extra_info["scientific_cells"] = len(rec.scientific)
    benchmark.extra_info["overhead_target_pct"] = 5.0


def test_build_run_record(benchmark, result):
    """Record assembly alone: the three headline analyses + digesting."""
    rec = benchmark(build_run_record, result)
    assert rec.digest


def test_ledger_append_and_read(benchmark, result, tmp_path_factory):
    """Appending to — then re-reading — a 20-run ledger."""
    record = build_run_record(result)

    def run():
        ledger = RunLedger(tmp_path_factory.mktemp("ledger"))
        for _ in range(20):
            ledger.append(record)
        return ledger.records()

    records = benchmark(run)
    assert len(records) == 20


def test_sentinel_regress(benchmark, result, tmp_path_factory):
    """The sentinel verdict over a 20-run same-config history."""
    ledger = RunLedger(tmp_path_factory.mktemp("ledger"))
    record = build_run_record(result)
    for _ in range(20):
        ledger.append(record)
    history = ledger.records()

    report = benchmark(regress, history)
    assert report.ok
