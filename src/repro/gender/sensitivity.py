"""The unknowns-flipping sensitivity reassignment (§2 Limitations).

"We first artificially set the gender of all 144 unassigned researchers
to women, and then to men, and recomputed all statistical analyses."
"""

from __future__ import annotations

from repro.gender.model import Gender, GenderAssignment, InferenceMethod

__all__ = ["reassign_unknowns"]


def reassign_unknowns(
    assignments: dict[str, GenderAssignment], to: Gender
) -> dict[str, GenderAssignment]:
    """Return a copy with every UNKNOWN forced to ``to``.

    The forced assignments are tagged ``InferenceMethod.SENSITIVITY`` so
    they remain distinguishable downstream.
    """
    if to is Gender.UNKNOWN:
        raise ValueError("sensitivity target must be F or M")
    out: dict[str, GenderAssignment] = {}
    for pid, a in assignments.items():
        if a.known:
            out[pid] = a
        else:
            out[pid] = GenderAssignment(to, InferenceMethod.SENSITIVITY, 0.0)
    return out
