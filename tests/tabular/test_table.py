"""Tests for the Table container."""

import numpy as np
import pytest

from repro.tabular import Table


@pytest.fixture
def table():
    return Table(
        {
            "name": ["ann", "bob", "cat", "dan"],
            "score": [3.0, 1.0, 2.0, 1.0],
            "group": ["x", "y", "x", "y"],
        }
    )


class TestConstruction:
    def test_from_dict(self, table):
        assert table.num_rows == 4
        assert table.columns == ["name", "score", "group"]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length"):
            Table({"a": [1, 2], "b": [1]})

    def test_from_records_union_of_keys(self):
        t = Table.from_records([{"a": 1}, {"b": 2}])
        assert t.columns == ["a", "b"]
        assert t.row(0)["b"] is None or np.isnan(t.row(0)["b"])

    def test_roundtrip_records(self, table):
        t2 = Table.from_records(table.to_records())
        assert t2.equals(table)

    def test_empty(self):
        t = Table({})
        assert t.num_rows == 0
        assert t.to_records() == []


class TestAccess:
    def test_getitem_returns_array(self, table):
        assert isinstance(table["score"], np.ndarray)

    def test_missing_column_keyerror_lists_available(self, table):
        with pytest.raises(KeyError, match="available"):
            table.col("nope")

    def test_row(self, table):
        assert table.row(1)["name"] == "bob"

    def test_contains(self, table):
        assert "name" in table and "zzz" not in table


class TestDerivation:
    def test_select_order(self, table):
        t = table.select(["group", "name"])
        assert t.columns == ["group", "name"]

    def test_drop(self, table):
        assert table.drop(["score"]).columns == ["name", "group"]

    def test_rename(self, table):
        t = table.rename({"name": "who"})
        assert "who" in t.columns and "name" not in t.columns

    def test_with_column_replaces(self, table):
        t = table.with_column("score", [0.0, 0.0, 0.0, 0.0])
        assert t["score"].sum() == 0
        assert t.columns[-1] == "score"  # replaced columns move to the end

    def test_with_column_length_check(self, table):
        with pytest.raises(ValueError):
            table.with_column("bad", [1, 2])

    def test_with_derived(self, table):
        t = table.with_derived("double", lambda t: t["score"] * 2)
        assert t["double"].tolist() == [6.0, 2.0, 4.0, 2.0]


class TestRowOps:
    def test_filter_mask(self, table):
        t = table.filter(np.array([True, False, True, False]))
        assert t["name"].tolist() == ["ann", "cat"]

    def test_filter_predicate(self, table):
        t = table.filter(lambda t: t["score"] > 1.5)
        assert t.num_rows == 2

    def test_filter_shape_check(self, table):
        with pytest.raises(ValueError):
            table.filter(np.array([True]))

    def test_take(self, table):
        assert table.take([3, 0])["name"].tolist() == ["dan", "ann"]

    def test_head(self, table):
        assert table.head(2).num_rows == 2
        assert table.head(99).num_rows == 4

    def test_sort_single_key(self, table):
        t = table.sort_by("score")
        assert t["score"].tolist() == [1.0, 1.0, 2.0, 3.0]

    def test_sort_stability(self, table):
        t = table.sort_by("score")
        # bob before dan (both 1.0, original order preserved)
        assert t["name"].tolist()[:2] == ["bob", "dan"]

    def test_sort_descending_stable(self, table):
        t = table.sort_by("score", descending=True)
        assert t["score"].tolist() == [3.0, 2.0, 1.0, 1.0]
        assert t["name"].tolist()[2:] == ["bob", "dan"]

    def test_sort_multi_key(self, table):
        t = table.sort_by("group", "score")
        assert t["group"].tolist() == ["x", "x", "y", "y"]
        assert t["score"].tolist() == [2.0, 3.0, 1.0, 1.0]

    def test_sort_str_with_none(self):
        t = Table({"a": ["b", None, "a"]}).sort_by("a")
        assert t["a"].tolist() == [None, "a", "b"]

    def test_concat(self, table):
        t = table.concat(table)
        assert t.num_rows == 8

    def test_concat_mismatched_columns(self, table):
        with pytest.raises(ValueError):
            table.concat(table.drop(["score"]))


class TestValueCounts:
    def test_counts_descending(self, table):
        vc = table.value_counts("group")
        assert vc.to_records() == [
            {"group": "x", "count": 2},
            {"group": "y", "count": 2},
        ]

    def test_missing_excluded(self):
        t = Table({"g": ["a", None, "a"]})
        vc = t.value_counts("g")
        assert vc.to_records() == [{"g": "a", "count": 2}]
