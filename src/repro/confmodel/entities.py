"""People, papers, and authorships."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gender.model import Gender
from repro.gender.webevidence import EvidenceKind

__all__ = ["Person", "Authorship", "Paper"]


@dataclass
class Person:
    """A researcher in the ground-truth world.

    ``true_gender`` and ``web_evidence`` exist only in the ground truth;
    the analysis pipeline must reconstruct gender through the inference
    cascade and never reads these fields directly (tests enforce this by
    comparing pipeline output against truth, not by sharing it).

    Attributes
    ----------
    person_id:
        Stable unique id ("p000123").
    full_name:
        Display name as it appears in proceedings.
    country_code:
        ISO alpha-2 of the residence country.
    sector:
        'COM' | 'EDU' | 'GOV'.
    true_gender:
        Ground-truth binary gender.
    web_evidence:
        What a manual web search would find for this person.
    past_publications:
        True number of publications before the conference year.
    career_citations:
        Citation counts of those past publications (drives h-index).
    email:
        Email address included in papers (may be None; §2 says many,
        not all, authors include one).
    affiliation:
        Free-text affiliation string (as GS would display).
    """

    person_id: str
    full_name: str
    country_code: str
    sector: str
    true_gender: Gender
    web_evidence: EvidenceKind
    past_publications: int
    career_citations: list[int] = field(default_factory=list)
    email: str | None = None
    affiliation: str = ""


@dataclass(frozen=True)
class Authorship:
    """One author slot on one paper. Position is 0-based."""

    person_id: str
    position: int
    num_authors: int

    @property
    def is_first(self) -> bool:
        return self.position == 0

    @property
    def is_last(self) -> bool:
        """Last author: the senior position in systems papers (§3.1).

        Single-author papers count as first, not last, mirroring the
        convention that "last author" is only meaningful with coauthors.
        """
        return self.num_authors > 1 and self.position == self.num_authors - 1


@dataclass
class Paper:
    """A published paper at one conference edition."""

    paper_id: str
    conference: str
    year: int
    title: str
    authorships: list[Authorship]
    is_hpc: bool
    citations_36mo: int = 0
    citation_monthly: list[int] = field(default_factory=list)

    @property
    def num_authors(self) -> int:
        return len(self.authorships)

    @property
    def first_author(self) -> str:
        return self.authorships[0].person_id

    @property
    def last_author(self) -> str:
        return self.authorships[-1].person_id

    def author_ids(self) -> list[str]:
        return [a.person_id for a in self.authorships]
