"""Run the doctests embedded in docstrings."""

import doctest

import pytest

import repro.scholar.metrics
import repro.util.formatting
import repro.util.rng

MODULES = [
    repro.scholar.metrics,
    repro.util.formatting,
    repro.util.rng,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"
