"""Gender inference stage: the §2 cascade over linked researchers.

Manual lookup is *by name* against the simulated personal web
(:func:`repro.harvest.webindex.build_name_keyed_evidence`); genderize is
the simulated service.  Coverage statistics come back alongside the
assignments so the run report can print the 95.18/1.79/3.03 split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gender.genderize import GenderizeClient
from repro.gender.model import Gender, GenderAssignment
from repro.gender.resolver import GenderResolver, ResolverPolicy
from repro.gender.webevidence import EvidenceKind, WebEvidenceSource
from repro.pipeline.link import LinkedData

__all__ = ["InferenceOutcome", "infer_genders"]


@dataclass
class InferenceOutcome:
    """Assignments plus run statistics."""

    assignments: dict[str, GenderAssignment]
    coverage: dict[str, float]       # manual / genderize / none fractions
    genderize_queries: int
    manual_lookups: int

    def with_assignments(
        self, assignments: dict[str, GenderAssignment]
    ) -> "InferenceOutcome":
        """The same outcome under different assignments, coverage recomputed.

        Used by the contracts layer (:mod:`repro.contracts.validators`)
        when repaired/substituted assignments re-enter the pipeline: the
        coverage split must always describe the assignments the dataset
        actually carries.
        """
        return InferenceOutcome(
            assignments=assignments,
            coverage=GenderResolver.coverage(assignments),
            genderize_queries=self.genderize_queries,
            manual_lookups=self.manual_lookups,
        )


def infer_genders(
    linked: LinkedData,
    name_evidence: dict[str, EvidenceKind],
    name_truth: dict[str, Gender],
    seed: int,
    policy: ResolverPolicy | None = None,
    photo_error_rate: float = 0.01,
    session: "FaultSession | None" = None,
) -> InferenceOutcome:
    """Run the cascade for every researcher in ``linked``.

    ``name_evidence``/``name_truth`` are keyed by normalized name key
    (see :mod:`repro.harvest.webindex`).

    With a :class:`~repro.faults.session.FaultSession` the genderize
    client runs behind a resilient wrapper: injected failures are
    retried, and a name whose lookups all fail resolves to *unassigned*
    (the paper's 3.03% "none" bucket) with the loss recorded on the
    session.
    """
    web = WebEvidenceSource(
        availability=name_evidence,
        true_genders=name_truth,
        photo_error_rate=photo_error_rate,
        seed=seed,
    )
    client = GenderizeClient(service_seed=seed)
    if session is not None:
        from repro.faults.wrappers import ResilientGenderizeClient

        resolver_client = ResilientGenderizeClient(client, session)
    else:
        resolver_client = client
    resolver = GenderResolver(web, resolver_client, policy)
    assignments: dict[str, GenderAssignment] = {}
    for rid, rec in linked.researchers.items():
        # the resolver's person key is the name key: the manual search
        # has nothing but the name to go on
        assignments[rid] = resolver.resolve(rec.name_key, rec.full_name)
    return InferenceOutcome(
        assignments=assignments,
        coverage=GenderResolver.coverage(assignments),
        genderize_queries=client.queries,
        manual_lookups=web.lookups,
    )
