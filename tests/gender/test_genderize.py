"""Tests for the simulated genderize.io service."""

import pytest

from repro.gender import GenderizeClient
from repro.gender.model import Gender


@pytest.fixture(scope="module")
def client():
    return GenderizeClient(service_seed=2017)


class TestQueries:
    def test_strong_female_name(self, client):
        r = client.query("Mary Smith")
        assert r.gender is Gender.F
        assert r.probability >= 0.9
        assert r.count > 0

    def test_strong_male_name(self, client):
        r = client.query("Hiroshi Tanaka")
        assert r.gender is Gender.M
        assert r.probability >= 0.9

    def test_unknown_name(self, client):
        r = client.query("Zzyzx Qqq")
        assert r.gender is None
        assert r.count == 0

    def test_initial_only_unresolvable(self, client):
        r = client.query("E. Frachtenberg")
        assert r.gender is None

    def test_deterministic(self):
        a = GenderizeClient(1).query("Wei Zhang")
        b = GenderizeClient(1).query("Wei Zhang")
        assert (a.gender, a.probability) == (b.gender, b.probability)

    def test_seed_changes_noise(self):
        # different service seeds perturb borderline probabilities
        probs = {GenderizeClient(s).query("Yan Li").probability for s in range(8)}
        assert len(probs) > 1

    def test_ambiguous_name_low_confidence(self, client):
        r = client.query("Casey Jones")
        assert r.probability < 0.85

    def test_query_counter(self):
        c = GenderizeClient(0)
        c.query("Mary A")
        c.query("John B")
        assert c.queries == 2

    def test_batch(self, client):
        rs = client.batch(["Mary Smith", "John Doe"])
        assert len(rs) == 2
        assert rs[0].gender is Gender.F
