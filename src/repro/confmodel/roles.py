"""Conference roles tracked by the study (§2)."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Role", "RoleAssignment", "ROLE_ORDER"]


class Role(str, Enum):
    """The conference roles whose gender composition the paper measures."""

    AUTHOR = "author"
    PC_CHAIR = "pc_chair"
    PC_MEMBER = "pc_member"
    KEYNOTE = "keynote"
    PANELIST = "panelist"
    SESSION_CHAIR = "session_chair"

    @property
    def is_visible(self) -> bool:
        """Visible "face of the conference" roles (§3.3)."""
        return self in (Role.KEYNOTE, Role.PANELIST, Role.SESSION_CHAIR)

    @property
    def is_elected(self) -> bool:
        """Roles appointed by the conference rather than peer-reviewed."""
        return self is not Role.AUTHOR


#: Fig. 1's role ordering.
ROLE_ORDER: tuple[Role, ...] = (
    Role.AUTHOR,
    Role.PC_CHAIR,
    Role.PC_MEMBER,
    Role.KEYNOTE,
    Role.PANELIST,
    Role.SESSION_CHAIR,
)


@dataclass(frozen=True)
class RoleAssignment:
    """A person holding a role at one conference edition.

    The same person may hold several roles and the same role at several
    conferences; the paper's PC statistics count such repeats ("with
    repeats, meaning that the same person is counted multiple times if
    they serve on more than one PC").
    """

    person_id: str
    conference: str
    year: int
    role: Role
