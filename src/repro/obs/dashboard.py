"""Self-contained HTML run dashboard (``repro runs report``).

One static file, no external assets or scripts, openable from disk:

- a **run table** (every ledger record: id, seed/scale, command, total
  wall time, cache hits/misses, scientific digest prefix, drift badge
  vs the previous same-config run);
- **stage timing bars** for the latest run — a single-series horizontal
  bar chart, one hue, direct-labeled in plain text;
- the **sentinel verdict** rendered verbatim, so the dashboard and
  ``repro runs regress`` can never disagree.

Drift badges carry a text label as well as a color (never color alone),
values and labels stay in text ink, and the palette swaps for dark mode
via CSS custom properties.
"""

from __future__ import annotations

from html import escape
from pathlib import Path

from repro.obs.ledger import RunRecord
from repro.obs.sentinel import RegressionReport, diff_runs

__all__ = ["render_dashboard", "write_dashboard"]

_CSS = """
:root {
  color-scheme: light;
  --surface: #fcfcfb; --panel: #f0efec;
  --text: #0b0b0b; --text-2: #52514e;
  --bar: #2a78d6; --grid: #d9d8d3;
  --good-bg: #e3f2e3; --good-fg: #0b5a0b;
  --bad-bg: #fbe3e3; --bad-fg: #8f1f1f;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --panel: #262624;
    --text: #ffffff; --text-2: #c3c2b7;
    --bar: #3987e5; --grid: #3a3a37;
    --good-bg: #173317; --good-fg: #8fd48f;
    --bad-bg: #3a1a1a; --bad-fg: #f0a0a0;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--surface); color: var(--text);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.sub { color: var(--text-2); margin: 0 0 20px; }
table { border-collapse: collapse; width: 100%; }
th, td {
  text-align: left; padding: 6px 12px 6px 0;
  border-bottom: 1px solid var(--grid); white-space: nowrap;
}
th { color: var(--text-2); font-weight: 600; font-size: 12px; }
td.num, th.num { text-align: right; padding-right: 18px; }
.mono { font-family: ui-monospace, SFMono-Regular, Menlo, monospace; font-size: 12px; }
.badge {
  display: inline-block; padding: 1px 8px; border-radius: 9px;
  font-size: 11px; font-weight: 600;
}
.badge.ok { background: var(--good-bg); color: var(--good-fg); }
.badge.drift { background: var(--bad-bg); color: var(--bad-fg); }
.badge.na { background: var(--panel); color: var(--text-2); }
.bars { max-width: 720px; }
.bar-row { display: flex; align-items: center; gap: 10px; margin: 4px 0; }
.bar-name { flex: 0 0 140px; color: var(--text-2); font-size: 12px; text-align: right; }
.bar-track { flex: 1; }
.bar-fill {
  height: 14px; background: var(--bar); border-radius: 0 4px 4px 0;
  min-width: 2px;
}
.bar-row:hover .bar-fill { filter: brightness(1.15); }
.bar-val { flex: 0 0 90px; color: var(--text-2); font-size: 12px; }
pre.verdict {
  background: var(--panel); padding: 14px 16px; border-radius: 6px;
  overflow-x: auto; font-size: 12.5px; max-width: 900px;
}
"""


def _badge(label: str, kind: str) -> str:
    return f'<span class="badge {kind}">{escape(label)}</span>'


def _drift_badge(records: list[RunRecord], i: int) -> str:
    """Drift of run ``i`` vs the nearest earlier same-config run."""
    rec = records[i]
    prior = [
        r for r in records[:i] if r.config_fingerprint == rec.config_fingerprint
    ]
    if not prior:
        return _badge("first of config", "na")
    diff = diff_runs(prior[-1], rec)
    if diff.has_scientific_drift:
        return _badge(f"✗ drift ({len(diff.scientific_drift)} cells)", "drift")
    return _badge("✓ no drift", "ok")


def _run_table(records: list[RunRecord]) -> str:
    rows = []
    for i, rec in enumerate(records):
        meta = rec.meta
        cache = rec.body.get("cache", {})
        sci = rec.body.get("digests", {}).get("scientific", "")
        rows.append(
            "<tr>"
            f'<td class="mono">{escape(rec.run_id or "?")}</td>'
            f"<td>{escape(str(meta.get('command', '')))}</td>"
            f'<td class="num">{escape(str(meta.get("seed", "")))}</td>'
            f'<td class="num">{escape(str(meta.get("scale", "")))}</td>'
            f'<td class="num">{rec.timing.get("total", 0) * 1e3:,.0f} ms</td>'
            f'<td class="num">{cache.get("hits", 0)} / {cache.get("misses", 0)}</td>'
            f'<td class="mono">{escape(sci[:12])}</td>'
            f"<td>{_drift_badge(records, i)}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr>"
        "<th>run</th><th>command</th>"
        '<th class="num">seed</th><th class="num">scale</th>'
        '<th class="num">total</th><th class="num">cache hit/miss</th>'
        "<th>scientific digest</th><th>drift vs prior</th>"
        "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>"
    )


def _stage_bars(rec: RunRecord) -> str:
    stages = rec.stage_seconds
    if not stages:
        return '<p class="sub">no stage timings recorded</p>'
    longest = max(stages.values()) or 1.0
    info = rec.body.get("stages", {})
    rows = []
    for name, secs in sorted(stages.items(), key=lambda kv: -kv[1]):
        pct = max(0.3, 100.0 * secs / longest)
        marks = []
        if info.get(name, {}).get("cached"):
            marks.append("cache hit")
        if info.get(name, {}).get("resumed"):
            marks.append("resumed")
        suffix = f" ({', '.join(marks)})" if marks else ""
        title = f"{name}: {secs * 1e3:.2f} ms{suffix}"
        rows.append(
            f'<div class="bar-row" title="{escape(title)}">'
            f'<div class="bar-name">{escape(name)}</div>'
            f'<div class="bar-track"><div class="bar-fill" '
            f'style="width:{pct:.2f}%"></div></div>'
            f'<div class="bar-val">{secs * 1e3:,.1f} ms{escape(suffix)}</div>'
            "</div>"
        )
    return '<div class="bars">' + "".join(rows) + "</div>"


def render_dashboard(
    records: list[RunRecord],
    regression: RegressionReport | None = None,
    title: str = "repro run ledger",
) -> str:
    """Render the whole dashboard as one self-contained HTML document."""
    records = list(records)
    latest = records[-1] if records else None
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
        f'<p class="sub">{len(records)} recorded run(s)'
        + (
            f' &middot; latest <span class="mono">{escape(latest.run_id)}</span>'
            if latest is not None and latest.run_id
            else ""
        )
        + "</p>",
    ]
    if not records:
        parts.append('<p class="sub">The ledger is empty — run the pipeline '
                     "with <code>--ledger</code> first.</p>")
    else:
        parts.append("<h2>Runs</h2>")
        parts.append(_run_table(records))
        parts.append(
            f"<h2>Stage wall time — latest run "
            f'(<span class="mono">{escape(latest.run_id or "?")}</span>)</h2>'
        )
        parts.append(_stage_bars(latest))
        events = latest.body.get("events", {})
        if events:
            parts.append("<h2>Event counts — latest run</h2>")
            rows = "".join(
                f'<tr><td class="mono">{escape(k)}</td>'
                f'<td class="num">{v}</td></tr>'
                for k, v in events.items()
            )
            parts.append(
                "<table><thead><tr><th>event type</th>"
                '<th class="num">count</th></tr></thead>'
                f"<tbody>{rows}</tbody></table>"
            )
    if regression is not None:
        parts.append("<h2>Sentinel verdict</h2>")
        badge = (
            _badge("✓ OK", "ok") if regression.ok else _badge("✗ REGRESSED", "drift")
        )
        parts.append(f"<p>{badge}</p>")
        parts.append(f'<pre class="verdict">{escape(regression.render())}</pre>')
    parts.append("</body></html>")
    return "\n".join(parts)


def write_dashboard(
    records: list[RunRecord],
    path: str | Path,
    regression: RegressionReport | None = None,
    title: str = "repro run ledger",
) -> Path:
    """Write the rendered dashboard to ``path``; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(render_dashboard(records, regression, title), encoding="utf-8")
    return p
