"""Statistical toolkit used throughout the paper's analyses.

The paper reports three families of tests (Methodology §2, "Statistics"):

- Welch's two-sample t-test for group mean comparisons
  (:mod:`repro.stats.ttest`),
- the χ² test for differences between distributions of categorical
  variables (:mod:`repro.stats.chisquare`),
- Pearson's product-moment correlation for pairs of numeric variables
  (:mod:`repro.stats.correlation`).

All three are implemented here from first principles (vectorized NumPy,
SciPy only for special functions) and cross-validated against
``scipy.stats`` in the test suite.  The package also provides the
supporting machinery the figures need: Gaussian KDE for the density plots
(Figs. 2–5), bootstrap confidence intervals, and descriptive summaries.
"""

from repro.stats.descriptive import describe, Summary
from repro.stats.ttest import welch_ttest, TTestResult
from repro.stats.chisquare import (
    chi2_contingency,
    chi2_two_proportions,
    chi2_gof,
    Chi2Result,
)
from repro.stats.correlation import pearson, CorrelationResult
from repro.stats.kde import gaussian_kde, silverman_bandwidth, KdeResult
from repro.stats.bootstrap import bootstrap_ci, BootstrapResult
from repro.stats.proportions import proportion, proportion_diff, Proportion
from repro.stats.power import two_proportion_power, minimum_detectable_diff
from repro.stats.multiple import (
    bonferroni,
    holm_bonferroni,
    significant_after_correction,
)

__all__ = [
    "describe",
    "Summary",
    "welch_ttest",
    "TTestResult",
    "chi2_contingency",
    "chi2_two_proportions",
    "chi2_gof",
    "Chi2Result",
    "pearson",
    "CorrelationResult",
    "gaussian_kde",
    "silverman_bandwidth",
    "KdeResult",
    "bootstrap_ci",
    "BootstrapResult",
    "proportion",
    "proportion_diff",
    "Proportion",
    "two_proportion_power",
    "minimum_detectable_diff",
    "bonferroni",
    "holm_bonferroni",
    "significant_after_correction",
]
