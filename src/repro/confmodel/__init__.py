"""Domain model: conferences, papers, people, roles, policies.

This is the ground-truth object model that both the synthetic world
generator writes and the harvesting layer serializes/re-parses.  It
deliberately mirrors the paper's data dictionary (§2): per conference —
date, paper count, author count, acceptance rate, country, review policy,
diversity policies; per paper — title, author list with positions, topic
tag, citations; per person — name, country, sector, experience, gender
(ground truth, which the pipeline is *not* allowed to read).
"""

from repro.confmodel.entities import Person, Paper, Authorship
from repro.confmodel.roles import Role, RoleAssignment, ROLE_ORDER
from repro.confmodel.policies import ReviewPolicy, DiversityPolicy
from repro.confmodel.conference import Conference, ConferenceEdition
from repro.confmodel.registry import WorldRegistry

__all__ = [
    "Person",
    "Paper",
    "Authorship",
    "Role",
    "RoleAssignment",
    "ROLE_ORDER",
    "ReviewPolicy",
    "DiversityPolicy",
    "Conference",
    "ConferenceEdition",
    "WorldRegistry",
]
