"""χ² tests vs the SciPy oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as ss

from repro.stats import chi2_contingency, chi2_gof, chi2_two_proportions


class TestContingency:
    def test_2x2_with_yates_matches_scipy(self):
        tab = [[30, 70], [45, 155]]
        ours = chi2_contingency(tab)
        ref = ss.chi2_contingency(tab, correction=True)
        assert ours.statistic == pytest.approx(ref.statistic)
        assert ours.p_value == pytest.approx(ref.pvalue)
        assert ours.df == ref.dof

    def test_2x2_without_correction(self):
        tab = [[30, 70], [45, 155]]
        ours = chi2_contingency(tab, correction=False)
        ref = ss.chi2_contingency(tab, correction=False)
        assert ours.statistic == pytest.approx(ref.statistic)

    def test_rxc_matches_scipy(self):
        tab = [[12, 30, 9], [8, 22, 19], [30, 5, 7]]
        ours = chi2_contingency(tab)
        ref = ss.chi2_contingency(tab)
        assert ours.statistic == pytest.approx(ref.statistic)
        assert ours.df == ref.dof

    def test_expected_counts(self):
        tab = [[10, 10], [10, 10]]
        ours = chi2_contingency(tab)
        assert np.allclose(np.array(ours.expected), 10.0)

    def test_zero_marginal_gives_nan(self):
        r = chi2_contingency([[0, 0], [5, 5]])
        assert np.isnan(r.statistic)

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            chi2_contingency([1, 2, 3])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            chi2_contingency([[1, -2], [3, 4]])

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(1, 500), min_size=2, max_size=4),
            min_size=2,
            max_size=4,
        ).filter(lambda rows: len({len(r) for r in rows}) == 1)
    )
    def test_property_matches_scipy(self, rows):
        tab = np.array(rows, dtype=float)
        ours = chi2_contingency(tab)
        ref = ss.chi2_contingency(tab)
        assert ours.statistic == pytest.approx(ref.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-7, abs=1e-12)


class TestTwoProportions:
    def test_paper_shape(self):
        # the S3.1 contrast shape: women among double- vs single-blind
        r = chi2_two_proportions(34, 449, 182, 1729)
        assert r.df == 1
        assert 0 < r.p_value < 1

    def test_invalid_hits(self):
        with pytest.raises(ValueError):
            chi2_two_proportions(11, 10, 1, 10)

    def test_equal_proportions_nonsignificant(self):
        r = chi2_two_proportions(50, 100, 500, 1000)
        assert not r.significant()


class TestGof:
    def test_uniform_default_matches_scipy(self):
        obs = [18, 22, 20, 25, 15]
        ours = chi2_gof(obs)
        ref = ss.chisquare(obs)
        assert ours.statistic == pytest.approx(ref.statistic)
        assert ours.p_value == pytest.approx(ref.pvalue)

    def test_explicit_expected_rescaled(self):
        obs = np.array([30, 70])
        ours = chi2_gof(obs, expected=np.array([1.0, 3.0]))
        ref = ss.chisquare(obs, f_exp=np.array([25.0, 75.0]))
        assert ours.statistic == pytest.approx(ref.statistic)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            chi2_gof([1, 2], expected=[1, 2, 3])
