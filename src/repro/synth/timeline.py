"""SC/ISC 2016–2020 mini-editions for the §3.4 case study.

The case study needs only author gender composition per year, so these
editions carry papers and authors (drawn from dedicated small pools with
the year's FAR target) but no committees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration.targets import (
    CONFERENCES_2017,
    SC_ATTENDANCE_WOMEN,
    SC_ISC_TIMELINE,
)

__all__ = ["TimelineEdition", "build_timeline"]


@dataclass(frozen=True)
class TimelineEdition:
    """Author-only snapshot of one conference-year (§3.4)."""

    conference: str
    year: int
    papers: int
    authors: int
    women_authors: int
    attendance_women_share: float | None  # SC publishes attendance splits

    @property
    def far(self) -> float:
        return self.women_authors / self.authors if self.authors else float("nan")


def build_timeline(scale_fn, rng: np.random.Generator) -> list[TimelineEdition]:
    """Build the ten SC/ISC editions (2016–2020).

    Sizes track each conference's 2017 edition with mild year-to-year
    variation; FAR follows the §3.4 calibration series.
    """
    base = {c.name: c for c in CONFERENCES_2017}
    out: list[TimelineEdition] = []
    for conf, series in SC_ISC_TIMELINE.items():
        t = base[conf]
        for year, far in sorted(series.items()):
            drift = 1.0 + 0.08 * float(rng.standard_normal())
            papers = max(5, int(round(scale_fn(t.papers) * drift)))
            authors = max(papers, int(round(scale_fn(t.unique_authors) * drift)))
            women = int(round(authors * far))
            attendance = SC_ATTENDANCE_WOMEN.get(year) if conf == "SC" else None
            out.append(
                TimelineEdition(
                    conference=conf,
                    year=year,
                    papers=papers,
                    authors=authors,
                    women_authors=women,
                    attendance_women_share=attendance,
                )
            )
    return out
