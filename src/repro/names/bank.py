"""Name sampling and gender-statistics lookup."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.names.corpora import CLUSTERS, cluster_for_country

__all__ = ["ForenameEntry", "NameBank", "default_bank"]


@dataclass(frozen=True)
class ForenameEntry:
    """Statistics of a forename across the whole synthetic universe.

    ``female_share`` is the true fraction of bearers who are women;
    ``weight`` the relative frequency.  The simulated genderize service
    (:mod:`repro.gender.genderize`) reports these with sampling noise.
    """

    name: str
    female_share: float
    weight: int
    cluster: str


class NameBank:
    """Samples person names and answers forename-gender queries.

    Sampling respects the bearer's gender: a woman draws a forename with
    probability proportional to ``weight * female_share``; a man with
    ``weight * (1 - female_share)``.  Ambiguous names are therefore borne
    by both genders, exactly the property that limits forename-based
    inference.
    """

    def __init__(self) -> None:
        self._entries: dict[str, ForenameEntry] = {}
        self._by_cluster: dict[str, list[ForenameEntry]] = {}
        for cluster, data in CLUSTERS.items():
            rows = []
            for name, share, weight in data["forenames"]:
                entry = ForenameEntry(name, float(share), int(weight), cluster)
                rows.append(entry)
                # A forename may exist in several clusters; keep the
                # highest-weight entry for lookups (global statistics).
                prev = self._entries.get(name.lower())
                if prev is None or prev.weight < entry.weight:
                    self._entries[name.lower()] = entry
            self._by_cluster[cluster] = rows
        self._surnames = {c: list(d["surnames"]) for c, d in CLUSTERS.items()}
        # Precompute per-cluster, per-gender sampling weights.
        self._weights: dict[tuple[str, str], np.ndarray] = {}
        for cluster, rows in self._by_cluster.items():
            w = np.array([e.weight for e in rows], dtype=float)
            f = np.array([e.female_share for e in rows], dtype=float)
            wf = w * f
            wm = w * (1.0 - f)
            self._weights[(cluster, "F")] = wf / wf.sum()
            self._weights[(cluster, "M")] = wm / wm.sum()

    # ------------------------------------------------------------- sampling

    def clusters(self) -> tuple[str, ...]:
        return tuple(self._by_cluster.keys())

    def sample_forename(
        self, gender: str, cluster: str, rng: np.random.Generator
    ) -> str:
        """Draw a forename for a bearer of ``gender`` in ``cluster``."""
        if gender not in ("F", "M"):
            raise ValueError(f"gender must be 'F' or 'M', got {gender!r}")
        rows = self._by_cluster.get(cluster)
        if rows is None:
            raise KeyError(f"unknown cluster {cluster!r}")
        probs = self._weights[(cluster, gender)]
        i = int(rng.choice(len(rows), p=probs))
        return rows[i].name

    def sample_surname(self, cluster: str, rng: np.random.Generator) -> str:
        names = self._surnames.get(cluster)
        if names is None:
            raise KeyError(f"unknown cluster {cluster!r}")
        return str(names[int(rng.integers(0, len(names)))])

    def sample_full_name(
        self, gender: str, country_code: str, rng: np.random.Generator
    ) -> str:
        """Draw 'Forename Surname' appropriate for a country."""
        cluster = cluster_for_country(country_code)
        return (
            f"{self.sample_forename(gender, cluster, rng)} "
            f"{self.sample_surname(cluster, rng)}"
        )

    def sample_confident_forename(
        self, gender: str, cluster: str, rng: np.random.Generator
    ) -> str:
        """Draw a forename whose gender a name service would call confidently.

        Restricts to names with female_share ≥ 0.92 (for women) or
        ≤ 0.08 (for men): even with sampling noise, genderize-style
        inference clears a 0.70 confidence threshold on these.
        """
        if gender not in ("F", "M"):
            raise ValueError(f"gender must be 'F' or 'M', got {gender!r}")
        rows = self._by_cluster.get(cluster)
        if rows is None:
            raise KeyError(f"unknown cluster {cluster!r}")
        if gender == "F":
            pool = [e for e in rows if e.female_share >= 0.92]
        else:
            pool = [e for e in rows if e.female_share <= 0.08]
        if not pool:  # every cluster corpus has confident names; guard anyway
            pool = rows
        w = np.array([e.weight for e in pool], dtype=float)
        i = int(rng.choice(len(pool), p=w / w.sum()))
        return pool[i].name

    def sample_ambiguous_forename(
        self, gender: str, cluster: str, rng: np.random.Generator
    ) -> str:
        """Draw an ambiguous forename a name service cannot call at 0.70.

        Restricts to names with female_share in (0.25, 0.75), weighted by
        how plausible they are for the bearer's true gender.  Falls back
        to the cluster's most ambiguous name when the band is empty.
        """
        rows = self._by_cluster.get(cluster)
        if rows is None:
            raise KeyError(f"unknown cluster {cluster!r}")
        pool = [e for e in rows if 0.32 < e.female_share < 0.68]
        if not pool:
            pool = [min(rows, key=lambda e: abs(e.female_share - 0.5))]
        share = np.array([e.female_share for e in pool], dtype=float)
        w = np.array([e.weight for e in pool], dtype=float)
        w = w * (share if gender == "F" else (1.0 - share))
        if w.sum() <= 0:
            w = np.ones(len(pool))
        i = int(rng.choice(len(pool), p=w / w.sum()))
        return pool[i].name

    # -------------------------------------------------------------- lookups

    def lookup(self, forename: str) -> ForenameEntry | None:
        """The global statistics of a forename (case-insensitive)."""
        return self._entries.get(forename.strip().lower())

    def true_female_share(self, forename: str) -> float | None:
        e = self.lookup(forename)
        return e.female_share if e else None

    def entries(self) -> tuple[ForenameEntry, ...]:
        return tuple(self._entries.values())


@lru_cache(maxsize=1)
def default_bank() -> NameBank:
    """The process-wide shared NameBank (the corpora are static)."""
    return NameBank()
