"""Paper-vs-measured comparison for EXPERIMENTS.md."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.blind import blind_report
from repro.analysis.experience import experience_report
from repro.analysis.far import far_report
from repro.analysis.hpctopic import hpc_topic_report
from repro.analysis.pc import pc_report
from repro.analysis.reception import reception_report
from repro.analysis.sector import sector_report
from repro.analysis.visible import visible_report
from repro.calibration.targets import PAPER_STATS
from repro.pipeline.dataset import AnalysisDataset
from repro.pipeline.runner import PipelineResult
from repro.viz.tableprint import format_records

__all__ = ["ComparisonRow", "compare_headlines", "render_comparison"]


@dataclass(frozen=True)
class ComparisonRow:
    """One compared statistic."""

    experiment: str
    statistic: str
    paper: float
    measured: float

    @property
    def abs_error(self) -> float:
        return abs(self.measured - self.paper)

    @property
    def rel_error(self) -> float:
        return self.abs_error / abs(self.paper) if self.paper else float("inf")


def compare_headlines(result: PipelineResult) -> list[ComparisonRow]:
    """Measure every headline statistic and pair it with the paper's value."""
    ds = result.dataset
    far = far_report(ds)
    blind = blind_report(ds)
    pc = pc_report(ds)
    vis = visible_report(ds)
    hpc = hpc_topic_report(ds)
    rec = reception_report(ds)
    exp = experience_report(ds)
    sec = sector_report(ds)
    cov = result.coverage

    rows: list[tuple[str, str, float, float]] = [
        ("S3.1", "far_overall", PAPER_STATS["S3.1"]["far_overall"], far.overall.pct),
        ("S3.1", "far_sc", PAPER_STATS["S3.1"]["far_sc"], far.conference("SC").authors.pct),
        ("S3.1", "far_isc", PAPER_STATS["S3.1"]["far_isc"], far.conference("ISC").authors.pct),
        ("S3.1", "far_double_blind", PAPER_STATS["S3.1"]["far_double_blind"], blind.authors_double.pct),
        ("S3.1", "far_single_blind", PAPER_STATS["S3.1"]["far_single_blind"], blind.authors_single.pct),
        ("S3.1", "blind_chi2", PAPER_STATS["S3.1"]["blind_chi2"], blind.authors_test.statistic),
        ("S3.1", "lead_far_single", PAPER_STATS["S3.1"]["lead_far_single"], blind.lead_single.pct),
        ("S3.1", "lead_far_double", PAPER_STATS["S3.1"]["lead_far_double"], blind.lead_double.pct),
        ("S3.1", "lead_chi2", PAPER_STATS["S3.1"]["lead_chi2"], blind.lead_test.statistic),
        ("S3.1", "last_far", PAPER_STATS["S3.1"]["last_far"], far.last_overall.pct),
        ("S3.2", "pc_far", PAPER_STATS["S3.2"]["pc_far"], pc.memberships.pct),
        ("S3.2", "pc_memberships", PAPER_STATS["S3.2"]["pc_memberships"], float(pc.memberships.n + _unknown_pc(ds))),
        ("S3.2", "sc_pc_far", PAPER_STATS["S3.2"]["sc_pc_far"], pc.by_conference["SC"].pct),
        ("S3.2", "pc_far_excl_sc", PAPER_STATS["S3.2"]["pc_far_excl_sc"], pc.excluding_sc.pct),
        ("S3.2", "zero_women_chair_confs", PAPER_STATS["S3.2"]["zero_women_chair_confs"], float(len(pc.zero_women_chair_confs))),
        ("S3.3", "zero_women_keynote_confs", PAPER_STATS["S3.3"]["zero_women_keynote_confs"], float(len(vis.zero_women_confs["keynote"]))),
        ("S3.3", "zero_women_session_chair_confs", PAPER_STATS["S3.3"]["zero_women_session_chair_confs"], float(len(vis.zero_women_confs["session_chair"]))),
        ("S3.3", "zero_session_chair_seats", PAPER_STATS["S3.3"]["zero_session_chair_seats"], float(vis.zero_session_chair_seats)),
        ("S4.1", "hpc_papers", PAPER_STATS["S4.1"]["hpc_papers"], float(hpc.hpc_papers)),
        ("S4.1", "hpc_author_far", PAPER_STATS["S4.1"]["hpc_author_far"], hpc.authors_hpc.pct),
        ("S4.1", "hpc_lead_far", PAPER_STATS["S4.1"]["hpc_lead_far"], hpc.lead_hpc.pct),
        ("S4.1", "overall_lead_far", PAPER_STATS["S4.1"]["overall_lead_far"], hpc.lead_all.pct),
        ("F2", "papers_female_lead", PAPER_STATS["F2"]["papers_female_lead"], float(rec.n_female_lead)),
        ("F2", "papers_male_lead", PAPER_STATS["F2"]["papers_male_lead"], float(rec.n_male_lead)),
        ("F2", "mean_cites_female", PAPER_STATS["F2"]["mean_cites_female"], rec.mean_female),
        ("F2", "mean_cites_male", PAPER_STATS["F2"]["mean_cites_male"], rec.mean_male),
        ("F2", "mean_cites_female_no_outlier", PAPER_STATS["F2"]["mean_cites_female_no_outlier"], rec.mean_female_no_outlier),
        ("F2", "welch_t", PAPER_STATS["F2"]["welch_t"], rec.welch_no_outlier.statistic),
        ("F2", "i10_share_female", PAPER_STATS["F2"]["i10_share_female"], 100 * rec.i10_female),
        ("F2", "i10_share_male", PAPER_STATS["F2"]["i10_share_male"], 100 * rec.i10_male),
        ("F5", "gs_s2_r", PAPER_STATS["F5"]["gs_s2_r"], exp.gs_s2_correlation.r),
        ("F6", "novice_female_authors", PAPER_STATS["F6"]["novice_female_authors"], 100 * exp.novice_female_authors),
        ("F6", "novice_male_authors", PAPER_STATS["F6"]["novice_male_authors"], 100 * exp.novice_male_authors),
        ("F6", "novice_chi2", PAPER_STATS["F6"]["novice_chi2"], exp.novice_test.statistic),
        ("F8", "pc_sector_chi2", PAPER_STATS["F8"]["pc_sector_chi2"], sec.pc_test.statistic),
        ("F8", "author_sector_chi2", PAPER_STATS["F8"]["author_sector_chi2"], sec.author_test.statistic),
        ("COVERAGE", "manual_pct", PAPER_STATS["COVERAGE"]["manual_pct"], 100 * cov["manual"]),
        ("COVERAGE", "genderize_pct", PAPER_STATS["COVERAGE"]["genderize_pct"], 100 * cov["genderize"]),
        ("COVERAGE", "unknown_pct", PAPER_STATS["COVERAGE"]["unknown_pct"], 100 * cov["none"]),
        ("COVERAGE", "gs_coverage_known", PAPER_STATS["COVERAGE"]["gs_coverage_known"], 100 * exp.gs_coverage_known_gender),
    ]
    return [ComparisonRow(e, s, p, m) for e, s, p, m in rows]


def _unknown_pc(ds: AnalysisDataset) -> int:
    """PC seats held by unknown-gender researchers (denominator filler)."""
    import numpy as np

    slots = ds.role_slots
    is_pc = np.array([r == "pc_member" for r in slots["role"]], dtype=bool)
    missing = slots.col("gender").is_missing()
    return int(np.sum(is_pc & missing))


def render_comparison(rows: list[ComparisonRow]) -> str:
    """ASCII table of a comparison."""
    recs = [
        {
            "exp": r.experiment,
            "statistic": r.statistic,
            "paper": round(r.paper, 3),
            "measured": round(r.measured, 3),
            "abs_err": round(r.abs_error, 3),
        }
        for r in rows
    ]
    return format_records(recs, title="Paper vs measured")
