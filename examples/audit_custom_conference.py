#!/usr/bin/env python3
"""Audit a user-defined conference with the library's tooling.

Usage::

    python examples/audit_custom_conference.py

This is the downstream-user scenario the paper's "publish your data"
call motivates: a PC chair has a participant list (names + roles +
affiliations) and wants the same statistics the paper computes — women's
share per role with Wilson intervals, a sector/country breakdown, and a
χ² contrast against the paper's published HPC-wide rates.

The participant list here is generated (no network), but the code path
is exactly what a real list would go through: names → gender cascade,
affiliations → country/sector, then proportions and tests.
"""

from __future__ import annotations

import numpy as np

from repro.gender import GenderizeClient, GenderResolver, ResolverPolicy, WebEvidenceSource
from repro.gender.model import Gender
from repro.gender.webevidence import EvidenceKind
from repro.geo import classify_affiliation
from repro.names import default_bank
from repro.stats import Proportion, chi2_two_proportions
from repro.viz import format_records

#: The paper's HPC-wide benchmarks to compare against.
PAPER_FAR = Proportion(215, 2172)        # ~9.9% of authors
PAPER_PC = Proportion(225, 1220)         # 18.46% of PC members


def make_participant_list(rng: np.random.Generator):
    """A synthetic participant list, as a PC chair's spreadsheet."""
    bank = default_bank()
    rows = []
    affils = [
        "University of Riverton, United States",
        "ETH Zurich, Switzerland",
        "Oak Ridge National Laboratory",
        "IBM Research, United States",
        "Tsinghua University, China",
        "University of Tokyo, Japan",
        "INRIA, France",
        "Barcelona Supercomputing Center, Spain",
    ]
    truth = {}
    evidence = {}
    for i in range(160):
        gender = "F" if rng.random() < 0.14 else "M"
        cluster = ["western", "east_asian", "south_asian"][int(rng.choice(3, p=[0.6, 0.3, 0.1]))]
        name = f"{bank.sample_forename(gender, cluster, rng)} {bank.sample_surname(cluster, rng)}"
        pid = f"attendee-{i}"
        truth[pid] = Gender(gender)
        evidence[pid] = (
            EvidenceKind.PRONOUN if rng.random() < 0.9 else EvidenceKind.NONE
        )
        rows.append(
            {
                "pid": pid,
                "name": name,
                "role": "pc" if i < 45 else "author",
                "affiliation": affils[int(rng.integers(len(affils)))],
            }
        )
    return rows, truth, evidence


def main() -> None:
    rng = np.random.default_rng(2024)
    participants, truth, evidence = make_participant_list(rng)

    # gender cascade, exactly as the paper's methodology
    resolver = GenderResolver(
        WebEvidenceSource(evidence, truth, seed=1),
        GenderizeClient(service_seed=1),
        ResolverPolicy(),
    )
    assignments = {
        p["pid"]: resolver.resolve(p["pid"], p["name"]) for p in participants
    }

    # per-role representation
    report_rows = []
    for role in ("author", "pc"):
        flags = [
            assignments[p["pid"]].gender is Gender.F
            for p in participants
            if p["role"] == role and assignments[p["pid"]].known
        ]
        prop = Proportion(sum(flags), len(flags))
        lo, hi = prop.wilson_interval()
        benchmark = PAPER_FAR if role == "author" else PAPER_PC
        test = chi2_two_proportions(prop.hits, prop.n, benchmark.hits, benchmark.n)
        report_rows.append(
            {
                "role": role,
                "women": str(prop),
                "wilson_95": f"[{100*lo:.1f}%, {100*hi:.1f}%]",
                "paper_benchmark": f"{benchmark.pct:.2f}%",
                "chi2_vs_paper": round(test.statistic, 3),
                "p": round(test.p_value, 3),
            }
        )
    print(format_records(report_rows, title="Representation audit vs paper benchmarks"))
    print()

    # sector breakdown via the affiliation classifier
    sector_counts: dict[str, int] = {}
    for p in participants:
        guess = classify_affiliation(p["affiliation"])
        key = guess.sector.value if guess.sector else "unknown"
        sector_counts[key] = sector_counts.get(key, 0) + 1
    print("sector breakdown:", dict(sorted(sector_counts.items())))

    unknown = sum(1 for a in assignments.values() if not a.known)
    print(f"unassigned gender: {unknown}/{len(assignments)} "
          f"({100*unknown/len(assignments):.1f}%) — excluded from the shares above")


if __name__ == "__main__":
    main()
