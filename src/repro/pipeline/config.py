"""The consolidated run configuration.

:func:`~repro.pipeline.runner.run_pipeline` grew nine keyword arguments
over three PRs; :class:`RunConfig` consolidates them (plus the engine's
cache options) into one frozen, picklable object with a single CLI
constructor.  The legacy kwargs still work through a deprecation shim
on ``run_pipeline`` itself.

::

    from repro.api import RunConfig, run_pipeline

    result = run_pipeline(
        RunConfig(
            world=WorldConfig(seed=7),
            validation="repair",
            engine=EngineConfig(cache_dir="out/cache"),
        )
    )
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Any

from repro.contracts.schema import ValidationMode
from repro.faults.chaos import ChaosConfig
from repro.faults.plan import FaultConfig

if TYPE_CHECKING:  # imported lazily at runtime: repro.engine imports us
    from repro.engine.supervise import SupervisorConfig
from repro.gender.resolver import ResolverPolicy
from repro.obs.context import ObsContext
from repro.synth.config import WorldConfig
from repro.util.parallel import ParallelConfig

__all__ = ["EngineConfig", "RunConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """How (not *what*) the stage-DAG engine executes.

    Attributes
    ----------
    cache_dir:
        Directory of the content-addressed artifact cache; ``None``
        disables caching (the DAG still schedules and parallelizes).
    workers:
        Worker processes for *independent nodes of one generation*
        (e.g. enrichment and gender inference).  ``None``/``0``/``1``
        runs each generation serially.  Orthogonal to — and composable
        with — the per-stage :class:`~repro.util.parallel.ParallelConfig`
        used inside the ingest stage.
    refresh:
        Recompute every node even on a cache hit, overwriting entries
        (the cache-busting escape hatch).
    supervise:
        A :class:`~repro.engine.supervise.SupervisorConfig` enabling
        supervised execution: bounded retries with virtual-clock
        backoff, per-node deadlines, and failure isolation (a failed
        node skips only its downstream, the run completes with
        ``EngineRun.failed``/``skipped`` populated).  ``None`` keeps
        the historical fail-fast semantics.
    chaos:
        A :class:`~repro.faults.chaos.ChaosConfig` injecting
        deterministic engine-level faults (node exceptions, hangs,
        torn/bit-flipped cache writes).  Implies supervision with the
        default policies when ``supervise`` is unset.  Like the rest
        of this class it is execution policy — it never enters run or
        cache fingerprints.
    """

    cache_dir: str | None = None
    workers: int | None = None
    refresh: bool = False
    supervise: "SupervisorConfig | None" = None
    chaos: ChaosConfig | None = None


@dataclass(frozen=True)
class RunConfig:
    """Everything :func:`~repro.pipeline.runner.run_pipeline` accepts.

    Attributes
    ----------
    world:
        World configuration (ignored when a prebuilt world is passed to
        ``run_pipeline`` directly — a world is data, not configuration).
    parallel:
        Parallel policy for the ingest stage (serial by default).
    policy:
        Gender-resolver policy (paper defaults when ``None``).
    faults:
        Deterministic fault-injection configuration.
    checkpoint_dir / resume:
        Legacy per-stage checkpointing; subsumed by ``engine.cache_dir``
        but still honored (per-edition harvest checkpoints compose with
        the engine's per-node cache).
    validation:
        Data-contract mode (``"strict"``/``"repair"``/``"audit"`` or a
        :class:`~repro.contracts.schema.ValidationMode`; ``None`` off).
    obs:
        Observability context; ``None`` disables instrumentation.
    engine:
        Stage-DAG execution options.  ``None`` selects the legacy
        linear runner; any :class:`EngineConfig` (even an empty one)
        selects the DAG engine.
    shards:
        Venue count of a sharded synthetic universe.  Setting it routes
        the run through :func:`~repro.pipeline.sharded.run_sharded`:
        each conference×edition cell is generated, harvested, linked,
        enriched, and gender-inferred as an independent engine DAG node,
        then merged deterministically.  ``None`` keeps the monolithic
        single-world pipeline.  Unlike ``shard_workers``, this changes
        *what* is computed, so it participates in the run fingerprint.
    shard_workers:
        Worker processes executing shard nodes concurrently.  Execution
        policy only — results are byte-identical for any worker count —
        so it is excluded from the fingerprint.
    """

    world: WorldConfig | None = None
    parallel: ParallelConfig | None = None
    policy: ResolverPolicy | None = None
    faults: FaultConfig | None = None
    checkpoint_dir: str | None = None
    resume: bool = False
    validation: ValidationMode | str | None = None
    obs: ObsContext | None = None
    engine: EngineConfig | None = None
    shards: int | None = None
    shard_workers: int | None = None

    def __post_init__(self) -> None:
        if self.resume and not self.checkpoint_dir:
            raise ValueError("resume=True requires checkpoint_dir")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shard_workers is not None and self.shard_workers < 1:
            raise ValueError("shard_workers must be >= 1")

    # ------------------------------------------------------------- helpers

    def validation_mode(self) -> ValidationMode | None:
        """The validation field normalized to an enum (or ``None``)."""
        if self.validation is None:
            return None
        if isinstance(self.validation, ValidationMode):
            return self.validation
        return ValidationMode(str(self.validation))

    def with_overrides(self, **overrides: Any) -> "RunConfig":
        """A copy with the given non-``None`` fields replaced."""
        changed = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **changed) if changed else self

    def fingerprint(self) -> str:
        """Deterministic content digest of this configuration.

        The run ledger keys like-for-like comparisons on it.  The
        observability context is excluded (it is instrumentation, not
        configuration, and its repr is identity-based), and so is the
        engine's *execution policy* — worker counts, cache/checkpoint
        directories, refresh — which must never make two runs read as
        scientifically different (the same rule the engine's cache keys
        follow).
        """
        # lazy import: repro.engine imports this module at load time
        from repro.engine.fingerprint import fingerprint as _fp

        mode = self.validation_mode()
        return _fp(
            "run-config",
            replace(
                self,
                obs=None,
                engine=None,
                checkpoint_dir=None,
                resume=False,
                parallel=None,
                shard_workers=None,
                # normalize the str/enum spellings to one fingerprint
                validation=mode.value if mode is not None else None,
            ),
        )

    # --------------------------------------------------------- constructors

    @classmethod
    def from_cli(cls, args: Any) -> "RunConfig":
        """Build a run configuration from a parsed CLI namespace.

        Understands the option set declared in :mod:`repro.cli` (seed,
        scale, workers, fault-rate/seed, checkpoint-dir/resume,
        validate, cache-dir/engine-workers/refresh-cache, and the
        observability context the CLI stashes on ``args._obs``).
        Missing attributes fall back to their defaults, so any
        namespace with a ``seed`` is accepted.
        """

        def get(name: str, default: Any = None) -> Any:
            return getattr(args, name, default)

        faults = None
        if get("fault_rate", 0.0) > 0.0 or get("fault_seed") is not None:
            faults = FaultConfig(
                rate=get("fault_rate", 0.0),
                seed=(
                    get("fault_seed")
                    if get("fault_seed") is not None
                    else get("seed", 0)
                ),
            )
        parallel = None
        if get("workers") is not None:
            parallel = ParallelConfig(workers=get("workers"), min_items_per_worker=1)
        validate = get("validate", "repair")
        validation = None if validate in (None, "off") else validate
        engine = None
        if (
            get("cache_dir") is not None
            or get("engine", False)
            or get("engine_workers") is not None
        ):
            engine = EngineConfig(
                cache_dir=get("cache_dir"),
                workers=get("engine_workers"),
                refresh=get("refresh_cache", False),
            )
        shards = get("shards")
        return cls(
            world=WorldConfig(
                seed=get("seed", 7),
                scale=get("scale", 1.0),
                venues=shards or 0,
            ),
            parallel=parallel,
            policy=None,
            faults=faults,
            checkpoint_dir=get("checkpoint_dir"),
            resume=get("resume", False),
            validation=validation,
            obs=get("_obs"),
            engine=engine,
            shards=shards,
            shard_workers=get("shard_workers"),
        )

    @classmethod
    def for_query(
        cls,
        seed: int,
        scale: float,
        *,
        shards: int | None = None,
        shard_workers: int | None = None,
        cache_dir: str | None = None,
    ) -> "RunConfig":
        """The canonical config for a parameterized analysis query.

        Shared by ``repro serve`` (``?seed=&scale=&shards=``) and any
        embedder that wants serve-equivalent semantics: one constructor
        means one fingerprint per (seed, scale, shards) triple, so the
        service cache and the CLI cache address the same entries.
        """
        return cls(
            world=WorldConfig(seed=seed, scale=scale, venues=shards or 0),
            engine=EngineConfig(cache_dir=cache_dir),
            shards=shards,
            shard_workers=shard_workers,
        )


# the legacy run_pipeline kwargs RunConfig consolidates, in signature order
LEGACY_KWARGS: tuple[str, ...] = tuple(
    f.name
    for f in fields(RunConfig)
    if f.name not in ("engine", "shards", "shard_workers")
)
