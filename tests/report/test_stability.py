"""Tests for the seed-stability report."""

import pytest

from repro.report.stability import stability_report


@pytest.fixture(scope="module")
def report():
    return stability_report(seeds=(11, 22, 33), scale=0.3)


class TestStability:
    def test_stat_names(self, report):
        names = {s.name for s in report.stats}
        assert {"far_overall_pct", "pc_far_pct", "unknown_pct"} <= names

    def test_values_per_seed(self, report):
        for s in report.stats:
            assert len(s.values) == 3

    def test_far_tight_across_seeds(self, report):
        far = report.stat("far_overall_pct")
        assert far.mean == pytest.approx(9.9, abs=1.2)
        assert far.sd < 1.5  # quota construction keeps spread small

    def test_interval_contains_mean(self, report):
        s = report.stat("pc_far_pct")
        lo, hi = s.interval()
        assert lo <= s.mean <= hi

    def test_unknown_rate_stable(self, report):
        u = report.stat("unknown_pct")
        assert u.mean == pytest.approx(3.0, abs=1.0)

    def test_needs_two_seeds(self):
        with pytest.raises(ValueError):
            stability_report(seeds=(1,))

    def test_unknown_stat_keyerror(self, report):
        with pytest.raises(KeyError):
            report.stat("nope")
