"""Drop-in resilient wrappers around the simulated remote services.

Each wrapper keeps the wrapped object's query interface, routes every
call through a :class:`~repro.faults.session.FaultSession`, and — when
retries are exhausted or the breaker is open — records a
:class:`~repro.faults.degradation.LossRecord` and returns the service's
natural "no data" value instead of raising.  Downstream pipeline code is
untouched: a lost genderize lookup is an unknown name, a lost Google
Scholar search is an unlinkable profile, exactly the degradation modes
the paper reports.
"""

from __future__ import annotations

from repro.faults.corrupt import (
    corrupt_genderize_response,
    genderize_response_wellformed,
)
from repro.faults.errors import FaultError
from repro.faults.session import FaultSession
from repro.gender.genderize import GenderizeClient, GenderizeResponse
from repro.scholar.gscholar import GoogleScholarStore, GSProfile
from repro.scholar.semanticscholar import S2Record, SemanticScholarStore

__all__ = [
    "ResilientGenderizeClient",
    "ResilientGoogleScholar",
    "ResilientSemanticScholar",
]

_GARBAGE = object()  # sentinel: a payload mangled beyond client-side repair


def _mangle(result, rng):
    return _GARBAGE


def _not_garbage(result) -> bool:
    return result is not _GARBAGE


class ResilientGenderizeClient:
    """A :class:`GenderizeClient` facade that survives injected faults."""

    SERVICE = "genderize"

    def __init__(self, inner: GenderizeClient, session: FaultSession) -> None:
        self._inner = inner
        self._session = session

    @property
    def queries(self) -> int:
        return self._inner.queries

    def query(self, full_name: str) -> GenderizeResponse:
        validate = genderize_response_wellformed if full_name else None
        try:
            return self._session.call(
                self.SERVICE,
                (full_name,),
                lambda: self._inner.query(full_name),
                malform=corrupt_genderize_response,
                validate=validate,
            )
        except FaultError as exc:
            self._session.record_loss(self.SERVICE, full_name, exc.reason)
            return GenderizeResponse(full_name, None, 0.0, 0)

    def batch(self, names: list[str]) -> list[GenderizeResponse]:
        return [self.query(n) for n in names]


class ResilientGoogleScholar:
    """Fault-tolerant profile search over a :class:`GoogleScholarStore`."""

    SERVICE = "gscholar"

    def __init__(self, inner: GoogleScholarStore, session: FaultSession) -> None:
        self._inner = inner
        self._session = session

    def _call(self, full_name: str, fn, fallback):
        try:
            return self._session.call(
                self.SERVICE, (full_name,), fn, malform=_mangle, validate=_not_garbage
            )
        except FaultError as exc:
            self._session.record_loss(self.SERVICE, full_name, exc.reason)
            return fallback

    def search(self, full_name: str) -> list[GSProfile]:
        return self._call(full_name, lambda: self._inner.search(full_name), [])

    def unique_match(self, full_name: str) -> GSProfile | None:
        return self._call(full_name, lambda: self._inner.unique_match(full_name), None)


class ResilientSemanticScholar:
    """Fault-tolerant author search over a :class:`SemanticScholarStore`."""

    SERVICE = "semanticscholar"

    def __init__(self, inner: SemanticScholarStore, session: FaultSession) -> None:
        self._inner = inner
        self._session = session

    def search_name(self, full_name: str) -> list[S2Record]:
        try:
            return self._session.call(
                self.SERVICE,
                (full_name,),
                lambda: self._inner.search_name(full_name),
                malform=_mangle,
                validate=_not_garbage,
            )
        except FaultError as exc:
            self._session.record_loss(self.SERVICE, full_name, exc.reason)
            return []
