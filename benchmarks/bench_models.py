"""Benchmarks for the review-bias and parity-forecast models."""

import numpy as np

from repro.forecast import SCENARIOS, project_scenario, years_to_share
from repro.review import ReviewConfig, ReviewProcess, bias_sweep


def test_review_cycle(benchmark):
    """One simulated review cycle at conference scale."""
    cfg = ReviewConfig(submissions=400, acceptance_rate=0.22, submission_far=0.105)
    proc = ReviewProcess(cfg)
    rng = np.random.default_rng(0)
    out = benchmark(proc.run, rng)
    benchmark.extra_info["accepted"] = out.accepted_papers


def test_bias_sweep(benchmark):
    """The full bias→FAR response curve (Monte Carlo)."""
    cfg = ReviewConfig(submissions=300, acceptance_rate=0.22, submission_far=0.118)
    sweep = benchmark(bias_sweep, cfg, (0.0, 0.5, 1.0), 60, 3)
    benchmark.extra_info["suppression_at_1.0"] = round(
        100 * sweep.suppression()[-1], 2
    )


def test_forecast_all_scenarios(benchmark):
    """80-year projection of all four scenarios."""

    def run():
        return {
            name: project_scenario(name, years=80) for name in SCENARIOS
        }

    projections = benchmark(run)
    p = projections["parity_entry"]
    y = years_to_share(p, 0.30)
    benchmark.extra_info["parity_entry_reaches_30pct_in"] = y
    assert y is not None
