"""The content-addressed artifact cache and its persistence discipline."""

import json

import pytest

from repro.engine.cache import CACHE_FORMAT, ArtifactCache
from repro.pipeline.checkpoint import CheckpointMismatch

pytestmark = pytest.mark.engine

KEY = "a" * 64
OTHER = "b" * 64


class TestArtifactCache:
    def test_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        assert not cache.has("ingest", KEY)
        cache.save("ingest", KEY, {"harvested": [1, 2, 3]})
        assert cache.has("ingest", KEY)
        assert cache.load("ingest", KEY) == {"harvested": [1, 2, 3]}

    def test_miss_raises_keyerror(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        with pytest.raises(KeyError):
            cache.load("ingest", KEY)

    def test_distinct_keys_coexist(self, tmp_path):
        """One directory serves many runs: keys are content-addressed."""
        cache = ArtifactCache(tmp_path / "cache")
        cache.save("ingest", KEY, {"x": 1})
        cache.save("ingest", OTHER, {"x": 2})
        assert cache.load("ingest", KEY) == {"x": 1}
        assert cache.load("ingest", OTHER) == {"x": 2}
        assert len(cache.entries()) == 2

    def test_full_key_verified_not_just_prefix(self, tmp_path):
        """A truncated-prefix collision is served as a miss, never as data."""
        cache = ArtifactCache(tmp_path / "cache")
        cache.save("ingest", KEY, {"x": 1})
        colliding = KEY[:24] + "c" * 40  # same 24-char prefix, different key
        with pytest.raises(KeyError):
            cache.load("ingest", colliding)

    def test_reopen_reuses_directory(self, tmp_path):
        ArtifactCache(tmp_path / "cache").save("link", KEY, {"x": 1})
        again = ArtifactCache(tmp_path / "cache")
        assert again.load("link", KEY) == {"x": 1}

    def test_size_accounting(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        assert cache.size_bytes() == 0
        cache.save("ingest", KEY, {"x": list(range(100))})
        assert cache.size_bytes() > 0


class TestCacheMismatch:
    """Regression: a foreign/stale cache directory must raise
    CheckpointMismatch instead of silently serving its artifacts."""

    def test_foreign_format_refused(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        (root / "meta.json").write_text(
            json.dumps({"format": "somebody-else", "schema": 0}), encoding="utf-8"
        )
        with pytest.raises(CheckpointMismatch):
            ArtifactCache(root)

    def test_stale_schema_refused(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        stale = dict(CACHE_FORMAT, schema=CACHE_FORMAT["schema"] - 1)
        (root / "meta.json").write_text(json.dumps(stale), encoding="utf-8")
        with pytest.raises(CheckpointMismatch):
            ArtifactCache(root)

    def test_populated_unrelated_directory_refused(self, tmp_path):
        """Pointing --cache-dir at somebody's data directory must not
        wipe it — no meta.json + contents -> refuse outright."""
        root = tmp_path / "out"
        root.mkdir()
        (root / "results.csv").write_text("precious\n", encoding="utf-8")
        with pytest.raises(CheckpointMismatch):
            ArtifactCache(root)
        assert (root / "results.csv").read_text(encoding="utf-8") == "precious\n"

    def test_checkpoint_directory_refused_as_cache(self, tmp_path):
        """A legacy checkpoint dir (different fingerprint shape) is not
        silently adopted as an engine cache."""
        from repro.pipeline.checkpoint import CheckpointStore

        root = tmp_path / "ck"
        CheckpointStore(root, {"seed": 1, "scale": 1.0, "faults": "none"}).begin()
        with pytest.raises(CheckpointMismatch):
            ArtifactCache(root)
