"""Retry backoff, virtual clock, circuit breaker, and session semantics."""

import pytest

from repro.faults import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    FaultConfig,
    FaultSession,
    RetryExhaustedError,
    RetryPolicy,
)
from repro.util.timing import VirtualClock

TRANSIENT_ONLY = (1.0, 0.0, 0.0, 0.0)
MALFORMED_ONLY = (0.0, 0.0, 0.0, 1.0)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        p = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=5.0, jitter=0.0)
        delays = [p.delay(a, 0, "svc") for a in range(1, 6)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_is_deterministic_and_bounded(self):
        p = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        d1 = p.delay(1, 42, "svc", "key")
        d2 = p.delay(1, 42, "svc", "key")
        assert d1 == d2
        assert 0.5 <= d1 <= 1.5
        assert p.delay(2, 42, "svc", "key") != d1  # jitter varies per attempt

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


class TestVirtualClock:
    def test_accumulates_without_real_sleeping(self):
        import time

        clock = VirtualClock()
        t0 = time.perf_counter()
        for _ in range(1000):
            clock.sleep(3600.0)
        assert clock.now == pytest.approx(3_600_000.0)
        assert time.perf_counter() - t0 < 1.0  # virtual, not wall time

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().sleep(-1.0)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        b = CircuitBreaker("svc", BreakerConfig(failure_threshold=3, cooldown_calls=5))
        for _ in range(3):
            b.check()
            b.record_failure()
        assert b.state is BreakerState.OPEN
        with pytest.raises(CircuitOpenError):
            b.check()

    def test_half_open_probe_then_close(self):
        b = CircuitBreaker("svc", BreakerConfig(failure_threshold=1, cooldown_calls=2))
        b.record_failure()
        assert b.state is BreakerState.OPEN
        with pytest.raises(CircuitOpenError):
            b.check()  # rejected call 1 of 2
        b.check()      # rejected call 2: transitions to half-open, probe allowed
        assert b.state is BreakerState.HALF_OPEN
        b.record_success()
        assert b.state is BreakerState.CLOSED

    def test_failed_probe_reopens(self):
        b = CircuitBreaker("svc", BreakerConfig(failure_threshold=1, cooldown_calls=1))
        b.record_failure()
        b.check()  # straight to half-open (cooldown 1)
        b.record_failure()
        assert b.state is BreakerState.OPEN
        assert b.times_opened == 2

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker("svc", BreakerConfig(failure_threshold=2, cooldown_calls=1))
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state is BreakerState.CLOSED


class TestFaultSession:
    def test_rate_zero_is_passthrough(self):
        s = FaultSession(FaultConfig(rate=0.0))
        assert s.call("svc", ("k",), lambda: 41 + 1) == 42
        assert s.snapshot.calls == {"svc": 1}
        assert s.clock.now == 0.0

    def test_transient_faults_exhaust_retries(self):
        s = FaultSession(FaultConfig(rate=1.0, seed=2, weights=TRANSIENT_ONLY))
        ran = []
        with pytest.raises(RetryExhaustedError):
            s.call("svc", ("k",), lambda: ran.append(1))
        assert not ran  # the fault preempts the underlying call
        stats = s.snapshot
        assert stats.calls["svc"] == s.config.retry.max_attempts
        assert stats.retries == s.config.retry.max_attempts - 1
        assert stats.exhausted == 1
        assert stats.virtual_time > 0.0  # backoff was charged virtually

    def test_malformed_without_validator_degrades_payload(self):
        s = FaultSession(FaultConfig(rate=1.0, seed=2, weights=MALFORMED_ONLY))
        out = s.call(
            "svc", ("k",), lambda: "clean", malform=lambda r, rng: r + "-corrupt"
        )
        assert out == "clean-corrupt"
        assert s.snapshot.faults["malformed"] >= 1

    def test_malformed_with_validator_retries_until_exhausted(self):
        s = FaultSession(FaultConfig(rate=1.0, seed=2, weights=MALFORMED_ONLY))
        with pytest.raises(RetryExhaustedError) as exc:
            s.call(
                "svc",
                ("k",),
                lambda: "clean",
                malform=lambda r, rng: "garbage",
                validate=lambda r: r != "garbage",
            )
        assert exc.value.last.reason == "malformed"

    def test_breaker_opens_and_fast_fails_across_calls(self):
        cfg = FaultConfig(
            rate=1.0,
            seed=2,
            weights=TRANSIENT_ONLY,
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
            breaker=BreakerConfig(failure_threshold=2, cooldown_calls=100),
        )
        s = FaultSession(cfg)
        with pytest.raises(RetryExhaustedError):
            s.call("svc", ("k0",), lambda: "x")  # 2 failures: breaker opens
        with pytest.raises(CircuitOpenError):
            s.call("svc", ("k1",), lambda: "x")  # fast-fail, no attempt made
        stats = s.snapshot
        assert stats.breaker_opens == 1
        assert stats.breaker_rejections == 1
        assert stats.calls["svc"] == 2  # the fast-failed call never counted

    def test_breakers_are_per_service(self):
        cfg = FaultConfig(
            rate=1.0,
            seed=2,
            weights=TRANSIENT_ONLY,
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
            breaker=BreakerConfig(failure_threshold=2, cooldown_calls=100),
        )
        s = FaultSession(cfg)
        with pytest.raises(RetryExhaustedError):
            s.call("svc-a", ("k",), lambda: "x")  # opens svc-a's breaker
        with pytest.raises(CircuitOpenError):
            s.call("svc-a", ("k",), lambda: "x")
        # svc-b has its own breaker, still closed: it attempts and exhausts
        with pytest.raises(RetryExhaustedError):
            s.call("svc-b", ("k",), lambda: "x")

    def test_non_fault_exceptions_propagate(self):
        s = FaultSession(FaultConfig(rate=0.0))

        def boom():
            raise KeyError("not an injected fault")

        with pytest.raises(KeyError):
            s.call("svc", ("k",), boom)

    def test_identical_sessions_identical_traces(self):
        def run():
            s = FaultSession(FaultConfig(rate=0.6, seed=13))
            outcomes = []
            for i in range(40):
                try:
                    outcomes.append(s.call("svc", (i,), lambda: "ok"))
                except Exception as exc:
                    outcomes.append(type(exc).__name__)
            return outcomes, s.snapshot

        out_a, stats_a = run()
        out_b, stats_b = run()
        assert out_a == out_b
        assert stats_a == stats_b
