#!/usr/bin/env python3
"""Collaboration patterns by gender — the paper's §6 future work.

Usage::

    python examples/collaboration_patterns.py [--seed N]

Builds the coauthorship graph over the reproduced dataset and answers
the questions the paper poses for follow-up: do women and men differ in
collaborator counts and team sizes, and is there gender homophily in
coauthorship?

Because the synthetic generator assigns authors to papers independently
of gender (a deliberate null model), the homophily numbers double as a
*calibration check*: measured mixing should match random mixing.  Any
future generator encoding homophilous team formation would show up here
immediately.
"""

from __future__ import annotations

import argparse

from repro.collab import collaboration_report
from repro.pipeline import RunConfig, run_pipeline
from repro.synth import WorldConfig
from repro.viz import format_records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    result = run_pipeline(RunConfig(world=WorldConfig(seed=args.seed, scale=1.0)))
    rep = collaboration_report(result.dataset)

    rows = [
        {
            "metric": "distinct coauthors (degree)",
            "women": f"{rep.degree_women.mean:.2f} (median {rep.degree_women.median:.0f})",
            "men": f"{rep.degree_men.mean:.2f} (median {rep.degree_men.median:.0f})",
            "welch_p": f"{rep.degree_test.p_value:.3f}",
        },
        {
            "metric": "team size of own papers",
            "women": f"{rep.team_size_women.mean:.2f}",
            "men": f"{rep.team_size_men.mean:.2f}",
            "welch_p": f"{rep.team_size_test.p_value:.3f}",
        },
        {
            "metric": "solo-paper rate",
            "women": f"{100*rep.solo_rate_women:.1f}%",
            "men": f"{100*rep.solo_rate_men:.1f}%",
            "welch_p": "",
        },
    ]
    print(format_records(rows, title="Collaboration patterns by gender"))
    print()
    print(f"gender assortativity:        {rep.assortativity:+.3f} (0 = random mixing)")
    print(f"mixed-gender edges:          {100*rep.share_mixed_edges:.1f}% "
          f"(random-mixing expectation: {100*rep.expected_mixed_edges:.1f}%)")
    print(f"papers with no (known) woman: {100*rep.all_male_paper_share:.1f}%")
    print(f"coauthorship graph:          {rep.components} components, "
          f"largest has {rep.largest_component} researchers")


if __name__ == "__main__":
    main()
