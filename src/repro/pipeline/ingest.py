"""Ingest: generate each conference's site and scrape it back.

One task per conference edition — the natural decomposition for the
deterministic parallel map (results are ordered by the edition list, and
site generation is a pure function of the registry, so worker count
cannot change the output).

Two entry points:

- :func:`ingest_world` — the fault-free fast path, unchanged semantics.
- :func:`ingest_world_resilient` — the same harvest under a
  :class:`~repro.faults.plan.FaultConfig`: injected fetch failures are
  retried (virtual-clock backoff), malformed pages are scraped as-is,
  an edition that exhausts its retries is *dropped and recorded* in the
  returned :class:`IngestReport` instead of aborting the run, and each
  completed edition can be checkpointed for ``--resume``.

Every harvest task owns its own :class:`~repro.faults.session.FaultSession`,
so breaker state and virtual time are per-item and the report is
bit-identical across worker counts.  Tasks run under
``parallel_map(..., capture_errors=True)``: even a genuine bug in one
edition's scrape surfaces as a loss record, not a dead pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.corrupt import corrupt_edition
from repro.faults.degradation import FaultStats, LossRecord
from repro.faults.errors import FaultError
from repro.faults.plan import FaultConfig
from repro.faults.session import FaultSession
from repro.harvest.proceedings import build_proceedings
from repro.harvest.scrape import HarvestedConference, scrape_site
from repro.harvest.sitegen import generate_site
from repro.obs.context import current as _obs
from repro.pipeline.checkpoint import CheckpointStore, save_item_file
from repro.synth.world import SyntheticWorld
from repro.util.parallel import ParallelConfig, TaskError, parallel_map

__all__ = [
    "ingest_world",
    "ingest_world_resilient",
    "harvest_one",
    "HarvestOutcome",
    "IngestReport",
]

_STAGE = "ingest"


def harvest_one(args: tuple[SyntheticWorld, str, int]) -> HarvestedConference:
    """Generate + scrape one conference edition (module-level: picklable)."""
    world, conference, year = args
    ctx = _obs()
    with ctx.span("harvest.edition", conf=conference, year=year):
        site = generate_site(world.registry, conference, year)
        proceedings = build_proceedings(world.registry, conference, year)
        conf = scrape_site(site, proceedings)
    ctx.metrics.inc("harvest.editions")
    ctx.metrics.observe("harvest.papers_per_edition", len(conf.papers))
    return conf


def _editions_of(world: SyntheticWorld, year: int):
    return sorted(
        (e for e in world.registry.editions.values() if e.year == year),
        key=lambda e: e.date,
    )


def ingest_world(
    world: SyntheticWorld,
    year: int = 2017,
    parallel: ParallelConfig | None = None,
) -> list[HarvestedConference]:
    """Scrape every conference edition of ``year`` (fault-free path)."""
    editions = _editions_of(world, year)
    tasks = [(world, e.name, e.year) for e in editions]
    return parallel_map(harvest_one, tasks, parallel)


# ----------------------------------------------------------- resilient path


@dataclass
class HarvestOutcome:
    """One task's result: a conference, or its documented absence."""

    key: str
    conference: HarvestedConference | None
    losses: tuple[LossRecord, ...]
    stats: FaultStats
    proceedings_count: int = 0


@dataclass
class IngestReport:
    """Everything the runner needs to account for the harvest stage."""

    conferences: list[HarvestedConference] = field(default_factory=list)
    losses: list[LossRecord] = field(default_factory=list)
    stats: FaultStats = field(default_factory=FaultStats)
    total_editions: int = 0
    resumed: tuple[str, ...] = ()
    # per-edition proceedings record counts — the harvest-side paper
    # denominator the integrity audit cross-checks the tables against
    proceedings_counts: dict[str, int] = field(default_factory=dict)


def _harvest_resilient(
    args: tuple[SyntheticWorld, str, int, FaultConfig | None, str | None],
) -> HarvestOutcome:
    """Harvest one edition under the fault plan (module-level: picklable)."""
    world, conference, year, faults, stage_dir = args
    key = f"{conference}-{year}"
    session = FaultSession(faults)
    ctx = _obs()

    def fetch():
        site = generate_site(world.registry, conference, year)
        proceedings = build_proceedings(world.registry, conference, year)
        return site, proceedings

    applied_tags: list[str] = []

    def malform(payload, rng):
        site, proceedings = payload
        site, proceedings, tags = corrupt_edition(site, proceedings, rng)
        applied_tags.extend(tags)
        return site, proceedings

    with ctx.span("harvest.edition", conf=conference, year=year):
        try:
            site, proceedings = session.call(
                "harvest", (conference, year), fetch, malform=malform
            )
        except FaultError as exc:
            session.record_loss("harvest", key, exc.reason)
            ctx.annotate(lost=exc.reason)
            ctx.metrics.inc("harvest.editions_lost")
            return HarvestOutcome(key, None, tuple(session.losses), session.snapshot)
        for tag in applied_tags:
            session.record_loss("harvest", key, f"malformed:{tag}")
        conf = scrape_site(site, proceedings)
    ctx.metrics.inc("harvest.editions")
    ctx.metrics.observe("harvest.papers_per_edition", len(conf.papers))
    outcome = HarvestOutcome(
        key,
        conf,
        tuple(session.losses),
        session.snapshot,
        proceedings_count=len(proceedings),
    )
    if stage_dir is not None:
        # checkpoint from the worker: a kill after this point never
        # re-harvests this edition (losses ride along; stats stay per-run)
        save_item_file(stage_dir, key, (conf, outcome.losses, outcome.proceedings_count))
    return outcome


def ingest_world_resilient(
    world: SyntheticWorld,
    year: int = 2017,
    parallel: ParallelConfig | None = None,
    faults: FaultConfig | None = None,
    checkpoint: CheckpointStore | None = None,
    resume: bool = False,
) -> IngestReport:
    """Scrape every edition of ``year`` under faults, never raising."""
    editions = _editions_of(world, year)
    keys = [f"{e.name}-{e.year}" for e in editions]
    report = IngestReport(total_editions=len(editions))

    if checkpoint is not None and resume and checkpoint.has_stage(_STAGE):
        done: IngestReport = checkpoint.load_stage(_STAGE)
        _obs().metrics.inc("harvest.editions_resumed", len(keys))
        _obs().event("checkpoint.resume", _STAGE, editions=len(keys))
        # data-coverage facts carry over; effort counters are per-run
        return IngestReport(
            conferences=done.conferences,
            losses=done.losses,
            stats=FaultStats(),
            total_editions=done.total_editions,
            resumed=tuple(keys),
            proceedings_counts=dict(getattr(done, "proceedings_counts", {})),
        )

    loaded: dict[str, tuple] = {}
    if checkpoint is not None and resume:
        loaded = checkpoint.load_items(_STAGE)

    stage_dir = str(checkpoint.item_dir(_STAGE)) if checkpoint is not None else None
    pending = [e for e in editions if f"{e.name}-{e.year}" not in loaded]
    tasks = [(world, e.name, e.year, faults, stage_dir) for e in pending]
    results = parallel_map(_harvest_resilient, tasks, parallel, capture_errors=True)
    by_key = {
        f"{e.name}-{e.year}": r for e, r in zip(pending, results)
    }

    resumed: list[str] = []
    for key in keys:
        if key in loaded:
            conf, losses, *rest = loaded[key]
            report.conferences.append(conf)
            report.losses.extend(losses)
            if rest:
                report.proceedings_counts[key] = rest[0]
            resumed.append(key)
            _obs().metrics.inc("harvest.editions_resumed")
            _obs().event("checkpoint.resume", key)
            continue
        result = by_key[key]
        if isinstance(result, TaskError):
            # a genuine defect in this edition's harvest, not an
            # injected fault: degrade it like any other loss
            report.losses.append(
                LossRecord("harvest", key, f"task-error:{result.kind}: {result.message}")
            )
            continue
        report.losses.extend(result.losses)
        report.stats.merge(result.stats)
        if result.conference is not None:
            report.conferences.append(result.conference)
            report.proceedings_counts[key] = result.proceedings_count
    report.resumed = tuple(resumed)

    if checkpoint is not None:
        checkpoint.save_stage(_STAGE, report)
    return report
