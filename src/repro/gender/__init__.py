"""Perceived-gender inference (the paper's central measurement).

The paper assigns binary perceived gender through a cascade (§2):

1. **Manual web evidence** — an unambiguous personal page with a gendered
   pronoun, or failing that a photo (95.18% of researchers);
2. **genderize.io** — automated forename inference, accepted only at
   ≥70% reported confidence (1.79%);
3. **unassigned** — the remaining 144 researchers (3.03%), excluded from
   denominators, with a sensitivity analysis flipping them all to women
   and then all to men.

This package implements the full cascade against simulated evidence
sources (there is no network here):

- :mod:`repro.gender.model`       — types: ``Gender``, ``GenderAssignment``.
- :mod:`repro.gender.genderize`   — a deterministic genderize.io stand-in
  backed by the name banks.
- :mod:`repro.gender.webevidence` — the simulated manual lookup.
- :mod:`repro.gender.resolver`    — the cascade itself.
- :mod:`repro.gender.accuracy`    — evaluation against ground truth
  (reproduces the "manual beats automated, especially for women" claim).
- :mod:`repro.gender.sensitivity` — the unknowns-flipping reassignment.
"""

from repro.gender.model import Gender, InferenceMethod, GenderAssignment
from repro.gender.genderize import GenderizeClient, GenderizeResponse
from repro.gender.webevidence import WebEvidenceSource, Evidence
from repro.gender.resolver import GenderResolver, ResolverPolicy
from repro.gender.accuracy import evaluate_inference, AccuracyReport
from repro.gender.sensitivity import reassign_unknowns

__all__ = [
    "Gender",
    "InferenceMethod",
    "GenderAssignment",
    "GenderizeClient",
    "GenderizeResponse",
    "WebEvidenceSource",
    "Evidence",
    "GenderResolver",
    "ResolverPolicy",
    "evaluate_inference",
    "AccuracyReport",
    "reassign_unknowns",
]
